#!/usr/bin/env python3
"""Sweep API: a declarative parameter-grid study, end to end.

Builds a :class:`~repro.sweeps.SweepSpec` over the Scenario API -- a
(offered-load x interconnect) grid asking *where the electrical meshes run
out of steam*: the per-thread compute gap of a Uniform workload swept from
heavy to light load (zipped with a human-readable label axis), crossed with
three systems (the electrical baseline, the dense mesh, and Corona's
optical crossbar).  Twelve points, each one (configuration, workload) pair.

The study demonstrates the subsystem's three guarantees:

1. **Trace reuse** -- the grid has 12 points but only 4 distinct workloads,
   so exactly 4 traces are generated (a :class:`~repro.sweeps.TraceCache`
   hook counts them).
2. **Checkpointed resume** -- every completed point lands in the study
   directory's ``points.jsonl``; re-running the same spec executes nothing
   and reproduces the same records from the manifest.
3. **Structured results** -- every point emits a long-form record (point id
   + axis values + every result field) into ``results.json``/``results.csv``
   next to a markdown report, ready for dashboards.

Run with::

    python examples/sweep_study.py [num_requests]
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro.api import ScaleSpec, Scenario, SystemSpec, WorkloadSpec
from repro.sweeps import SweepAxis, SweepSpec, TraceCache, run_sweep, sweep_status

GAPS = (10.0, 20.0, 40.0, 80.0)
SYSTEMS = ("LMesh/ECM", "HMesh/ECM", "XBar/OCM")


def build_spec(num_requests: int) -> SweepSpec:
    return SweepSpec(
        name="load-vs-interconnect",
        description=(
            "Uniform offered load (mean inter-miss gap) x interconnect: "
            "where do the electrical meshes saturate?"
        ),
        base=Scenario(
            system=SystemSpec(configurations=(SYSTEMS[0],)),
            workloads=(
                WorkloadSpec(name="Uniform", num_requests=num_requests),
            ),
            scale=ScaleSpec(tier="quick", seed=1),
        ),
        axes=(
            SweepAxis(
                name="gap",
                path="workloads[0].params.mean_gap_cycles",
                values=GAPS,
            ),
            SweepAxis(  # zipped: the label travels with the gap value
                name="load",
                path="workloads[0].params.name",
                values=tuple(f"Uniform g={gap:g}" for gap in GAPS),
                zip_with="gap",
            ),
            SweepAxis(
                name="configuration",
                path="system.configurations",
                values=tuple([name] for name in SYSTEMS),
            ),
        ),
    )


def main() -> None:
    num_requests = int(sys.argv[1]) if len(sys.argv) > 1 else 4_000
    spec = build_spec(num_requests)
    directory = Path(tempfile.mkdtemp(prefix="corona-sweep-"))

    print("Sweep study: offered load x interconnect")
    print("=" * 64)
    print(
        f"{len(GAPS)} gaps x {len(SYSTEMS)} systems = "
        f"{len(GAPS) * len(SYSTEMS)} points, {num_requests:,} requests each"
    )

    generated = []
    cache = TraceCache(on_generate=lambda key, packed: generated.append(key))
    outcome = run_sweep(spec, directory=directory, trace_cache=cache)
    print(
        f"\n{len(outcome.records)} records; {len(generated)} traces "
        f"generated for {len(outcome.points)} points (shared-workload reuse)\n"
    )

    width = max(len(record.point_id) for record in outcome.records) + 2
    header = (
        f"{'point':<{width}}{'gap':>6}{'system':>11}{'bw (TB/s)':>11}"
        f"{'latency (ns)':>14}"
    )
    print(header)
    print("-" * len(header))
    for record in outcome.records:
        result = record.result
        print(
            f"{record.point_id:<{width}}{record.axis_values['gap']:>6g}"
            f"{result.configuration:>11}"
            f"{result.achieved_bandwidth_tbps:>11.3f}"
            f"{result.average_latency_ns:>14.1f}"
        )

    by_key = {
        (record.axis_values["gap"], record.result.configuration): record.result
        for record in outcome.records
    }
    heavy = GAPS[0]
    baseline = by_key[(heavy, SYSTEMS[0])]
    corona = by_key[(heavy, SYSTEMS[-1])]
    print(
        f"\nAt the heaviest load (gap {heavy:g}): Corona sustains "
        f"{corona.achieved_bandwidth_tbps / baseline.achieved_bandwidth_tbps:.1f}x "
        f"the baseline's bandwidth at "
        f"{baseline.average_latency_ns / corona.average_latency_ns:.1f}x "
        f"lower miss latency."
    )

    # Resume: same spec + same directory = nothing re-executed.
    resumed = run_sweep(spec, directory=directory)
    status = sweep_status(directory)
    print(
        f"\nResume check: {len(resumed.skipped_point_ids)} points skipped, "
        f"{len(resumed.executed_point_ids)} executed "
        f"({len(status.completed_ids)}/{status.total} complete in the "
        f"manifest)."
    )
    assert [r.result for r in resumed.records] == [
        r.result for r in outcome.records
    ]
    for kind in ("report", "json", "csv"):
        print(f"{kind:>7}: {outcome.written[kind]}")


if __name__ == "__main__":
    main()
