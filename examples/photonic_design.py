#!/usr/bin/env python3
"""Photonic design walk-through: devices, inventory, link budget and power.

Builds the Corona photonic subsystem bottom-up the way Sections 2 and 3 of the
paper do: a 64-wavelength comb laser, ring modulators/detectors, 4-waveguide
crossbar channels, the Table 2 device inventory, the worst-case crossbar loss
budget, and the power comparison that motivates the whole design (optical vs
electrical signalling for a 10 TB/s memory system).

Run with::

    python examples/photonic_design.py
"""

from __future__ import annotations

from repro.harness.tables import format_table, table2_optical_inventory
from repro.photonics.dwdm import corona_crossbar_channel, corona_memory_link
from repro.photonics.laser import ModeLockedLaser
from repro.photonics.power_budget import PowerBudget, crossbar_worst_case_budget
from repro.power.electrical import electrical_memory_interconnect_power_w
from repro.power.optical import optical_memory_interconnect_power_w


def main() -> None:
    print("1. The light source: a mode-locked comb laser")
    laser = ModeLockedLaser()
    print(f"   {laser.num_wavelengths} wavelengths around "
          f"{laser.center_wavelength_m * 1e6:.2f} um, "
          f"{laser.total_optical_power_w * 1e3:.1f} mW optical, "
          f"{laser.electrical_power_w:.2f} W wall-plug")

    print("\n2. A crossbar channel: 4 waveguides x 64 wavelengths")
    channel = corona_crossbar_channel("xbar-ch0")
    print(f"   phit width: {channel.phit_bits} bits, "
          f"bandwidth: {channel.bandwidth_bytes_per_s / 1e9:.0f} GB/s, "
          f"cache line in {channel.serialization_time_s(64) * 1e12:.0f} ps, "
          f"rings: {channel.total_rings}")

    link = corona_memory_link("ocm-link")
    print(f"   one OCM fiber link: {link.bandwidth_bytes_per_s / 1e9:.0f} GB/s "
          f"(each controller uses a pair -> 160 GB/s)")

    print("\n3. Table 2: optical resource inventory")
    print(format_table(
        ["Photonic Subsystem", "Waveguides", "Ring Resonators"],
        table2_optical_inventory(),
    ))

    print("\n4. Worst-case crossbar link budget")
    budget = PowerBudget(
        loss_budget=crossbar_worst_case_budget(),
        detector_sensitivity_dbm=-20.0,
        laser_power_per_wavelength_dbm=0.0,
        margin_db=3.0,
    )
    print(budget.report())

    print("\n5. Why optics: memory interconnect power at 10.24 TB/s")
    electrical = electrical_memory_interconnect_power_w(10.24e12)
    optical = optical_memory_interconnect_power_w(10.24e12)
    print(f"   electrical signalling (2 mW/Gb/s):   {electrical:7.1f} W")
    print(f"   optical signalling (0.078 mW/Gb/s):  {optical:7.1f} W")
    print(f"   ratio: {electrical / optical:.0f}x")


if __name__ == "__main__":
    main()
