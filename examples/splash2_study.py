#!/usr/bin/env python3
"""SPLASH-2 study: which applications need Corona's bandwidth?

Reproduces the paper's Section 5 discussion in miniature.  It replays a
scaled-down trace of each SPLASH-2 application on all five system
configurations, classifies the applications the way the paper does
(low-bandwidth, FMM, bandwidth-hungry, bursty/latency-bound), and prints the
per-class speedups.

Run with::

    python examples/splash2_study.py [requests_per_benchmark] [benchmark ...]
"""

from __future__ import annotations

import sys

from repro import all_configurations, simulate_workload, splash2_workload
from repro.trace.splash2 import SPLASH2_ORDER, SPLASH2_PROFILES

#: The paper's qualitative grouping of the SPLASH-2 applications.
CLASSES = {
    "cache-resident (ECM is enough)": ["Barnes", "Radiosity", "Volrend", "Water-Sp"],
    "slightly above ECM (FMM)": ["FMM"],
    "bandwidth-hungry (needs OCM + crossbar)": ["Cholesky", "FFT", "Ocean", "Radix"],
    "bursty / latency-bound (OCM does most of the work)": ["LU", "Raytrace"],
}


def main() -> None:
    num_requests = int(sys.argv[1]) if len(sys.argv) > 1 else 15_000
    selected = sys.argv[2:] or SPLASH2_ORDER

    configurations = all_configurations()
    print(f"Replaying {num_requests:,} misses per benchmark "
          f"on {len(configurations)} configurations\n")

    speedups = {}
    for name in selected:
        workload = splash2_workload(name)
        profile = SPLASH2_PROFILES[name]
        results = {}
        for configuration in configurations:
            results[configuration.name] = simulate_workload(
                configuration, workload, num_requests=num_requests
            )
        baseline_time = results["LMesh/ECM"].execution_time_s
        speedups[name] = {
            config: baseline_time / result.execution_time_s
            for config, result in results.items()
        }
        print(
            f"{name:<10} demand={profile.demand_bandwidth_tbps():5.2f} TB/s  "
            + "  ".join(
                f"{config}={speedups[name][config]:4.2f}x"
                for config in ("HMesh/ECM", "HMesh/OCM", "XBar/OCM")
            )
        )

    print("\nPer-class geometric-mean speedup of Corona (XBar/OCM) over LMesh/ECM:")
    import math

    for label, members in CLASSES.items():
        chosen = [m for m in members if m in speedups]
        if not chosen:
            continue
        mean = math.exp(
            sum(math.log(speedups[m]["XBar/OCM"]) for m in chosen) / len(chosen)
        )
        print(f"  {label:<52} {mean:5.2f}x")


if __name__ == "__main__":
    main()
