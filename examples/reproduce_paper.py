#!/usr/bin/env python3
"""Reproduce the paper's full evaluation: Tables 1-4 and Figures 8-11.

Runs the complete 5-configuration x 15-workload matrix at a configurable
scale, renders every table and figure as text, and prints the Section 5
geometric-mean summary next to the paper's numbers.  This is the script behind
EXPERIMENTS.md.

Run with::

    python examples/reproduce_paper.py                 # quick scale
    python examples/reproduce_paper.py --scale full    # overnight scale
    python examples/reproduce_paper.py --requests 40000
"""

from __future__ import annotations

import argparse
import sys

from repro.harness.experiments import (
    FULL_SCALE,
    QUICK_SCALE,
    EvaluationMatrix,
    ExperimentScale,
)
from repro.harness.figures import (
    PAPER_SPEEDUP_SUMMARY,
    figure10_latency,
    figure11_power,
    figure8_speedup,
    figure9_bandwidth,
    render_figure,
    speedup_summary,
)
from repro.harness.runner import EvaluationRunner
from repro.harness.tables import render_all_tables


def parse_args(argv) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale", choices=("quick", "default", "full"), default="quick",
        help="how far to scale the paper's request counts down",
    )
    parser.add_argument(
        "--requests", type=int, default=None,
        help="override: requests per synthetic workload",
    )
    parser.add_argument(
        "--skip-splash", action="store_true", help="only run the synthetic workloads"
    )
    return parser.parse_args(argv)


def choose_scale(args: argparse.Namespace) -> ExperimentScale:
    scale = {"quick": QUICK_SCALE, "default": ExperimentScale(), "full": FULL_SCALE}[
        args.scale
    ]
    if args.requests is not None:
        scale = ExperimentScale(
            synthetic_requests=args.requests,
            splash_fraction=scale.splash_fraction,
            splash_min_requests=min(args.requests, scale.splash_min_requests),
            splash_max_requests=max(args.requests, scale.splash_min_requests),
        )
    return scale


def main(argv=None) -> None:
    args = parse_args(argv if argv is not None else sys.argv[1:])
    matrix = EvaluationMatrix(
        scale=choose_scale(args), include_splash=not args.skip_splash
    )

    print(render_all_tables())
    print()
    print(f"Running {matrix.run_count()} simulations "
          f"({len(matrix.configurations())} configurations x "
          f"{len(matrix.workloads())} workloads)...\n")

    runner = EvaluationRunner(matrix=matrix, progress=print)
    results = runner.run()
    order = matrix.workload_names()

    print()
    print(render_figure(figure8_speedup(results, workload_order=order),
                        title="Figure 8: Normalized Speedup (over LMesh/ECM)", unit="x"))
    print(render_figure(figure9_bandwidth(results, workload_order=order),
                        title="Figure 9: Achieved Bandwidth", unit=" TB/s"))
    print(render_figure(figure10_latency(results, workload_order=order),
                        title="Figure 10: Average L2 Miss Latency", unit=" ns"))
    print(render_figure(figure11_power(results, workload_order=order),
                        title="Figure 11: On-chip Network Power", unit=" W"))

    summary = speedup_summary(
        results, matrix.synthetic_names(), matrix.splash_names()
    )
    print("Section 5 geometric-mean summary (measured vs paper):")
    for key, value in summary.items():
        paper = PAPER_SPEEDUP_SUMMARY.get(key)
        reference = f"(paper: {paper:.2f})" if paper is not None else ""
        print(f"  {key:<34} {value:6.2f} {reference}")
    print(f"\nTotal simulated requests: {runner.total_simulated_requests():,}; "
          f"wall clock: {runner.total_wall_clock_seconds():.1f} s")


if __name__ == "__main__":
    main()
