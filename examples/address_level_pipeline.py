#!/usr/bin/env python3
"""Full pipeline: address stream -> cache hierarchy -> miss trace -> replay.

The main harness uses statistical miss-level workload models (fast, calibrated
to the paper).  This example demonstrates the alternative, fully mechanistic
path: generate raw per-thread address streams, filter them through the
functional L1/L2 hierarchy of ``repro.cache``, and replay the resulting
L2-miss trace on two system configurations.  A streaming workload (misses
constantly) and a cache-resident workload (almost never misses) bracket the
behaviour of the SPLASH-2 suite.

Run with::

    python examples/address_level_pipeline.py [clusters] [accesses_per_thread]
"""

from __future__ import annotations

import sys

from repro.core.config import CoronaConfig
from repro.core.configs import configuration_by_name
from repro.core.system import SystemSimulator
from repro.trace.address import resident_workload, streaming_workload


def main() -> None:
    clusters = int(sys.argv[1]) if len(sys.argv) > 1 else 16
    accesses = int(sys.argv[2]) if len(sys.argv) > 2 else 1500
    # The meshes need a square cluster count; populate only `clusters` of them.
    config = CoronaConfig(num_clusters=16 if clusters <= 16 else 64)
    clusters = min(clusters, config.num_clusters)

    for factory in (streaming_workload, resident_workload):
        workload = factory(
            accesses_per_thread=accesses,
            threads_per_cluster=4,
            num_clusters=config.num_clusters,
        )
        trace, hierarchies = workload.generate(seed=1, clusters=clusters)
        l1_rate = sum(h.l1_miss_rate() for h in hierarchies) / len(hierarchies)
        l2_rate = sum(h.l2_miss_rate() for h in hierarchies) / len(hierarchies)
        print(f"\n=== {workload.name} ===")
        print(f"accesses/thread: {accesses}, populated clusters: {clusters}")
        print(f"L1 miss rate: {l1_rate:.3f}, L2 miss rate: {l2_rate:.3f}, "
              f"misses to memory: {trace.total_requests:,}")

        if trace.total_requests == 0:
            print("(entirely cache resident -- nothing to replay)")
            continue

        for name in ("LMesh/ECM", "XBar/OCM"):
            simulator = SystemSimulator(
                configuration_by_name(name), corona_config=config, window_depth=4
            )
            result = simulator.run(trace)
            print(f"  {name:<10} exec={result.execution_time_s * 1e6:9.2f} us  "
                  f"bw={result.achieved_bandwidth_tbps:6.3f} TB/s  "
                  f"lat={result.average_latency_ns:7.1f} ns")


if __name__ == "__main__":
    main()
