#!/usr/bin/env python3
"""Synthetic traffic stress test: crossbar vs meshes under adversarial patterns.

Replays the paper's four synthetic patterns (Uniform, Hot Spot, Tornado,
Transpose) and reports, per interconnect, the achieved memory bandwidth,
average latency and network power -- the data behind Figures 8-11 for the
synthetic half of the evaluation.  It also prints the per-channel /
per-link hot spots so the structural difference between a serpentine crossbar
channel and a dimension-order mesh is visible.

Run with::

    python examples/synthetic_traffic.py [num_requests]
"""

from __future__ import annotations

import sys

from repro import configuration_by_name, synthetic_workloads
from repro.core.system import SystemSimulator

CONFIGS = ["LMesh/ECM", "HMesh/OCM", "XBar/OCM"]


def main() -> None:
    num_requests = int(sys.argv[1]) if len(sys.argv) > 1 else 20_000

    for workload in synthetic_workloads():
        trace = workload.generate(seed=1, num_requests=num_requests)
        print(f"\n=== {workload.name} ({num_requests:,} requests) ===")
        print(f"{'config':<12}{'bw (TB/s)':>12}{'latency (ns)':>14}{'power (W)':>12}")
        for name in CONFIGS:
            simulator = SystemSimulator(
                configuration_by_name(name), window_depth=workload.window
            )
            result = simulator.run(trace)
            print(
                f"{name:<12}{result.achieved_bandwidth_tbps:>12.3f}"
                f"{result.average_latency_ns:>14.1f}{result.network_power_w:>12.2f}"
            )
            if name == "XBar/OCM":
                busiest = simulator.network.busiest_channels(3)
                formatted = ", ".join(
                    f"ch{channel}={bytes_ / 1e6:.1f} MB" for channel, bytes_ in busiest
                )
                print(f"{'':<12}busiest crossbar channels: {formatted}")
            else:
                hottest = simulator.network.most_utilized_links(
                    result.execution_time_s, count=3
                )
                formatted = ", ".join(
                    f"{a}->{b}:{util * 100:.0f}%" for (a, b), util in hottest
                )
                print(f"{'':<12}hottest mesh links: {formatted}")


if __name__ == "__main__":
    main()
