#!/usr/bin/env python3
"""Quickstart: simulate one workload on Corona and on the electrical baseline.

Replays a scaled-down Uniform random traffic trace (the paper's first
synthetic benchmark) on the Corona design (optical crossbar + optically
connected memory) and on the all-electrical baseline (low-performance mesh +
electrically connected memory), then prints the headline comparison the
paper's abstract makes: performance, memory bandwidth, latency and network
power.

Run with::

    python examples/quickstart.py [num_requests]
"""

from __future__ import annotations

import sys

from repro import (
    CORONA_DEFAULT,
    configuration_by_name,
    simulate_workload,
    uniform_workload,
)


def main() -> None:
    num_requests = int(sys.argv[1]) if len(sys.argv) > 1 else 20_000

    print("Corona quickstart")
    print("=" * 60)
    summary = CORONA_DEFAULT.summary()
    print(
        f"Design point: {summary['clusters']:.0f} clusters, "
        f"{summary['cores']:.0f} cores, {summary['threads']:.0f} threads, "
        f"{summary['peak_teraflops']:.1f} Tflop/s peak"
    )
    print(
        f"Crossbar bandwidth: {summary['crossbar_bandwidth_tbps']:.2f} TB/s, "
        f"memory bandwidth: {summary['memory_bandwidth_tbps']:.2f} TB/s "
        f"({summary['bytes_per_flop']:.2f} bytes/flop)"
    )
    print()

    workload = uniform_workload()
    print(
        f"Workload: {workload.name} ({num_requests:,} L2 misses across "
        f"{workload.num_clusters * workload.threads_per_cluster} threads)"
    )
    print()

    results = {}
    for name in ("LMesh/ECM", "XBar/OCM"):
        configuration = configuration_by_name(name)
        results[name] = simulate_workload(
            configuration, workload, num_requests=num_requests
        )

    header = f"{'metric':<32}{'LMesh/ECM':>14}{'XBar/OCM':>14}"
    print(header)
    print("-" * len(header))
    baseline, corona = results["LMesh/ECM"], results["XBar/OCM"]
    rows = [
        ("execution time (us)", baseline.execution_time_s * 1e6,
         corona.execution_time_s * 1e6),
        ("achieved memory bandwidth (TB/s)", baseline.achieved_bandwidth_tbps,
         corona.achieved_bandwidth_tbps),
        ("average L2-miss latency (ns)", baseline.average_latency_ns,
         corona.average_latency_ns),
        ("on-chip network power (W)", baseline.network_power_w,
         corona.network_power_w),
    ]
    for label, baseline_value, corona_value in rows:
        print(f"{label:<32}{baseline_value:>14.2f}{corona_value:>14.2f}")
    print()
    speedup = baseline.execution_time_s / corona.execution_time_s
    print(f"Corona (XBar/OCM) speedup over LMesh/ECM: {speedup:.2f}x")


if __name__ == "__main__":
    main()
