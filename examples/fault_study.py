#!/usr/bin/env python3
"""Fault injection and harness resilience, end to end.

Part 1 replays the same workload fault-free and under a seeded
:class:`~repro.faults.FaultSpec` (detuned rings, lost arbitration tokens,
degraded links, transient DRAM timeouts) on the photonic crossbar and the
electrical mesh, printing the per-model fault counters and how far each
design degrades -- gracefully, never deadlocking.

Part 2 sweeps the token-loss rate to show fault fields are ordinary sweep
axes, and Part 3 turns on chaos injection (``CORONA_CHAOS``) so every pool
worker crashes once: the supervised pool respawns them, retries the pairs,
and still reproduces the clean results bit for bit.

Run with::

    python examples/fault_study.py [num_requests]
"""

from __future__ import annotations

import os
import sys

from repro.api import ScaleSpec, Scenario, SystemSpec, WorkloadSpec, run
from repro.faults import FaultSpec
from repro.harness.resilience import DEFAULT_POLICY
from repro.sweeps import SweepAxis, SweepSpec, run_sweep


def _scenario(num_requests: int, faults: FaultSpec | None = None) -> Scenario:
    return Scenario(
        name="fault-study",
        system=SystemSpec(configurations=("XBar/OCM", "HMesh/ECM")),
        workloads=(WorkloadSpec(name="Uniform", num_requests=num_requests),),
        scale=ScaleSpec(seed=3),
        faults=faults,
    )


def main() -> None:
    num_requests = int(sys.argv[1]) if len(sys.argv) > 1 else 2000
    faults = FaultSpec(
        seed=9,
        ring_detuning_fraction=0.002,
        token_loss_rate=0.02,
        dead_link_fraction=0.05,
        dram_timeout_rate=0.01,
    )

    print("=== Fault study: graceful degradation under hardware faults ===")
    clean = run(_scenario(num_requests), jobs=1)
    faulty = run(_scenario(num_requests, faults=faults), jobs=1)
    clean_by = {r.configuration: r for r in clean.results}
    print(f"\n{'config':<10} {'clean us':>9} {'faulty us':>10} {'slowdown':>9}"
          f" {'rings':>6} {'tokens':>7} {'links':>6} {'dram':>5}")
    for result in faulty.results:
        base = clean_by[result.configuration]
        slowdown = result.execution_time_s / base.execution_time_s
        print(
            f"{result.configuration:<10}"
            f" {base.execution_time_s * 1e6:9.2f}"
            f" {result.execution_time_s * 1e6:10.2f}"
            f" {slowdown:8.2f}x"
            f" {result.fault_wavelengths_disabled:6d}"
            f" {result.fault_tokens_lost:7d}"
            f" {result.fault_links_degraded:6d}"
            f" {result.fault_dram_timeouts:5d}"
        )

    print("\n=== Token-loss sensitivity (faults as a sweep axis) ===")
    spec = SweepSpec(
        name="token-loss",
        base=_scenario(max(num_requests // 2, 500)),
        axes=(
            SweepAxis(
                name="loss",
                path="faults.token_loss_rate",
                values=(0.0, 0.01, 0.05),
            ),
        ),
    )
    outcome = run_sweep(spec, jobs=1)
    for record in outcome.records:
        if record.result.configuration != "XBar/OCM":
            continue
        print(
            f"loss={record.axis_values['loss']:<5}"
            f" tokens lost={record.result.fault_tokens_lost:4d}"
            f" exec={record.result.execution_time_s * 1e6:9.2f} us"
        )

    print("\n=== Chaos: every worker crashes once; the pool recovers ===")
    os.environ["CORONA_CHAOS"] = "crash=1.0,attempts=1,seed=5"
    recovered = run(_scenario(num_requests), jobs=2, policy=DEFAULT_POLICY)
    del os.environ["CORONA_CHAOS"]
    identical = recovered.results == clean.results
    print(f"pairs completed after respawn+retry: {len(recovered.results)}")
    print(f"bit-identical to the clean run: {identical}")
    if not identical:
        raise SystemExit("chaos recovery diverged from the clean run")


if __name__ == "__main__":
    main()
