#!/usr/bin/env python3
"""MOESI coherence and the optical broadcast bus.

Part 1 drives the functional MOESI directory with a synthetic sharing pattern
(producer/consumer lines with growing sharer sets) and shows how many
invalidation messages the optical broadcast bus saves compared with turning
every multicast into unicasts on the crossbar -- the argument of Section 3.2.2.

Part 2 runs the *timed* coherence subsystem: a sharing-tagged Uniform trace
replayed through the full transaction engine on the Corona design (where
invalidations ride the broadcast bus) and on the all-electrical baseline
(where each sharer costs a unicast on the mesh), printing the measured
invalidation and cache-to-cache latencies side by side.

Run with::

    python examples/coherence_broadcast.py
"""

from __future__ import annotations

import random

from repro.cache.coherence import CoherenceController
from repro.coherence import CoherenceConfig, SharingProfile
from repro.core.configs import configuration_by_name
from repro.core.system import simulate_workload
from repro.network.broadcast import OpticalBroadcastBus
from repro.trace.synthetic import uniform_workload


def main() -> None:
    rng = random.Random(2008)
    directory = CoherenceController(home_cluster=0, broadcast_threshold=4)
    bus = OpticalBroadcastBus()

    num_lines = 256
    now = 0.0
    for step in range(4000):
        line = rng.randrange(num_lines) * 64
        cluster = rng.randrange(64)
        if rng.random() < 0.7:
            directory.handle_read(line, cluster)
        else:
            action = directory.handle_write(line, cluster)
            if action.broadcast_messages:
                result = bus.broadcast_invalidate(
                    src=0, sharers=len(action.invalidated_clusters), now=now
                )
                now = result.arrival_time
            else:
                now += 2e-9

    histogram = directory.sharer_histogram()
    print("Sharer-count distribution over directory entries:")
    for sharers in sorted(histogram):
        print(f"  {sharers:>3} holders: {histogram[sharers]:>5} lines")

    print(f"\nWrites processed:          {directory.write_requests}")
    print(f"Invalidations required:    {directory.invalidations_sent}")
    print(f"Broadcasts used:           {directory.broadcasts_used}")
    print(f"Unicast messages avoided:  {directory.broadcast_savings()}")
    print(f"Broadcast bus utilisation: {bus.broadcasts_sent} messages, "
          f"{bus.unicast_messages_avoided} unicasts avoided")
    losses = bus.listener_losses_db()
    print(f"Listener tap loss range:   {min(losses):.1f} .. {max(losses):.1f} dB")

    # ---------------------------------------------------------------- part 2
    print("\nTimed coherent replay (sharing fraction 0.3, 4,000 misses):")
    workload = uniform_workload(sharing=SharingProfile(fraction=0.3))
    header = (
        f"{'configuration':<12}{'miss ns':>10}{'inval ns':>10}{'c2c ns':>9}"
        f"{'bcasts':>8}{'unicasts':>10}{'writebacks':>12}"
    )
    print(header)
    print("-" * len(header))
    for name in ("LMesh/ECM", "XBar/OCM"):
        result = simulate_workload(
            configuration_by_name(name),
            workload,
            num_requests=4000,
            coherence=CoherenceConfig(),
        )
        print(
            f"{name:<12}{result.average_latency_ns:>10.1f}"
            f"{result.average_invalidation_latency_ns:>10.2f}"
            f"{result.average_cache_to_cache_latency_ns:>9.2f}"
            f"{result.invalidation_broadcasts:>8}"
            f"{result.invalidation_unicasts:>10}"
            f"{result.dirty_writebacks:>12}"
        )
    print(
        "\nOne broadcast-bus message invalidates every sharer at once; the\n"
        "electrical mesh pays per-sharer unicasts, which is why its\n"
        "invalidation latency is an order of magnitude higher."
    )


if __name__ == "__main__":
    main()
