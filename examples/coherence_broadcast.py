#!/usr/bin/env python3
"""MOESI coherence and the optical broadcast bus.

Drives the functional MOESI directory with a synthetic sharing pattern
(producer/consumer lines with growing sharer sets) and shows how many
invalidation messages the optical broadcast bus saves compared with turning
every multicast into unicasts on the crossbar -- the argument of Section 3.2.2.

Run with::

    python examples/coherence_broadcast.py
"""

from __future__ import annotations

import random

from repro.cache.coherence import CoherenceController
from repro.network.broadcast import OpticalBroadcastBus


def main() -> None:
    rng = random.Random(2008)
    directory = CoherenceController(home_cluster=0, broadcast_threshold=4)
    bus = OpticalBroadcastBus()

    num_lines = 256
    now = 0.0
    for step in range(4000):
        line = rng.randrange(num_lines) * 64
        cluster = rng.randrange(64)
        if rng.random() < 0.7:
            directory.handle_read(line, cluster)
        else:
            action = directory.handle_write(line, cluster)
            if action.broadcast_messages:
                result = bus.broadcast_invalidate(
                    src=0, sharers=len(action.invalidated_clusters), now=now
                )
                now = result.arrival_time
            else:
                now += 2e-9

    histogram = directory.sharer_histogram()
    print("Sharer-count distribution over directory entries:")
    for sharers in sorted(histogram):
        print(f"  {sharers:>3} holders: {histogram[sharers]:>5} lines")

    print(f"\nWrites processed:          {directory.write_requests}")
    print(f"Invalidations required:    {directory.invalidations_sent}")
    print(f"Broadcasts used:           {directory.broadcasts_used}")
    print(f"Unicast messages avoided:  {directory.broadcast_savings()}")
    print(f"Broadcast bus utilisation: {bus.broadcasts_sent} messages, "
          f"{bus.unicast_messages_avoided} unicasts avoided")
    losses = bus.listener_losses_db()
    print(f"Listener tap loss range:   {min(losses):.1f} .. {max(losses):.1f} dB")


if __name__ == "__main__":
    main()
