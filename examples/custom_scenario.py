#!/usr/bin/env python3
"""Scenario API: register a custom configuration and workload, then run them.

Demonstrates the three pieces of :mod:`repro.api` end to end:

1. ``@register_configuration`` adds **XBar/ECM** -- the optical crossbar
   paired with *electrically* connected memory, a design point the paper
   never evaluates (its five systems are seeded in the registry; this one
   exists nowhere in the built-in tables).  It isolates how much of
   Corona's win comes from the crossbar alone when memory bandwidth stays
   at package-pin levels.
2. ``@register_workload`` adds **Shuffle** -- the perfect-shuffle
   permutation (cluster ``b_{n-1}..b_0`` sends to ``b_{n-2}..b_0 b_{n-1}``),
   a classic butterfly-network stressor that is not among the built-in six
   synthetic patterns.
3. A :class:`~repro.api.Scenario` built as plain data runs both against two
   paper baselines through the single :func:`repro.api.run` entry point,
   streaming per-pair results as they finish.

The same scenario works from a JSON file: put these registrations in an
importable module, list it under the scenario's ``"modules"``, and
``corona-repro run scenario.json`` resolves the custom names -- in worker
processes too.

Run with::

    python examples/custom_scenario.py [num_requests]
"""

from __future__ import annotations

import random
import sys

from repro.api import (
    Scenario,
    ScaleSpec,
    SystemSpec,
    WorkloadSpec,
    register_configuration,
    register_workload,
    run,
)
from repro.core.configs import SystemConfiguration, crossbar_network, ecm_memory
from repro.trace.gaps import draw_gap
from repro.trace.record import AccessKind, TraceRecord, TraceStream


# ---------------------------------------------------------------------------
# 1. A configuration the paper never built: optical crossbar, electrical
#    memory.
# ---------------------------------------------------------------------------

@register_configuration("XBar/ECM")
def xbar_ecm() -> SystemConfiguration:
    """Optical crossbar on-stack, electrically connected memory off-stack."""
    return SystemConfiguration(
        name="XBar/ECM",
        network_name="XBar",
        memory_name="ECM",
        network_factory=crossbar_network,
        memory_factory=ecm_memory,
        network_static_power_w=26.0,
        has_broadcast_bus=True,
    )


# ---------------------------------------------------------------------------
# 2. A workload pattern outside the built-in six: the perfect shuffle.
# ---------------------------------------------------------------------------

class ShuffleWorkload:
    """Perfect-shuffle permutation traffic (butterfly-stage communication).

    Implements the small protocol the harness expects from a workload:
    ``name``, ``window``, ``is_synthetic`` and ``generate(seed,
    num_requests)``; packing to columns is handled by the harness via
    ``repro.trace.packed.as_packed``.
    """

    def __init__(
        self,
        name: str = "Shuffle",
        num_clusters: int = 64,
        threads_per_cluster: int = 16,
        mean_gap_cycles: float = 40.0,
        write_fraction: float = 0.3,
        window: int = 8,
    ) -> None:
        bits = num_clusters.bit_length() - 1
        if 1 << bits != num_clusters:
            raise ValueError(
                f"the shuffle needs a power-of-two cluster count, got "
                f"{num_clusters}"
            )
        self.name = name
        self.num_clusters = num_clusters
        self.threads_per_cluster = threads_per_cluster
        self.mean_gap_cycles = mean_gap_cycles
        self.write_fraction = write_fraction
        self.window = window
        self._bits = bits

    is_synthetic = True

    def destination(self, cluster: int) -> int:
        """Rotate the cluster id's bits left by one (the perfect shuffle)."""
        high = (cluster >> (self._bits - 1)) & 1
        return ((cluster << 1) & (self.num_clusters - 1)) | high

    def generate(self, seed: int = 1, num_requests: int = 10_000) -> TraceStream:
        rng = random.Random(seed)
        stream = TraceStream(
            name=self.name,
            num_clusters=self.num_clusters,
            threads_per_cluster=self.threads_per_cluster,
            description="perfect-shuffle permutation traffic",
        )
        total_threads = self.num_clusters * self.threads_per_cluster
        base, remainder = divmod(num_requests, total_threads)
        stagger = 8.0 * self.mean_gap_cycles
        line = 0
        for thread_id in range(total_threads):
            cluster = thread_id // self.threads_per_cluster
            home = self.destination(cluster)
            for index in range(base + (1 if thread_id < remainder else 0)):
                gap = draw_gap(rng, self.mean_gap_cycles)
                if index == 0:
                    gap += rng.uniform(0.0, stagger)
                is_write = rng.random() < self.write_fraction
                stream.add(
                    TraceRecord(
                        thread_id=thread_id,
                        cluster_id=cluster,
                        home_cluster=home,
                        kind=AccessKind.WRITE if is_write else AccessKind.READ,
                        address=(home << 26) | ((line & 0xFFFFF) << 6),
                        gap_cycles=gap,
                    )
                )
                line += 1
        return stream


register_workload("Shuffle")(ShuffleWorkload)


# ---------------------------------------------------------------------------
# 3. A scenario over the custom entries, run through the stable entry point.
# ---------------------------------------------------------------------------

def main() -> None:
    num_requests = int(sys.argv[1]) if len(sys.argv) > 1 else 4_000

    scenario = Scenario(
        name="custom-demo",
        description="XBar/ECM + Shuffle vs two paper systems",
        system=SystemSpec(
            configurations=("LMesh/ECM", "XBar/ECM", "XBar/OCM"),
        ),
        workloads=(
            WorkloadSpec(name="Uniform", num_requests=num_requests),
            WorkloadSpec(name="Shuffle", num_requests=num_requests),
        ),
        scale=ScaleSpec(tier="quick", seed=1),
    )

    print("Custom scenario demo")
    print("=" * 64)
    print(
        f"{scenario.description}; {num_requests:,} requests per workload\n"
    )
    header = (
        f"{'workload':<10}{'configuration':<13}{'exec (us)':>11}"
        f"{'bw (TB/s)':>11}{'latency (ns)':>14}"
    )
    print(header)
    print("-" * len(header))

    def stream(result) -> None:
        print(
            f"{result.workload:<10}{result.configuration:<13}"
            f"{result.execution_time_s * 1e6:>11.2f}"
            f"{result.achieved_bandwidth_tbps:>11.3f}"
            f"{result.average_latency_ns:>14.1f}"
        )

    outcome = run(scenario, on_result=stream)

    by_key = {
        (r.workload, r.configuration): r for r in outcome.results
    }
    print()
    for workload in ("Uniform", "Shuffle"):
        baseline = by_key[(workload, "LMesh/ECM")]
        xbar_only = by_key[(workload, "XBar/ECM")]
        corona = by_key[(workload, "XBar/OCM")]
        print(
            f"{workload}: crossbar alone buys "
            f"{baseline.execution_time_s / xbar_only.execution_time_s:.2f}x, "
            f"optical memory on top -> "
            f"{baseline.execution_time_s / corona.execution_time_s:.2f}x"
        )


if __name__ == "__main__":
    main()
