#!/usr/bin/env python3
"""Sensitivity study: how good do the photonic devices have to be?

The Corona architecture assumes 2017-class device quality.  This example
sweeps the three physical parameters the crossbar's link budget is most
sensitive to -- waveguide propagation loss, per-ring through loss and the
laser power needed to close the budget -- and two architectural knobs
(crossbar channel bandwidth and per-thread memory-level parallelism) whose
settings determine how much of the optical bandwidth the system can actually
use.

Run with::

    python examples/sensitivity_study.py
"""

from __future__ import annotations

from repro.harness.sensitivity import (
    channel_bandwidth_sensitivity,
    format_sweep,
    required_laser_power_sensitivity,
    ring_through_loss_sensitivity,
    waveguide_loss_sensitivity,
    window_depth_sensitivity,
)


def main() -> None:
    print(format_sweep(
        "Crossbar link-budget margin vs waveguide loss (16 cm worst-case path)",
        waveguide_loss_sensitivity(),
        parameter_label="dB/cm",
        metric_label="margin (dB)",
    ))
    print("\nDemonstrated waveguides (2-3 dB/cm) do not close the budget; the\n"
          "architecture needs roughly 10x lower propagation loss.\n")

    print(format_sweep(
        "Crossbar link-budget margin vs per-ring through loss (4096 ring passes)",
        ring_through_loss_sensitivity(),
        parameter_label="dB/ring",
        metric_label="margin (dB)",
    ))
    print()

    print(format_sweep(
        "Laser wall-plug power for the crossbar vs waveguide loss",
        required_laser_power_sensitivity(),
        parameter_label="dB/cm",
        metric_label="laser power (W)",
    ))
    print()

    print(format_sweep(
        "Achieved bandwidth (Uniform) vs crossbar channel bandwidth",
        channel_bandwidth_sensitivity(num_requests=6000),
        parameter_label="bytes/s per channel",
        metric_label="achieved (bytes/s)",
    ))
    print()

    print(format_sweep(
        "Achieved bandwidth (Uniform, XBar/OCM) vs per-thread miss window",
        window_depth_sensitivity(num_requests=6000),
        parameter_label="window (misses)",
        metric_label="achieved (bytes/s)",
    ))


if __name__ == "__main__":
    main()
