#!/usr/bin/env python3
"""Optically connected memory: daisy-chain expansion and hot-spot behaviour.

Two small studies of the OCM design from Section 3.3 of the paper:

1. **Expansion**: add OCM modules to one controller's fiber loop and show that
   access latency stays nearly flat (the light passes through each module
   without retiming), unlike a store-and-forward electrical chain.
2. **Hot spot**: drive a single controller at increasing request rates on the
   OCM and ECM channels and show where each saturates -- the effect behind the
   paper's Hot Spot synthetic benchmark.

Run with::

    python examples/ocm_scaling.py
"""

from __future__ import annotations

from repro.memory.channel import ElectricalMemoryChannel, OpticalMemoryChannel
from repro.memory.controller import MemoryController
from repro.memory.dram import OcmModule


def expansion_study() -> None:
    print("1. Daisy-chain expansion: latency vs modules on the loop")
    print(f"{'modules':>8}{'capacity (modules)':>20}{'avg read latency (ns)':>24}")
    for module_count in (1, 2, 4, 8):
        controller = MemoryController(
            controller_id=0,
            channel=OpticalMemoryChannel(f"loop-{module_count}"),
            modules=[OcmModule(module_id=m) for m in range(module_count)],
        )
        # One read per module region, spaced far apart so there is no queueing.
        latencies = []
        for i in range(64):
            address = i * 64 * 256  # spread across modules and banks
            result = controller.access(
                now=i * 1e-6, size_bytes=64, is_write=False, address=address
            )
            latencies.append(result.memory_latency)
        average = sum(latencies) / len(latencies)
        print(f"{module_count:>8}{module_count:>20}{average * 1e9:>24.2f}")


def hot_spot_study() -> None:
    print("\n2. Single-controller saturation: OCM vs ECM channel")
    print(f"{'requests':>10}{'OCM achieved (GB/s)':>22}{'ECM achieved (GB/s)':>22}")
    for count in (500, 2000, 8000):
        achieved = {}
        for label, channel_factory in (
            ("OCM", OpticalMemoryChannel),
            ("ECM", ElectricalMemoryChannel),
        ):
            controller = MemoryController(
                controller_id=0, channel=channel_factory(f"{label}-hot")
            )
            finish = 0.0
            for i in range(count):
                result = controller.access(
                    now=0.0, size_bytes=64, is_write=False, address=i * 64
                )
                finish = max(finish, result.completion_time)
            achieved[label] = controller.bytes_transferred / finish / 1e9
        print(f"{count:>10}{achieved['OCM']:>22.1f}{achieved['ECM']:>22.1f}")
    print("\nThe OCM channel sustains roughly an order of magnitude more "
          "bandwidth per controller, which is the paper's Table 4 in action.")


def main() -> None:
    expansion_study()
    hot_spot_study()


if __name__ == "__main__":
    main()
