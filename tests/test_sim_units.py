"""Tests for repro.sim.units."""


import pytest

from repro.sim import units


class TestConversions:
    def test_bytes_to_bits(self):
        assert units.bytes_to_bits(64) == 512

    def test_bits_to_bytes(self):
        assert units.bits_to_bytes(512) == 64

    def test_bits_bytes_roundtrip(self):
        assert units.bits_to_bytes(units.bytes_to_bits(123.5)) == pytest.approx(123.5)

    def test_cycles_to_seconds_at_5ghz(self):
        assert units.cycles_to_seconds(5, 5e9) == pytest.approx(1e-9)

    def test_seconds_to_cycles_at_5ghz(self):
        assert units.seconds_to_cycles(1e-9, 5e9) == pytest.approx(5.0)

    def test_cycles_roundtrip(self):
        seconds = units.cycles_to_seconds(17, 3.3e9)
        assert units.seconds_to_cycles(seconds, 3.3e9) == pytest.approx(17.0)

    def test_cycles_to_seconds_rejects_nonpositive_frequency(self):
        with pytest.raises(ValueError):
            units.cycles_to_seconds(1, 0.0)

    def test_seconds_to_cycles_rejects_nonpositive_frequency(self):
        with pytest.raises(ValueError):
            units.seconds_to_cycles(1, -1.0)

    def test_transfer_time(self):
        assert units.transfer_time(64, 320e9) == pytest.approx(0.2e-9)

    def test_transfer_time_rejects_bad_bandwidth(self):
        with pytest.raises(ValueError):
            units.transfer_time(64, 0.0)

    def test_transfer_time_rejects_negative_bytes(self):
        with pytest.raises(ValueError):
            units.transfer_time(-1, 1e9)


class TestTime:
    def test_from_ns(self):
        assert units.Time.from_ns(20).seconds == pytest.approx(20e-9)

    def test_ns_property(self):
        assert units.Time(5e-9).ns == pytest.approx(5.0)

    def test_from_cycles(self):
        assert units.Time.from_cycles(5, 5e9).ns == pytest.approx(1.0)

    def test_cycles_method(self):
        assert units.Time(2e-9).cycles(5e9) == pytest.approx(10.0)

    def test_addition_and_subtraction(self):
        total = units.Time(1e-9) + units.Time(2e-9)
        assert total.seconds == pytest.approx(3e-9)
        assert (total - units.Time(1e-9)).seconds == pytest.approx(2e-9)

    def test_ordering(self):
        assert units.Time(1e-9) < units.Time(2e-9)
        assert units.Time(1e-9) <= units.Time(1e-9)


class TestFrequency:
    def test_from_ghz(self):
        assert units.Frequency.from_ghz(5).hertz == pytest.approx(5e9)

    def test_period_of_5ghz_clock(self):
        assert units.Frequency.from_ghz(5).period.seconds == pytest.approx(0.2e-9)

    def test_period_rejects_zero_frequency(self):
        with pytest.raises(ValueError):
            _ = units.Frequency(0.0).period

    def test_cycles(self):
        assert units.Frequency.from_ghz(5).cycles(1e-9) == pytest.approx(5.0)


class TestBandwidth:
    def test_from_tbps(self):
        assert units.Bandwidth.from_tbps(20).bytes_per_second == pytest.approx(20e12)

    def test_gbps_accessor(self):
        assert units.Bandwidth.from_gbps(160).gbps == pytest.approx(160.0)

    def test_gbit_per_s(self):
        bandwidth = units.Bandwidth.from_gbit_per_s(10)
        assert bandwidth.bytes_per_second == pytest.approx(1.25e9)
        assert bandwidth.gbit_per_s == pytest.approx(10.0)

    def test_transfer_time_for_cache_line_on_crossbar_channel(self):
        # 64 bytes over a 320 GB/s channel is one 5 GHz clock (0.2 ns).
        channel = units.Bandwidth.from_gbps(320)
        assert channel.transfer_time(64) == pytest.approx(0.2e-9)

    def test_scaling(self):
        doubled = 2 * units.Bandwidth.from_gbps(160)
        assert doubled.gbps == pytest.approx(320.0)


class TestPaperConstants:
    def test_cache_line_size(self):
        assert units.CACHE_LINE_BYTES == 64

    def test_time_constant_ordering(self):
        assert units.PS < units.NS < units.US < units.MS < units.SECOND

    def test_data_size_constants(self):
        assert units.KB == 1024
        assert units.MB == 1024 ** 2
        assert units.GB == 1024 ** 3
