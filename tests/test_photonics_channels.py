"""Tests for DWDM channels, loss/power budgets and the Table 2 inventory."""

import pytest

from repro.photonics.dwdm import (
    DwdmChannel,
    WavelengthComb,
    corona_crossbar_channel,
    corona_memory_link,
)
from repro.photonics.inventory import corona_inventory
from repro.photonics.power_budget import (
    LossBudget,
    LossElement,
    PowerBudget,
    crossbar_worst_case_budget,
)
from repro.photonics.waveguide import WaveguideBundle


class TestWavelengthComb:
    def test_total_bandwidth(self):
        comb = WavelengthComb(num_wavelengths=64, spacing_hz=80e9)
        assert comb.total_bandwidth_hz == pytest.approx(64 * 80e9)

    def test_indices(self):
        assert list(WavelengthComb(num_wavelengths=4).indices()) == [0, 1, 2, 3]

    def test_rejects_zero_wavelengths(self):
        with pytest.raises(ValueError):
            WavelengthComb(num_wavelengths=0)


class TestDwdmChannel:
    def test_corona_crossbar_channel_bandwidth(self):
        channel = corona_crossbar_channel("ch0")
        # 256 wavelengths at 10 Gb/s = 2.56 Tb/s = 320 GB/s.
        assert channel.bandwidth_bytes_per_s == pytest.approx(320e9)
        assert channel.phit_bits == 256

    def test_cache_line_serialization_is_one_clock(self):
        channel = corona_crossbar_channel("ch0")
        assert channel.serialization_time_s(64) == pytest.approx(0.2e-9)

    def test_memory_link_bandwidth(self):
        link = corona_memory_link("mem0")
        # 64 wavelengths at 10 Gb/s = 80 GB/s per link; a controller uses two.
        assert link.bandwidth_bytes_per_s == pytest.approx(80e9)

    def test_ring_counts_match_width(self):
        channel = corona_crossbar_channel("ch0")
        assert channel.total_rings == 2 * 256

    def test_transfer_latency_includes_propagation(self):
        channel = corona_crossbar_channel("ch0", length_m=0.08)
        latency = channel.transfer_latency_s(64)
        assert latency > channel.serialization_time_s(64)

    def test_transfer_energy_positive_and_linear(self):
        channel = corona_crossbar_channel("ch0")
        assert channel.transfer_energy_j(128) == pytest.approx(
            2 * channel.transfer_energy_j(64)
        )

    def test_mismatched_ring_count_rejected(self):
        bundle = WaveguideBundle.uniform("b", count=1, length_m=0.01)
        from repro.photonics.ring import Modulator

        with pytest.raises(ValueError):
            DwdmChannel(
                name="bad",
                bundle=bundle,
                modulators=[Modulator(wavelength_index=0)],
            )

    def test_serialization_rejects_negative_size(self):
        with pytest.raises(ValueError):
            corona_crossbar_channel("ch0").serialization_time_s(-1)


class TestLossBudget:
    def test_total_is_sum_of_elements(self):
        budget = LossBudget("path")
        budget.add("a", 1.0).add("b", 0.5, count=4)
        assert budget.total_db == pytest.approx(3.0)

    def test_transmitted_fraction(self):
        budget = LossBudget("path")
        budget.add("a", 10.0)
        assert budget.transmitted_fraction == pytest.approx(0.1)

    def test_element_rejects_negative_loss(self):
        with pytest.raises(ValueError):
            LossElement("x", loss_db=-1.0)

    def test_report_mentions_every_element(self):
        budget = LossBudget("path").add("coupler", 1.0).add("splitter", 3.0)
        report = budget.report()
        assert "coupler" in report and "splitter" in report and "TOTAL" in report


class TestPowerBudget:
    def test_budget_closes_with_enough_laser_power(self):
        budget = PowerBudget(
            loss_budget=LossBudget("p").add("path", 10.0),
            detector_sensitivity_dbm=-20.0,
            laser_power_per_wavelength_dbm=0.0,
            margin_db=3.0,
        )
        assert budget.closes
        assert budget.margin_achieved_db == pytest.approx(10.0)

    def test_budget_fails_with_too_much_loss(self):
        budget = PowerBudget(
            loss_budget=LossBudget("p").add("path", 25.0),
            detector_sensitivity_dbm=-20.0,
            laser_power_per_wavelength_dbm=0.0,
        )
        assert not budget.closes

    def test_required_laser_power(self):
        budget = PowerBudget(
            loss_budget=LossBudget("p").add("path", 10.0),
            detector_sensitivity_dbm=-20.0,
            margin_db=3.0,
        )
        assert budget.required_laser_power_dbm == pytest.approx(-7.0)

    def test_dbm_watt_roundtrip(self):
        assert PowerBudget.watts_to_dbm(
            PowerBudget.dbm_to_watts(3.2)
        ) == pytest.approx(3.2)

    def test_crossbar_worst_case_budget_closes_with_projected_devices(self):
        budget = PowerBudget(
            loss_budget=crossbar_worst_case_budget(),
            detector_sensitivity_dbm=-20.0,
            laser_power_per_wavelength_dbm=0.0,
        )
        assert budget.closes

    def test_report_states_closure(self):
        budget = PowerBudget(loss_budget=LossBudget("p").add("x", 1.0))
        assert "CLOSES" in budget.report()


class TestInventory:
    def test_table2_totals(self):
        inventory = corona_inventory()
        assert inventory.total_waveguides == 388
        assert inventory.total_ring_resonators == pytest.approx(1_081_408)

    def test_table2_crossbar_row(self):
        by_name = corona_inventory().by_name()
        assert by_name["Crossbar"].waveguides == 256
        assert by_name["Crossbar"].ring_resonators == 1024 * 1024

    def test_table2_memory_row(self):
        by_name = corona_inventory().by_name()
        assert by_name["Memory"].waveguides == 128
        assert by_name["Memory"].ring_resonators == 16 * 1024

    def test_table2_broadcast_and_arbitration_rows(self):
        by_name = corona_inventory().by_name()
        assert by_name["Broadcast"].ring_resonators == 8 * 1024
        assert by_name["Arbitration"].ring_resonators == 8 * 1024
        assert by_name["Arbitration"].waveguides == 2

    def test_table2_clock_row(self):
        by_name = corona_inventory().by_name()
        assert by_name["Clock"].waveguides == 1
        assert by_name["Clock"].ring_resonators == 64

    def test_inventory_scales_with_cluster_count(self):
        small = corona_inventory(clusters=16)
        assert small.by_name()["Crossbar"].ring_resonators == 16 * 16 * 256

    def test_as_rows_ends_with_total(self):
        rows = corona_inventory().as_rows()
        assert rows[-1][0] == "Total"

    def test_report_is_renderable(self):
        report = corona_inventory().report()
        assert "Crossbar" in report and "Total" in report

    def test_rejects_zero_clusters(self):
        with pytest.raises(ValueError):
            corona_inventory(clusters=0)
