"""Tests for statistics accumulators."""

import math

import pytest

from repro.sim.stats import (
    Counter,
    Histogram,
    RunningStats,
    StatGroup,
    TimeWeightedAverage,
    geometric_mean,
)


class TestCounter:
    def test_starts_at_zero(self):
        assert Counter("x").value == 0.0

    def test_add(self):
        counter = Counter("x")
        counter.add()
        counter.add(2.5)
        assert counter.value == pytest.approx(3.5)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("x").add(-1)

    def test_reset(self):
        counter = Counter("x")
        counter.add(5)
        counter.reset()
        assert counter.value == 0.0


class TestRunningStats:
    def test_mean_and_std(self):
        stats = RunningStats()
        stats.extend([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
        assert stats.mean == pytest.approx(5.0)
        assert stats.stddev == pytest.approx(2.138, rel=1e-3)

    def test_min_max_total(self):
        stats = RunningStats()
        stats.extend([3.0, 1.0, 2.0])
        assert stats.minimum == 1.0
        assert stats.maximum == 3.0
        assert stats.total == pytest.approx(6.0)

    def test_empty_stats(self):
        stats = RunningStats()
        assert stats.mean == 0.0
        assert stats.variance == 0.0

    def test_single_value_has_zero_variance(self):
        stats = RunningStats()
        stats.add(5.0)
        assert stats.variance == 0.0

    def test_merge_matches_single_pass(self):
        values = [float(i) for i in range(100)]
        left, right, combined = RunningStats(), RunningStats(), RunningStats()
        left.extend(values[:37])
        right.extend(values[37:])
        combined.extend(values)
        left.merge(right)
        assert left.count == combined.count
        assert left.mean == pytest.approx(combined.mean)
        assert left.variance == pytest.approx(combined.variance)
        assert left.minimum == combined.minimum
        assert left.maximum == combined.maximum

    def test_merge_into_empty(self):
        empty, filled = RunningStats(), RunningStats()
        filled.extend([1.0, 2.0, 3.0])
        empty.merge(filled)
        assert empty.mean == pytest.approx(2.0)

    def test_merge_with_empty_is_noop(self):
        filled, empty = RunningStats(), RunningStats()
        filled.extend([1.0, 2.0])
        filled.merge(empty)
        assert filled.count == 2


class TestHistogram:
    def test_binning(self):
        hist = Histogram("lat", lower=0.0, upper=10.0, bins=10)
        for value in [0.5, 1.5, 1.6, 9.9]:
            hist.add(value)
        assert hist.counts[0] == 1
        assert hist.counts[1] == 2
        assert hist.counts[9] == 1

    def test_overflow_underflow(self):
        hist = Histogram("lat", lower=0.0, upper=10.0, bins=5)
        hist.add(-1.0)
        hist.add(100.0)
        assert hist.underflow == 1
        assert hist.overflow == 1
        assert hist.samples == 2

    def test_percentile(self):
        hist = Histogram("lat", lower=0.0, upper=100.0, bins=100)
        for value in range(100):
            hist.add(value + 0.5)
        assert hist.percentile(0.5) == pytest.approx(49.5, abs=1.0)
        assert hist.percentile(0.99) == pytest.approx(98.5, abs=1.0)

    def test_percentile_empty(self):
        hist = Histogram("lat", lower=0.0, upper=10.0)
        assert hist.percentile(0.5) == 0.0

    def test_percentile_rejects_bad_fraction(self):
        hist = Histogram("lat", lower=0.0, upper=10.0)
        with pytest.raises(ValueError):
            hist.percentile(0.0)

    def test_bin_edges(self):
        hist = Histogram("lat", lower=0.0, upper=4.0, bins=4)
        assert hist.bin_edges()[0] == (0.0, 1.0)
        assert hist.bin_edges()[-1] == (3.0, 4.0)

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            Histogram("x", lower=1.0, upper=1.0)


class TestHistogramAutoExpand:
    def test_expands_instead_of_overflowing(self):
        hist = Histogram("lat", lower=0.0, upper=10.0, bins=10, auto_expand=True)
        hist.add(35.0)
        assert hist.overflow == 0
        assert hist.upper == 40.0
        assert hist.bins == 10
        assert sum(hist.counts) == 1

    def test_expansion_rebins_existing_samples(self):
        hist = Histogram("lat", lower=0.0, upper=10.0, bins=10, auto_expand=True)
        for value in (0.5, 1.5, 9.5):
            hist.add(value)
        hist.add(15.0)  # doubles the range to [0, 20)
        assert hist.upper == 20.0
        # Old bins 0 and 1 merge into new bin 0; old bin 9 into new bin 4.
        assert hist.counts[0] == 2
        assert hist.counts[4] == 1
        assert hist.counts[7] == 1  # the 15.0 sample
        assert sum(hist.counts) == 4

    def test_expansion_is_order_independent(self):
        forward = Histogram("a", lower=0.0, upper=8.0, bins=8, auto_expand=True)
        backward = Histogram("b", lower=0.0, upper=8.0, bins=8, auto_expand=True)
        values = [0.5, 3.0, 7.5, 20.0, 60.0, 11.0]
        for value in values:
            forward.add(value)
        for value in reversed(values):
            backward.add(value)
        assert forward.counts == backward.counts
        assert forward.upper == backward.upper

    def test_percentile_not_clamped_at_initial_upper(self):
        """Regression: slow tails must not report a truncated p99."""
        hist = Histogram(
            "latency-ns", lower=0.0, upper=2000.0, bins=200, auto_expand=True
        )
        for _ in range(99):
            hist.add(100.0)
        for _ in range(5):
            hist.add(7500.0)  # tail far beyond the initial 2000 ns bound
        p99 = hist.percentile(0.99)
        assert p99 > 2000.0
        assert p99 == pytest.approx(7500.0, rel=0.02)

    def test_default_histogram_still_clamps(self):
        hist = Histogram("lat", lower=0.0, upper=10.0, bins=5)
        hist.add(100.0)
        assert hist.overflow == 1
        assert hist.upper == 10.0


class TestTimeWeightedAverage:
    def test_constant_signal(self):
        signal = TimeWeightedAverage()
        signal.update(0.0, 5.0)
        signal.finalize(10.0)
        assert signal.average == pytest.approx(5.0)

    def test_step_signal(self):
        signal = TimeWeightedAverage()
        signal.update(0.0, 0.0)
        signal.update(5.0, 10.0)
        signal.finalize(10.0)
        assert signal.average == pytest.approx(5.0)

    def test_rejects_time_going_backwards(self):
        signal = TimeWeightedAverage()
        signal.update(5.0, 1.0)
        with pytest.raises(ValueError):
            signal.update(4.0, 2.0)


class TestStatGroup:
    def test_counters_created_on_demand(self):
        group = StatGroup("net")
        group.counter("messages").add(3)
        assert group.counters["messages"].value == 3

    def test_report_contains_all_statistics(self):
        group = StatGroup("net")
        group.counter("messages").add(2)
        group.distribution("latency").extend([1.0, 2.0])
        group.histogram("lat", 0, 10).add(5.0)
        report = group.report()
        assert "messages" in report
        assert "latency" in report
        assert "net" in report


class TestGeometricMean:
    def test_known_value(self):
        assert geometric_mean([1.0, 8.0]) == pytest.approx(math.sqrt(8.0))

    def test_identity(self):
        assert geometric_mean([3.0, 3.0, 3.0]) == pytest.approx(3.0)

    def test_paper_style_speedups(self):
        # Geometric mean is what the paper uses for its 3.28x claim.
        assert geometric_mean([2.0, 4.0]) == pytest.approx(2.828, rel=1e-3)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])
