"""End-to-end smoke tests for the runnable examples.

Each example is executed as a real subprocess (fresh interpreter, the same
``PYTHONPATH=src`` entry point a user types), so import errors, stale APIs
and crashing demos fail the suite rather than the next reader.  Request
counts are passed/kept small so both scripts finish in seconds.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path


REPO_ROOT = Path(__file__).resolve().parent.parent
EXAMPLES = REPO_ROOT / "examples"


def _run_example(script: str, *args: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=300,
        env=env,
    )


class TestExampleSmoke:
    def test_quickstart_runs_end_to_end(self):
        result = _run_example("quickstart.py", "2000")
        assert result.returncode == 0, result.stderr
        assert "Corona quickstart" in result.stdout
        assert "speedup over LMesh/ECM" in result.stdout

    def test_custom_scenario_runs_end_to_end(self):
        result = _run_example("custom_scenario.py", "1500")
        assert result.returncode == 0, result.stderr
        # The user-registered configuration and workload (absent from the
        # built-in tables) must both appear in the streamed results.
        assert "XBar/ECM" in result.stdout
        assert "Shuffle" in result.stdout
        assert "crossbar alone buys" in result.stdout

    def test_sweep_study_runs_end_to_end(self):
        result = _run_example("sweep_study.py", "1500")
        assert result.returncode == 0, result.stderr
        assert "Sweep study" in result.stdout
        # Trace reuse across points sharing a workload (4 gaps, 12 points).
        assert "4 traces generated for 12 points" in result.stdout
        # Resume skipped everything on the second run.
        assert "12 points skipped, 0 executed" in result.stdout
        assert "12/12 complete" in result.stdout

    def test_fault_study_runs_end_to_end(self):
        result = _run_example("fault_study.py", "1200")
        assert result.returncode == 0, result.stderr
        assert "Fault study" in result.stdout
        # The chaos part self-checks: it exits non-zero unless the crashed
        # and retried pool run reproduced the clean results exactly.
        assert "bit-identical to the clean run: True" in result.stdout

    def test_coherence_broadcast_runs_end_to_end(self):
        result = _run_example("coherence_broadcast.py")
        assert result.returncode == 0, result.stderr
        assert "Sharer-count distribution" in result.stdout
        assert "Broadcasts used" in result.stdout
        # The timed replay comparison added with the coherence subsystem.
        assert "Timed coherent replay" in result.stdout
        assert "XBar/OCM" in result.stdout and "LMesh/ECM" in result.stdout
