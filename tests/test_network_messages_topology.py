"""Tests for network messages, topology helpers, links and routers."""

import pytest

from repro.network.link import Link
from repro.network.message import (
    CACHE_LINE_BYTES,
    Message,
    MessageType,
    message_size_bytes,
)
from repro.network.router import MeshRouter
from repro.network.topology import MeshCoordinates, TransferResult


class TestMessage:
    def test_default_sizes(self):
        assert message_size_bytes(MessageType.READ_REQUEST) == 16
        assert message_size_bytes(MessageType.READ_RESPONSE) == CACHE_LINE_BYTES + 8
        assert message_size_bytes(MessageType.WRITEBACK) == CACHE_LINE_BYTES + 8
        assert message_size_bytes(MessageType.WRITE_ACK) == 16

    def test_message_defaults_size_from_type(self):
        message = Message(src=0, dst=1, message_type=MessageType.READ_RESPONSE)
        assert message.size_bytes == 72
        assert message.carries_data

    def test_control_message_does_not_carry_data(self):
        message = Message(src=0, dst=1, message_type=MessageType.READ_REQUEST)
        assert not message.carries_data

    def test_is_local(self):
        assert Message(src=3, dst=3, message_type=MessageType.READ_REQUEST).is_local
        assert not Message(src=3, dst=4, message_type=MessageType.READ_REQUEST).is_local

    def test_flit_count(self):
        message = Message(src=0, dst=1, message_type=MessageType.READ_RESPONSE)
        assert message.flit_count(16) == 5  # 72 bytes -> 5 x 16-byte flits

    def test_flit_count_rejects_bad_flit_size(self):
        message = Message(src=0, dst=1, message_type=MessageType.READ_REQUEST)
        with pytest.raises(ValueError):
            message.flit_count(0)

    def test_message_ids_unique(self):
        a = Message(src=0, dst=1, message_type=MessageType.READ_REQUEST)
        b = Message(src=0, dst=1, message_type=MessageType.READ_REQUEST)
        assert a.message_id != b.message_id

    def test_rejects_negative_endpoints(self):
        with pytest.raises(ValueError):
            Message(src=-1, dst=0, message_type=MessageType.READ_REQUEST)


class TestTransferResult:
    def test_network_latency_is_sum_of_components(self):
        result = TransferResult(
            arrival_time=10.0,
            queueing_delay=1.0,
            serialization_delay=2.0,
            propagation_delay=3.0,
            hops=4,
            dynamic_energy_j=0.0,
        )
        assert result.network_latency == pytest.approx(6.0)


class TestMeshCoordinates:
    def test_square_construction(self):
        mesh = MeshCoordinates.square(64)
        assert mesh.radix_x == 8 and mesh.radix_y == 8
        assert mesh.num_nodes == 64

    def test_square_rejects_non_square(self):
        with pytest.raises(ValueError):
            MeshCoordinates.square(60)

    def test_position_roundtrip(self):
        mesh = MeshCoordinates.square(64)
        for cluster in range(64):
            x, y = mesh.position(cluster)
            assert mesh.cluster_at(x, y) == cluster

    def test_hop_distance_is_manhattan(self):
        mesh = MeshCoordinates.square(64)
        assert mesh.hop_distance(0, 63) == 14
        assert mesh.hop_distance(0, 7) == 7
        assert mesh.hop_distance(9, 9) == 0

    def test_dimension_order_route_x_then_y(self):
        mesh = MeshCoordinates.square(16)  # 4x4
        route = mesh.dimension_order_route(0, 15)
        assert len(route) == 6
        # X first: 0 -> 1 -> 2 -> 3, then Y: 3 -> 7 -> 11 -> 15.
        assert route[:3] == [(0, 1), (1, 2), (2, 3)]
        assert route[3:] == [(3, 7), (7, 11), (11, 15)]

    def test_route_for_same_node_is_empty(self):
        mesh = MeshCoordinates.square(16)
        assert mesh.dimension_order_route(5, 5) == []

    def test_route_length_matches_hop_distance(self):
        mesh = MeshCoordinates.square(64)
        for src, dst in [(0, 63), (17, 42), (8, 1), (63, 0)]:
            assert len(mesh.dimension_order_route(src, dst)) == mesh.hop_distance(
                src, dst
            )

    def test_all_links_count(self):
        mesh = MeshCoordinates.square(64)
        # 2 * 2 * radix * (radix - 1) directed links for an 8x8 mesh.
        assert len(mesh.all_links()) == 2 * 2 * 8 * 7

    def test_bisection_link_count(self):
        assert MeshCoordinates.square(64).bisection_link_count() == 16

    def test_average_hops_for_8x8(self):
        # Mean Manhattan distance for an 8x8 mesh is 16/3 ~ 5.33 excluding
        # self-pairs.
        assert MeshCoordinates.square(64).average_hops() == pytest.approx(5.42, abs=0.15)

    def test_position_out_of_range(self):
        with pytest.raises(ValueError):
            MeshCoordinates.square(16).position(16)


class TestLink:
    def test_serialization_time(self):
        link = Link(src=0, dst=1, bandwidth_bytes_per_s=80e9, latency_s=1e-9)
        assert link.serialization_time(80) == pytest.approx(1e-9)

    def test_reserve_returns_start_and_finish(self):
        link = Link(src=0, dst=1, bandwidth_bytes_per_s=80e9, latency_s=1e-9)
        start, finish = link.reserve(0.0, 80)
        assert start == 0.0
        assert finish == pytest.approx(1e-9)

    def test_contention_delays_start(self):
        link = Link(src=0, dst=1, bandwidth_bytes_per_s=80e9, latency_s=1e-9)
        link.reserve(0.0, 800)
        start, _ = link.reserve(0.0, 80)
        assert start == pytest.approx(10e-9)

    def test_utilization(self):
        link = Link(src=0, dst=1, bandwidth_bytes_per_s=80e9, latency_s=1e-9)
        link.reserve(0.0, 800)
        assert link.utilization(20e-9) == pytest.approx(0.5)

    def test_rejects_bad_bandwidth(self):
        with pytest.raises(ValueError):
            Link(src=0, dst=1, bandwidth_bytes_per_s=0.0, latency_s=1e-9)


class TestMeshRouter:
    def test_flit_count(self):
        router = MeshRouter(node_id=0, flit_bytes=16)
        assert router.flit_count(72) == 5
        assert router.flit_count(16) == 1

    def test_traversal_energy_is_per_hop_constant(self):
        router = MeshRouter(node_id=0)
        assert router.traversal_energy(72) == pytest.approx(196e-12)
        assert router.traversal_energy(16) == pytest.approx(196e-12)

    def test_admit_counts_messages(self):
        router = MeshRouter(node_id=0)
        router.admit("east", now=0.0, size_bytes=72, drain_time=1e-9)
        assert router.messages_routed == 1
        assert router.flits_routed == 5

    def test_admit_unknown_port(self):
        with pytest.raises(ValueError):
            MeshRouter(node_id=0).admit("up", 0.0, 64, 1e-9)

    def test_reset(self):
        router = MeshRouter(node_id=0)
        router.admit("east", now=0.0, size_bytes=72, drain_time=1e-9)
        router.reset()
        assert router.messages_routed == 0
