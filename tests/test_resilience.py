"""Tests for the resilient execution harness: retry policies and failure
records, the chaos injection hooks, crash/hang/error recovery in the
supervised worker pool (bit-identical retried results), the serial retry
path, sweep failure checkpoints with retry-only resume, `sweep status`
resilience counters, the failure CSV sink, and the CLI exit codes."""

from __future__ import annotations

import dataclasses
import json
from dataclasses import replace

import pytest

from repro.api import ScaleSpec, Scenario, SystemSpec, WorkloadSpec, run
from repro.cli import EXIT_FAILURES, main
from repro.faults.chaos import ChaosSpec, active_chaos
from repro.harness.resilience import (
    DEFAULT_POLICY,
    FAILURE_CSV_COLUMNS,
    PairFailure,
    PairFailureError,
    RetryPolicy,
    summarize_failures,
)
from repro.sweeps import SweepAxis, SweepSpec, run_sweep, sweep_status

#: Retries without wall-clock cost, failing the run on exhausted pairs.
FAST_STRICT = RetryPolicy(max_retries=1, backoff_s=0.0, retry_errors=True)
#: The same, but recording failures instead of aborting.
FAST_LENIENT = replace(FAST_STRICT, allow_failures=True)


def _scenario(num_requests: int = 400, seed: int = 2) -> Scenario:
    return Scenario(
        name="resilient",
        system=SystemSpec(configurations=("LMesh/ECM", "XBar/OCM")),
        workloads=(WorkloadSpec(name="Uniform", num_requests=num_requests),),
        scale=ScaleSpec(seed=seed),
    )


def _sweep_spec(num_requests: int = 400) -> SweepSpec:
    return SweepSpec(
        name="chaos-grid",
        base=Scenario(
            system=SystemSpec(configurations=("LMesh/ECM",)),
            workloads=(
                WorkloadSpec(name="Uniform", num_requests=num_requests),
            ),
            scale=ScaleSpec(seed=1),
        ),
        axes=(
            SweepAxis(
                name="gap",
                path="workloads[0].params.mean_gap_cycles",
                values=(20.0, 40.0, 80.0, 160.0),
            ),
        ),
    )


@pytest.fixture(scope="module")
def clean_run():
    return run(_scenario(), jobs=1)


class TestRetryPolicy:
    def test_defaults_recover_but_abort_on_exhaustion(self):
        assert DEFAULT_POLICY.max_retries == 2
        assert DEFAULT_POLICY.timeout_s is None
        assert not DEFAULT_POLICY.allow_failures

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(timeout_s=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_s=-0.1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)

    def test_backoff_grows_exponentially(self):
        policy = RetryPolicy(backoff_s=0.5, backoff_factor=2.0)
        assert policy.retry_delay_s(1) == 0.5
        assert policy.retry_delay_s(2) == 1.0
        assert policy.retry_delay_s(3) == 2.0

    def test_retries_by_kind(self):
        policy = RetryPolicy(max_retries=3)
        assert policy.retries_for("crash") == 3
        assert policy.retries_for("timeout") == 3
        assert policy.retries_for("error") == 0  # deterministic by default
        assert policy.retries_for("setup") == 0  # never heals
        assert replace(policy, retry_errors=True).retries_for("error") == 3


class TestPairFailure:
    def test_round_trip(self):
        failure = PairFailure(
            configuration="XBar/OCM",
            workload="Uniform",
            kind="crash",
            message="worker exited with status 86",
            attempts=3,
        )
        assert PairFailure.from_dict(failure.to_dict()) == failure
        assert failure.quarantined

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="bogus"):
            PairFailure.from_dict({"bogus": 1})

    def test_error_message_lists_pairs(self):
        failure = PairFailure(
            configuration="XBar/OCM",
            workload="Uniform",
            kind="timeout",
            message="exceeded 3.0s",
            attempts=2,
        )
        error = PairFailureError([failure])
        assert "XBar/OCM x Uniform" in str(error)
        assert "--allow-failures" in str(error)
        assert error.failures == [failure]

    def test_summarize_counts_by_kind(self):
        failures = [
            PairFailure("a", "b", "crash", "", 1),
            PairFailure("a", "c", "crash", "", 1),
            PairFailure("a", "d", "timeout", "", 2),
        ]
        assert summarize_failures(failures) == {"crash": 2, "timeout": 1}

    def test_csv_columns_cover_every_field(self):
        assert set(FAILURE_CSV_COLUMNS) == {
            f.name for f in dataclasses.fields(PairFailure)
        }


class TestChaosSpec:
    def test_parse_full_spec(self):
        spec = ChaosSpec.parse(
            "crash=0.5,hang=0.25,error=0.1,seed=3,attempts=2,hang_s=5"
        )
        assert spec == ChaosSpec(
            crash_rate=0.5,
            hang_rate=0.25,
            error_rate=0.1,
            seed=3,
            attempts=2,
            hang_s=5.0,
        )

    def test_parse_rejects_malformed_entries(self):
        with pytest.raises(ValueError, match="key=value"):
            ChaosSpec.parse("crash")
        with pytest.raises(ValueError, match="unknown"):
            ChaosSpec.parse("meteor=1.0")
        with pytest.raises(ValueError, match="value"):
            ChaosSpec.parse("crash=lots")

    def test_active_chaos_tracks_the_environment(self, monkeypatch):
        monkeypatch.delenv("CORONA_CHAOS", raising=False)
        assert active_chaos() is None
        monkeypatch.setenv("CORONA_CHAOS", "crash=0.5,seed=3")
        assert active_chaos().crash_rate == 0.5
        monkeypatch.setenv("CORONA_CHAOS", "crash=0.75,seed=3")
        assert active_chaos().crash_rate == 0.75
        monkeypatch.setenv("CORONA_CHAOS", "")
        assert active_chaos() is None


class TestPoolRecovery:
    def test_crashed_workers_respawn_and_retry_bit_identically(
        self, monkeypatch, clean_run
    ):
        """Every pair's worker crashes once; retries must reproduce the
        clean run exactly (the old pool hung forever on a dead worker)."""
        monkeypatch.setenv("CORONA_CHAOS", "crash=1.0,attempts=1,seed=5")
        outcome = run(_scenario(), jobs=2, policy=DEFAULT_POLICY)
        assert not outcome.failures
        assert len(outcome.results) == len(clean_run.results)
        for clean, retried in zip(clean_run.results, outcome.results):
            for field in dataclasses.fields(clean):
                assert getattr(clean, field.name) == getattr(
                    retried, field.name
                ), (clean.workload, clean.configuration, field.name)

    def test_hung_pairs_are_killed_and_retried(self, monkeypatch, clean_run):
        monkeypatch.setenv("CORONA_CHAOS", "hang=1.0,hang_s=60,attempts=1,seed=5")
        outcome = run(
            _scenario(),
            jobs=2,
            policy=RetryPolicy(timeout_s=5.0, backoff_s=0.0),
        )
        assert not outcome.failures
        assert outcome.results == clean_run.results

    def test_exhausted_retries_raise_with_records(self, monkeypatch):
        monkeypatch.setenv("CORONA_CHAOS", "crash=1.0,attempts=99,seed=5")
        with pytest.raises(PairFailureError) as err:
            run(
                _scenario(),
                jobs=2,
                policy=RetryPolicy(max_retries=1, backoff_s=0.0),
            )
        assert all(f.kind == "crash" for f in err.value.failures)
        assert all(f.attempts == 2 for f in err.value.failures)

    def test_allow_failures_keeps_partial_results(self, monkeypatch):
        monkeypatch.setenv("CORONA_CHAOS", "crash=1.0,attempts=99,seed=5")
        outcome = run(
            _scenario(),
            jobs=2,
            policy=RetryPolicy(
                max_retries=1, backoff_s=0.0, allow_failures=True
            ),
        )
        assert outcome.results == []
        assert len(outcome.failures) == 2
        assert {f.kind for f in outcome.failures} == {"crash"}
        payload = outcome.to_json_dict()
        assert len(payload["failures"]) == 2

    def test_partial_failures_keep_complete_workloads_reportable(
        self, monkeypatch
    ):
        """With chaos hitting only some pairs, surviving workloads with full
        configuration coverage still make it into the report."""
        monkeypatch.setenv("CORONA_CHAOS", "error=0.6,attempts=99,seed=11")
        outcome = run(_scenario(), jobs=2, policy=FAST_LENIENT)
        assert outcome.failures
        assert len(outcome.results) + len(outcome.failures) == 2


class TestSerialRetryPath:
    def test_error_chaos_retried_bit_identically(self, monkeypatch, clean_run):
        monkeypatch.setenv("CORONA_CHAOS", "error=1.0,attempts=1,seed=7")
        outcome = run(
            _scenario(), jobs=1, policy=replace(FAST_STRICT, max_retries=2)
        )
        assert not outcome.failures
        assert outcome.results == clean_run.results

    def test_exhausted_serial_retries_raise(self, monkeypatch):
        monkeypatch.setenv("CORONA_CHAOS", "error=1.0,attempts=99,seed=7")
        with pytest.raises(PairFailureError):
            run(_scenario(), jobs=1, policy=FAST_STRICT)

    def test_serial_allow_failures_records_errors(self, monkeypatch):
        monkeypatch.setenv("CORONA_CHAOS", "error=1.0,attempts=99,seed=7")
        outcome = run(_scenario(), jobs=1, policy=FAST_LENIENT)
        assert outcome.results == []
        assert {f.kind for f in outcome.failures} == {"error"}
        assert all(f.attempts == 2 for f in outcome.failures)

    def test_no_policy_serial_path_ignores_chaos(self, monkeypatch, clean_run):
        """Without a policy the serial runner keeps its historic loop, which
        never consults the chaos hooks -- production serial runs are immune
        to a stray CORONA_CHAOS."""
        monkeypatch.setenv("CORONA_CHAOS", "error=1.0,attempts=99,seed=7")
        outcome = run(_scenario(), jobs=1)
        assert outcome.results == clean_run.results


class TestSweepFailureCheckpoints:
    def test_failed_points_checkpoint_and_resume_retries_only_them(
        self, monkeypatch, tmp_path
    ):
        spec = _sweep_spec()
        directory = tmp_path / "sweep"
        monkeypatch.setenv("CORONA_CHAOS", "error=0.6,attempts=99,seed=11")
        first = run_sweep(
            spec, directory=directory, jobs=2, policy=FAST_LENIENT
        )
        assert first.failed_point_ids  # chaos actually hit something
        assert first.retried_pairs > 0
        done_ids = {r.point_id for r in first.records}
        assert done_ids.isdisjoint(first.failed_point_ids)

        # The checkpoint keeps one entry per point: failed entries carry the
        # failure records, done entries the results.
        entries = [
            json.loads(line)
            for line in (directory / "points.jsonl").read_text().splitlines()
        ]
        assert len(entries) == 4
        by_status = {
            entry["point_id"]: entry.get("status", "done")
            for entry in entries
        }
        assert {
            pid for pid, status in by_status.items() if status == "failed"
        } == set(first.failed_point_ids)
        failed_entry = next(
            e for e in entries if e.get("status") == "failed"
        )
        for record in failed_entry["failures"]:
            assert PairFailure.from_dict(record).kind == "error"

        # The failure sink and manifest name the quarantined points.
        csv_text = (directory / "failures.csv").read_text()
        assert csv_text.splitlines()[0] == ",".join(
            ("point_id",) + FAILURE_CSV_COLUMNS
        )
        for pid in first.failed_point_ids:
            assert pid in csv_text
        manifest = json.loads((directory / "manifest.json").read_text())
        assert manifest["failed_point_ids"] == first.failed_point_ids

        # `sweep status` reports the resilience counters.
        status = sweep_status(directory)
        assert set(status.failed_ids) == set(first.failed_point_ids)
        assert status.retried_pairs == first.retried_pairs
        assert status.quarantined_pairs > 0
        assert not status.complete

        # Resume with the chaos gone: only the failed points re-run, and the
        # checkpoint never double-counts a point.
        monkeypatch.delenv("CORONA_CHAOS")
        second = run_sweep(spec, directory=directory, jobs=2)
        assert sorted(second.executed_point_ids) == sorted(
            first.failed_point_ids
        )
        assert len(second.skipped_point_ids) == len(done_ids)
        assert len(second.records) == 4
        assert len({r.point_id for r in second.records}) == 4
        assert sweep_status(directory).complete

        # The healed sweep matches a clean serial run bit-for-bit.
        clean = run_sweep(spec, jobs=1)
        healed = {r.point_id: r.result for r in second.records}
        for record in clean.records:
            assert healed[record.point_id] == record.result

    def test_strict_sweep_raises_after_checkpointing(
        self, monkeypatch, tmp_path
    ):
        directory = tmp_path / "sweep"
        monkeypatch.setenv("CORONA_CHAOS", "error=0.6,attempts=99,seed=11")
        with pytest.raises(PairFailureError):
            run_sweep(
                _sweep_spec(), directory=directory, jobs=2, policy=FAST_STRICT
            )
        # Completed points landed in the checkpoint before the raise, so a
        # strict re-run still resumes instead of starting over.
        entries = [
            json.loads(line)
            for line in (directory / "points.jsonl").read_text().splitlines()
        ]
        assert any(entry.get("status") != "failed" for entry in entries)


class TestCliExitCodes:
    def _write_scenario(self, tmp_path):
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(_scenario().to_dict()))
        return path

    def test_run_exits_nonzero_on_exhausted_failures(
        self, monkeypatch, tmp_path, capsys
    ):
        path = self._write_scenario(tmp_path)
        monkeypatch.setenv("CORONA_CHAOS", "crash=1.0,attempts=99,seed=5")
        code = main(
            ["run", str(path), "--jobs", "2", "--retries", "1"]
        )
        assert code == EXIT_FAILURES
        out = capsys.readouterr().out
        assert "crash" in out

    def test_run_allow_failures_exits_zero_with_partial_results(
        self, monkeypatch, tmp_path, capsys
    ):
        path = self._write_scenario(tmp_path)
        monkeypatch.setenv("CORONA_CHAOS", "error=0.6,attempts=99,seed=11")
        code = main(
            [
                "run",
                str(path),
                "--jobs",
                "2",
                "--retries",
                "1",
                "--allow-failures",
            ]
        )
        assert code == 0
        assert "partial results" in capsys.readouterr().out

    def test_run_retried_chaos_exits_zero(self, monkeypatch, tmp_path):
        path = self._write_scenario(tmp_path)
        monkeypatch.setenv("CORONA_CHAOS", "crash=1.0,attempts=1,seed=5")
        assert main(["run", str(path), "--jobs", "2"]) == 0

    def test_sweep_run_exit_codes_and_status(
        self, monkeypatch, tmp_path, capsys
    ):
        spec_path = tmp_path / "spec.json"
        _sweep_spec().save(spec_path)
        directory = tmp_path / "out"
        monkeypatch.setenv("CORONA_CHAOS", "error=0.6,attempts=99,seed=11")
        code = main(
            [
                "sweep",
                "run",
                str(spec_path),
                "--directory",
                str(directory),
                "--jobs",
                "2",
                "--retries",
                "1",
            ]
        )
        assert code == EXIT_FAILURES
        assert "retry only the failed points" in capsys.readouterr().out

        assert main(["sweep", "status", str(directory)]) == 0
        status_out = capsys.readouterr().out
        assert "resilience:" in status_out
        assert "failed" in status_out

        # Healed resume through the CLI completes the sweep with exit 0.
        monkeypatch.delenv("CORONA_CHAOS")
        assert (
            main(
                [
                    "sweep",
                    "run",
                    str(spec_path),
                    "--directory",
                    str(directory),
                ]
            )
            == 0
        )
        assert main(["sweep", "status", str(directory)]) == 0
        assert "4/4 points complete" in capsys.readouterr().out

    def test_sweep_allow_failures_exits_zero(
        self, monkeypatch, tmp_path, capsys
    ):
        spec_path = tmp_path / "spec.json"
        _sweep_spec().save(spec_path)
        monkeypatch.setenv("CORONA_CHAOS", "error=0.6,attempts=99,seed=11")
        code = main(
            [
                "sweep",
                "run",
                str(spec_path),
                "--directory",
                str(tmp_path / "out"),
                "--jobs",
                "2",
                "--retries",
                "1",
                "--allow-failures",
            ]
        )
        assert code == 0
        assert "partial results" in capsys.readouterr().out
