"""Tests for the optical crossbar, token arbitration and broadcast bus."""

import pytest

from repro.network.arbitration import TokenChannelArbiter, TokenRingArbiter
from repro.network.broadcast import OpticalBroadcastBus
from repro.network.crossbar import OpticalCrossbar
from repro.network.message import Message, MessageType


def _line(src, dst):
    return Message(src=src, dst=dst, message_type=MessageType.READ_RESPONSE)


class TestTokenChannelArbiter:
    def _arbiter(self):
        # 8-clock revolution at 5 GHz = 1.6 ns.
        return TokenChannelArbiter(
            channel_id=0, num_clusters=64, ring_round_trip_s=1.6e-9
        )

    def test_uncontested_wait_bounded_by_revolution(self):
        arbiter = self._arbiter()
        grant = arbiter.acquire(cluster=32, now=10e-9)
        assert 10e-9 <= grant <= 10e-9 + 1.6e-9

    def test_travel_time_proportional_to_distance(self):
        arbiter = self._arbiter()
        quarter = arbiter.travel_time(0, 16)
        half = arbiter.travel_time(0, 32)
        assert half == pytest.approx(2 * quarter)

    def test_self_distance_is_full_revolution(self):
        arbiter = self._arbiter()
        assert arbiter.travel_time(5, 5) == pytest.approx(1.6e-9)

    def test_contested_grant_uses_neighbour_handoff(self):
        arbiter = self._arbiter()
        grant = arbiter.acquire(cluster=10, now=0.0)
        arbiter.release(cluster=10, release_time=grant + 5e-9)
        # A second requester arriving while the channel is still held waits
        # for the release plus one neighbour hop, not a large travel time.
        second = arbiter.acquire(cluster=40, now=1e-9)
        assert second == pytest.approx(grant + 5e-9 + 1.6e-9 / 64)

    def test_uncontested_token_must_come_around_again(self):
        arbiter = self._arbiter()
        arbiter.release_position = 0
        arbiter.release_time = 0.0
        # At t = 1.0 ns the token (released at t=0 from cluster 0) has already
        # passed cluster 8 (arrival 0.2 ns), so cluster 8 waits a revolution.
        grant = arbiter.acquire(cluster=8, now=1.0e-9)
        assert grant == pytest.approx(0.2e-9 + 1.6e-9)

    def test_release_must_not_go_backwards(self):
        arbiter = self._arbiter()
        arbiter.release(cluster=3, release_time=5e-9)
        with pytest.raises(ValueError):
            arbiter.release(cluster=4, release_time=1e-9)

    def test_average_wait_tracked(self):
        arbiter = self._arbiter()
        arbiter.acquire(cluster=1, now=0.0)
        assert arbiter.average_wait_s >= 0.0
        assert arbiter.grants == 1


class TestTokenRingArbiter:
    def test_one_token_per_channel(self):
        arbiter = TokenRingArbiter(num_clusters=64, num_channels=64)
        assert len(arbiter.channels) == 64

    def test_worst_case_uncontested_wait(self):
        arbiter = TokenRingArbiter(ring_round_trip_cycles=8.0, clock_hz=5e9)
        assert arbiter.worst_case_uncontested_wait_s() == pytest.approx(1.6e-9)

    def test_channels_are_independent(self):
        arbiter = TokenRingArbiter(num_clusters=64, num_channels=64)
        grant_a = arbiter.acquire(channel=0, cluster=5, now=0.0)
        arbiter.release(channel=0, cluster=5, release_time=grant_a + 100e-9)
        # Channel 1 is unaffected by channel 0 being busy.
        grant_b = arbiter.acquire(channel=1, cluster=5, now=0.0)
        assert grant_b < grant_a + 100e-9

    def test_unknown_channel_rejected(self):
        arbiter = TokenRingArbiter(num_channels=4)
        with pytest.raises(ValueError):
            arbiter.acquire(channel=9, cluster=0, now=0.0)

    def test_wait_statistics_accumulate(self):
        arbiter = TokenRingArbiter()
        arbiter.acquire(channel=0, cluster=1, now=0.0)
        arbiter.acquire(channel=1, cluster=2, now=0.0)
        assert arbiter.wait_statistics.count == 2
        assert len(arbiter.per_channel_waits()) == 64


class TestOpticalCrossbar:
    def test_aggregate_bandwidth_is_20tbps(self):
        crossbar = OpticalCrossbar()
        assert crossbar.bisection_bandwidth_bytes_per_s() == pytest.approx(20.48e12)

    def test_static_power_is_26w(self):
        assert OpticalCrossbar().static_power_w() == pytest.approx(26.0)

    def test_cache_line_serialization_is_one_clock(self):
        crossbar = OpticalCrossbar()
        assert crossbar.serialization_delay_s(64) == pytest.approx(0.2e-9)

    def test_propagation_bounded_by_8_clocks(self):
        crossbar = OpticalCrossbar()
        delays = [
            crossbar.propagation_delay_s(src, dst)
            for src in range(0, 64, 7)
            for dst in range(64)
        ]
        assert max(delays) <= 1.6e-9 + 1e-15
        assert min(delays) >= 0.0

    def test_local_transfer_is_free(self):
        crossbar = OpticalCrossbar()
        result = crossbar.transfer(_line(3, 3), now=0.0)
        assert result.arrival_time == 0.0
        assert result.hops == 0

    def test_remote_transfer_latency_components(self):
        crossbar = OpticalCrossbar()
        result = crossbar.transfer(_line(0, 32), now=0.0)
        assert result.hops == 0
        assert result.serialization_delay == pytest.approx(72 / 320e9)
        assert result.propagation_delay == pytest.approx(0.8e-9)
        assert result.arrival_time == pytest.approx(
            result.queueing_delay + result.serialization_delay + result.propagation_delay
        )

    def test_uncontested_queueing_at_most_one_revolution(self):
        crossbar = OpticalCrossbar()
        result = crossbar.transfer(_line(5, 20), now=100e-9)
        assert result.queueing_delay <= 1.6e-9

    def test_channel_contention_serializes_senders(self):
        crossbar = OpticalCrossbar()
        # Many clusters write to cluster 0's channel at the same instant.
        arrivals = [
            crossbar.transfer(_line(src, 0), now=0.0).arrival_time
            for src in range(1, 21)
        ]
        assert arrivals == sorted(arrivals)
        assert arrivals[-1] > arrivals[0]

    def test_contended_channel_sustains_near_peak_bandwidth(self):
        crossbar = OpticalCrossbar()
        count = 200
        last_arrival = 0.0
        for i in range(count):
            src = 1 + (i % 63)
            last_arrival = crossbar.transfer(_line(src, 0), now=0.0).arrival_time
        achieved = count * 72 / last_arrival
        assert achieved > 0.5 * crossbar.channel_bandwidth_bytes_per_s

    def test_different_channels_do_not_interfere(self):
        crossbar = OpticalCrossbar()
        crossbar.transfer(_line(1, 0), now=0.0)
        result = crossbar.transfer(_line(2, 3), now=0.0)
        assert result.queueing_delay <= 1.6e-9

    def test_statistics_and_utilization(self):
        crossbar = OpticalCrossbar()
        crossbar.transfer(_line(1, 0), now=0.0)
        crossbar.transfer(_line(2, 0), now=0.0)
        assert crossbar.channel_messages[0] == 2
        assert crossbar.busiest_channels(1)[0][0] == 0
        utilization = crossbar.channel_utilization(1e-6)
        assert utilization[0] > 0

    def test_total_ring_resonators_matches_table2(self):
        assert OpticalCrossbar().total_ring_resonators() == 1024 * 1024

    def test_reset_statistics(self):
        crossbar = OpticalCrossbar()
        crossbar.transfer(_line(1, 0), now=0.0)
        crossbar.reset_statistics()
        assert crossbar.messages_sent == 0
        assert crossbar.channel_messages[0] == 0

    def test_out_of_range_endpoint_rejected(self):
        with pytest.raises(ValueError):
            OpticalCrossbar().transfer(_line(0, 64), now=0.0)

    def test_photonic_channel_models_optional(self):
        detailed = OpticalCrossbar(num_clusters=4, build_photonic_channels=True)
        assert detailed.photonic_channels is not None
        assert len(detailed.photonic_channels) == 4


class TestBroadcastBus:
    def test_bandwidth_is_64_wavelengths(self):
        bus = OpticalBroadcastBus()
        assert bus.bandwidth_bytes_per_s == pytest.approx(80e9)

    def test_broadcast_reaches_everyone_after_coil(self):
        bus = OpticalBroadcastBus()
        message = Message(src=3, dst=3, message_type=MessageType.INVALIDATE)
        result = bus.transfer(message, now=0.0)
        assert result.propagation_delay == pytest.approx(bus.coil_round_trip_s)

    def test_single_invalidate_replaces_many_unicasts(self):
        bus = OpticalBroadcastBus()
        bus.broadcast_invalidate(src=0, sharers=40, now=0.0)
        assert bus.broadcasts_sent == 1
        assert bus.unicast_messages_avoided == 39

    def test_bus_serializes_concurrent_broadcasters(self):
        bus = OpticalBroadcastBus()
        first = bus.broadcast_invalidate(src=0, sharers=10, now=0.0)
        second = bus.broadcast_invalidate(src=1, sharers=10, now=0.0)
        assert second.arrival_time > first.arrival_time

    def test_listener_losses_cover_all_clusters(self):
        losses = OpticalBroadcastBus().listener_losses_db()
        assert len(losses) == 64

    def test_negative_sharers_rejected(self):
        with pytest.raises(ValueError):
            OpticalBroadcastBus().broadcast_invalidate(src=0, sharers=-1, now=0.0)
