"""Tests for the packed trace pipeline.

Covers the packed columnar representation (bit layout, builders, stream
round-trips), the binary trace file format, the shared-memory shipping layer,
and -- most importantly -- the bit-identity guarantees: packed generation
matches object generation field for field, and a packed replay produces
exactly the same :class:`WorkloadResult` as replaying the equivalent
:class:`TraceStream`, coherence fields included.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.coherence import CoherenceConfig, SharingProfile
from repro.core.configs import configuration_by_name
from repro.core.system import SystemSimulator
from repro.harness.parallel import TraceShipment, _resolve_trace
from repro.trace.io import (
    read_trace,
    read_trace_binary,
    write_trace,
    write_trace_binary,
)
from repro.trace.packed import (
    KIND_BIT,
    SHARED_BIT,
    PackedTrace,
    PackedTraceBuilder,
    as_packed,
    pack_meta,
)
from repro.trace.record import AccessKind, TraceRecord, TraceStream
from repro.trace.splash2 import splash2_workload
from repro.trace.synthetic import uniform_workload


def _record_tuples(records):
    return [
        (
            r.thread_id,
            r.cluster_id,
            r.home_cluster,
            r.kind,
            r.address,
            r.gap_cycles,
            r.size_bytes,
            r.shared,
        )
        for r in records
    ]


class TestPackedMetaWord:
    def test_bit_layout_round_trips(self):
        word = pack_meta(
            thread_id=1023, home_cluster=63, is_write=True, shared=True, size_bytes=64
        )
        assert word & KIND_BIT
        assert word & SHARED_BIT
        assert (word >> 2) & ((1 << 20) - 1) == 1023
        assert (word >> 22) & ((1 << 16) - 1) == 63
        assert word >> 38 == 64

    def test_field_overflow_rejected(self):
        with pytest.raises(ValueError):
            pack_meta(1 << 20, 0, False, False, 64)
        with pytest.raises(ValueError):
            pack_meta(0, 1 << 16, False, False, 64)
        with pytest.raises(ValueError):
            pack_meta(0, 0, False, False, 1 << 26)
        with pytest.raises(ValueError):
            pack_meta(0, 0, False, False, 0)


class TestPackedTraceBuilder:
    def test_non_contiguous_thread_rejected(self):
        builder = PackedTraceBuilder("t", num_clusters=4, threads_per_cluster=2)
        builder.append(0, 1, False, False, 0x40, 5.0)
        builder.append(1, 1, False, False, 0x80, 5.0)
        with pytest.raises(ValueError):
            builder.append(0, 1, False, False, 0xC0, 5.0)

    def test_thread_beyond_cluster_count_rejected(self):
        builder = PackedTraceBuilder("t", num_clusters=2, threads_per_cluster=2)
        with pytest.raises(ValueError):
            builder.append(10, 0, False, False, 0x40, 5.0)

    def test_negative_gap_rejected(self):
        builder = PackedTraceBuilder("t", num_clusters=4, threads_per_cluster=2)
        with pytest.raises(ValueError):
            builder.append(0, 1, False, False, 0x40, -1.0)


class TestPackedStreamRoundTrip:
    def test_from_stream_to_stream_is_exact(self):
        workload = uniform_workload(sharing=SharingProfile(fraction=0.4))
        stream = workload.generate(seed=3, num_requests=2048)
        packed = as_packed(stream)
        assert packed.total_requests == stream.total_requests
        assert _record_tuples(packed.to_stream().all_records()) == _record_tuples(
            stream.all_records()
        )

    def test_shared_flag_survives_packing(self):
        workload = uniform_workload(sharing=SharingProfile(fraction=0.5))
        stream = workload.generate(seed=7, num_requests=1024)
        packed = as_packed(stream)
        assert [r.shared for r in packed.records()] == [
            r.shared for r in stream.all_records()
        ]
        assert packed.shared_fraction() == pytest.approx(stream.shared_fraction())

    def test_gaps_are_exact_float64(self):
        stream = uniform_workload().generate(seed=5, num_requests=512)
        packed = as_packed(stream)
        # Bit-exact, not approximately equal: the replay divides these.
        assert [r.gap_cycles for r in packed.records()] == [
            r.gap_cycles for r in stream.all_records()
        ]

    def test_generate_packed_matches_generate_synthetic(self):
        workload = uniform_workload(sharing=SharingProfile(fraction=0.3))
        assert workload.generate_packed(seed=2, num_requests=2048) == as_packed(
            workload.generate(seed=2, num_requests=2048)
        )

    def test_generate_packed_matches_generate_splash_bursty(self):
        workload = splash2_workload("LU")
        assert workload.generate_packed(seed=4, num_requests=3000) == as_packed(
            workload.generate(seed=4, num_requests=3000)
        )

    def test_destination_histogram_matches_stream(self):
        workload = uniform_workload()
        stream = workload.generate(seed=1, num_requests=2048)
        assert as_packed(stream).destination_histogram() == (
            stream.destination_histogram()
        )


class TestBinaryTraceFormat:
    def test_round_trip_is_exact_including_shared_flag(self, tmp_path):
        workload = uniform_workload(sharing=SharingProfile(fraction=0.4))
        packed = workload.generate_packed(seed=3, num_requests=2048)
        path = tmp_path / "trace.bin"
        write_trace_binary(packed, path)
        loaded = read_trace_binary(path)
        assert loaded == packed
        assert [r.shared for r in loaded.records()] == [
            r.shared for r in packed.records()
        ]

    def test_read_trace_sniffs_binary_format(self, tmp_path):
        packed = uniform_workload().generate_packed(seed=1, num_requests=512)
        path = tmp_path / "trace.bin"
        write_trace_binary(packed, path)
        stream = read_trace(path)
        assert isinstance(stream, TraceStream)
        assert _record_tuples(stream.all_records()) == _record_tuples(
            packed.to_stream().all_records()
        )

    def test_accepts_stream_input(self, tmp_path):
        stream = uniform_workload().generate(seed=2, num_requests=256)
        path = tmp_path / "trace.bin"
        write_trace_binary(stream, path)
        assert read_trace_binary(path) == as_packed(stream)

    def test_text_format_still_reads(self, tmp_path):
        stream = uniform_workload().generate(seed=2, num_requests=256)
        path = tmp_path / "trace.txt"
        write_trace(stream, path)
        assert read_trace(path).total_requests == 256

    def test_rejects_non_binary_file(self, tmp_path):
        path = tmp_path / "junk.bin"
        path.write_text("not a binary trace")
        with pytest.raises(ValueError):
            read_trace_binary(path)

    def test_rejects_truncated_file(self, tmp_path):
        packed = uniform_workload().generate_packed(seed=1, num_requests=512)
        path = tmp_path / "trace.bin"
        write_trace_binary(packed, path)
        data = path.read_bytes()
        (tmp_path / "cut.bin").write_bytes(data[: len(data) // 2])
        with pytest.raises(ValueError):
            read_trace_binary(tmp_path / "cut.bin")


class TestBufferShipping:
    def test_buffer_round_trip_is_zero_copy_equal(self):
        packed = uniform_workload().generate_packed(seed=1, num_requests=1024)
        buffer = bytearray(packed.nbytes())
        assert packed.copy_into(buffer) == packed.nbytes()
        view = PackedTrace.from_buffer(packed.header(), buffer)
        assert view == packed
        # The view aliases the buffer rather than copying it.
        assert view.meta.obj is not None

    def test_shipment_resolves_back_to_equal_trace(self):
        from repro.harness.parallel import _release_worker_cache

        packed = uniform_workload().generate_packed(seed=1, num_requests=512)
        shipment = TraceShipment(packed)
        try:
            resolved = _resolve_trace(shipment.handle)
            assert resolved == packed
            del resolved
        finally:
            # Mirror worker shutdown: release the cached views before the
            # parent unlinks the block.
            _release_worker_cache()
            shipment.close()

    def test_post_fork_shipment_never_uses_fork_registry(self, monkeypatch):
        """A shipment created after the pool forked (fork_ok=False) whose
        shared-memory allocation fails must ship by value: a registry entry
        added post-fork is invisible to the workers' snapshot."""
        from repro.harness import parallel

        packed = uniform_workload().generate_packed(seed=1, num_requests=256)
        monkeypatch.setattr(parallel, "_shared_memory", None)
        shipment = TraceShipment(packed, fork_ok=False)
        try:
            assert shipment.handle is packed
            assert parallel._FORK_REGISTRY == {}
        finally:
            shipment.close()

    def test_buffer_backed_replay_matches_array_backed(self):
        workload = uniform_workload()
        packed = workload.generate_packed(seed=1, num_requests=800)
        buffer = bytearray(packed.nbytes())
        packed.copy_into(buffer)
        view = PackedTrace.from_buffer(packed.header(), buffer)
        configuration = configuration_by_name("XBar/OCM")
        direct = SystemSimulator(configuration, window_depth=workload.window).run(
            packed
        )
        mapped = SystemSimulator(configuration, window_depth=workload.window).run(
            view
        )
        assert direct == mapped


class TestPackedReplayEquivalence:
    """run(stream) and run(packed) must agree bit for bit."""

    def _assert_identical(self, stream_result, packed_result):
        for field in dataclasses.fields(stream_result):
            assert getattr(stream_result, field.name) == getattr(
                packed_result, field.name
            ), field.name

    @pytest.mark.parametrize("configuration", ["XBar/OCM", "LMesh/ECM"])
    def test_plain_replay_identical(self, configuration):
        workload = uniform_workload()
        stream = workload.generate(seed=1, num_requests=1500)
        packed = workload.generate_packed(seed=1, num_requests=1500)
        config = configuration_by_name(configuration)
        from_stream = SystemSimulator(config, window_depth=workload.window).run(
            stream
        )
        from_packed = SystemSimulator(config, window_depth=workload.window).run(
            packed
        )
        self._assert_identical(from_stream, from_packed)

    @pytest.mark.parametrize("configuration", ["XBar/OCM", "LMesh/ECM"])
    def test_coherent_replay_identical_including_coherence_fields(
        self, configuration
    ):
        workload = uniform_workload(sharing=SharingProfile(fraction=0.3))
        stream = workload.generate(seed=1, num_requests=1500)
        packed = workload.generate_packed(seed=1, num_requests=1500)
        config = configuration_by_name(configuration)
        from_stream = SystemSimulator(
            config, window_depth=workload.window, coherence=CoherenceConfig()
        ).run(stream)
        from_packed = SystemSimulator(
            config, window_depth=workload.window, coherence=CoherenceConfig()
        ).run(packed)
        assert from_stream.coherence_enabled and from_stream.shared_requests > 0
        self._assert_identical(from_stream, from_packed)

    def test_hand_built_stream_replays(self):
        trace = TraceStream("hand", num_clusters=16, threads_per_cluster=2)
        trace.add(
            TraceRecord(
                thread_id=0,
                cluster_id=0,
                home_cluster=5,
                kind=AccessKind.READ,
                address=(5 << 26) | 0x40,
                gap_cycles=10.0,
            )
        )
        result = SystemSimulator(configuration_by_name("XBar/OCM")).run(trace)
        assert result.num_requests == 1
