"""Tests for trace records, synthetic workloads, SPLASH-2 models and trace I/O."""


import pytest

from repro.trace.gaps import draw_gap
from repro.trace.io import read_trace, write_trace
from repro.trace.record import AccessKind, TraceRecord, TraceStream, merge_streams
from repro.trace.splash2 import (
    SPLASH2_ORDER,
    SPLASH2_PROFILES,
    splash2_workload,
    splash2_workloads,
)
from repro.trace.synthetic import (
    bit_reversal_destination,
    bit_reversal_workload,
    hot_spot_workload,
    neighbor_destination,
    neighbor_workload,
    synthetic_workloads,
    tornado_destination,
    transpose_destination,
    transpose_workload,
    uniform_workload,
)

import random


class TestTraceRecord:
    def test_valid_record(self):
        record = TraceRecord(
            thread_id=0,
            cluster_id=0,
            home_cluster=5,
            kind=AccessKind.READ,
            address=0x1000,
            gap_cycles=10.0,
        )
        assert record.size_bytes == 64
        assert not record.is_write

    def test_rejects_negative_gap(self):
        with pytest.raises(ValueError):
            TraceRecord(0, 0, 0, AccessKind.READ, 0, gap_cycles=-1.0)

    def test_access_kind_codes(self):
        assert AccessKind.from_code("R") is AccessKind.READ
        assert AccessKind.from_code("W") is AccessKind.WRITE
        with pytest.raises(ValueError):
            AccessKind.from_code("X")


class TestTraceStream:
    def _record(self, thread_id, home=0, kind=AccessKind.READ):
        return TraceRecord(
            thread_id=thread_id,
            cluster_id=thread_id // 16,
            home_cluster=home,
            kind=kind,
            address=0x40 * thread_id,
            gap_cycles=5.0,
        )

    def test_threads_created_lazily(self):
        stream = TraceStream("t", num_clusters=64, threads_per_cluster=16)
        stream.add(self._record(17))
        assert stream.threads[17].cluster_id == 1
        assert stream.total_requests == 1

    def test_destination_histogram(self):
        stream = TraceStream("t", num_clusters=64, threads_per_cluster=16)
        stream.add(self._record(0, home=3))
        stream.add(self._record(1, home=3))
        stream.add(self._record(2, home=9))
        assert stream.destination_histogram() == {3: 2, 9: 1}

    def test_read_fraction(self):
        stream = TraceStream("t", num_clusters=64, threads_per_cluster=16)
        stream.add(self._record(0, kind=AccessKind.READ))
        stream.add(self._record(1, kind=AccessKind.WRITE))
        assert stream.read_fraction() == pytest.approx(0.5)

    def test_validate_passes_for_consistent_stream(self):
        stream = TraceStream("t", num_clusters=64, threads_per_cluster=16)
        stream.add(self._record(0))
        stream.validate()

    def test_thread_beyond_cluster_count_rejected(self):
        stream = TraceStream("t", num_clusters=2, threads_per_cluster=2)
        with pytest.raises(ValueError):
            stream.thread(10)

    def test_merge_streams(self):
        a = TraceStream("a", num_clusters=64, threads_per_cluster=16)
        b = TraceStream("b", num_clusters=64, threads_per_cluster=16)
        a.add(self._record(0))
        b.add(self._record(0))
        merged = merge_streams("ab", [a, b])
        assert merged.total_requests == 2

    def test_merge_rejects_mismatched_shapes(self):
        a = TraceStream("a", num_clusters=64, threads_per_cluster=16)
        b = TraceStream("b", num_clusters=16, threads_per_cluster=16)
        with pytest.raises(ValueError):
            merge_streams("ab", [a, b])


class TestGapDistribution:
    def test_mean_is_preserved(self):
        rng = random.Random(7)
        samples = [draw_gap(rng, 100.0) for _ in range(20000)]
        assert sum(samples) / len(samples) == pytest.approx(100.0, rel=0.05)

    def test_zero_mean_gives_zero(self):
        assert draw_gap(random.Random(1), 0.0) == 0.0

    def test_rejects_negative_mean(self):
        with pytest.raises(ValueError):
            draw_gap(random.Random(1), -1.0)


class TestSyntheticPatterns:
    def test_tornado_destination_shifts_by_half_radix(self):
        # Cluster (0, 0) -> (3, 3) on an 8x8 grid.
        assert tornado_destination(0, 64) == 3 * 8 + 3

    def test_transpose_destination(self):
        # Cluster (1, 2) (= id 17) -> (2, 1) (= id 10).
        assert transpose_destination(17, 64) == 10

    def test_transpose_is_involution(self):
        for cluster in range(64):
            assert transpose_destination(transpose_destination(cluster, 64), 64) == cluster

    def test_tornado_is_permutation(self):
        destinations = {tornado_destination(c, 64) for c in range(64)}
        assert destinations == set(range(64))

    def test_patterns_need_square_cluster_count(self):
        with pytest.raises(ValueError):
            tornado_destination(0, 60)

    def test_bit_reversal_destination(self):
        # Cluster 0b000001 -> 0b100000 on 64 clusters.
        assert bit_reversal_destination(1, 64) == 32
        assert bit_reversal_destination(0, 64) == 0
        # Palindromic ids map to themselves.
        assert bit_reversal_destination(0b100001, 64) == 0b100001

    def test_bit_reversal_is_involution_and_permutation(self):
        destinations = set()
        for cluster in range(64):
            destination = bit_reversal_destination(cluster, 64)
            destinations.add(destination)
            assert bit_reversal_destination(destination, 64) == cluster
        assert destinations == set(range(64))

    def test_bit_reversal_needs_power_of_two(self):
        with pytest.raises(ValueError):
            bit_reversal_destination(0, 36)

    def test_neighbor_destination_wraps(self):
        assert neighbor_destination(0, 64) == 1
        assert neighbor_destination(63, 64) == 0

    def test_new_patterns_generate_valid_traces(self):
        for workload in (bit_reversal_workload(), neighbor_workload()):
            trace = workload.generate(seed=1, num_requests=2048)
            trace.validate()
            assert trace.total_requests == 2048
            # Permutation patterns hit every cluster's memory controller.
            assert len(trace.destination_histogram()) == 64


class TestSyntheticWorkloads:
    def test_workloads_in_paper_order_plus_extensions(self):
        names = [w.name for w in synthetic_workloads()]
        assert names == [
            "Uniform",
            "Hot Spot",
            "Tornado",
            "Transpose",
            "Bit Reversal",
            "Neighbor",
        ]

    def test_paper_request_counts(self):
        assert all(w.num_requests == 1_000_000 for w in synthetic_workloads())

    def test_generation_respects_request_count(self):
        trace = uniform_workload().generate(seed=1, num_requests=4096)
        assert trace.total_requests == 4096
        trace.validate()

    def test_every_thread_gets_requests(self):
        trace = uniform_workload().generate(seed=1, num_requests=2048)
        assert len(trace.threads) == 1024
        assert all(len(t) == 2 for t in trace.threads.values())

    def test_hot_spot_targets_single_cluster(self):
        trace = hot_spot_workload(hot_cluster=7).generate(seed=1, num_requests=2048)
        assert set(trace.destination_histogram()) == {7}

    def test_uniform_spreads_destinations(self):
        trace = uniform_workload().generate(seed=1, num_requests=8192)
        histogram = trace.destination_histogram()
        assert len(histogram) == 64
        assert max(histogram.values()) < 4 * min(histogram.values())

    def test_transpose_trace_destinations_match_permutation(self):
        trace = transpose_workload().generate(seed=1, num_requests=2048)
        for record in trace.all_records():
            assert record.home_cluster == transpose_destination(record.cluster_id, 64)

    def test_write_fraction_controls_mix(self):
        trace = uniform_workload(write_fraction=0.0).generate(seed=1, num_requests=2048)
        assert trace.read_fraction() == 1.0

    def test_seed_determinism(self):
        first = uniform_workload().generate(seed=5, num_requests=1024)
        second = uniform_workload().generate(seed=5, num_requests=1024)
        assert [r.address for r in first.all_records()] == [
            r.address for r in second.all_records()
        ]

    def test_different_seeds_differ(self):
        first = uniform_workload().generate(seed=5, num_requests=1024)
        second = uniform_workload().generate(seed=6, num_requests=1024)
        assert [r.home_cluster for r in first.all_records()] != [
            r.home_cluster for r in second.all_records()
        ]

    def test_small_system_shape(self):
        workload = uniform_workload(num_clusters=16, threads_per_cluster=2)
        trace = workload.generate(seed=1, num_requests=512)
        assert trace.num_clusters == 16
        assert max(r.home_cluster for r in trace.all_records()) < 16

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            uniform_workload(window=0)


class TestSplash2Workloads:
    def test_eleven_benchmarks_in_order(self):
        assert len(SPLASH2_ORDER) == 11
        assert [w.name for w in splash2_workloads()] == SPLASH2_ORDER

    def test_paper_request_counts_match_table3(self):
        assert SPLASH2_PROFILES["FFT"].paper_requests == 176_000_000
        assert SPLASH2_PROFILES["Ocean"].paper_requests == 240_000_000
        assert SPLASH2_PROFILES["Cholesky"].paper_requests == 600_000

    def test_bandwidth_classes(self):
        # Low-bandwidth group demands less than ECM's 0.96 TB/s.
        for name in ("Barnes", "Radiosity", "Volrend", "Water-Sp"):
            assert SPLASH2_PROFILES[name].demand_bandwidth_tbps() < 0.5
        # High-bandwidth group demands several TB/s.
        for name in ("FFT", "Radix", "Ocean"):
            assert SPLASH2_PROFILES[name].demand_bandwidth_tbps() > 2.0
        # FMM sits just above what ECM provides.
        assert 0.96 < SPLASH2_PROFILES["FMM"].demand_bandwidth_tbps() < 2.5

    def test_bursty_benchmarks_have_burst_parameters(self):
        for name in ("LU", "Raytrace"):
            profile = SPLASH2_PROFILES[name]
            assert profile.burst_period > 0
            assert profile.burst_length > 0

    def test_generation_shape(self):
        trace = splash2_workload("Barnes").generate(seed=1, num_requests=4096)
        assert trace.total_requests == 4096
        trace.validate()

    def test_locality_fraction_reflected_in_destinations(self):
        workload = splash2_workload("Water-Sp")
        trace = workload.generate(seed=1, num_requests=16384)
        local = sum(
            1 for r in trace.all_records() if r.home_cluster == r.cluster_id
        )
        fraction = local / trace.total_requests
        expected = workload.profile.local_fraction
        assert fraction == pytest.approx(expected + (1 - expected) / 64, abs=0.05)

    def test_burst_concentration_creates_hot_destinations(self):
        trace = splash2_workload("LU").generate(seed=1, num_requests=30000)
        histogram = trace.destination_histogram()
        hottest = max(histogram.values())
        coolest = min(histogram.values())
        assert hottest > 3 * coolest

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(KeyError):
            splash2_workload("NotABenchmark")

    def test_default_request_count_is_paper_count(self):
        assert splash2_workload("FFT").num_requests == 176_000_000

    def test_windows_reflect_memory_level_parallelism(self):
        assert splash2_workload("FFT").window > splash2_workload("Barnes").window


class TestTraceIo:
    def test_roundtrip(self, tmp_path):
        trace = uniform_workload().generate(seed=3, num_requests=1024)
        path = tmp_path / "uniform.trace"
        write_trace(trace, path)
        loaded = read_trace(path)
        assert loaded.total_requests == trace.total_requests
        assert loaded.num_clusters == trace.num_clusters
        original = list(trace.all_records())
        restored = list(loaded.all_records())
        assert [r.address for r in original] == [r.address for r in restored]
        assert [r.kind for r in original] == [r.kind for r in restored]
        assert [r.home_cluster for r in original] == [r.home_cluster for r in restored]

    def test_gap_precision_preserved_to_4_decimals(self, tmp_path):
        trace = uniform_workload().generate(seed=3, num_requests=256)
        path = tmp_path / "t.trace"
        write_trace(trace, path)
        loaded = read_trace(path)
        for original, restored in zip(trace.all_records(), loaded.all_records()):
            assert restored.gap_cycles == pytest.approx(original.gap_cycles, abs=1e-3)

    def test_shared_flag_roundtrip(self, tmp_path):
        from repro.coherence import SharingProfile

        workload = uniform_workload(sharing=SharingProfile(fraction=0.4))
        trace = workload.generate(seed=3, num_requests=2048)
        assert trace.shared_fraction() > 0
        path = tmp_path / "shared.trace"
        write_trace(trace, path)
        loaded = read_trace(path)
        assert [r.shared for r in loaded.all_records()] == [
            r.shared for r in trace.all_records()
        ]

    def test_reject_non_trace_file(self, tmp_path):
        path = tmp_path / "junk.txt"
        path.write_text("this is not a trace\n")
        with pytest.raises(ValueError):
            read_trace(path)

    def test_reject_malformed_line(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text(
            "# corona-trace v1 name='x' clusters=64 threads_per_cluster=16\n"
            "0 1 R deadbeef\n"
        )
        with pytest.raises(ValueError):
            read_trace(path)
