"""Tests for the open-loop arrival layer: the frozen ArrivalSpec and its
scenario round-trip, deterministic trace materialization (with bit-identity
to pre-arrival traces when disabled), the simulator's open-loop replay and
sojourn statistics, knee detection, the latency-throughput stock sweep
(serial/parallel equivalence included), the public field-path writers, and
the deprecated `simulate`/`evaluate` CLI shims."""

from __future__ import annotations

import hashlib
import json

import pytest

from repro.api import Scenario, ScenarioError, SystemSpec, WorkloadSpec, set_field
from repro.api.registry import build_configuration, build_workload
from repro.cli import main
from repro.core.system import SystemSimulator
from repro.obs.spec import ObservabilitySpec
from repro.sweeps import expand, run_sweep
from repro.sweeps.library import latency_throughput_sweep_spec
from repro.sweeps.saturation import detect_knee, saturation_report_section
from repro.trace.arrival import (
    GAP_CLOCK_HZ,
    ArrivalError,
    ArrivalSpec,
    arrival_streams,
)
from repro.trace.packed import generate_packed_trace

#: Column digests of seed-1, 2000-request traces at the commit before the
#: arrival layer existed (meta + addresses + gaps, in that order).  Closed-
#: loop generation must never drift from these.
GOLDEN_UNIFORM_SHA = (
    "717806191e21654d65c59663758c8ba38eb6b9d4c38f165d2f9db80239002ac7"
)
GOLDEN_BARNES_SHA = (
    "eaa9cbccdb63b93d8f09602ecc7127c43c3a05d66f851ce97831b6025697d07f"
)

#: XBar/OCM replay of the golden Uniform trace at the same commit.
GOLDEN_REPLAY = {
    "average_latency_s": 3.02451898198455e-08,
    "p99_latency_s": 5.5e-08,
    "execution_time_s": 1.605499999999998e-07,
}


def _digest(trace) -> str:
    h = hashlib.sha256()
    for column in (trace.meta, trace.addresses, trace.gaps):
        h.update(
            column.tobytes() if hasattr(column, "tobytes") else bytes(column)
        )
    return h.hexdigest()


def _replay(workload, configuration="XBar/OCM", seed=1, num_requests=2000):
    trace = generate_packed_trace(workload, seed=seed, num_requests=num_requests)
    simulator = SystemSimulator(
        build_configuration(configuration), window_depth=workload.window
    )
    return simulator.run(trace)


class TestArrivalSpec:
    def test_default_is_closed_and_disabled(self):
        spec = ArrivalSpec()
        assert spec.process == "closed"
        assert not spec.enabled
        assert spec.offered_rps() == 0.0

    def test_round_trip_is_exact(self):
        spec = ArrivalSpec(
            process="mmpp",
            rate_rps=1e9,
            burst_rate_rps=1e10,
            burst_fraction=0.25,
            seed=7,
        )
        assert ArrivalSpec.from_dict(spec.to_dict()) == spec
        assert json.loads(json.dumps(spec.to_dict())) == spec.to_dict()

    def test_offered_rps(self):
        assert ArrivalSpec(process="poisson", rate_rps=2e9).offered_rps() == 2e9
        mmpp = ArrivalSpec(
            process="mmpp", rate_rps=1e8, burst_rate_rps=1e10, burst_fraction=0.5
        )
        assert mmpp.offered_rps() == pytest.approx(0.5 * 1e8 + 0.5 * 1e10)

    def test_unknown_key_is_named(self):
        with pytest.raises(ArrivalError, match="bogus"):
            ArrivalSpec.from_dict({"process": "poisson", "bogus": 1})

    @pytest.mark.parametrize(
        "kwargs, field",
        [
            (dict(process="uniform"), "process"),
            (dict(process="poisson"), "rate_rps"),
            (dict(process="poisson", rate_rps=-1.0), "rate_rps"),
            (dict(process="poisson", rate_rps=True), "rate_rps"),
            (dict(process="mmpp", rate_rps=1e9), "burst_rate_rps"),
            (
                dict(process="mmpp", rate_rps=1e9, burst_rate_rps=1e8,
                     burst_fraction=0.5),
                "burst_rate_rps",
            ),
            (
                dict(process="mmpp", rate_rps=1e9, burst_rate_rps=1e10,
                     burst_fraction=1.5),
                "burst_fraction",
            ),
            (dict(process="closed", rate_rps=1e9), "rate_rps"),
            (dict(seed=1.5), "seed"),
        ],
    )
    def test_validation_names_the_field(self, kwargs, field):
        with pytest.raises(ArrivalError) as excinfo:
            ArrivalSpec(**kwargs)
        assert excinfo.value.field == field


class TestScenarioArrival:
    def _scenario(self, arrival):
        return Scenario(
            name="t",
            system=SystemSpec(configurations=("XBar/OCM",)),
            workloads=(
                WorkloadSpec(name="Uniform", arrival=arrival, num_requests=100),
            ),
        )

    def test_round_trip_with_arrival(self):
        scenario = self._scenario(ArrivalSpec(process="poisson", rate_rps=1e9))
        data = scenario.to_dict()
        assert data["workloads"][0]["arrival"]["process"] == "poisson"
        assert Scenario.from_dict(data) == scenario

    def test_round_trip_without_arrival(self):
        scenario = self._scenario(None)
        data = scenario.to_dict()
        assert data["workloads"][0]["arrival"] is None
        assert Scenario.from_dict(data) == scenario

    def test_bad_arrival_error_names_the_path(self):
        data = self._scenario(None).to_dict()
        data["workloads"][0]["arrival"] = {"process": "poisson", "rate_rps": -1}
        with pytest.raises(ScenarioError) as excinfo:
            Scenario.from_dict(data)
        assert excinfo.value.field == "workloads[0].arrival.rate_rps"

    def test_with_field_writes_arrival(self):
        scenario = self._scenario(None)
        edited = scenario.with_field(
            "workloads[*].arrival", {"process": "poisson", "rate_rps": 5e9}
        )
        assert edited.workloads[0].arrival == ArrivalSpec(
            process="poisson", rate_rps=5e9
        )
        # The original is untouched (with_field round-trips through dicts).
        assert scenario.workloads[0].arrival is None

    def test_with_field_rejects_bad_paths(self):
        scenario = self._scenario(None)
        with pytest.raises(ScenarioError, match="out of range"):
            scenario.with_field("workloads[3].arrival", None)

    def test_set_field_mutates_dicts_in_place(self):
        data = self._scenario(None).to_dict()
        set_field(data, "workloads[*].arrival.rate_rps", 7e9)
        assert data["workloads"][0]["arrival"]["rate_rps"] == 7e9


class TestTraceMaterialization:
    def test_closed_loop_uniform_matches_golden(self):
        trace = generate_packed_trace(
            build_workload("Uniform"), seed=1, num_requests=2000
        )
        assert _digest(trace) == GOLDEN_UNIFORM_SHA

    def test_closed_loop_splash_matches_golden(self):
        trace = generate_packed_trace(
            build_workload("Barnes"), seed=1, num_requests=2000
        )
        assert _digest(trace) == GOLDEN_BARNES_SHA

    def test_arrival_none_is_bit_identical(self):
        explicit = generate_packed_trace(
            build_workload("Uniform", arrival=None), seed=1, num_requests=2000
        )
        assert _digest(explicit) == GOLDEN_UNIFORM_SHA

    def test_open_loop_metadata_rides_the_trace(self):
        workload = build_workload(
            "Uniform", arrival=ArrivalSpec(process="poisson", rate_rps=1e10)
        )
        trace = generate_packed_trace(workload, seed=1, num_requests=2000)
        assert trace.arrival_process == "poisson"
        assert trace.offered_rps == 1e10
        header = trace.header()
        assert header.arrival_process == "poisson"
        assert header.offered_rps == 1e10

    def test_generation_is_deterministic(self):
        def build():
            workload = build_workload(
                "Uniform",
                arrival=ArrivalSpec(process="poisson", rate_rps=1e10, seed=3),
            )
            return generate_packed_trace(workload, seed=1, num_requests=2000)

        assert _digest(build()) == _digest(build())

    def test_arrival_seed_changes_the_schedule(self):
        def build(arrival_seed):
            workload = build_workload(
                "Uniform",
                arrival=ArrivalSpec(
                    process="poisson", rate_rps=1e10, seed=arrival_seed
                ),
            )
            return generate_packed_trace(workload, seed=1, num_requests=2000)

        assert _digest(build(0)) != _digest(build(1))

    def test_poisson_mean_gap_within_tolerance(self):
        rate = 1e10
        workload = build_workload(
            "Uniform", arrival=ArrivalSpec(process="poisson", rate_rps=rate)
        )
        trace = generate_packed_trace(workload, seed=1, num_requests=20_000)
        gaps = list(trace.gaps)
        threads = len({t for t, _c, s, e in trace.thread_segments() if e > s})
        expected = GAP_CLOCK_HZ * threads / rate
        mean = sum(gaps) / len(gaps)
        assert mean == pytest.approx(expected, rel=0.05)

    def test_mmpp_burst_and_idle_gap_scales(self):
        # One stream, 100x rate contrast: draws split into two clearly
        # separated scales whose ratio tracks idle_rate/burst_rate.  (The
        # finite-trace *mean* is arrival-count biased, so assert the ratio.)
        spec = ArrivalSpec(
            process="mmpp",
            rate_rps=1e8,
            burst_rate_rps=1e10,
            burst_fraction=0.5,
        )
        streams = arrival_streams(spec, num_threads=1, seed=1)
        thread = next(streams)
        draws = [thread.next_gap() for _ in range(20_000)]
        idle_gap = GAP_CLOCK_HZ / 1e8       # 50 cycles
        burst_gap = GAP_CLOCK_HZ / 1e10     # 0.5 cycles
        threshold = (idle_gap * burst_gap) ** 0.5
        burst_draws = [g for g in draws if g < threshold]
        idle_draws = [g for g in draws if g >= threshold]
        assert len(burst_draws) > 50 and len(idle_draws) > 50
        ratio = (sum(idle_draws) / len(idle_draws)) / (
            sum(burst_draws) / len(burst_draws)
        )
        assert 20 < ratio < 500  # expected ~100

    def test_disabled_stream_is_none(self):
        assert arrival_streams(None, num_threads=4, seed=1) is None
        assert arrival_streams(ArrivalSpec(), num_threads=4, seed=1) is None


class TestOpenLoopReplay:
    def test_closed_loop_replay_matches_golden(self):
        result = _replay(build_workload("Uniform"))
        assert result.average_latency_s == GOLDEN_REPLAY["average_latency_s"]
        assert result.p99_latency_s == GOLDEN_REPLAY["p99_latency_s"]
        assert result.execution_time_s == GOLDEN_REPLAY["execution_time_s"]
        # Closed loop carries no open-loop measurements.
        assert result.offered_rps == 0.0
        assert result.achieved_rps == 0.0
        assert not result.saturated
        assert result.p99_sojourn_ns == 0.0

    def test_below_capacity_keeps_up(self):
        workload = build_workload(
            "Uniform", arrival=ArrivalSpec(process="poisson", rate_rps=1e9)
        )
        result = _replay(workload)
        assert result.offered_rps > 0.0
        assert not result.saturated
        assert result.achieved_rps == pytest.approx(
            result.offered_rps, rel=0.05
        )
        assert result.p50_sojourn_ns <= result.p95_sojourn_ns
        assert result.p95_sojourn_ns <= result.p99_sojourn_ns

    def test_past_capacity_saturates_with_higher_sojourn(self):
        def run(rate):
            return _replay(
                build_workload(
                    "Uniform",
                    arrival=ArrivalSpec(process="poisson", rate_rps=rate),
                )
            )

        light, heavy = run(1e9), run(2.56e11)
        assert heavy.saturated
        assert heavy.achieved_rps < 0.95 * heavy.offered_rps
        assert heavy.p99_sojourn_ns > light.p99_sojourn_ns

    def test_metrics_sampler_emits_load_track(self, tmp_path):
        workload = build_workload(
            "Uniform", arrival=ArrivalSpec(process="poisson", rate_rps=1e10)
        )
        trace = generate_packed_trace(workload, seed=1, num_requests=2000)
        simulator = SystemSimulator(
            build_configuration("XBar/OCM"),
            window_depth=workload.window,
            observability=ObservabilitySpec(
                metrics_path=str(tmp_path / "m.csv")
            ),
        )
        simulator.run(trace)
        rows = simulator._obs_metrics.rows
        metrics = {(row[1], row[2]) for row in rows}
        assert ("load", "offered_rps") in metrics
        assert ("load", "achieved_rps") in metrics

    def test_metrics_sampler_closed_loop_has_no_load_track(self, tmp_path):
        workload = build_workload("Uniform")
        trace = generate_packed_trace(workload, seed=1, num_requests=2000)
        simulator = SystemSimulator(
            build_configuration("XBar/OCM"),
            window_depth=workload.window,
            observability=ObservabilitySpec(
                metrics_path=str(tmp_path / "m.csv")
            ),
        )
        simulator.run(trace)
        resources = {row[1] for row in simulator._obs_metrics.rows}
        assert "load" not in resources


class TestKneeDetection:
    def test_delivery_ratio_knee(self):
        offered = [1e9, 2e9, 4e9, 8e9]
        achieved = [1e9, 2e9, 3.5e9, 4e9]  # 4e9 point delivers 87.5%
        p99 = [30.0, 31.0, 35.0, 60.0]
        assert detect_knee(offered, achieved, p99) == 2

    def test_p99_inflection_knee(self):
        offered = [1e9, 2e9, 4e9]
        achieved = [1e9, 2e9, 4e9]  # keeps up throughout
        p99 = [30.0, 32.0, 70.0]  # but the tail blows past 2x
        assert detect_knee(offered, achieved, p99) == 2

    def test_no_knee(self):
        offered = [1e9, 2e9]
        achieved = [0.99e9, 1.98e9]
        p99 = [30.0, 31.0]
        assert detect_knee(offered, achieved, p99) is None

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="mismatched"):
            detect_knee([1.0], [1.0, 2.0], [1.0])

    def test_report_section_empty_without_open_loop_records(self):
        assert saturation_report_section([]) == []


class TestLatencyThroughputSweep:
    def test_spec_shape(self):
        spec = latency_throughput_sweep_spec(scale="quick")
        points = expand(spec)
        assert len(points) == 5 * 2  # quick ladder x two configurations
        rates = {p.axis_values["rate_rps"] for p in points}
        assert len(rates) == 5
        base_arrival = spec.base.workloads[0].arrival
        assert base_arrival is not None and base_arrival.process == "poisson"

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError, match="unknown scale"):
            latency_throughput_sweep_spec(scale="huge")

    def test_registered_name_accepts_scale(self):
        from repro.sweeps import build_registered_sweep

        spec = build_registered_sweep("latency-throughput", scale="quick")
        assert spec.name == "latency-throughput"

    def test_jobs_parallel_matches_serial(self):
        def outcome(jobs):
            spec = latency_throughput_sweep_spec(
                rates=(4e9, 6.4e10),
                configurations=("XBar/OCM",),
                num_requests=1000,
                scale="quick",
            )
            return run_sweep(spec, jobs=jobs)

        serial, parallel = outcome(1), outcome(2)
        assert [r.result.to_dict() for r in serial.records] == [
            r.result.to_dict() for r in parallel.records
        ]

    def test_quick_sweep_finds_knees_with_monotonic_p99(self, tmp_path):
        spec = latency_throughput_sweep_spec(scale="quick", num_requests=1000)
        outcome = run_sweep(spec, directory=tmp_path, jobs=2)
        by_config = {}
        for record in outcome.records:
            by_config.setdefault(record.result.configuration, []).append(
                record.result
            )
        for name in ("XBar/OCM", "LMesh/ECM"):
            results = sorted(by_config[name], key=lambda r: r.offered_rps)
            knee = detect_knee(
                [r.offered_rps for r in results],
                [r.achieved_rps for r in results],
                [r.p99_sojourn_ns for r in results],
            )
            assert knee is not None, name
            tail = [r.p99_sojourn_ns for r in results[max(knee - 1, 0):]]
            assert tail == sorted(tail), (name, tail)
        report = (tmp_path / "report.md").read_text(encoding="utf-8")
        assert "Latency-throughput saturation" in report
        header = (
            (tmp_path / "results.csv")
            .read_text(encoding="utf-8")
            .splitlines()[0]
        )
        for column in (
            "offered_rps", "achieved_rps", "saturated",
            "p50_sojourn_ns", "p95_sojourn_ns", "p99_sojourn_ns",
        ):
            assert column in header


class TestDeprecatedCommands:
    def test_simulate_warns_but_works(self, capsys):
        with pytest.warns(DeprecationWarning, match="simulate.*deprecated"):
            code = main(
                ["simulate", "Uniform", "--requests", "300",
                 "--configurations", "XBar/OCM"]
            )
        assert code == 0
        captured = capsys.readouterr()
        assert "configuration" in captured.out  # the results table printed
        assert "deprecated" in captured.err

    def test_evaluate_warns_but_works(self, capsys):
        with pytest.warns(DeprecationWarning, match="evaluate.*deprecated"):
            code = main(
                ["evaluate", "--scale", "quick", "--configs", "XBar",
                 "--workloads", "Uniform"]
            )
        assert code == 0
        assert "Figure 8" in capsys.readouterr().out

    def test_run_does_not_warn(self, tmp_path, recwarn):
        path = tmp_path / "s.json"
        Scenario(
            name="t",
            system=SystemSpec(configurations=("XBar/OCM",)),
            workloads=(WorkloadSpec(name="Uniform", num_requests=300),),
        ).save(path)
        assert main(["run", str(path)]) == 0
        assert not [
            w for w in recwarn if issubclass(w.category, DeprecationWarning)
        ]


class TestSharedExecutionFlags:
    #: The flags `run` and `sweep run` must both accept (defined once in
    #: the shared parent parser).
    SHARED = (
        "--jobs", "--timeout", "--retries", "--allow-failures",
        "--progress", "--metrics-out", "--timeline-out", "--verbose",
    )

    def test_both_subcommands_accept_the_shared_flags(self):
        from repro.cli import build_parser

        parser = build_parser()
        run_args = parser.parse_args(
            ["run", "s.json", "--jobs", "2", "--timeout", "5",
             "--retries", "1", "--allow-failures", "--progress",
             "--metrics-out", "m.csv", "--timeline-out", "t.json",
             "--verbose"]
        )
        sweep_args = parser.parse_args(
            ["sweep", "run", "spec.json", "--jobs", "2", "--timeout", "5",
             "--retries", "1", "--allow-failures", "--progress",
             "--metrics-out", "m.csv", "--timeline-out", "t.json",
             "--verbose"]
        )
        for args in (run_args, sweep_args):
            assert args.jobs == 2
            assert args.timeout == 5.0
            assert args.retries == 1
            assert args.allow_failures is True
            assert args.progress is True
            assert args.metrics_out == "m.csv"
            assert args.timeline_out == "t.json"
            assert args.verbose is True

    def test_scale_applies_to_registered_sweeps_only(self, tmp_path):
        spec_file = tmp_path / "spec.json"
        spec_file.write_text("{}", encoding="utf-8")
        with pytest.raises(SystemExit, match="registered sweep names only"):
            main(
                ["sweep", "run", str(spec_file), "--scale", "quick"]
            )
