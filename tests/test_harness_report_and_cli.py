"""Tests for the markdown report, the sensitivity sweeps, the address-level
workloads and the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.harness.experiments import EvaluationMatrix, ExperimentScale
from repro.harness.report import build_report
from repro.harness.sensitivity import (
    SweepPoint,
    channel_bandwidth_sensitivity,
    format_sweep,
    required_laser_power_sensitivity,
    ring_through_loss_sensitivity,
    waveguide_loss_sensitivity,
    window_depth_sensitivity,
)
from repro.trace.address import (
    AccessPattern,
    AddressWorkload,
    random_shared_workload,
    resident_workload,
    streaming_workload,
)


def _tiny_matrix():
    return EvaluationMatrix(
        scale=ExperimentScale(
            synthetic_requests=600,
            splash_fraction=1e-6,
            splash_min_requests=600,
            splash_max_requests=600,
        ),
        configuration_names=["LMesh/ECM", "XBar/OCM"],
        include_splash=False,
    )


class TestReport:
    def test_build_report_and_render(self):
        report = build_report(_tiny_matrix())
        markdown = report.to_markdown()
        assert "# Corona reproduction report" in markdown
        assert "Figure 8" in markdown and "Figure 11" in markdown
        assert "Table 1" in markdown
        assert "| Workload |" in markdown
        assert "XBar/OCM" in markdown

    def test_report_summary_and_write(self, tmp_path):
        report = build_report(_tiny_matrix())
        summary = report.summary()
        assert "corona_over_baseline_synthetic" in summary
        assert summary["corona_over_baseline_synthetic"] > 0
        path = report.write(tmp_path / "report.md")
        assert path.exists()
        assert path.read_text().startswith("# Corona reproduction report")

    def test_build_report_parallel_jobs_matches_serial(self):
        serial = build_report(_tiny_matrix())
        parallel = build_report(_tiny_matrix(), jobs=2)
        assert parallel.results == serial.results
        assert parallel.to_markdown().splitlines()[0] == "# Corona reproduction report"

    def test_evaluate_parser_accepts_jobs(self):
        import argparse

        parser = build_parser()
        args = parser.parse_args(["evaluate", "--jobs", "4"])
        assert args.jobs == 4
        args = parser.parse_args(["evaluate"])
        assert args.jobs == 1
        # --jobs is documented in the evaluate --help epilog.
        subparsers = next(
            action
            for action in parser._actions
            if isinstance(action, argparse._SubParsersAction)
        )
        help_text = subparsers.choices["evaluate"].format_help()
        assert "--jobs" in help_text
        assert "bit-identical" in help_text


class TestSensitivity:
    def test_waveguide_loss_sweep_shows_feasibility_cliff(self):
        points = waveguide_loss_sensitivity()
        assert points[0].feasible
        assert not points[-1].feasible
        margins = [p.metric for p in points]
        assert margins == sorted(margins, reverse=True)

    def test_ring_loss_sweep_monotone(self):
        points = ring_through_loss_sensitivity()
        margins = [p.metric for p in points]
        assert margins == sorted(margins, reverse=True)
        assert points[0].feasible

    def test_laser_power_grows_with_loss(self):
        points = required_laser_power_sensitivity()
        powers = [p.metric for p in points]
        assert powers == sorted(powers)

    def test_window_sweep_monotone_nondecreasing(self):
        points = window_depth_sensitivity(num_requests=1200, depths=(1, 4, 8))
        values = [p.metric for p in points]
        assert values[1] > values[0]
        assert values[2] >= values[1] * 0.95

    def test_channel_bandwidth_sweep(self):
        points = channel_bandwidth_sensitivity(
            num_requests=1200, channel_bandwidths_bytes_per_s=(80e9, 320e9)
        )
        assert points[1].metric >= points[0].metric

    def test_format_sweep(self):
        text = format_sweep(
            "demo", [SweepPoint(1.0, 2.0), SweepPoint(2.0, 1.0, feasible=False)],
            "x", "y",
        )
        assert "demo" in text and "NO" in text


class TestAddressWorkloads:
    def test_streaming_misses_heavily(self):
        workload = streaming_workload(accesses_per_thread=400, threads_per_cluster=4)
        trace, hierarchies = workload.generate(seed=1, clusters=2)
        assert trace.total_requests > 0
        assert hierarchies[0].l2_miss_rate() > 0.5

    def test_resident_workload_rarely_misses(self):
        workload = resident_workload(accesses_per_thread=400, threads_per_cluster=4)
        trace, hierarchies = workload.generate(seed=1, clusters=1)
        streaming = streaming_workload(accesses_per_thread=400, threads_per_cluster=4)
        streaming_trace, _ = streaming.generate(seed=1, clusters=1)
        assert trace.total_requests < streaming_trace.total_requests

    def test_random_shared_spreads_homes(self):
        workload = random_shared_workload(
            accesses_per_thread=300, threads_per_cluster=4
        )
        trace, _ = workload.generate(seed=1, clusters=2)
        assert len(trace.destination_histogram()) > 8

    def test_generated_trace_is_replayable(self, small_config):
        from repro.core.configs import configuration_by_name
        from repro.core.system import SystemSimulator

        workload = streaming_workload(
            accesses_per_thread=200,
            threads_per_cluster=2,
            num_clusters=16,
        )
        trace, _ = workload.generate(seed=1, clusters=4)
        result = SystemSimulator(
            configuration_by_name("XBar/OCM"), corona_config=small_config
        ).run(trace)
        assert result.num_requests == trace.total_requests

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            AddressWorkload(name="x", pattern=AccessPattern.STREAMING,
                            accesses_per_thread=0)
        with pytest.raises(ValueError):
            streaming_workload().generate(clusters=0)


class TestCli:
    def test_parser_builds(self):
        parser = build_parser()
        args = parser.parse_args(["tables"])
        assert args.command == "tables"

    def test_tables_command(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "Table 4" in out

    def test_inventory_command(self, capsys):
        assert main(["inventory", "--clusters", "16"]) == 0
        out = capsys.readouterr().out
        assert "Crossbar" in out

    def test_power_command(self, capsys):
        assert main(["power"]) == 0
        out = capsys.readouterr().out
        assert "penryn" in out and "optical" in out

    def test_sensitivity_command(self, capsys):
        assert main(["sensitivity"]) == 0
        out = capsys.readouterr().out
        assert "waveguide loss" in out

    def test_simulate_command(self, capsys):
        code = main([
            "simulate", "Uniform", "--requests", "800",
            "--configurations", "LMesh/ECM", "XBar/OCM",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "XBar/OCM" in out

    def test_evaluate_parser_accepts_filters_and_coherence(self):
        parser = build_parser()
        args = parser.parse_args(
            [
                "evaluate",
                "--configs", "XBar", "LMesh",
                "--workloads", "Uniform",
                "--coherence",
                "--sharing-fractions", "0", "0.3",
            ]
        )
        assert args.configs == ["XBar", "LMesh"]
        assert args.workloads == ["Uniform"]
        assert args.coherence
        assert args.sharing_fractions == [0.0, 0.3]
        # Defaults: no filters, no sweep.
        args = parser.parse_args(["evaluate"])
        assert args.configs is None and args.workloads is None
        assert not args.coherence

    def test_evaluate_rejects_unknown_filters(self):
        with pytest.raises(SystemExit):
            main(["evaluate", "--configs", "NoSuchNetwork"])
        with pytest.raises(SystemExit):
            main(["evaluate", "--workloads", "NoSuchWorkload"])

    def test_simulate_splash_workload(self, capsys):
        assert main([
            "simulate", "Barnes", "--requests", "800",
            "--configurations", "XBar/OCM",
        ]) == 0

    def test_simulate_unknown_workload(self):
        with pytest.raises(SystemExit):
            main(["simulate", "NotAWorkload"])


class TestScenarioCli:
    """The Scenario API subcommands: run / scenario init|validate|list /
    trace info|convert."""

    def _init_small_scenario(self, tmp_path, capsys):
        """init a one-pair template and shrink it for test speed."""
        import json

        path = tmp_path / "scenario.json"
        assert main([
            "scenario", "init", str(path),
            "--configurations", "XBar/OCM",
            "--workloads", "Uniform",
        ]) == 0
        capsys.readouterr()
        data = json.loads(path.read_text())
        data["scale"]["synthetic_requests"] = 500
        path.write_text(json.dumps(data))
        return path

    def test_init_validate_run_flow(self, tmp_path, capsys):
        path = self._init_small_scenario(tmp_path, capsys)
        assert main(["scenario", "validate", str(path)]) == 0
        assert "OK" in capsys.readouterr().out
        assert main(["run", str(path)]) == 0
        assert "# Corona reproduction report" in capsys.readouterr().out

    def test_run_writes_derived_sinks(self, tmp_path, capsys):
        path = self._init_small_scenario(tmp_path, capsys)
        report = tmp_path / "report.md"
        assert main(["run", str(path), "--output", str(report)]) == 0
        out = capsys.readouterr().out
        assert "report written to" in out
        assert report.exists()
        assert report.with_suffix(".results.json").exists()
        assert report.with_suffix(".results.csv").exists()

    def test_init_rejects_unknown_configuration(self, tmp_path):
        with pytest.raises(SystemExit, match="unknown configuration"):
            main([
                "scenario", "init", str(tmp_path / "s.json"),
                "--configurations", "Bogus/XYZ",
            ])
        assert not (tmp_path / "s.json").exists()

    def test_init_refuses_overwrite(self, tmp_path, capsys):
        path = self._init_small_scenario(tmp_path, capsys)
        with pytest.raises(SystemExit, match="--force"):
            main(["scenario", "init", str(path)])
        assert main(["scenario", "init", str(path), "--force",
                     "--workloads", "Neighbor"]) == 0

    def test_validate_reports_bad_field(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"scale": {"tier": "warp"}}')
        with pytest.raises(SystemExit, match="scale.tier"):
            main(["scenario", "validate", str(path)])

    def test_run_rejects_missing_file(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["run", str(tmp_path / "nope.json")])

    def test_scenario_list_shows_registries(self, capsys):
        assert main(["scenario", "list"]) == 0
        out = capsys.readouterr().out
        for expected in ("XBar/OCM", "Uniform", "Water-Sp", "coherence-sweep"):
            assert expected in out

    def test_trace_info_and_convert(self, tmp_path, capsys):
        from repro.trace.io import read_trace_binary, write_trace
        from repro.trace.synthetic import uniform_workload

        text_path = tmp_path / "uni.trace"
        write_trace(
            uniform_workload().generate(seed=1, num_requests=600), text_path
        )
        assert main(["trace", "info", str(text_path)]) == 0
        out = capsys.readouterr().out
        assert "records" in out and "600" in out

        binary_path = tmp_path / "uni.bin"
        assert main([
            "trace", "convert", str(text_path), str(binary_path),
        ]) == 0
        capsys.readouterr()
        assert read_trace_binary(binary_path).total_requests == 600

        # auto direction: binary input converts back to text.
        round_trip = tmp_path / "round.trace"
        assert main([
            "trace", "convert", str(binary_path), str(round_trip),
        ]) == 0
        assert round_trip.read_text() == text_path.read_text()

    def test_trace_info_rejects_garbage(self, tmp_path):
        path = tmp_path / "garbage.bin"
        path.write_bytes(b"not a trace at all")
        with pytest.raises(SystemExit, match="neither"):
            main(["trace", "info", str(path)])
