"""Tests for the experiment harness: matrices, runner, tables and figures."""

import pytest

from repro.harness.experiments import (
    FULL_SCALE,
    QUICK_SCALE,
    EvaluationMatrix,
    ExperimentScale,
    default_matrix,
    quick_matrix,
)
from repro.harness.figures import (
    PAPER_SPEEDUP_SUMMARY,
    figure10_latency,
    figure11_power,
    figure8_speedup,
    figure9_bandwidth,
    render_figure,
    speedup_summary,
)
from repro.harness.runner import EvaluationRunner
from repro.harness.tables import (
    format_table,
    render_all_tables,
    table1_resource_configuration,
    table2_optical_inventory,
    table3_benchmarks,
    table4_memory_interconnects,
)


class TestExperimentScale:
    def test_default_scale_is_valid(self):
        scale = ExperimentScale()
        assert scale.synthetic_requests > 0
        assert 0 < scale.splash_fraction <= 1

    def test_splash_requests_clamped(self):
        scale = ExperimentScale(
            splash_fraction=1e-6, splash_min_requests=1000, splash_max_requests=5000
        )
        assert scale.splash_requests(240_000_000) == 1000
        scale = ExperimentScale(
            splash_fraction=0.5, splash_min_requests=1000, splash_max_requests=5000
        )
        assert scale.splash_requests(240_000_000) == 5000

    def test_named_scales(self):
        assert QUICK_SCALE.synthetic_requests < FULL_SCALE.synthetic_requests

    def test_invalid_scales_rejected(self):
        with pytest.raises(ValueError):
            ExperimentScale(synthetic_requests=0)
        with pytest.raises(ValueError):
            ExperimentScale(splash_fraction=0.0)
        with pytest.raises(ValueError):
            ExperimentScale(splash_min_requests=10, splash_max_requests=5)


class TestEvaluationMatrix:
    def test_default_matrix_is_5_by_17(self):
        matrix = default_matrix()
        assert len(matrix.configurations()) == 5
        assert len(matrix.workloads()) == 17
        assert matrix.run_count() == 85

    def test_workload_names_in_paper_order(self):
        matrix = default_matrix()
        names = matrix.workload_names()
        assert names[:6] == [
            "Uniform",
            "Hot Spot",
            "Tornado",
            "Transpose",
            "Bit Reversal",
            "Neighbor",
        ]
        assert names[6] == "Barnes"
        assert len(matrix.synthetic_names()) == 6
        assert len(matrix.splash_names()) == 11

    def test_requests_for_scales_by_workload_kind(self):
        matrix = quick_matrix()
        synthetic = matrix.workloads()[0]
        splash = matrix.workloads()[8]  # FFT
        assert matrix.requests_for(synthetic) == matrix.scale.synthetic_requests
        assert (
            matrix.scale.splash_min_requests
            <= matrix.requests_for(splash)
            <= matrix.scale.splash_max_requests
        )

    def test_subset_matrix(self):
        matrix = EvaluationMatrix(include_splash=False)
        assert len(matrix.workloads()) == 6
        assert matrix.splash_names() == []

    def test_workload_filter_substring(self):
        matrix = EvaluationMatrix(workload_filter=["uni", "fft"])
        assert matrix.workload_names() == ["Uniform", "FFT"]
        assert matrix.synthetic_names() == ["Uniform"]
        assert matrix.splash_names() == ["FFT"]
        assert matrix.run_count() == 10

    def test_workload_filter_no_match_is_empty(self):
        matrix = EvaluationMatrix(workload_filter=["nosuchworkload"])
        assert matrix.workloads() == []
        assert matrix.run_count() == 0


def _tiny_matrix():
    """A matrix small enough to run inside a unit test."""
    matrix = EvaluationMatrix(
        scale=ExperimentScale(
            synthetic_requests=800,
            splash_fraction=1e-6,
            splash_min_requests=800,
            splash_max_requests=800,
        ),
        configuration_names=["LMesh/ECM", "XBar/OCM"],
        include_splash=False,
    )
    return matrix


class TestEvaluationRunner:
    def test_run_produces_all_pairs(self):
        runner = EvaluationRunner(matrix=_tiny_matrix())
        results = runner.run()
        assert len(results) == 12  # 2 configurations x 6 synthetic workloads
        assert runner.total_simulated_requests() == 12 * 800
        assert runner.total_wall_clock_seconds() > 0

    def test_run_workload_by_name(self):
        runner = EvaluationRunner(matrix=_tiny_matrix())
        results = runner.run_workload("Uniform")
        assert [r.configuration for r in results] == ["LMesh/ECM", "XBar/OCM"]

    def test_unknown_workload_rejected(self):
        with pytest.raises(KeyError):
            EvaluationRunner(matrix=_tiny_matrix()).run_workload("Linpack")

    def test_progress_callback(self):
        messages = []
        runner = EvaluationRunner(matrix=_tiny_matrix(), progress=messages.append)
        runner.run_workload("Uniform")
        assert len(messages) == 2
        assert "Uniform" in messages[0]

    def test_figures_extractable_from_runner_results(self):
        runner = EvaluationRunner(matrix=_tiny_matrix())
        results = runner.run()
        speedups = figure8_speedup(results, workload_order=runner.matrix.workload_names())
        assert set(speedups) == {
            "Uniform",
            "Hot Spot",
            "Tornado",
            "Transpose",
            "Bit Reversal",
            "Neighbor",
        }
        for by_config in speedups.values():
            assert by_config["LMesh/ECM"] == pytest.approx(1.0)
            assert by_config["XBar/OCM"] > 0
        bandwidths = figure9_bandwidth(results)
        latencies = figure10_latency(results)
        powers = figure11_power(results)
        for table in (bandwidths, latencies, powers):
            assert set(table) == set(speedups)


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [["1", "2"], ["333", "4"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "333" in text

    def test_format_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["1"]])

    def test_table1_matches_paper(self):
        rows = dict(table1_resource_configuration())
        assert rows["Number of clusters"] == "64"
        assert rows["Issue width"] == "2"

    def test_table2_totals(self):
        rows = table2_optical_inventory()
        total = rows[-1]
        assert total[0] == "Total"
        assert total[1] == 388

    def test_table3_lists_all_17_workloads(self):
        assert len(table3_benchmarks()) == 17

    def test_table4_columns(self):
        rows = table4_memory_interconnects()
        by_key = {row[0]: (row[1], row[2]) for row in rows}
        assert by_key["Memory controllers"] == (64, 64)
        assert float(by_key["Memory bandwidth (TB/s)"][0]) == pytest.approx(10.24)
        assert float(by_key["Memory bandwidth (TB/s)"][1]) == pytest.approx(0.96)

    def test_render_all_tables(self):
        report = render_all_tables()
        for title in ("Table 1", "Table 2", "Table 3", "Table 4"):
            assert title in report


class TestFigures:
    def test_render_figure_produces_bars(self):
        table = {"Uniform": {"LMesh/ECM": 1.0, "XBar/OCM": 4.0}}
        chart = render_figure(table, title="Figure 8", unit="x")
        assert "Figure 8" in chart
        assert "XBar/OCM" in chart
        assert chart.count("#") > 0

    def test_render_figure_rejects_tiny_width(self):
        with pytest.raises(ValueError):
            render_figure({}, title="x", width=2)

    def test_speedup_summary_keys(self):
        # Build a fake result set with the right configurations.
        from tests.test_core_config_and_results import _result

        results = []
        for workload in ("Uniform", "FFT"):
            results.append(_result(workload, "LMesh/ECM", 8e-6))
            results.append(_result(workload, "HMesh/ECM", 6e-6))
            results.append(_result(workload, "HMesh/OCM", 3e-6))
            results.append(_result(workload, "XBar/OCM", 2e-6))
        summary = speedup_summary(results, ["Uniform"], ["FFT"])
        assert summary["synthetic_ocm_over_ecm"] == pytest.approx(2.0)
        assert summary["splash_xbar_over_hmesh_ocm"] == pytest.approx(1.5)
        assert summary["corona_over_baseline_synthetic"] == pytest.approx(4.0)

    def test_paper_reference_values(self):
        assert PAPER_SPEEDUP_SUMMARY["synthetic_ocm_over_ecm"] == 3.28
        assert PAPER_SPEEDUP_SUMMARY["splash_ocm_over_ecm"] == 1.80
