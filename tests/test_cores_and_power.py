"""Tests for core/cluster/hub/thread models and the power models."""

import pytest

from repro.cores.cluster import Cluster, ClusterParameters
from repro.cores.core import Core, CoreParameters, CorePowerAreaModel
from repro.cores.hub import Hub
from repro.cores.thread import ThreadWindow
from repro.power.cacti import CacheGeometry, cache_power_area
from repro.power.chip import corona_chip_power
from repro.power.electrical import (
    MeshPowerModel,
    electrical_memory_interconnect_power_w,
)
from repro.power.optical import (
    PhotonicPowerBudget,
    optical_memory_interconnect_power_w,
)


class TestCore:
    def test_peak_flops_per_core(self):
        # 5 GHz x 4-wide SIMD x 2 (FMA) = 40 Gflop/s per core.
        assert CoreParameters().peak_flops == pytest.approx(40e9)

    def test_core_construction(self):
        core = Core(core_id=3)
        assert core.hardware_threads == 4
        assert core.peak_flops == pytest.approx(40e9)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            CoreParameters(frequency_hz=0.0)
        with pytest.raises(ValueError):
            CoreParameters(threads=0)

    def test_power_area_anchors(self):
        model = CorePowerAreaModel()
        assert 0.3 < model.penryn_based_core_power_w() < 0.7
        assert 0.1 < model.silverthorne_based_core_power_w() < 0.3
        assert model.penryn_based_core_area_mm2() > 0
        assert model.silverthorne_based_core_area_mm2() > model.penryn_based_core_area_mm2()


class TestCluster:
    def test_cluster_has_four_cores_and_sixteen_threads(self):
        cluster = Cluster(cluster_id=0)
        assert len(cluster.cores) == 4
        assert cluster.hardware_threads == 16

    def test_cluster_peak_flops(self):
        assert Cluster(cluster_id=0).peak_flops == pytest.approx(160e9)

    def test_thread_ids_are_contiguous_per_cluster(self):
        cluster = Cluster(cluster_id=2)
        assert list(cluster.thread_ids()) == list(range(32, 48))

    def test_invalid_cluster_parameters(self):
        with pytest.raises(ValueError):
            ClusterParameters(cores=0)


class TestHub:
    def test_mshr_allocation_waits_when_full(self):
        hub = Hub(cluster_id=0, mshrs=2)
        hub.mshr_pool.acquire(0.0, release_time_hint=100e-9)
        hub.mshr_pool.acquire(0.0, release_time_hint=200e-9)
        grant = hub.allocate_mshr(0.0, release_time=300e-9)
        assert grant == pytest.approx(100e-9)

    def test_injection_adds_forwarding_latency(self):
        hub = Hub(cluster_id=0)
        departure = hub.inject(0.0, departure_time=1e-9)
        assert departure == pytest.approx(hub.forwarding_latency_s)
        assert hub.messages_routed == 1


class TestThreadWindow:
    def test_issue_follows_gap_when_window_open(self):
        window = ThreadWindow(thread_id=0, depth=2, clock_hz=5e9)
        issue = window.earliest_issue_time(gap_cycles=10)
        assert issue == pytest.approx(2e-9)

    def test_issue_blocks_on_window(self):
        window = ThreadWindow(thread_id=0, depth=2, clock_hz=5e9)
        window.record_issue(0.0, completion_time=100e-9)
        window.record_issue(1e-9, completion_time=50e-9)
        # Third issue must wait for the first (oldest in window) to complete.
        issue = window.earliest_issue_time(gap_cycles=5)
        assert issue == pytest.approx(100e-9)

    def test_deep_window_tolerates_latency(self):
        shallow = ThreadWindow(thread_id=0, depth=1, clock_hz=5e9)
        deep = ThreadWindow(thread_id=1, depth=8, clock_hz=5e9)
        for window in (shallow, deep):
            time = 0.0
            for _ in range(8):
                time = window.earliest_issue_time(gap_cycles=5)
                window.record_issue(time, completion_time=time + 100e-9)
        assert deep.last_issue_time < shallow.last_issue_time

    def test_completion_before_issue_rejected(self):
        window = ThreadWindow(thread_id=0)
        with pytest.raises(ValueError):
            window.record_issue(10e-9, completion_time=5e-9)

    def test_finish_time(self):
        window = ThreadWindow(thread_id=0, depth=4)
        window.record_issue(0.0, completion_time=30e-9)
        window.record_issue(1e-9, completion_time=20e-9)
        assert window.finish_time == pytest.approx(30e-9)


class TestCactiModel:
    def test_larger_cache_has_larger_area_and_leakage(self):
        small = cache_power_area(CacheGeometry(capacity_bytes=32 * 1024, associativity=4))
        large = cache_power_area(
            CacheGeometry(capacity_bytes=4 * 1024 * 1024, associativity=16)
        )
        assert large.area_mm2 > small.area_mm2
        assert large.leakage_w > small.leakage_w

    def test_higher_associativity_costs_energy(self):
        low = cache_power_area(CacheGeometry(capacity_bytes=64 * 1024, associativity=2))
        high = cache_power_area(CacheGeometry(capacity_bytes=64 * 1024, associativity=16))
        assert high.read_energy_j > low.read_energy_j

    def test_total_power_includes_dynamic(self):
        estimate = cache_power_area(
            CacheGeometry(capacity_bytes=64 * 1024, associativity=4)
        )
        idle = estimate.total_power_w(0.0, 0.0)
        busy = estimate.total_power_w(1e9, 1e8)
        assert busy > idle

    def test_8t_cell_is_larger(self):
        six = cache_power_area(
            CacheGeometry(capacity_bytes=64 * 1024, associativity=4, cell_type="6T")
        )
        eight = cache_power_area(
            CacheGeometry(capacity_bytes=64 * 1024, associativity=4, cell_type="8T")
        )
        assert eight.area_mm2 > six.area_mm2

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            CacheGeometry(capacity_bytes=100, associativity=3)
        with pytest.raises(ValueError):
            cache_power_area(
                CacheGeometry(capacity_bytes=64 * 1024, associativity=4, cell_type="10T")
            )


class TestPowerModels:
    def test_mesh_energy_per_hop(self):
        model = MeshPowerModel()
        assert model.transaction_energy_j(5) == pytest.approx(5 * 196e-12)

    def test_mesh_power_for_bandwidth(self):
        model = MeshPowerModel()
        # ~1 TB/s of 72-byte messages over ~5.3 hops is tens of watts.
        power = model.power_for_bandwidth_w(1e12, average_hops=5.33)
        assert 10 < power < 30

    def test_electrical_memory_power_exceeds_160w_at_10tbps(self):
        assert electrical_memory_interconnect_power_w(10.24e12) > 160.0

    def test_optical_memory_power_is_about_6w(self):
        assert optical_memory_interconnect_power_w(10.24e12) == pytest.approx(6.4, rel=0.05)

    def test_photonic_budget_total(self):
        budget = PhotonicPowerBudget()
        assert budget.total_w == pytest.approx(39.0)
        assert budget.crossbar_share_w() == pytest.approx(26.0, rel=0.01)

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            MeshPowerModel().transaction_energy_j(-1)
        with pytest.raises(ValueError):
            electrical_memory_interconnect_power_w(-1.0)


class TestChipPower:
    def test_penryn_anchor_matches_paper_range(self):
        report = corona_chip_power(anchor="penryn")
        assert 140 <= report.processor_power_w <= 170
        assert 400 <= report.core_die_area_mm2 <= 450

    def test_silverthorne_anchor_matches_paper_range(self):
        report = corona_chip_power(anchor="silverthorne")
        assert 75 <= report.processor_power_w <= 100
        assert 460 <= report.core_die_area_mm2 <= 520

    def test_total_includes_photonics_and_memory_links(self):
        report = corona_chip_power(anchor="penryn")
        assert report.total_power_w > report.processor_power_w
        assert report.photonic_power_w == pytest.approx(39.0)

    def test_as_dict_has_all_components(self):
        report = corona_chip_power(anchor="penryn").as_dict()
        for key in ("core_power_w", "l2_power_w", "total_power_w", "core_die_area_mm2"):
            assert key in report

    def test_unknown_anchor_rejected(self):
        with pytest.raises(ValueError):
            corona_chip_power(anchor="pentium")
