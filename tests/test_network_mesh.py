"""Tests for the electrical mesh interconnects (HMesh / LMesh)."""

import pytest

from repro.network.mesh import (
    ElectricalMesh,
    high_performance_mesh,
    low_performance_mesh,
)
from repro.network.message import Message, MessageType


def _request(src, dst):
    return Message(src=src, dst=dst, message_type=MessageType.READ_REQUEST)


def _response(src, dst):
    return Message(src=src, dst=dst, message_type=MessageType.READ_RESPONSE)


class TestMeshConstruction:
    def test_hmesh_bisection_bandwidth(self):
        assert high_performance_mesh().bisection_bandwidth_bytes_per_s() == pytest.approx(
            1.28e12
        )

    def test_lmesh_bisection_bandwidth(self):
        assert low_performance_mesh().bisection_bandwidth_bytes_per_s() == pytest.approx(
            0.64e12
        )

    def test_link_bandwidth_derived_from_bisection(self):
        mesh = high_performance_mesh()
        assert mesh.link_bandwidth_bytes_per_s == pytest.approx(1.28e12 / 16)

    def test_hop_latency_is_five_clocks(self):
        mesh = high_performance_mesh(clock_hz=5e9)
        assert mesh.hop_latency_s == pytest.approx(1e-9)

    def test_meshes_have_no_static_power(self):
        assert high_performance_mesh().static_power_w() == 0.0

    def test_all_links_built(self):
        mesh = high_performance_mesh()
        assert len(mesh.links) == 2 * 2 * 8 * 7
        assert len(mesh.routers) == 64


class TestMeshTransfers:
    def test_local_message_is_free(self):
        mesh = high_performance_mesh()
        result = mesh.transfer(_request(5, 5), now=0.0)
        assert result.arrival_time == 0.0
        assert result.hops == 0
        assert result.dynamic_energy_j == 0.0

    def test_single_hop_latency(self):
        mesh = high_performance_mesh()
        result = mesh.transfer(_request(0, 1), now=0.0)
        serialization = 16 / mesh.link_bandwidth_bytes_per_s
        assert result.hops == 1
        assert result.arrival_time == pytest.approx(1e-9 + serialization)

    def test_corner_to_corner_hops(self):
        mesh = high_performance_mesh()
        result = mesh.transfer(_response(0, 63), now=0.0)
        assert result.hops == 14
        assert result.propagation_delay == pytest.approx(14e-9)

    def test_energy_is_196pj_per_hop(self):
        mesh = high_performance_mesh()
        result = mesh.transfer(_response(0, 63), now=0.0)
        assert result.dynamic_energy_j == pytest.approx(14 * 196e-12)

    def test_contention_creates_queueing(self):
        mesh = low_performance_mesh()
        # Saturate one link with many large messages from the same source.
        results = [mesh.transfer(_response(0, 1), now=0.0) for _ in range(50)]
        assert results[-1].queueing_delay > results[0].queueing_delay
        assert results[-1].arrival_time > results[0].arrival_time

    def test_disjoint_paths_do_not_interfere(self):
        mesh = high_performance_mesh()
        first = mesh.transfer(_response(0, 1), now=0.0)
        second = mesh.transfer(_response(62, 63), now=0.0)
        assert second.queueing_delay == 0.0
        assert first.queueing_delay == 0.0

    def test_statistics_accumulate(self):
        mesh = high_performance_mesh()
        mesh.transfer(_request(0, 3), now=0.0)
        mesh.transfer(_response(3, 0), now=1e-9)
        assert mesh.messages_sent == 2
        assert mesh.bytes_sent == pytest.approx(16 + 72)
        assert mesh.hop_count_total == 6
        assert mesh.total_dynamic_energy_j > 0

    def test_dynamic_power(self):
        mesh = high_performance_mesh()
        mesh.transfer(_response(0, 63), now=0.0)
        power = mesh.dynamic_power_w(1e-6)
        assert power == pytest.approx(14 * 196e-12 / 1e-6)

    def test_out_of_range_endpoint_rejected(self):
        mesh = high_performance_mesh()
        with pytest.raises(ValueError):
            mesh.transfer(_request(0, 64), now=0.0)

    def test_reset_statistics(self):
        mesh = high_performance_mesh()
        mesh.transfer(_response(0, 63), now=0.0)
        mesh.reset_statistics()
        assert mesh.messages_sent == 0
        assert mesh.hop_count_total == 0
        assert mesh.total_dynamic_energy_j == 0.0

    def test_hot_link_reporting(self):
        mesh = high_performance_mesh()
        for _ in range(10):
            mesh.transfer(_response(0, 1), now=0.0)
        hottest = mesh.most_utilized_links(elapsed_seconds=1e-6, count=1)
        assert hottest[0][0] == (0, 1)
        assert hottest[0][1] > 0

    def test_average_link_utilization(self):
        mesh = high_performance_mesh()
        mesh.transfer(_response(0, 63), now=0.0)
        assert 0 < mesh.average_link_utilization(1e-6) < 1

    def test_small_mesh_supported(self):
        mesh = ElectricalMesh("tiny", num_clusters=16, bisection_bandwidth_bytes_per_s=0.32e12)
        result = mesh.transfer(_request(0, 15), now=0.0)
        assert result.hops == 6
