"""Tests for the memory substrate: channels, DRAM, controllers, systems."""

import pytest

from repro.memory.channel import (
    ElectricalMemoryChannel,
    MemoryChannel,
    OpticalMemoryChannel,
)
from repro.memory.controller import MemoryController
from repro.memory.dram import (
    DramBank,
    DramDie,
    DramTimings,
    OcmModule,
    daisy_chain_delay,
)
from repro.memory.ecm import ElectricallyConnectedMemory, ecm_interconnect_summary
from repro.memory.ocm import OpticallyConnectedMemory, ocm_interconnect_summary


class TestMemoryChannels:
    def test_ocm_channel_bandwidth_is_160_gbytes(self):
        channel = OpticalMemoryChannel()
        assert channel.peak_bandwidth_bytes_per_s == pytest.approx(160e9)

    def test_ecm_channel_bandwidth_is_15_gbytes(self):
        channel = ElectricalMemoryChannel()
        assert channel.per_direction_bandwidth_bytes_per_s == pytest.approx(15e9)

    def test_ocm_power_per_gbps(self):
        channel = OpticalMemoryChannel()
        assert channel.interconnect_power_w_per_gbps == pytest.approx(0.078e-3)

    def test_ecm_power_per_gbps(self):
        assert ElectricalMemoryChannel().interconnect_power_w_per_gbps == pytest.approx(
            2e-3
        )

    def test_send_and_receive_complete_in_order(self):
        channel = OpticalMemoryChannel()
        first = channel.send(0.0, 64)
        second = channel.send(0.0, 64)
        assert second > first

    def test_half_duplex_shares_capacity(self):
        channel = OpticalMemoryChannel()
        channel.send(0.0, 16000)
        receive_done = channel.receive(0.0, 64)
        # The receive had to wait behind the outbound burst.
        assert receive_done > 16000 / channel.per_direction_bandwidth_bytes_per_s

    def test_utilization(self):
        channel = OpticalMemoryChannel()
        channel.send(0.0, 160)  # 1 ns of occupancy
        assert channel.utilization(10e-9) == pytest.approx(0.1)

    def test_serialization_rejects_negative(self):
        with pytest.raises(ValueError):
            OpticalMemoryChannel().serialization_time(-1)

    def test_custom_channel_validation(self):
        with pytest.raises(ValueError):
            MemoryChannel(name="bad", width_bits=0, data_rate_bps=1e9, full_duplex=True)


class TestDram:
    def test_bank_access_latency(self):
        bank = DramBank(bank_id=0)
        assert bank.access(0.0) == pytest.approx(20e-9)

    def test_bank_back_to_back_accesses_respect_cycle_time(self):
        bank = DramBank(bank_id=0)
        bank.access(0.0)
        second = bank.access(0.0)
        assert second == pytest.approx(40e-9)

    def test_bank_energy_accumulates(self):
        bank = DramBank(bank_id=0)
        bank.access(0.0)
        bank.access(0.0)
        assert bank.energy_j() == pytest.approx(2 * bank.timings.activate_energy_j)

    def test_die_interleaves_banks(self):
        die = DramDie(die_id=0, num_banks=4)
        addresses = [line << 6 for line in range(4)]
        banks = {die.bank_for_address(a).bank_id for a in addresses}
        assert banks == {0, 1, 2, 3}

    def test_die_parallel_banks_do_not_serialize(self):
        die = DramDie(die_id=0, num_banks=4)
        ready_times = [die.access(line << 6, 0.0) for line in range(4)]
        assert all(t == pytest.approx(20e-9) for t in ready_times)

    def test_module_total_banks(self):
        module = OcmModule(module_id=0, num_dram_dies=4, banks_per_die=8)
        assert module.total_banks == 32

    def test_module_access_counts(self):
        module = OcmModule(module_id=0)
        module.access(0, 0.0)
        module.access(64, 0.0)
        assert module.total_accesses() == 2
        assert module.energy_j() > 0

    def test_daisy_chain_delay_grows_linearly(self):
        assert daisy_chain_delay(0) == 0.0
        assert daisy_chain_delay(3) == pytest.approx(0.3e-9)

    def test_daisy_chain_rejects_negative(self):
        with pytest.raises(ValueError):
            daisy_chain_delay(-1)

    def test_timings_validation(self):
        with pytest.raises(ValueError):
            DramTimings(access_latency_s=0.0)


class TestMemoryController:
    def _controller(self, optical=True):
        channel = OpticalMemoryChannel() if optical else ElectricalMemoryChannel()
        return MemoryController(controller_id=0, channel=channel)

    def test_read_latency_near_20ns_when_idle(self):
        controller = self._controller()
        result = controller.access(now=0.0, size_bytes=64, is_write=False)
        assert 20e-9 <= result.completion_time <= 30e-9
        assert result.queueing_delay == 0.0

    def test_write_completes_without_return_transfer(self):
        controller = self._controller()
        read = controller.access(now=0.0, size_bytes=64, is_write=False, address=0)
        write = controller.access(now=1e-6, size_bytes=64, is_write=True, address=64)
        assert write.completion_time - 1e-6 <= read.completion_time

    def test_counts_reads_and_writes(self):
        controller = self._controller()
        controller.access(now=0.0, size_bytes=64, is_write=False)
        controller.access(now=0.0, size_bytes=64, is_write=True)
        assert controller.reads == 1
        assert controller.writes == 1
        assert controller.bytes_transferred == 128

    def test_ecm_channel_limits_throughput(self):
        controller = self._controller(optical=False)
        completions = [
            controller.access(now=0.0, size_bytes=64, is_write=False, address=i << 6)
            .completion_time
            for i in range(200)
        ]
        elapsed = max(completions)
        achieved = controller.bytes_transferred / elapsed
        # The 15 GB/s electrical channel caps sustained read bandwidth.
        assert achieved <= 15e9 * 1.05

    def test_ocm_sustains_much_higher_throughput_than_ecm(self):
        ocm = self._controller(optical=True)
        ecm = self._controller(optical=False)
        ocm_done = max(
            ocm.access(now=0.0, size_bytes=64, is_write=False, address=i << 6)
            .completion_time
            for i in range(200)
        )
        ecm_done = max(
            ecm.access(now=0.0, size_bytes=64, is_write=False, address=i << 6)
            .completion_time
            for i in range(200)
        )
        assert ecm_done > 3 * ocm_done

    def test_latency_statistics_track_accesses(self):
        controller = self._controller()
        controller.access(now=0.0, size_bytes=64, is_write=False)
        assert controller.average_latency_s() > 0
        assert controller.latency_stats.count == 1

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            self._controller().access(now=0.0, size_bytes=0, is_write=False)


class TestMemorySystems:
    def test_ocm_aggregate_bandwidth(self):
        system = OpticallyConnectedMemory()
        assert system.peak_bandwidth_bytes_per_s == pytest.approx(10.24e12)

    def test_ecm_aggregate_bandwidth(self):
        system = ElectricallyConnectedMemory()
        assert system.peak_bandwidth_bytes_per_s == pytest.approx(0.96e12)

    def test_one_controller_per_cluster(self):
        system = OpticallyConnectedMemory(num_controllers=16)
        assert len(system.controllers) == 16

    def test_access_routed_to_home_controller(self):
        system = OpticallyConnectedMemory(num_controllers=8)
        system.access(home_cluster=3, now=0.0, size_bytes=64, is_write=False)
        assert system.controller(3).accesses == 1
        assert system.total_accesses() == 1

    def test_unknown_controller_rejected(self):
        with pytest.raises(ValueError):
            OpticallyConnectedMemory(num_controllers=8).controller(9)

    def test_achieved_bandwidth(self):
        system = OpticallyConnectedMemory(num_controllers=8)
        for cluster in range(8):
            system.access(home_cluster=cluster, now=0.0, size_bytes=64, is_write=False)
        assert system.achieved_bandwidth_bytes_per_s(1e-6) == pytest.approx(8 * 64 / 1e-6)

    def test_busiest_controllers(self):
        system = OpticallyConnectedMemory(num_controllers=8)
        for _ in range(5):
            system.access(home_cluster=2, now=0.0, size_bytes=64, is_write=False)
        assert system.busiest_controllers(1)[0][0] == 2

    def test_interconnect_power_comparison(self):
        # OCM ~6.4 W vs ECM tens of watts for the same controller count.
        ocm_power = OpticallyConnectedMemory().interconnect_power_w()
        ecm_power = ElectricallyConnectedMemory().interconnect_power_w()
        assert ocm_power == pytest.approx(6.4, rel=0.05)
        assert ecm_power > ocm_power

    def test_average_latency_requires_accesses(self):
        system = OpticallyConnectedMemory(num_controllers=4)
        assert system.average_latency_s() == 0.0
        system.access(home_cluster=0, now=0.0, size_bytes=64, is_write=False)
        assert system.average_latency_s() > 0


class TestTable4Summaries:
    def test_ocm_summary_values(self):
        summary = ocm_interconnect_summary()
        assert summary["Memory controllers"] == 64
        assert summary["External connectivity"] == "256 fibers"
        assert summary["Memory bandwidth (TB/s)"] == pytest.approx(10.24)
        assert summary["Memory latency (ns)"] == 20.0

    def test_ecm_summary_values(self):
        summary = ecm_interconnect_summary()
        assert summary["External connectivity"] == "1536 pins"
        assert summary["Memory bandwidth (TB/s)"] == pytest.approx(0.96)

    def test_power_figures_match_paper_claims(self):
        ocm = ocm_interconnect_summary()
        ecm = ecm_interconnect_summary()
        assert ocm["Interconnect power (W)"] == pytest.approx(6.4, rel=0.05)
        assert ecm["Interconnect power (W)"] > ocm["Interconnect power (W)"]
