"""Tests for the declarative sweep subsystem (`repro.sweeps`): spec
round-trips and validation errors, grid expansion (cartesian and zipped),
deterministic point ids, the execution engine's trace reuse, checkpointed
kill-and-resume, serial/parallel bit-equivalence, the structured result
sinks, the legacy-experiment re-expression, and the CLI surface."""

from __future__ import annotations

import csv
import json
from dataclasses import replace

import pytest

from repro.api import (
    OutputSpec,
    ScaleSpec,
    Scenario,
    ScenarioError,
    SystemSpec,
    WorkloadSpec,
    run,
)
from repro.api.scenario import ExperimentSpec
from repro.cli import main
from repro.core.results import (
    RESULT_CSV_COLUMNS,
    long_form_columns,
    long_form_row,
)
from repro.harness.experiments import coherence_sweep
from repro.sweeps import (
    SweepAxis,
    SweepError,
    SweepSpec,
    TraceCache,
    coherence_sweep_spec,
    expand,
    load_sweep,
    run_sweep,
    sensitivity_sweep_spec,
    sweep_status,
)
from repro.sweeps.engine import MANIFEST_NAME, POINTS_NAME


def _base(num_requests: int = 500) -> Scenario:
    return Scenario(
        name="base",
        system=SystemSpec(configurations=("LMesh/ECM",)),
        workloads=(WorkloadSpec(name="Uniform", num_requests=num_requests),),
        scale=ScaleSpec(tier="quick", seed=1),
    )


def _grid(num_requests: int = 500, gaps=(20.0, 40.0)) -> SweepSpec:
    """A small (gaps x 2 configurations) grid, one pair per point."""
    return SweepSpec(
        name="grid",
        base=_base(num_requests),
        axes=(
            SweepAxis(
                name="gap",
                path="workloads[0].params.mean_gap_cycles",
                values=tuple(gaps),
            ),
            SweepAxis(
                name="configuration",
                path="system.configurations",
                values=(["LMesh/ECM"], ["XBar/OCM"]),
            ),
        ),
    )


class TestSweepSpec:
    def test_dict_round_trip_is_exact(self):
        spec = _grid()
        assert SweepSpec.from_dict(spec.to_dict()) == spec

    def test_json_clean_and_file_round_trip(self, tmp_path):
        spec = _grid()
        payload = json.loads(json.dumps(spec.to_dict()))
        assert SweepSpec.from_dict(payload) == spec
        path = spec.save(tmp_path / "spec.json")
        assert load_sweep(path) == spec

    def test_unknown_top_level_field_is_named(self):
        # Structural helpers are shared with the scenario parser, so the
        # error is a ScenarioError naming the field (SweepError subclasses
        # it, callers catch both uniformly).
        with pytest.raises(ScenarioError, match="axez"):
            SweepSpec.from_dict({"axez": []})

    def test_axis_requires_name_path_values(self):
        with pytest.raises(SweepError, match=r"axes\[0\].name"):
            SweepSpec.from_dict({"axes": [{"path": "scale.seed"}]})
        with pytest.raises(SweepError, match=r"axes\[0\].path"):
            SweepSpec.from_dict({"axes": [{"name": "seed"}]})
        with pytest.raises(SweepError, match=r"axes\[0\].values"):
            SweepSpec.from_dict(
                {"axes": [{"name": "seed", "path": "scale.seed", "values": []}]}
            )

    def test_duplicate_axis_name_rejected(self):
        spec = _grid()
        bad = replace(
            spec,
            axes=(spec.axes[0], replace(spec.axes[1], name="gap")),
        )
        with pytest.raises(SweepError, match=r"axes\[1\].name"):
            bad.check()

    def test_zip_target_must_be_an_earlier_axis(self):
        with pytest.raises(SweepError, match=r"axes\[0\].zip"):
            SweepSpec.from_dict(
                {
                    "axes": [
                        {
                            "name": "a",
                            "path": "scale.seed",
                            "values": [1],
                            "zip": "missing",
                        }
                    ]
                }
            )

    def test_zipped_length_mismatch_names_the_axis(self):
        spec = _grid()
        bad = replace(
            spec,
            axes=(
                spec.axes[0],
                SweepAxis(
                    name="label",
                    path="workloads[0].params.name",
                    values=("only-one",),
                    zip_with="gap",
                ),
            ),
        )
        with pytest.raises(
            SweepError, match=r"axes\[1\].values.*zipped with 'gap'"
        ):
            expand(bad)

    def test_override_collision_names_the_field_path(self):
        spec = _grid()
        bad = replace(
            spec,
            axes=(
                spec.axes[0],
                SweepAxis(
                    name="gap2",
                    path="workloads[0].params.mean_gap_cycles",
                    values=(1.0,),
                ),
            ),
        )
        with pytest.raises(
            SweepError,
            match=r"axes\[1\].path.*workloads\[0\].params.mean_gap_cycles",
        ):
            bad.check()

    def test_nested_collision_detected(self):
        # One axis writing a whole object, another a field inside it.
        spec = SweepSpec(
            base=_base(),
            axes=(
                SweepAxis(
                    name="whole",
                    path="workloads[0].sharing",
                    values=({"fraction": 0.1},),
                ),
                SweepAxis(
                    name="part",
                    path="workloads[0].sharing.fraction",
                    values=(0.2,),
                ),
            ),
        )
        with pytest.raises(SweepError, match=r"axes\[1\].path.*collides"):
            spec.check()

    def test_bad_path_segment_named(self):
        spec = replace(
            _grid(),
            axes=(SweepAxis(name="bad", path="scale..seed", values=(1,)),),
        )
        with pytest.raises(SweepError, match=r"axes\[0\].path"):
            spec.check()

    def test_out_of_range_index_named(self):
        spec = replace(
            _grid(),
            axes=(
                SweepAxis(
                    name="bad",
                    path="workloads[5].params.window",
                    values=(1,),
                ),
            ),
        )
        with pytest.raises(SweepError, match=r"axes\[0\].path.*out of range"):
            spec.check()

    def test_base_experiments_output_jobs_rejected(self):
        with_experiments = replace(
            _grid(), base=replace(_base(), experiments=(ExperimentSpec("x"),))
        )
        with pytest.raises(SweepError, match="base.experiments"):
            with_experiments.check()
        with_output = replace(
            _grid(), base=replace(_base(), output=OutputSpec(report="r.md"))
        )
        with pytest.raises(SweepError, match="base.output"):
            with_output.check()
        with_jobs = replace(_grid(), base=replace(_base(), jobs=4))
        with pytest.raises(SweepError, match="base.jobs"):
            with_jobs.check()


class TestExpansion:
    def test_cartesian_count_and_order(self):
        points = expand(_grid())
        assert len(points) == 4
        # First axis varies slowest.
        assert [p.axis_values["gap"] for p in points] == [20.0, 20.0, 40.0, 40.0]
        assert [p.axis_values["configuration"] for p in points] == [
            ["LMesh/ECM"], ["XBar/OCM"], ["LMesh/ECM"], ["XBar/OCM"],
        ]

    def test_zipped_axes_advance_in_lockstep(self):
        spec = coherence_sweep_spec(
            fractions=(0.0, 0.25), configurations=("XBar/OCM",)
        )
        points = expand(spec)
        assert len(points) == 2  # zipped label does not multiply the grid
        assert points[0].axis_values["label"] == "Uniform s=0"
        assert points[1].axis_values["label"] == "Uniform s=0.25"
        assert points[1].scenario.workloads[0].params["name"] == "Uniform s=0.25"
        assert points[1].scenario.workloads[0].sharing.fraction == 0.25

    def test_point_ids_deterministic_and_unique(self):
        first = [p.point_id for p in expand(_grid())]
        second = [p.point_id for p in expand(_grid())]
        assert first == second
        assert len(set(first)) == len(first)
        assert first[0].startswith("000-")

    def test_axis_values_are_applied_to_scenarios(self):
        points = expand(_grid())
        assert points[0].scenario.workloads[0].params["mean_gap_cycles"] == 20.0
        assert points[1].scenario.system.configurations == ("XBar/OCM",)

    def test_axis_can_create_missing_parents(self):
        # The base carries no coherence block and no sharing profile; axes
        # targeting fields inside them create the parents.
        spec = SweepSpec(
            base=_base(),
            axes=(
                SweepAxis(
                    name="threshold",
                    path="coherence.broadcast_threshold",
                    values=(2, 8),
                ),
                SweepAxis(
                    name="fraction",
                    path="workloads[0].sharing.fraction",
                    values=(0.1,),
                ),
            ),
        )
        points = expand(spec)
        assert points[0].scenario.coherence.broadcast_threshold == 2
        assert points[1].scenario.coherence.broadcast_threshold == 8
        assert points[0].scenario.workloads[0].sharing.fraction == 0.1

    def test_wildcard_applies_to_every_entry(self):
        base = replace(
            _base(),
            workloads=(
                WorkloadSpec(name="Uniform", num_requests=300),
                WorkloadSpec(name="Tornado", num_requests=300),
            ),
        )
        spec = SweepSpec(
            base=base,
            axes=(
                SweepAxis(
                    name="gap",
                    path="workloads[*].params.mean_gap_cycles",
                    values=(10.0, 30.0),
                ),
            ),
        )
        points = expand(spec)
        assert len(points) == 2
        for workload in points[1].scenario.workloads:
            assert workload.params["mean_gap_cycles"] == 30.0

    def test_scenario_level_error_names_field_and_point(self):
        spec = SweepSpec(
            base=_base(),
            axes=(
                SweepAxis(
                    name="fraction",
                    path="workloads[0].sharing.fraction",
                    values=(2.0,),  # invalid: fraction must be <= 1
                ),
            ),
        )
        with pytest.raises(SweepError, match="sharing") as excinfo:
            expand(spec)
        assert "point 000" in str(excinfo.value)


class TestEngine:
    def test_records_and_sinks_long_form(self, tmp_path):
        directory = tmp_path / "out"
        outcome = run_sweep(_grid(400), directory=directory)
        assert len(outcome.records) == 4  # one pair per point
        assert outcome.executed_point_ids == [p.point_id for p in outcome.points]
        # CSV: header + one long-form row per point.
        rows = list(
            csv.reader((directory / "results.csv").open(encoding="utf-8"))
        )
        assert rows[0] == long_form_columns(["gap", "configuration"])
        assert len(rows) == 1 + 4
        assert rows[0][:3] == ["point_id", "axis.gap", "axis.configuration"]
        # Every stored result field rides along.
        for column in RESULT_CSV_COLUMNS:
            assert column in rows[0]
        # JSON: full records with axis values and result dicts.
        payload = json.loads((directory / "results.json").read_text())
        assert payload["format"] == "corona-sweep-results/1"
        assert len(payload["records"]) == 4
        record = payload["records"][0]
        assert record["axis_values"]["gap"] == 20.0
        assert record["result"]["configuration"] == "LMesh/ECM"
        assert (directory / MANIFEST_NAME).exists()
        assert (directory / "report.md").exists()

    def test_long_form_row_matches_columns(self):
        outcome = run_sweep(_grid(300))
        record = outcome.records[0]
        row = long_form_row(
            record.point_id, [record.axis_values["gap"]], record.result
        )
        assert len(row) == len(long_form_columns(["gap"]))
        assert row[0] == record.point_id
        assert row[2] == record.result.workload

    def test_traces_generated_once_per_distinct_workload(self):
        # The grid varies only the configuration axis for each gap value:
        # 4 points but only 2 distinct workload signatures.
        generated = []
        cache = TraceCache(on_generate=lambda key, packed: generated.append(key))
        outcome = run_sweep(_grid(300), trace_cache=cache)
        assert len(outcome.records) == 4
        assert cache.generations == 2
        assert len(generated) == 2
        assert len(cache) == 2

    def test_configuration_only_grid_generates_one_trace(self):
        spec = SweepSpec(
            base=_base(300),
            axes=(
                SweepAxis(
                    name="configuration",
                    path="system.configurations",
                    values=(
                        ["LMesh/ECM"], ["HMesh/ECM"], ["XBar/OCM"],
                    ),
                ),
            ),
        )
        cache = TraceCache()
        outcome = run_sweep(spec, trace_cache=cache)
        assert len(outcome.records) == 3
        assert cache.generations == 1

    def test_serial_and_parallel_runs_bit_identical(self):
        # >= 12 points, one pair each (acceptance grid).
        spec = _grid(300, gaps=(10.0, 20.0, 30.0, 40.0, 50.0, 60.0))
        serial = run_sweep(spec, jobs=1)
        parallel = run_sweep(spec, jobs=2)
        assert len(serial.points) == 12
        assert [r.result for r in serial.records] == [
            r.result for r in parallel.records
        ]
        assert [r.point_id for r in serial.records] == [
            r.point_id for r in parallel.records
        ]

    def test_kill_and_resume_completes_without_reexecution(self, tmp_path):
        directory = tmp_path / "out"
        spec = _grid(300)

        class Kill(Exception):
            pass

        seen = []

        def killer(point, results):
            seen.append(point.point_id)
            if len(seen) == 2:
                raise Kill()

        with pytest.raises(Kill):
            run_sweep(spec, directory=directory, on_point=killer)
        lines = (directory / POINTS_NAME).read_text().strip().splitlines()
        assert len(lines) == 2  # two checkpointed points survived the kill
        status = sweep_status(directory)
        assert len(status.completed_ids) == 2
        assert not status.complete

        executed = []
        resumed = run_sweep(
            spec,
            directory=directory,
            on_point=lambda point, results: executed.append(point.point_id),
        )
        all_ids = [p.point_id for p in resumed.points]
        assert resumed.skipped_point_ids == all_ids[:2]
        assert resumed.executed_point_ids == all_ids[2:]
        assert executed == all_ids[2:]  # nothing re-executed
        assert sweep_status(directory).complete
        # The merged records equal an uninterrupted run's, in order.
        fresh = run_sweep(spec)
        assert [r.result for r in resumed.records] == [
            r.result for r in fresh.records
        ]

    def test_resume_refuses_a_different_grid(self, tmp_path):
        directory = tmp_path / "out"
        run_sweep(_grid(300), directory=directory)
        other = _grid(300, gaps=(20.0, 80.0))  # different axis values
        with pytest.raises(SweepError, match="different sweep"):
            run_sweep(other, directory=directory)
        # resume=False wipes the old checkpoints instead.
        outcome = run_sweep(other, directory=directory, resume=False)
        assert not outcome.skipped_point_ids

    def test_resume_tolerates_operational_field_changes(self, tmp_path):
        # jobs/name/output do not affect results, so editing them between
        # runs must not invalidate the checkpoints.
        directory = tmp_path / "out"
        run_sweep(_grid(300), directory=directory)
        edited = replace(_grid(300), name="renamed", jobs=2)
        outcome = run_sweep(edited, directory=directory)
        assert not outcome.executed_point_ids
        assert len(outcome.skipped_point_ids) == 4

    def test_resume_discards_a_half_written_checkpoint_line(self, tmp_path):
        # A kill mid-write leaves a partial trailing line; the resumed run
        # must truncate it (not append onto it) or no resume ever converges.
        directory = tmp_path / "out"
        spec = _grid(300)
        run_sweep(spec, directory=directory)
        points_path = directory / POINTS_NAME
        lines = points_path.read_text().splitlines(keepends=True)
        points_path.write_text("".join(lines[:2]) + lines[2][:40])
        assert len(sweep_status(directory).completed_ids) == 2
        resumed = run_sweep(spec, directory=directory)
        assert len(resumed.skipped_point_ids) == 2
        assert len(resumed.executed_point_ids) == 2
        # The file is clean again: a further resume executes nothing.
        again = run_sweep(spec, directory=directory)
        assert not again.executed_point_ids
        assert sweep_status(directory).complete

    def test_sweep_status_requires_a_manifest(self, tmp_path):
        with pytest.raises(SweepError, match="manifest"):
            sweep_status(tmp_path)


class TestReexpressedExperiments:
    def test_coherence_sweep_spec_reproduces_legacy_numbers_exactly(self):
        fractions = (0.0, 0.3)
        configurations = ("LMesh/ECM", "XBar/OCM")
        legacy = coherence_sweep(
            fractions=fractions,
            configuration_names=configurations,
            num_requests=1_000,
        )
        legacy_flat = [result for point in legacy for result in point.results]
        outcome = run_sweep(
            coherence_sweep_spec(
                fractions=fractions,
                configurations=configurations,
                num_requests=1_000,
            )
        )
        assert [r.result for r in outcome.records] == legacy_flat

    def test_coherence_experiment_emits_sinks_and_section(self, tmp_path):
        json_path = tmp_path / "sweep.json"
        csv_path = tmp_path / "sweep.csv"
        scenario = Scenario(
            system=SystemSpec(configurations=("LMesh/ECM", "XBar/OCM")),
            workloads=(WorkloadSpec(name="Uniform", num_requests=400),),
            experiments=(
                ExperimentSpec(
                    name="coherence-sweep",
                    params={
                        "fractions": [0.3],
                        "num_requests": 400,
                        "json": str(json_path),
                        "csv": str(csv_path),
                    },
                ),
            ),
        )
        result = run(scenario)
        assert "Coherence cost sweep" in result.to_markdown()
        assert result.written["coherence-sweep-json"] == json_path
        assert result.written["coherence-sweep-csv"] == csv_path
        payload = json.loads(json_path.read_text())
        assert payload["format"] == "corona-sweep-results/1"
        assert len(payload["records"]) == 2  # one fraction x two systems

    def test_sensitivity_experiment_emits_structured_records(self, tmp_path):
        csv_path = tmp_path / "sens.csv"
        scenario = Scenario(
            system=SystemSpec(configurations=("XBar/OCM",)),
            workloads=(WorkloadSpec(name="Uniform", num_requests=400),),
            experiments=(
                ExperimentSpec(
                    name="sensitivity", params={"csv": str(csv_path)}
                ),
            ),
        )
        result = run(scenario)
        assert "Photonic design sensitivity" in result.to_markdown()
        rows = list(csv.reader(csv_path.open(encoding="utf-8")))
        assert rows[0] == [
            "sweep", "parameter_label", "metric_label", "parameter",
            "metric", "feasible",
        ]
        assert len(rows) > 3

    def test_sensitivity_sweep_spec_expands(self):
        points = expand(sensitivity_sweep_spec(depths=(1, 4)))
        assert [p.axis_values["window"] for p in points] == [1, 4]
        assert points[1].scenario.workloads[0].params["window"] == 4

    def test_replay_only_window_axis_generates_one_trace(self):
        # window shapes the replay, not the trace; the cache must not
        # regenerate per depth (workloads declare replay_only_params).
        cache = TraceCache()
        outcome = run_sweep(
            sensitivity_sweep_spec(depths=(1, 4, 16), num_requests=600),
            trace_cache=cache,
        )
        assert len(outcome.records) == 3
        assert cache.generations == 1
        # The window still reached each replay (it rides the pair tuple,
        # not the trace): the point scenarios carry the swept values.
        assert [
            p.scenario.workloads[0].params["window"] for p in outcome.points
        ] == [1, 4, 16]


class TestSweepCli:
    def _write_spec(self, tmp_path):
        spec = _grid(300)
        path = tmp_path / "spec.json"
        spec.save(path)
        return spec, path

    def test_expand_lists_points(self, tmp_path, capsys):
        _spec, path = self._write_spec(tmp_path)
        assert main(["sweep", "expand", str(path)]) == 0
        out = capsys.readouterr().out
        assert "4 points" in out
        assert "000-" in out and "003-" in out

    def test_run_status_resume_flow(self, tmp_path, capsys):
        _spec, path = self._write_spec(tmp_path)
        directory = tmp_path / "out"
        assert main(
            ["sweep", "run", str(path), "--directory", str(directory),
             "--jobs", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "4 records from 4 points" in out
        assert (directory / "results.csv").exists()
        assert main(["sweep", "status", str(directory)]) == 0
        assert "4/4 points complete" in capsys.readouterr().out
        # Re-running resumes: nothing executed.
        assert main(
            ["sweep", "run", str(path), "--directory", str(directory)]
        ) == 0
        assert "4 completed points skipped" in capsys.readouterr().out

    def test_run_registered_sweep_by_name(self, tmp_path, capsys):
        directory = tmp_path / "out"
        assert main(
            ["sweep", "run", "sensitivity", "--directory", str(directory)]
        ) == 0
        assert "records from 5 points" in capsys.readouterr().out

    def test_unknown_spec_argument_is_actionable(self):
        with pytest.raises(SystemExit, match="neither a sweep spec file"):
            main(["sweep", "run", "no-such-sweep"])

    def test_status_without_manifest_is_actionable(self, tmp_path):
        with pytest.raises(SystemExit, match="manifest"):
            main(["sweep", "status", str(tmp_path)])

    def test_sweep_error_is_scenario_error(self):
        # The CLI catches ScenarioError; SweepError must stay a subclass.
        assert issubclass(SweepError, ScenarioError)
