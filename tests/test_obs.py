"""Tests for the observability subsystem (`repro.obs`): spec validation
and Scenario wiring, the off-by-default bit-identity guarantee, timeline
trace_event validity (spans nest, fault events present), the metrics
sampler's resource series, harness phase/worker timings (serial and
``--jobs 2``), the progress heartbeat, the sweep timing surfaces, and the
address-workload registry entries."""

from __future__ import annotations

import csv
import io
import json

import pytest

from repro.api import (
    WORKLOADS,
    ScaleSpec,
    Scenario,
    ScenarioError,
    SystemSpec,
    WorkloadSpec,
    build_workload,
    run,
)
from repro.faults import FaultSpec
from repro.obs import (
    ObservabilityError,
    ObservabilitySpec,
    ProgressReporter,
)
from repro.obs.artifacts import pair_path, resolve_pair_spec
from repro.sweeps import SweepAxis, SweepSpec, run_sweep, sweep_status


def _scenario(
    configurations=("XBar/OCM",),
    observability=None,
    faults=None,
    num_requests: int = 400,
    jobs: int = 1,
) -> Scenario:
    return Scenario(
        name="observed",
        system=SystemSpec(configurations=tuple(configurations)),
        workloads=(WorkloadSpec(name="Uniform", num_requests=num_requests),),
        scale=ScaleSpec(seed=5),
        observability=observability,
        faults=faults,
        jobs=jobs,
    )


class TestObservabilitySpec:
    def test_default_spec_is_inactive(self):
        spec = ObservabilitySpec()
        assert not spec.any_active
        assert not spec.simulation_active

    def test_paths_and_progress_activate(self):
        assert ObservabilitySpec(metrics_path="m.csv").metrics_enabled
        assert ObservabilitySpec(timeline_path="t.json").timeline_enabled
        assert ObservabilitySpec(progress=True).any_active
        assert not ObservabilitySpec(progress=True).simulation_active

    def test_dict_round_trip_is_exact(self):
        spec = ObservabilitySpec(
            metrics_interval_ns=250.0,
            metrics_path="m.csv",
            timeline_path="t.json",
            timeline_limit=17,
            progress=True,
            progress_interval_s=0.5,
        )
        assert ObservabilitySpec.from_dict(spec.to_dict()) == spec

    def test_validation_names_the_field(self):
        with pytest.raises(ObservabilityError) as err:
            ObservabilitySpec(metrics_interval_ns=0)
        assert err.value.field == "metrics_interval_ns"
        with pytest.raises(ObservabilityError):
            ObservabilitySpec(timeline_limit=-1)
        with pytest.raises(ObservabilityError):
            ObservabilitySpec(progress="yes")
        with pytest.raises(ObservabilityError):
            ObservabilitySpec(progress_interval_s=0.0)

    def test_unknown_field_rejected_by_name(self):
        with pytest.raises(ObservabilityError) as err:
            ObservabilitySpec.from_dict({"flame_graph": True})
        assert err.value.field == "flame_graph"

    def test_scenario_round_trip_and_field_paths(self):
        scenario = _scenario(
            observability=ObservabilitySpec(metrics_path="m.csv")
        )
        again = Scenario.from_dict(scenario.to_dict())
        assert again == scenario
        with pytest.raises(ScenarioError) as err:
            Scenario.from_dict(
                {"observability": {"metrics_interval_ns": -4.0}}
            )
        assert "observability.metrics_interval_ns" in str(err.value)

    def test_scenario_null_observability_round_trips(self):
        scenario = _scenario()
        assert scenario.to_dict()["observability"] is None
        assert Scenario.from_dict(scenario.to_dict()).observability is None


class TestPairArtifactPaths:
    def test_single_pair_keeps_path(self, tmp_path):
        spec = ObservabilitySpec(metrics_path=str(tmp_path / "m.csv"))
        resolved = resolve_pair_spec(spec, "XBar/OCM", "Uniform", multi=False)
        assert resolved.metrics_path == str(tmp_path / "m.csv")

    def test_multi_pair_inserts_slug(self, tmp_path):
        spec = ObservabilitySpec(metrics_path=str(tmp_path / "m.csv"))
        resolved = resolve_pair_spec(spec, "XBar/OCM", "Uniform", multi=True)
        assert resolved.metrics_path.endswith("m-XBar-OCM-Uniform.csv")

    def test_placeholder_substitution(self):
        assert pair_path("out/{pair}.csv", "slug", multi=False) == (
            "out/slug.csv"
        )

    def test_inactive_spec_resolves_to_none(self):
        assert resolve_pair_spec(None, "c", "w", multi=False) is None
        assert (
            resolve_pair_spec(
                ObservabilitySpec(progress=True), "c", "w", multi=False
            )
            is None
        )


class TestBitIdentity:
    def test_disabled_observability_is_bit_identical(self):
        baseline = run(_scenario()).results[0]
        observed = run(
            _scenario(observability=ObservabilitySpec(progress=False))
        ).results[0]
        assert observed.to_dict() == baseline.to_dict()

    def test_enabled_sampler_and_timeline_do_not_change_results(
        self, tmp_path
    ):
        baseline = run(_scenario()).results[0]
        spec = ObservabilitySpec(
            metrics_path=str(tmp_path / "m.csv"),
            timeline_path=str(tmp_path / "t.json"),
        )
        observed = run(_scenario(observability=spec)).results[0]
        assert observed.to_dict() == baseline.to_dict()


class TestTimeline:
    @pytest.fixture(scope="class")
    def artifacts(self, tmp_path_factory):
        tmp_path = tmp_path_factory.mktemp("obs")
        spec = ObservabilitySpec(
            metrics_path=str(tmp_path / "m.csv"),
            timeline_path=str(tmp_path / "t.json"),
        )
        result = run(
            _scenario(
                observability=spec,
                faults=FaultSpec(token_loss_rate=0.05, seed=7),
            )
        )
        return tmp_path, result

    def test_timeline_is_valid_trace_event_json(self, artifacts):
        tmp_path, _ = artifacts
        events = json.loads((tmp_path / "t.json").read_text())
        assert isinstance(events, list) and events
        for event in events:
            assert "ph" in event and "pid" in event

    def test_spans_nest_inside_their_transaction(self, artifacts):
        tmp_path, _ = artifacts
        events = json.loads((tmp_path / "t.json").read_text())
        parents = {}
        for event in events:
            if event.get("ph") == "X" and event.get("cat") == "transaction":
                key = (event["pid"], event["tid"])
                parents.setdefault(key, []).append(
                    (event["ts"], event["ts"] + event["dur"])
                )
        stages = [
            e for e in events
            if e.get("ph") == "X" and e.get("cat") == "stage"
        ]
        assert stages, "expected per-stage spans"
        eps = 1e-6
        for event in stages:
            key = (event["pid"], event["tid"])
            start, stop = event["ts"], event["ts"] + event["dur"]
            assert any(
                ps - eps <= start and stop <= pe + eps
                for ps, pe in parents.get(key, [])
            ), f"stage span at {start} not nested in any transaction"

    def test_fault_events_present(self, artifacts):
        tmp_path, _ = artifacts
        events = json.loads((tmp_path / "t.json").read_text())
        instants = [e for e in events if e.get("ph") == "i"]
        assert instants, "expected fault instant events"
        assert any("token" in e.get("name", "") for e in instants)

    def test_metrics_csv_has_resource_series(self, artifacts):
        tmp_path, _ = artifacts
        with (tmp_path / "m.csv").open() as handle:
            rows = list(csv.DictReader(handle))
        assert rows
        resources = {row["resource"] for row in rows}
        assert len(resources) >= 4
        times = sorted({float(row["time_ns"]) for row in rows})
        assert len(times) >= 2, "expected samples on simulated time"

    def test_timeline_limit_truncates_with_note(self, tmp_path):
        spec = ObservabilitySpec(
            timeline_path=str(tmp_path / "t.json"), timeline_limit=5
        )
        run(_scenario(observability=spec))
        events = json.loads((tmp_path / "t.json").read_text())
        assert any(
            e.get("ph") == "M" and "truncated" in json.dumps(e)
            for e in events
        )


class TestHarnessTimings:
    def test_serial_run_records_phase_and_worker_timings(self, tmp_path):
        scenario = _scenario()
        result = run(scenario)
        phases = result.timings["phases"]
        assert phases["trace_generation"] >= 0
        assert phases["replay"] > 0
        assert result.timings["workers"] == {
            "in-process": pytest.approx(phases["replay"])
        }
        assert result.timings["pairs"][0]["configuration"] == "XBar/OCM"

    def test_parallel_run_records_per_worker_timings(self):
        result = run(
            _scenario(
                configurations=("XBar/OCM", "HMesh/ECM"),
                jobs=2,
                num_requests=300,
            )
        )
        workers = result.timings["workers"]
        assert workers and all(v > 0 for v in workers.values())
        assert "in-process" not in workers
        phases = result.timings["phases"]
        assert "dispatch" in phases and "replay" in phases

    def test_timings_survive_the_json_sink(self, tmp_path):
        from repro.api import OutputSpec

        scenario = _scenario()
        scenario = Scenario.from_dict(
            {
                **scenario.to_dict(),
                "output": OutputSpec(
                    json=str(tmp_path / "results.json")
                ).to_dict(),
            }
        )
        run(scenario)
        payload = json.loads((tmp_path / "results.json").read_text())
        assert "phases" in payload["timings"]


class TestProgressReporter:
    def test_heartbeat_lines_and_counts(self):
        stream = io.StringIO()
        reporter = ProgressReporter(
            4, interval_s=0.0, stream=stream, label="run"
        )
        reporter.pair_done()
        reporter.pair_done(failed=True, retries=2)
        reporter.finish()
        output = stream.getvalue()
        assert "[run]" in output
        assert "2/4 pairs" in output
        assert "retried 2" in output
        assert "failed 1" in output

    def test_progress_spec_drives_stderr_heartbeat(self, capsys):
        spec = ObservabilitySpec(progress=True, progress_interval_s=0.001)
        run(_scenario(observability=spec, num_requests=200))
        err = capsys.readouterr().err
        assert "[run]" in err and "pairs" in err


class TestSweepTimings:
    def test_sweep_checkpoints_and_status_carry_seconds(self, tmp_path):
        spec = SweepSpec(
            name="obs-sweep",
            base=_scenario(num_requests=200),
            axes=(SweepAxis(name="seed", path="scale.seed", values=(1, 2)),),
        )
        run_sweep(spec, directory=tmp_path, jobs=1)
        status = sweep_status(tmp_path)
        assert set(status.point_seconds) == set(status.completed_ids)
        assert all(v > 0 for v in status.point_seconds.values())
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert set(manifest["timings"]["points"]) == set(status.completed_ids)
        assert manifest["timings"]["wall_clock_seconds"] > 0

    def test_resume_preserves_point_seconds(self, tmp_path):
        spec = SweepSpec(
            name="obs-sweep",
            base=_scenario(num_requests=200),
            axes=(SweepAxis(name="seed", path="scale.seed", values=(1, 2)),),
        )
        run_sweep(spec, directory=tmp_path, jobs=1)
        before = sweep_status(tmp_path).point_seconds
        outcome = run_sweep(spec, directory=tmp_path, jobs=1)
        assert len(outcome.skipped_point_ids) == 2
        assert sweep_status(tmp_path).point_seconds == before


class TestAddressWorkloadRegistry:
    def test_registered_but_explicit_only(self):
        for name in ("addr-streaming", "addr-resident", "addr-random-shared"):
            assert name in WORKLOADS.names()
            assert name not in WORKLOADS.default_names()

    def test_builds_and_generates_bounded_stream(self):
        workload = build_workload("addr-streaming")
        assert workload.is_synthetic
        stream = workload.generate(seed=2, num_requests=300)
        assert 0 < stream.total_requests <= 300

    def test_unknown_kind_rejected(self):
        from repro.trace.address import registered_address_workload

        with pytest.raises(ValueError, match="unknown address workload"):
            registered_address_workload("zigzag")

    def test_runs_through_a_scenario(self):
        scenario = Scenario(
            system=SystemSpec(configurations=("XBar/OCM",)),
            workloads=(
                WorkloadSpec(name="addr-resident", num_requests=300),
            ),
            scale=ScaleSpec(seed=1),
        )
        result = run(scenario).results[0]
        assert result.workload == "AddressResident"
        assert result.num_requests > 0
