"""Tests for the cache, MSHR, coherence and hierarchy substrate."""

import pytest

from repro.cache.cache import CacheLineState, SetAssociativeCache
from repro.cache.coherence import (
    CoherenceController,
    DirectoryState,
    MoesiState,
)
from repro.cache.hierarchy import CacheHierarchy
from repro.cache.mshr import MshrFile
from repro.trace.record import AccessKind


class TestSetAssociativeCache:
    def _cache(self, capacity=4096, assoc=4):
        return SetAssociativeCache("l1", capacity_bytes=capacity, associativity=assoc)

    def test_miss_then_hit(self):
        cache = self._cache()
        hit, _ = cache.access(0x1000, is_write=False)
        assert not hit
        hit, _ = cache.access(0x1000, is_write=False)
        assert hit

    def test_same_line_different_offsets_hit(self):
        cache = self._cache()
        cache.access(0x1000, is_write=False)
        hit, _ = cache.access(0x103F, is_write=False)
        assert hit

    def test_lru_eviction(self):
        cache = self._cache(capacity=4 * 64, assoc=4)  # one set of 4 lines
        addresses = [i * 64 * cache.num_sets for i in range(4)]
        for address in addresses:
            cache.access(address, is_write=False)
        # Touch the first line so the second becomes LRU.
        cache.access(addresses[0], is_write=False)
        _, victim = cache.access(4 * 64 * cache.num_sets, is_write=False)
        assert victim is not None
        assert victim[0] == addresses[1]

    def test_dirty_victim_counts_as_writeback(self):
        cache = self._cache(capacity=64, assoc=1)
        cache.access(0x0, is_write=True)
        _, victim = cache.access(0x0 + 64 * cache.num_sets, is_write=False)
        assert victim is not None
        assert victim[1].dirty
        assert cache.stats.writebacks == 1

    def test_write_sets_modified_state(self):
        cache = self._cache()
        cache.access(0x40, is_write=True)
        line = cache.lookup(0x40)
        assert line.state is CacheLineState.MODIFIED
        assert line.dirty

    def test_read_allocates_exclusive(self):
        cache = self._cache()
        cache.access(0x40, is_write=False)
        assert cache.lookup(0x40).state is CacheLineState.EXCLUSIVE

    def test_write_hit_upgrades_state(self):
        cache = self._cache()
        cache.access(0x40, is_write=False)
        cache.access(0x40, is_write=True)
        assert cache.lookup(0x40).state is CacheLineState.MODIFIED

    def test_invalidate(self):
        cache = self._cache()
        cache.access(0x40, is_write=False)
        assert cache.invalidate(0x40)
        assert not cache.contains(0x40)
        assert not cache.invalidate(0x40)

    def test_set_state_to_invalid_removes_line(self):
        cache = self._cache()
        cache.access(0x40, is_write=False)
        cache.set_state(0x40, CacheLineState.INVALID)
        assert not cache.contains(0x40)

    def test_set_state_on_absent_line_raises(self):
        with pytest.raises(KeyError):
            self._cache().set_state(0x40, CacheLineState.SHARED)

    def test_miss_rate(self):
        cache = self._cache()
        cache.access(0x40, is_write=False)
        cache.access(0x40, is_write=False)
        assert cache.stats.miss_rate == pytest.approx(0.5)

    def test_occupancy(self):
        cache = self._cache(capacity=1024, assoc=4)
        for i in range(8):
            cache.access(i * 64, is_write=False)
        assert cache.occupancy() == pytest.approx(0.5)

    def test_address_mapping_roundtrip(self):
        cache = self._cache()
        address = 0x12340
        rebuilt = cache.address_of(cache.set_index(address), cache.tag(address))
        assert rebuilt == (address // 64) * 64

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            SetAssociativeCache("bad", capacity_bytes=100, associativity=3)


class TestMshrFile:
    def test_allocate_and_release(self):
        mshrs = MshrFile("m", entries=4)
        entry = mshrs.allocate(0x1000, thread_id=1, is_write=False, now=0.0)
        assert entry is not None
        assert mshrs.outstanding == 1
        mshrs.release(0x1000)
        assert mshrs.outstanding == 0

    def test_coalescing_same_line(self):
        mshrs = MshrFile("m", entries=4)
        mshrs.allocate(0x1000, thread_id=1, is_write=False, now=0.0)
        entry = mshrs.allocate(0x1020, thread_id=2, is_write=True, now=1.0)
        assert entry.coalesced_count == 2
        assert entry.is_write
        assert mshrs.outstanding == 1
        assert mshrs.coalescing_rate() == pytest.approx(0.5)

    def test_full_file_rejects(self):
        mshrs = MshrFile("m", entries=2)
        mshrs.allocate(0x0, 1, False, 0.0)
        mshrs.allocate(0x40, 1, False, 0.0)
        assert mshrs.full
        assert mshrs.allocate(0x80, 1, False, 0.0) is None
        assert mshrs.rejections == 1

    def test_release_unknown_raises(self):
        with pytest.raises(KeyError):
            MshrFile("m", entries=2).release(0x40)

    def test_outstanding_lines_sorted(self):
        mshrs = MshrFile("m", entries=4)
        mshrs.allocate(0x100, 1, False, 0.0)
        mshrs.allocate(0x40, 1, False, 0.0)
        assert mshrs.outstanding_lines() == [1, 4]

    def test_release_frees_slot_after_rejection(self):
        """Back-pressure edge: a full file rejects, then accepts again as
        soon as any outstanding entry retires."""
        mshrs = MshrFile("m", entries=2)
        mshrs.allocate(0x0, 1, False, 0.0)
        mshrs.allocate(0x40, 1, False, 0.0)
        assert mshrs.allocate(0x80, 1, False, 0.0) is None
        mshrs.release(0x0)
        entry = mshrs.allocate(0x80, 1, False, 1.0)
        assert entry is not None
        assert mshrs.outstanding == 2
        assert mshrs.rejections == 1

    def test_full_file_still_coalesces_outstanding_lines(self):
        """A full file only rejects misses to NEW lines; a miss to a line
        already outstanding merges without needing a free entry."""
        mshrs = MshrFile("m", entries=1)
        mshrs.allocate(0x0, 1, False, 0.0)
        assert mshrs.full
        entry = mshrs.allocate(0x20, 2, is_write=True, now=1.0)
        assert entry is not None
        assert entry.coalesced_count == 2
        # The merge upgrades the entry to a write.
        assert entry.is_write
        assert entry.waiting_threads == [1, 2]
        assert mshrs.rejections == 0

    def test_lookup_is_line_granular(self):
        mshrs = MshrFile("m", entries=2, line_bytes=64)
        mshrs.allocate(0x40, 1, False, 0.0)
        assert mshrs.lookup(0x7F) is not None  # same line as 0x40
        assert mshrs.lookup(0x80) is None

    def test_coalescing_rate_empty_file(self):
        assert MshrFile("m", entries=1).coalescing_rate() == 0.0


class TestCoherenceController:
    def test_first_read_gets_exclusive_from_memory(self):
        directory = CoherenceController(home_cluster=0)
        action = directory.handle_read(0x1000, requester=5)
        assert action.requester_state is MoesiState.EXCLUSIVE
        assert action.data_from_memory

    def test_second_reader_downgrades_owner(self):
        directory = CoherenceController(home_cluster=0)
        directory.handle_read(0x1000, requester=5)
        action = directory.handle_read(0x1000, requester=7)
        assert action.requester_state is MoesiState.SHARED
        assert action.data_from_owner == 5

    def test_repeated_read_by_owner_is_silent(self):
        directory = CoherenceController(home_cluster=0)
        directory.handle_read(0x1000, requester=5)
        action = directory.handle_read(0x1000, requester=5)
        assert action.unicast_messages == 0

    def test_write_invalidates_sharers(self):
        directory = CoherenceController(home_cluster=0, broadcast_threshold=100)
        for reader in range(3):
            directory.handle_read(0x1000, requester=reader)
        action = directory.handle_write(0x1000, requester=9)
        assert set(action.invalidated_clusters) == {0, 1, 2}
        assert action.requester_state is MoesiState.MODIFIED

    def test_many_sharers_use_broadcast(self):
        directory = CoherenceController(home_cluster=0, broadcast_threshold=4)
        for reader in range(10):
            directory.handle_read(0x1000, requester=reader)
        action = directory.handle_write(0x1000, requester=20)
        assert action.broadcast_messages == 1
        assert directory.broadcasts_used == 1
        assert directory.broadcast_savings() == 9

    def test_few_sharers_use_unicasts(self):
        directory = CoherenceController(home_cluster=0, broadcast_threshold=4)
        directory.handle_read(0x1000, requester=1)
        directory.handle_read(0x1000, requester=2)
        action = directory.handle_write(0x1000, requester=3)
        assert action.broadcast_messages == 0
        assert action.unicast_messages >= 4

    def test_write_then_read_transfers_ownership(self):
        directory = CoherenceController(home_cluster=0)
        directory.handle_write(0x1000, requester=4)
        action = directory.handle_read(0x1000, requester=6)
        assert action.data_from_owner == 4
        entry = directory._entry(0x1000)
        assert entry.state is DirectoryState.SHARED

    def test_eviction_of_last_copy_returns_line_to_uncached(self):
        directory = CoherenceController(home_cluster=0)
        directory.handle_read(0x1000, requester=4)
        directory.handle_eviction(0x1000, cluster=4, dirty=False)
        assert directory._entry(0x1000).state is DirectoryState.UNCACHED

    def test_dirty_eviction_generates_writeback_message(self):
        directory = CoherenceController(home_cluster=0)
        directory.handle_write(0x1000, requester=4)
        messages = directory.handle_eviction(0x1000, cluster=4, dirty=True)
        assert messages == 2

    def test_sharer_histogram(self):
        directory = CoherenceController(home_cluster=0)
        directory.handle_read(0x1000, requester=1)
        directory.handle_read(0x1000, requester=2)
        directory.handle_read(0x2000, requester=1)
        histogram = directory.sharer_histogram()
        assert histogram[2] == 1
        assert histogram[1] == 1

    def test_moesi_invariant_single_owner(self):
        directory = CoherenceController(home_cluster=0)
        directory.handle_write(0x1000, requester=1)
        directory.handle_write(0x1000, requester=2)
        entry = directory._entry(0x1000)
        assert entry.owner == 2
        assert 1 not in entry.sharers


class TestCacheHierarchy:
    def test_l1_hit_after_first_access(self):
        hierarchy = CacheHierarchy(cluster_id=0)
        first = hierarchy.access(core=0, thread_id=0, address=0x1000, is_write=False)
        second = hierarchy.access(core=0, thread_id=0, address=0x1000, is_write=False)
        assert not first.l1_hit
        assert second.l1_hit

    def test_l2_shared_between_cores(self):
        hierarchy = CacheHierarchy(cluster_id=0)
        hierarchy.access(core=0, thread_id=0, address=0x1000, is_write=False)
        result = hierarchy.access(core=1, thread_id=4, address=0x1000, is_write=False)
        assert not result.l1_hit
        assert result.l2_hit

    def test_miss_generates_trace_record(self):
        hierarchy = CacheHierarchy(cluster_id=3)
        hierarchy.access(core=0, thread_id=0, address=0x1000, is_write=False)
        assert hierarchy.misses_to_memory() == 1
        record = hierarchy.l2_misses[0]
        assert record.cluster_id == 3
        assert record.home_cluster == hierarchy.home_cluster(0x1000)

    def test_home_cluster_interleaving(self):
        hierarchy = CacheHierarchy(cluster_id=0, num_clusters=64)
        homes = {hierarchy.home_cluster(line << 6) for line in range(64)}
        assert homes == set(range(64))

    def test_miss_rates(self):
        hierarchy = CacheHierarchy(cluster_id=0)
        for i in range(16):
            hierarchy.access(core=0, thread_id=0, address=i * 64, is_write=False)
        for i in range(16):
            hierarchy.access(core=0, thread_id=0, address=i * 64, is_write=False)
        assert hierarchy.l1_miss_rate() == pytest.approx(0.5)

    def test_invalid_core_rejected(self):
        with pytest.raises(ValueError):
            CacheHierarchy(cluster_id=0).access(
                core=4, thread_id=0, address=0, is_write=False
            )

    def test_goes_to_memory_mirrors_l2_miss(self):
        hierarchy = CacheHierarchy(cluster_id=0)
        miss = hierarchy.access(core=0, thread_id=0, address=0x2000, is_write=False)
        assert miss.goes_to_memory and miss.l2_miss_generated
        l1_hit = hierarchy.access(core=0, thread_id=0, address=0x2000, is_write=False)
        assert not l1_hit.goes_to_memory
        l2_hit = hierarchy.access(core=1, thread_id=4, address=0x2000, is_write=False)
        assert l2_hit.l2_hit and not l2_hit.goes_to_memory

    def test_home_cluster_wraps_line_interleaving(self):
        hierarchy = CacheHierarchy(cluster_id=0, num_clusters=8)
        # Line 9 on 8 clusters wraps to cluster 1; offsets within a line do
        # not change the home.
        assert hierarchy.home_cluster(9 * 64) == 1
        assert hierarchy.home_cluster(9 * 64 + 63) == 1
        assert hierarchy.home_cluster(8 * 64) == 0

    def test_dirty_l2_victim_generates_homed_writeback(self):
        """An evicted dirty L2 line becomes a memory write homed by the
        victim's own address, not the access that displaced it."""
        hierarchy = CacheHierarchy(
            cluster_id=2,
            l1_capacity_bytes=4 * 64,
            l1_associativity=4,
            l2_capacity_bytes=16 * 64,  # a single 16-way set
            l2_associativity=16,
            num_clusters=8,
        )
        hierarchy.access(core=0, thread_id=0, address=0, is_write=True)
        # Fill the L2 set from another core so core 0's L1 never writes the
        # dirty line back (which would refresh its LRU position in the L2).
        evicting = None
        for line in range(1, 17):
            evicting = hierarchy.access(
                core=1, thread_id=4, address=line * 64, is_write=False
            )
        assert evicting.writeback_generated
        # Two records for address 0: the original demand write miss and the
        # eviction writeback appended by the displacing access.
        for_line_zero = [r for r in hierarchy.l2_misses if r.address == 0]
        assert len(for_line_zero) == 2
        writeback = for_line_zero[-1]
        assert writeback.kind is AccessKind.WRITE
        assert writeback.home_cluster == hierarchy.home_cluster(0)
        assert writeback.cluster_id == 2
