"""Tests for network interfaces and the inter-stack fabric."""

import pytest

from repro.network.interface import (
    FIBER_LIGHT_SPEED_M_PER_S,
    MultiStackFabric,
    NetworkInterface,
)


class TestNetworkInterface:
    def test_bandwidth_matches_ocm_link(self):
        # 64 wavelengths at 10 Gb/s = 80 GB/s, the same building block as the
        # memory links.
        assert NetworkInterface(cluster_id=0).bandwidth_bytes_per_s == pytest.approx(80e9)

    def test_fiber_latency_scales_with_length(self):
        short = NetworkInterface(cluster_id=0, fiber_length_m=1.0)
        long = NetworkInterface(cluster_id=0, fiber_length_m=10.0)
        assert long.fiber_latency_s == pytest.approx(10 * short.fiber_latency_s)
        assert short.fiber_latency_s == pytest.approx(1.0 / FIBER_LIGHT_SPEED_M_PER_S)

    def test_send_includes_serialization_and_flight(self):
        interface = NetworkInterface(cluster_id=0, fiber_length_m=2.04)
        arrival = interface.send(0.0, 80)
        assert arrival == pytest.approx(1e-9 + 1e-8)

    def test_back_to_back_sends_serialize(self):
        interface = NetworkInterface(cluster_id=0)
        first = interface.send(0.0, 8000)
        second = interface.send(0.0, 8000)
        assert second > first

    def test_energy_and_byte_accounting(self):
        interface = NetworkInterface(cluster_id=0)
        interface.send(0.0, 64)
        interface.receive(0.0, 64)
        assert interface.bytes_sent == 64
        assert interface.bytes_received == 64
        assert interface.energy_j == pytest.approx(64 * 8 * 100e-15)

    def test_utilization(self):
        interface = NetworkInterface(cluster_id=0)
        interface.send(0.0, 80e9 * 1e-9)  # 1 ns of egress occupancy
        assert interface.utilization(1e-6) == pytest.approx(0.5e-3, rel=0.01)

    def test_rejects_negative_size(self):
        with pytest.raises(ValueError):
            NetworkInterface(cluster_id=0).send(0.0, -1)


class TestMultiStackFabric:
    def test_fabric_builds_all_interfaces(self):
        fabric = MultiStackFabric(num_stacks=2, clusters_per_stack=4)
        assert len(fabric.interfaces) == 8
        assert fabric.aggregate_bandwidth_bytes_per_s == pytest.approx(8 * 80e9)

    def test_remote_transfer_completes_after_penalty(self):
        fabric = MultiStackFabric(num_stacks=2, clusters_per_stack=4)
        done = fabric.remote_transfer(0, 0, 1, 2, size_bytes=72, now=0.0)
        assert done == pytest.approx(fabric.remote_access_penalty_s(72))
        assert fabric.remote_transfers == 1

    def test_same_stack_transfer_rejected(self):
        fabric = MultiStackFabric(num_stacks=2, clusters_per_stack=4)
        with pytest.raises(ValueError):
            fabric.remote_transfer(0, 0, 0, 1, size_bytes=72, now=0.0)

    def test_remote_penalty_small_relative_to_memory_latency(self):
        # A 1 m fiber hop costs a few ns -- comparable to the on-stack
        # interconnect, far below DRAM latency, which is the paper's argument
        # for near-uniform latency across larger systems.
        fabric = MultiStackFabric(num_stacks=2, clusters_per_stack=4)
        assert fabric.remote_access_penalty_s() < 10e-9

    def test_contention_on_one_interface(self):
        fabric = MultiStackFabric(num_stacks=2, clusters_per_stack=2)
        completions = [
            fabric.remote_transfer(0, 0, 1, 1, size_bytes=7200, now=0.0)
            for _ in range(10)
        ]
        assert completions == sorted(completions)
        assert completions[-1] > completions[0]

    def test_energy_accumulates(self):
        fabric = MultiStackFabric(num_stacks=2, clusters_per_stack=2)
        fabric.remote_transfer(0, 0, 1, 0, size_bytes=64, now=0.0)
        assert fabric.total_energy_j() > 0

    def test_unknown_interface_rejected(self):
        fabric = MultiStackFabric(num_stacks=2, clusters_per_stack=2)
        with pytest.raises(ValueError):
            fabric.interface(3, 0)

    def test_single_stack_rejected(self):
        with pytest.raises(ValueError):
            MultiStackFabric(num_stacks=1)
