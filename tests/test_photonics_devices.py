"""Tests for photonic device models: constants, waveguides, rings, lasers,
splitters."""


import pytest

from repro.photonics import constants
from repro.photonics.laser import ModeLockedLaser, lasers_required
from repro.photonics.ring import (
    Detector,
    Injector,
    Modulator,
    RingResonator,
    RingRole,
    ring_array,
)
from repro.photonics.splitter import (
    BroadbandSplitter,
    StarCoupler,
    splitter_chain_losses,
)
from repro.photonics.waveguide import Waveguide, WaveguideBundle


class TestConstants:
    def test_waveguide_speed_is_about_2cm_per_clock(self):
        # The paper quotes ~2 cm of waveguide per 5 GHz clock.
        distance_per_clock = constants.LIGHT_SPEED_WAVEGUIDE_M_PER_S / 5e9
        assert distance_per_clock == pytest.approx(0.02, rel=0.05)

    def test_db_fraction_roundtrip(self):
        assert constants.fraction_to_db(
            constants.db_to_fraction(3.0)
        ) == pytest.approx(3.0)

    def test_3db_is_half_power(self):
        assert constants.db_to_fraction(3.0103) == pytest.approx(0.5, rel=1e-3)

    def test_fraction_to_db_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            constants.fraction_to_db(0.0)

    def test_propagation_delay(self):
        delay = constants.propagation_delay(0.02)
        assert delay == pytest.approx(0.2e-9, rel=0.05)

    def test_propagation_delay_rejects_negative(self):
        with pytest.raises(ValueError):
            constants.propagation_delay(-1.0)

    def test_operating_wavelength_inside_ge_window(self):
        low, high = constants.GE_ABSORPTION_WINDOW_M
        assert low <= constants.OPERATING_WAVELENGTH_M <= high


class TestWaveguide:
    def test_propagation_loss_scales_with_length(self):
        short = Waveguide("short", length_m=0.01)
        long = Waveguide("long", length_m=0.02)
        assert long.propagation_loss_db == pytest.approx(2 * short.propagation_loss_db)

    def test_insertion_loss_includes_ring_passes(self):
        guide = Waveguide("g", length_m=0.0, ring_passes=100, ring_through_loss_db=0.01)
        assert guide.insertion_loss_db == pytest.approx(1.0)

    def test_delay_cycles_at_5ghz(self):
        guide = Waveguide("g", length_m=0.16)
        assert guide.delay_cycles(5e9) == pytest.approx(8.0, rel=0.05)

    def test_data_rate(self):
        guide = Waveguide("g", length_m=0.01, wavelengths=64)
        assert guide.data_rate_bps() == pytest.approx(640e9)

    def test_rejects_negative_length(self):
        with pytest.raises(ValueError):
            Waveguide("g", length_m=-1.0)

    def test_rejects_zero_wavelengths(self):
        with pytest.raises(ValueError):
            Waveguide("g", length_m=0.01, wavelengths=0)


class TestWaveguideBundle:
    def test_corona_channel_is_256_bits_wide(self):
        bundle = WaveguideBundle.uniform("ch", count=4, length_m=0.08)
        assert bundle.phit_bits == 256

    def test_corona_channel_bandwidth_is_320_gbytes(self):
        bundle = WaveguideBundle.uniform("ch", count=4, length_m=0.08)
        assert bundle.bandwidth_bytes_per_s() == pytest.approx(320e9)

    def test_delay_is_longest_member(self):
        fast = Waveguide("a", length_m=0.01)
        slow = Waveguide("b", length_m=0.05)
        bundle = WaveguideBundle("mixed", [fast, slow])
        assert bundle.propagation_delay_s == pytest.approx(slow.propagation_delay_s)

    def test_rejects_empty_uniform(self):
        with pytest.raises(ValueError):
            WaveguideBundle.uniform("ch", count=0, length_m=0.01)


class TestRingResonator:
    def test_switching_energy_charged_once_per_transition(self):
        ring = RingResonator(wavelength_index=0)
        assert ring.set_resonance(True) > 0
        assert ring.set_resonance(True) == 0.0
        assert ring.set_resonance(False) > 0
        assert ring.switch_count == 2

    def test_off_resonance_passes_all_wavelengths(self):
        ring = RingResonator(wavelength_index=3)
        assert ring.passes_wavelength(3)
        assert ring.passes_wavelength(5)

    def test_on_resonance_blocks_only_its_wavelength(self):
        ring = RingResonator(wavelength_index=3)
        ring.set_resonance(True)
        assert not ring.passes_wavelength(3)
        assert ring.passes_wavelength(4)

    def test_loss_for_resonant_wavelength(self):
        ring = RingResonator(wavelength_index=0, through_loss_db=0.01, drop_loss_db=0.5)
        assert ring.loss_for(1) == 0.01
        ring.set_resonance(True)
        assert ring.loss_for(0) == 0.5

    def test_rejects_negative_wavelength_index(self):
        with pytest.raises(ValueError):
            RingResonator(wavelength_index=-1)


class TestModulator:
    def test_modulation_energy_scales_with_bits(self):
        modulator = Modulator(wavelength_index=0)
        one = modulator.modulate(1000)
        two = modulator.modulate(2000)
        assert two == pytest.approx(2 * one)
        assert modulator.bits_modulated == 3000

    def test_modulation_time_at_10gbps(self):
        modulator = Modulator(wavelength_index=0)
        assert modulator.modulation_time(10) == pytest.approx(1e-9)

    def test_rejects_bad_toggle_probability(self):
        with pytest.raises(ValueError):
            Modulator(wavelength_index=0).modulate(10, toggle_probability=1.5)


class TestInjectorDetector:
    def test_injector_divert_release(self):
        injector = Injector(wavelength_index=0)
        injector.divert()
        assert injector.diverting
        injector.release()
        assert not injector.diverting

    def test_detector_counts_bits_and_energy(self):
        detector = Detector(wavelength_index=0)
        energy = detector.detect(800)
        assert detector.bits_detected == 800
        assert energy == pytest.approx(800 * detector.receiver_energy_per_bit_j)

    def test_detector_small_capacitance(self):
        # ~1 fF detectors are what remove the need for TIAs.
        assert Detector(wavelength_index=0).capacitance_f == pytest.approx(1e-15)

    def test_detector_effective_absorption_grows_with_passes(self):
        detector = Detector(wavelength_index=0)
        few = detector.effective_absorption(10)
        many = detector.effective_absorption(200)
        assert 0 < few < many < 1

    def test_ring_array_assigns_consecutive_wavelengths(self):
        rings = ring_array(64, RingRole.DETECTOR)
        assert [r.wavelength_index for r in rings] == list(range(64))
        assert all(isinstance(r, Detector) for r in rings)

    def test_ring_array_rejects_zero_count(self):
        with pytest.raises(ValueError):
            ring_array(0, RingRole.MODULATOR)


class TestLaser:
    def test_comb_has_requested_wavelength_count(self):
        laser = ModeLockedLaser(num_wavelengths=64)
        wavelengths = [laser.wavelength_m(i) for i in range(64)]
        assert len(set(wavelengths)) == 64

    def test_wavelengths_decrease_with_frequency_index(self):
        laser = ModeLockedLaser(num_wavelengths=8)
        assert laser.wavelength_m(0) > laser.wavelength_m(7)

    def test_wavelengths_near_operating_point(self):
        laser = ModeLockedLaser()
        for index in (0, 31, 63):
            assert laser.wavelength_m(index) == pytest.approx(1.3e-6, rel=0.02)

    def test_electrical_power_includes_efficiency(self):
        laser = ModeLockedLaser(power_per_wavelength_w=1e-3, wall_plug_efficiency=0.1)
        assert laser.electrical_power_w == pytest.approx(laser.total_optical_power_w / 0.1)

    def test_detector_power_after_loss(self):
        laser = ModeLockedLaser(power_per_wavelength_w=1e-3)
        assert laser.detector_power_w(10.0) == pytest.approx(1e-4)

    def test_required_power_for_sensitivity(self):
        laser = ModeLockedLaser()
        required = laser.required_power_per_wavelength_w(1e-5, path_loss_db=20.0)
        assert required == pytest.approx(1e-3)

    def test_wavelength_index_bounds(self):
        laser = ModeLockedLaser(num_wavelengths=4)
        with pytest.raises(ValueError):
            laser.wavelength_m(4)

    def test_lasers_required(self):
        assert lasers_required(64) == 1
        assert lasers_required(65) == 2
        assert lasers_required(0) == 0


class TestSplitters:
    def test_even_splitter_tap_loss_is_3db(self):
        splitter = BroadbandSplitter("s", tap_fraction=0.5, excess_loss_db=0.0)
        assert splitter.tap_loss_db == pytest.approx(3.0103, rel=1e-3)

    def test_split_power_conserves_energy_minus_excess(self):
        splitter = BroadbandSplitter("s", tap_fraction=0.3, excess_loss_db=0.0)
        tap, through = splitter.split_power(1.0)
        assert tap + through == pytest.approx(1.0)
        assert tap == pytest.approx(0.3)

    def test_rejects_bad_tap_fraction(self):
        with pytest.raises(ValueError):
            BroadbandSplitter("s", tap_fraction=1.0)

    def test_star_coupler_output_power(self):
        coupler = StarCoupler("c", outputs=64, excess_loss_db=0.0)
        assert coupler.output_power_w(1.0) == pytest.approx(1.0 / 64.0)

    def test_star_coupler_loss_for_64_outputs(self):
        coupler = StarCoupler("c", outputs=64, excess_loss_db=1.0)
        assert coupler.per_output_loss_db == pytest.approx(19.06, rel=1e-2)

    def test_splitter_chain_covers_all_taps(self):
        losses = splitter_chain_losses(64)
        assert len(losses) == 64
        assert all(loss >= 0 for loss in losses)

    def test_graded_chain_keeps_losses_similar(self):
        # With per-tap graded fractions, first and last listeners should see
        # losses within a few dB of each other.
        losses = splitter_chain_losses(16, excess_loss_db=0.0)
        assert max(losses) - min(losses) < 3.0

    def test_splitter_chain_rejects_zero_taps(self):
        with pytest.raises(ValueError):
            splitter_chain_losses(0)
