"""Tests for the differential-analytics subsystem (`repro.diffing` and its
satellites): artifact loading across every supported shape, pair alignment
with added/removed/failed edge cases, the relative-threshold and
distribution comparison semantics, self-diff of bit-identical runs (serial
vs parallel) reporting zero divergences, an injected regression ranking
first with exit code 5, the bench-gate delegation, sweep axis aggregation
and crossover detection, the raw-sample artifact + run manifest, the
coherence counter tracks, and the `trace view` summarizer."""

from __future__ import annotations

import csv
import json
import math

import pytest

from repro.api import (
    OutputSpec,
    ScaleSpec,
    Scenario,
    SystemSpec,
    WorkloadSpec,
    run,
)
from repro.cli import main as cli_main
from repro.core.results import (
    SAMPLES_FORMAT,
    WorkloadResult,
    load_samples,
    nearest_rank,
)
from repro.diffing import (
    DiffLoadError,
    DiffThresholds,
    diff_json_dict,
    diff_markdown,
    diff_runs,
    ks_distance,
    load_run,
    metric_deltas,
)
from repro.diffing.loader import PairEntry, PairKey, RunView, align
from repro.obs import ObservabilitySpec
from repro.obs.artifacts import artifact_manifest_path, load_artifact_manifest
from repro.sweeps import (
    SweepAxis,
    SweepSpec,
    axis_divergence_rows,
    axis_value_geomeans,
    detect_crossovers,
    run_sweep,
)


def _scenario(tmp_path, name="diffed", seed=5, jobs=1, samples=False,
              configurations=("XBar/OCM", "LMesh/ECM")):
    directory = tmp_path / name
    observability = None
    if samples:
        observability = ObservabilitySpec(
            samples_path=str(directory / "samples.json")
        )
    return Scenario(
        name=name,
        system=SystemSpec(configurations=tuple(configurations)),
        workloads=(WorkloadSpec(name="Uniform", num_requests=400),),
        scale=ScaleSpec(seed=seed),
        jobs=jobs,
        observability=observability,
        output=OutputSpec(
            json=str(directory / "results.json"),
            csv=str(directory / "results.csv"),
        ),
    )


def _result(configuration="XBar/OCM", workload="Uniform", **overrides):
    base = dict(
        workload=workload,
        configuration=configuration,
        num_requests=100,
        execution_time_s=1e-6,
        achieved_bandwidth_bytes_per_s=1e12,
        average_latency_s=3e-8,
        p99_latency_s=5e-8,
        network_dynamic_power_w=10.0,
        network_static_power_w=2.0,
        network_energy_j=1e-5,
        network_messages=200,
        network_hops=400,
        memory_bytes=6400.0,
    )
    base.update(overrides)
    return WorkloadResult(**base)


def _view(*entries, label="view", kind="results-json", axis_names=()):
    view = RunView(label=label, kind=kind, path=None)
    view.axis_names = list(axis_names)
    for entry in entries:
        view.entries[entry.key] = entry
    return view


def _entry(result, point_id="", status="ok", axis_values=None):
    key = PairKey(point_id, result.configuration, result.workload)
    return PairEntry(
        key=key,
        result=result if status == "ok" else None,
        status=status,
        axis_values=axis_values or {},
    )


# ---------------------------------------------------------------------------
# Loader
# ---------------------------------------------------------------------------

class TestLoader:
    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(DiffLoadError, match="no such file"):
            load_run(tmp_path / "absent.json")

    def test_unknown_json_format_raises(self, tmp_path):
        path = tmp_path / "odd.json"
        path.write_text(json.dumps({"format": "corona-mystery/9"}))
        with pytest.raises(DiffLoadError, match="corona-mystery/9"):
            load_run(path)

    def test_results_json_round_trip(self, tmp_path):
        result = run(_scenario(tmp_path))
        view = load_run(tmp_path / "diffed" / "results.json")
        assert view.kind == "results-json"
        assert len(view.entries) == 2
        key = PairKey("", "XBar/OCM", "Uniform")
        assert view.entries[key].result.configuration == "XBar/OCM"
        # The JSON sink's results reload exactly.
        by_key = {
            (r.configuration, r.workload): r for r in result.results
        }
        for entry in view.entries.values():
            original = by_key[(entry.key.configuration, entry.key.workload)]
            assert entry.result == original

    def test_plain_csv_loads_with_typed_fields(self, tmp_path):
        run(_scenario(tmp_path))
        view = load_run(tmp_path / "diffed" / "results.csv")
        assert view.kind == "csv"
        entry = view.entries[PairKey("", "XBar/OCM", "Uniform")]
        assert isinstance(entry.result.num_requests, int)
        assert isinstance(entry.result.execution_time_s, float)
        assert isinstance(entry.result.coherence_enabled, bool)

    def test_csv_and_json_of_same_run_self_diff_clean(self, tmp_path):
        run(_scenario(tmp_path))
        json_view = load_run(tmp_path / "diffed" / "results.json")
        csv_view = load_run(tmp_path / "diffed" / "results.csv")
        outcome = diff_runs(json_view, csv_view)
        assert outcome.divergences == []

    def test_non_result_csv_rejected(self, tmp_path):
        path = tmp_path / "other.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(DiffLoadError, match="not a result CSV"):
            load_run(path)

    def test_bench_snapshot_loads_metrics(self, tmp_path):
        path = tmp_path / "BENCH_replay.json"
        path.write_text(
            json.dumps(
                {
                    "metrics": {"replay_x_events_per_s": 100.0, "jobs": 4},
                    "phase_timings": {"matrix_serial": {"replay": 1.5}},
                }
            )
        )
        view = load_run(path)
        assert view.is_bench
        assert view.bench_metrics["replay_x_events_per_s"] == 100.0
        assert view.phase_seconds == {"matrix_serial.replay": 1.5}

    def test_failed_pairs_load_as_failed_entries(self, tmp_path):
        payload = {
            "format": "corona-results/1",
            "scenario": {},
            "results": [_result().to_dict()],
            "failures": [
                {
                    "configuration": "LMesh/ECM",
                    "workload": "Uniform",
                    "kind": "crash",
                    "message": "boom",
                    "attempts": 3,
                    "quarantined": True,
                }
            ],
        }
        path = tmp_path / "partial.json"
        path.write_text(json.dumps(payload))
        view = load_run(path)
        failed = view.entries[PairKey("", "LMesh/ECM", "Uniform")]
        assert failed.status == "failed"
        assert failed.result is None
        assert failed.failures[0]["kind"] == "crash"


# ---------------------------------------------------------------------------
# Alignment and comparison semantics
# ---------------------------------------------------------------------------

class TestAlignment:
    def test_added_and_removed_pairs_are_structural_and_severe(self):
        baseline = _view(_entry(_result("XBar/OCM")), _entry(_result("LMesh/ECM")))
        current = _view(_entry(_result("XBar/OCM")), _entry(_result("HMesh/OCM")))
        outcome = diff_runs(baseline, current)
        assert outcome.added == [PairKey("", "HMesh/OCM", "Uniform")]
        assert outcome.removed == [PairKey("", "LMesh/ECM", "Uniform")]
        metrics = {d.metric for d in outcome.divergences}
        assert metrics == {"pair_added", "pair_removed"}
        assert all(d.severity == "severe" and d.gating for d in outcome.divergences)

    def test_status_flip_is_severe_and_gating(self):
        baseline = _view(_entry(_result()))
        current = _view(_entry(_result(), status="failed"))
        outcome = diff_runs(baseline, current)
        assert len(outcome.divergences) == 1
        finding = outcome.divergences[0]
        assert finding.kind == "status"
        assert finding.severity == "severe"
        assert outcome.gating()

    def test_both_failed_is_informational_only(self):
        baseline = _view(_entry(_result(), status="failed"))
        current = _view(_entry(_result(), status="failed"))
        outcome = diff_runs(baseline, current)
        assert outcome.divergences == []
        assert len(outcome.notes) == 1
        assert outcome.notes[0].note == "pair failed in both runs"
        assert not outcome.gating()

    def test_point_ids_never_align_across_plain_and_sweep(self):
        plain = _view(_entry(_result()))
        sweep = _view(_entry(_result(), point_id="p0001"))
        common, added, removed = align(plain, sweep)
        assert common == []
        assert added == [PairKey("p0001", "XBar/OCM", "Uniform")]
        assert removed == [PairKey("", "XBar/OCM", "Uniform")]


class TestComparison:
    def test_identical_results_no_divergence(self):
        outcome = diff_runs(_view(_entry(_result())), _view(_entry(_result())))
        assert outcome.divergences == []
        assert outcome.max_severity == "info"

    def test_delta_within_threshold_is_silent(self):
        current = _result(average_latency_s=3e-8 * 1.04)
        outcome = diff_runs(_view(_entry(_result())), _view(_entry(current)))
        assert outcome.divergences == []

    def test_scalar_delta_scores_and_severity_tiers(self):
        # 7.5% over a 5% threshold -> score 1.5 -> minor.
        minor = _result(average_latency_s=3e-8 * 1.075)
        outcome = diff_runs(_view(_entry(_result())), _view(_entry(minor)))
        assert [d.severity for d in outcome.divergences] == ["minor"]
        # 20% -> score 4 -> moderate; 50% -> score 10 -> severe.
        moderate = _result(average_latency_s=3e-8 * 1.2)
        outcome = diff_runs(_view(_entry(_result())), _view(_entry(moderate)))
        assert [d.severity for d in outcome.divergences] == ["moderate"]
        severe = _result(average_latency_s=3e-8 * 1.5)
        outcome = diff_runs(_view(_entry(_result())), _view(_entry(severe)))
        assert [d.severity for d in outcome.divergences] == ["severe"]

    def test_zero_baseline_to_nonzero_is_severe(self):
        current = _result(fault_tokens_lost=7)
        outcome = diff_runs(_view(_entry(_result())), _view(_entry(current)))
        finding = outcome.divergences[0]
        assert finding.metric == "fault_tokens_lost"
        assert finding.kind == "counter"
        assert finding.severity == "severe"
        assert math.isinf(finding.relative)

    def test_flag_flip_is_severe(self):
        current = _result(saturated=True)
        outcome = diff_runs(_view(_entry(_result())), _view(_entry(current)))
        finding = outcome.divergences[0]
        assert (finding.kind, finding.metric) == ("flag", "saturated")
        assert finding.severity == "severe"

    def test_ranking_is_most_severe_first_with_stable_ties(self):
        current = _result(
            average_latency_s=3e-8 * 1.5,   # 50% -> severe
            network_messages=220,           # 10% -> minor/moderate
        )
        outcome = diff_runs(_view(_entry(_result())), _view(_entry(current)))
        assert outcome.divergences[0].metric == "average_latency_s"
        assert outcome.pair_scores[0][0] == PairKey("", "XBar/OCM", "Uniform")

    def test_custom_threshold_widens_the_gate(self):
        current = _result(average_latency_s=3e-8 * 1.2)
        outcome = diff_runs(
            _view(_entry(_result())),
            _view(_entry(current)),
            DiffThresholds(relative=0.5),
        )
        assert outcome.divergences == []

    def test_bench_views_compare_throughput(self):
        baseline = RunView(label="a", kind="bench", path=None)
        baseline.bench_metrics = {"replay_events_per_s": 100.0}
        current = RunView(label="b", kind="bench", path=None)
        current.bench_metrics = {"replay_events_per_s": 60.0}
        outcome = diff_runs(baseline, current)
        assert outcome.divergences[0].kind == "throughput"
        assert outcome.gating()

    def test_bench_vs_results_is_an_error(self):
        bench = RunView(label="b", kind="bench", path=None)
        with pytest.raises(ValueError, match="bench snapshots"):
            diff_runs(bench, _view(_entry(_result())))


class TestKSDistance:
    def test_identical_samples_zero(self):
        samples = sorted([1.0, 2.0, 3.0, 4.0])
        assert ks_distance(samples, samples) == 0.0

    def test_disjoint_samples_one(self):
        assert ks_distance([1.0, 2.0], [10.0, 20.0]) == 1.0

    def test_empty_side_is_zero(self):
        assert ks_distance([], [1.0]) == 0.0

    def test_shifted_distribution_detected(self):
        base = [float(i) for i in range(100)]
        shifted = [float(i) + 50.0 for i in range(100)]
        assert ks_distance(base, shifted) == 0.5


class TestMetricDeltas:
    def test_regression_detected_at_threshold(self):
        deltas = metric_deltas(
            {"a_per_s": 100.0}, {"a_per_s": 79.0}, threshold=0.20
        )
        assert deltas[0].regressed
        deltas = metric_deltas(
            {"a_per_s": 100.0}, {"a_per_s": 81.0}, threshold=0.20
        )
        assert not deltas[0].regressed

    def test_missing_baseline_never_regresses(self):
        deltas = metric_deltas({}, {"a_per_s": 50.0}, threshold=0.20)
        assert not deltas[0].regressed
        assert deltas[0].ratio is None
        assert not deltas[0].has_baseline

    def test_suffix_filter_and_ordering(self):
        deltas = metric_deltas(
            {"b_per_s": 1.0, "a_per_s": 1.0},
            {"b_per_s": 1.0, "a_per_s": 1.0, "seconds": 9.0},
            threshold=0.2,
        )
        assert [d.metric for d in deltas] == ["a_per_s", "b_per_s"]

    def test_bench_compare_contract_and_line_format(self):
        from scripts.bench_regression import compare

        ok, lines = compare(
            {"replay_per_s": 100.0},
            {"replay_per_s": 70.0, "fresh_per_s": 5.0},
        )
        assert not ok
        assert any("(no baseline)" in line for line in lines)
        regression = [line for line in lines if "REGRESSION" in line]
        assert regression and "( 0.70x)" in regression[0]
        ok, lines = compare({"replay_per_s": 100.0}, {"replay_per_s": 95.0})
        assert ok


# ---------------------------------------------------------------------------
# End-to-end: self-diff, injected regression, exit codes
# ---------------------------------------------------------------------------

class TestEndToEnd:
    def test_self_diff_identical_seeds_zero_divergence(self, tmp_path, capsys):
        run(_scenario(tmp_path, name="a", samples=True))
        run(_scenario(tmp_path, name="b", samples=True))
        code = cli_main(
            ["diff", str(tmp_path / "a" / "results.json"),
             str(tmp_path / "b" / "results.json")]
        )
        assert code == 0
        assert "0 divergence(s)" in capsys.readouterr().out

    def test_self_diff_serial_vs_parallel_bit_identical(self, tmp_path):
        run(_scenario(tmp_path, name="serial", jobs=1))
        run(_scenario(tmp_path, name="parallel", jobs=2))
        outcome = diff_runs(
            load_run(tmp_path / "serial" / "results.json"),
            load_run(tmp_path / "parallel" / "results.json"),
        )
        assert outcome.divergences == []
        assert outcome.aligned == 2

    def test_injected_regression_ranks_first_and_exits_5(
        self, tmp_path, capsys
    ):
        run(_scenario(tmp_path, name="base"))
        base_path = tmp_path / "base" / "results.json"
        payload = json.loads(base_path.read_text())
        for record in payload["results"]:
            if record["configuration"] == "XBar/OCM":
                record["average_latency_s"] *= 1.5
                record["p99_latency_s"] *= 1.5
                record["execution_time_s"] *= 1.5
        regressed = tmp_path / "regressed.json"
        regressed.write_text(json.dumps(payload))
        outcome = diff_runs(load_run(base_path), load_run(regressed))
        # Every divergence belongs to the perturbed pair, which ranks first.
        assert outcome.pair_scores[0][0] == PairKey("", "XBar/OCM", "Uniform")
        assert all(
            d.key.configuration == "XBar/OCM" for d in outcome.divergences
        )
        code = cli_main(["diff", str(base_path), str(regressed), "--json"])
        assert code == 5
        document = json.loads(capsys.readouterr().out)
        assert document["format"] == "corona-diff/1"
        assert document["gating_count"] == len(outcome.divergences)
        first = document["divergences"][0]
        assert first["configuration"] == "XBar/OCM"

    def test_diff_output_file_and_markdown(self, tmp_path, capsys):
        run(_scenario(tmp_path, name="a"))
        target = tmp_path / "report" / "diff.md"
        code = cli_main(
            ["diff", str(tmp_path / "a" / "results.json"),
             str(tmp_path / "a" / "results.json"),
             "--output", str(target)]
        )
        assert code == 0
        assert "No divergences above threshold" in target.read_text()
        capsys.readouterr()

    def test_samples_drive_distribution_comparison(self, tmp_path):
        run(_scenario(tmp_path, name="a", samples=True))
        view_a = load_run(tmp_path / "a" / "results.json")
        entry = view_a.entries[PairKey("", "XBar/OCM", "Uniform")]
        samples = entry.latency_samples()
        assert len(samples) == 400
        assert samples == sorted(samples)
        # Shift one pair's samples: the distribution findings appear with
        # both the nearest-rank percentiles and the KS distance.
        shifted_dir = tmp_path / "shifted"
        shifted_dir.mkdir()
        import shutil

        shutil.copytree(tmp_path / "a", shifted_dir / "a")
        sample_files = sorted((shifted_dir / "a").glob("samples-XBar*"))
        assert sample_files
        payload = json.loads(sample_files[0].read_text())
        payload["latency_s"] = [v * 2.0 for v in payload["latency_s"]]
        sample_files[0].write_text(json.dumps(payload))
        # Rewrite the copied manifest's paths to the copy's location.
        manifest = artifact_manifest_path(shifted_dir / "a" / "results.json")
        text = manifest.read_text().replace(
            str(tmp_path / "a"), str(shifted_dir / "a")
        )
        manifest.write_text(text)
        outcome = diff_runs(
            view_a, load_run(shifted_dir / "a" / "results.json")
        )
        metrics = {d.metric for d in outcome.divergences}
        assert "latency_ks" in metrics
        assert "latency_p99" in metrics
        # The summarized p99 field is skipped when samples are compared.
        assert "p99_latency_s" not in metrics

    def test_sweep_directory_self_diff_clean_with_axis_table(self, tmp_path):
        spec = SweepSpec(
            name="diff-sweep",
            base=Scenario(
                system=SystemSpec(configurations=("XBar/OCM",)),
                workloads=(WorkloadSpec(name="Uniform", num_requests=300),),
                scale=ScaleSpec(seed=3),
            ),
            axes=(
                SweepAxis(
                    name="window",
                    path="workloads[0].params.window",
                    values=(2, 4),
                ),
            ),
        )
        run_sweep(spec, directory=tmp_path / "s1")
        run_sweep(spec, directory=tmp_path / "s2")
        view = load_run(tmp_path / "s1")
        assert view.kind == "sweep-dir"
        assert view.axis_names == ["window"]
        assert all(key.point_id for key in view.entries)
        outcome = diff_runs(view, load_run(tmp_path / "s2"))
        assert outcome.divergences == []
        # Bit-identical sweeps drift on no axis value.
        assert outcome.axis_divergences == []
        # The sweep's JSON sink loads and self-diffs clean too.
        json_view = load_run(tmp_path / "s1" / "results.json")
        assert json_view.kind == "sweep-json"
        assert diff_runs(json_view, view).divergences == []


# ---------------------------------------------------------------------------
# Report rendering
# ---------------------------------------------------------------------------

class TestReport:
    def test_json_document_shape(self):
        current = _result(average_latency_s=3e-8 * 1.5)
        outcome = diff_runs(_view(_entry(_result())), _view(_entry(current)))
        document = diff_json_dict(outcome)
        assert document["format"] == "corona-diff/1"
        assert document["aligned_pairs"] == 1
        assert document["max_severity"] == "severe"
        assert document["thresholds"]["relative"] == 0.05
        finding = document["divergences"][0]
        assert finding["metric"] == "average_latency_s"
        assert finding["gating"] is True
        # The document is valid JSON even with infinite scores.
        json.dumps(document)

    def test_markdown_top_truncation(self):
        current = _result(
            average_latency_s=3e-8 * 1.5,
            execution_time_s=1e-6 * 1.4,
            network_messages=300,
        )
        outcome = diff_runs(_view(_entry(_result())), _view(_entry(current)))
        text = diff_markdown(outcome, top=1)
        assert "more below rank 1" in text
        assert text.count("| severe") <= 1


# ---------------------------------------------------------------------------
# Sweep aggregation
# ---------------------------------------------------------------------------

class TestAggregation:
    @staticmethod
    def _record(point_id, axis_values, configuration, execution_time_s):
        from repro.sweeps.engine import SweepRecord

        return SweepRecord(
            point_id=point_id,
            axis_values=axis_values,
            result=_result(
                configuration=configuration,
                execution_time_s=execution_time_s,
            ),
        )

    def test_geomeans_per_axis_value(self):
        records = [
            self._record("p1", {"gap": 20}, "XBar/OCM", 2e-6),
            self._record("p2", {"gap": 20}, "XBar/OCM", 8e-6),
            self._record("p3", {"gap": 40}, "XBar/OCM", 3e-6),
        ]
        table = axis_value_geomeans(records, ["gap"])
        rows = table["gap"]
        assert rows[0][0] == 20
        assert rows[0][1]["XBar/OCM"] == pytest.approx(4e-6)
        assert rows[1][1]["XBar/OCM"] == pytest.approx(3e-6)

    def test_crossover_detection(self):
        records = [
            self._record("p1", {"gap": 20}, "A", 1e-6),
            self._record("p2", {"gap": 20}, "B", 2e-6),
            self._record("p3", {"gap": 40}, "A", 3e-6),
            self._record("p4", {"gap": 40}, "B", 2e-6),
        ]
        crossovers = detect_crossovers(axis_value_geomeans(records, ["gap"]))
        assert len(crossovers) == 1
        assert crossovers[0]["leader_before"] == "A"
        assert crossovers[0]["leader_after"] == "B"

    def test_no_crossover_without_flip(self):
        records = [
            self._record("p1", {"gap": 20}, "A", 1e-6),
            self._record("p2", {"gap": 20}, "B", 2e-6),
            self._record("p3", {"gap": 40}, "A", 1e-6),
            self._record("p4", {"gap": 40}, "B", 3e-6),
        ]
        assert detect_crossovers(axis_value_geomeans(records, ["gap"])) == []

    def test_axis_divergence_ranks_largest_drift_first(self):
        baseline = [
            self._record("p1", {"gap": 20}, "A", 1e-6),
            self._record("p2", {"gap": 40}, "A", 1e-6),
        ]
        current = [
            self._record("p1", {"gap": 20}, "A", 1.1e-6),
            self._record("p2", {"gap": 40}, "A", 2e-6),
        ]
        rows = axis_divergence_rows(baseline, current, ["gap"])
        assert rows[0]["value"] == 40
        assert rows[0]["geomean_ratio"] == pytest.approx(2.0)
        assert rows[1]["value"] == 20

    def test_sweep_report_carries_aggregation_section(self, tmp_path):
        spec = SweepSpec(
            name="agg",
            base=Scenario(
                system=SystemSpec(
                    configurations=("XBar/OCM", "LMesh/ECM")
                ),
                workloads=(WorkloadSpec(name="Uniform", num_requests=300),),
                scale=ScaleSpec(seed=3),
            ),
            axes=(
                SweepAxis(
                    name="window",
                    path="workloads[0].params.window",
                    values=(2, 4),
                ),
            ),
        )
        run_sweep(spec, directory=tmp_path / "agg")
        report = (tmp_path / "agg" / "report.md").read_text()
        assert "## Axis aggregation" in report
        assert "execution_time_s" in report

    def test_sweep_manifest_records_point_alignment_metadata(self, tmp_path):
        spec = SweepSpec(
            name="meta",
            base=Scenario(
                system=SystemSpec(configurations=("XBar/OCM",)),
                workloads=(WorkloadSpec(name="Uniform", num_requests=300),),
                scale=ScaleSpec(seed=3),
            ),
            axes=(
                SweepAxis(
                    name="window",
                    path="workloads[0].params.window",
                    values=(2, 4),
                ),
            ),
        )
        run_sweep(spec, directory=tmp_path / "meta")
        manifest = json.loads((tmp_path / "meta" / "manifest.json").read_text())
        points = manifest["points"]
        assert len(points) == 2
        assert points[0]["point_id"] in manifest["point_ids"]
        assert points[0]["axis_values"] == {"window": 2}


# ---------------------------------------------------------------------------
# Samples artifact and run manifest
# ---------------------------------------------------------------------------

class TestSamplesAndManifest:
    def test_samples_artifact_format_and_content(self, tmp_path):
        result = run(_scenario(tmp_path, name="s", samples=True))
        manifest = load_artifact_manifest(result.written["artifacts"])
        samples = [a for a in manifest if a.kind == "samples"]
        assert len(samples) == 2
        payload = load_samples(samples[0].path)
        assert payload["format"] == SAMPLES_FORMAT
        assert payload["configuration"] == samples[0].configuration
        assert len(payload["latency_s"]) == 400

    def test_samples_only_spec_changes_no_results(self, tmp_path):
        plain = run(_scenario(tmp_path, name="plain"))
        sampled = run(_scenario(tmp_path, name="sampled", samples=True))
        assert [r.to_dict() for r in plain.results] == [
            r.to_dict() for r in sampled.results
        ]

    def test_manifest_lists_result_sinks_without_telemetry(self, tmp_path):
        result = run(_scenario(tmp_path, name="bare"))
        manifest = load_artifact_manifest(result.written["artifacts"])
        kinds = {a.kind for a in manifest}
        assert {"json", "csv"} <= kinds
        assert not any(a.kind == "samples" for a in manifest)

    def test_nearest_rank_matches_replay_estimator(self):
        from repro.core.system import _nearest_rank

        assert _nearest_rank is nearest_rank
        ordered = [1.0, 2.0, 3.0, 4.0]
        assert nearest_rank(ordered, 0.5) == 2.0
        assert nearest_rank(ordered, 0.99) == 4.0
        assert nearest_rank([], 0.5) == 0.0


# ---------------------------------------------------------------------------
# Coherence counter tracks
# ---------------------------------------------------------------------------

class TestCoherenceCounters:
    COHERENCE_METRICS = {
        "directory_lookups",
        "c2c_forwards",
        "invalidations_sent",
        "invalidation_broadcasts",
        "invalidation_unicasts",
        "writebacks",
    }

    def _coherent_scenario(self, tmp_path, coherence=True):
        payload = {
            "name": "coh",
            "system": {"configurations": ["XBar/OCM"]},
            "workloads": [
                {
                    "name": "Uniform",
                    "num_requests": 300,
                    "sharing": {"fraction": 0.4},
                }
            ],
            "scale": {"seed": 3},
            "observability": {
                "metrics_path": str(tmp_path / "m.csv"),
                "timeline_path": str(tmp_path / "t.json"),
            },
        }
        if coherence:
            payload["coherence"] = {}
        return Scenario.from_dict(payload)

    def test_coherent_replay_emits_counter_rows_and_tracks(self, tmp_path):
        run(self._coherent_scenario(tmp_path))
        with open(tmp_path / "m.csv", newline="") as handle:
            rows = list(csv.reader(handle))
        header = rows[0]
        metric_col = header.index("metric")
        resource_col = header.index("resource")
        sampled = {
            row[metric_col]
            for row in rows[1:]
            if row[resource_col] == "coherence"
        }
        assert sampled == self.COHERENCE_METRICS
        events = json.loads((tmp_path / "t.json").read_text())
        tracks = {
            event["name"]
            for event in events
            if event.get("ph") == "C"
        }
        assert {
            f"coherence.{metric}" for metric in self.COHERENCE_METRICS
        } <= tracks

    def test_coherence_free_replay_emits_no_coherence_rows(self, tmp_path):
        run(self._coherent_scenario(tmp_path, coherence=False))
        with open(tmp_path / "m.csv", newline="") as handle:
            rows = list(csv.reader(handle))
        resource_col = rows[0].index("resource")
        assert all(row[resource_col] != "coherence" for row in rows[1:])


# ---------------------------------------------------------------------------
# trace view
# ---------------------------------------------------------------------------

class TestTraceView:
    def _timeline(self, tmp_path):
        from dataclasses import replace

        scenario = _scenario(
            tmp_path, name="tl", configurations=("XBar/OCM",)
        )
        scenario = replace(
            scenario,
            observability=ObservabilitySpec(
                timeline_path=str(tmp_path / "tl" / "timeline.json")
            ),
        )
        run(scenario)
        return tmp_path / "tl" / "timeline.json"

    def test_summarize_real_timeline(self, tmp_path):
        from repro.obs.trace_view import load_timeline, summarize_timeline

        events = load_timeline(str(self._timeline(tmp_path)))
        summary = summarize_timeline(events, top=5)
        assert summary.transactions.count == 400
        assert "memory" in summary.stages
        assert len(summary.slowest) == 5
        # Slowest list is sorted by duration descending.
        durations = [entry[1] for entry in summary.slowest]
        assert durations == sorted(durations, reverse=True)

    def test_cli_trace_view_renders(self, tmp_path, capsys):
        path = self._timeline(tmp_path)
        code = cli_main(["trace", "view", str(path), "--top", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "400 transactions" in out
        assert "slowest transactions" in out
        assert "span durations" in out

    def test_invalid_timeline_rejected(self, tmp_path):
        from repro.obs.trace_view import TraceViewError, load_timeline

        bad = tmp_path / "bad.json"
        bad.write_text('"just a string"')
        with pytest.raises(TraceViewError):
            load_timeline(str(bad))

    def test_fault_events_surface_in_summary(self, tmp_path):
        from dataclasses import replace

        from repro.faults import FaultSpec
        from repro.obs.trace_view import load_timeline, summarize_timeline

        scenario = _scenario(
            tmp_path, name="flt", configurations=("XBar/OCM",)
        )
        scenario = replace(
            scenario,
            faults=FaultSpec(dram_timeout_rate=0.05, seed=7),
            observability=ObservabilitySpec(
                timeline_path=str(tmp_path / "flt" / "timeline.json")
            ),
        )
        run(scenario)
        events = load_timeline(str(tmp_path / "flt" / "timeline.json"))
        summary = summarize_timeline(events)
        assert summary.faults
