"""Tests for the coherence traffic subsystem and its replay wiring.

Covers the sharing-aware trace generation, the timed MOESI directory engine
(broadcast vs unicast invalidation delivery, cache-to-cache forwards, dirty
writebacks), the bit-identical guarantee of the coherence-free path, and the
serial/parallel equivalence of coherence-enabled replays.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.coherence import (
    CoherenceConfig,
    SHARED_REGION_BIT,
    SharingProfile,
    home_for_line,
    shared_line_address,
)
from repro.core.configs import configuration_by_name
from repro.core.system import SystemSimulator, simulate_workload
from repro.harness.experiments import (
    EvaluationMatrix,
    ExperimentScale,
    coherence_sweep,
    coherence_sweep_report,
)
from repro.harness.parallel import ParallelEvaluationRunner, run_pairs
from repro.harness.runner import EvaluationRunner
from repro.network.broadcast import OpticalBroadcastBus
from repro.network.mesh import low_performance_mesh
from repro.network.message import Message, MessageType
from repro.trace.synthetic import uniform_workload

REQUESTS = 3_000


def _sharing_workload(fraction=0.3, **profile_kwargs):
    return uniform_workload(
        sharing=SharingProfile(fraction=fraction, **profile_kwargs)
    )


def _run(configuration_name, workload, coherence=None, requests=REQUESTS):
    return simulate_workload(
        configuration_by_name(configuration_name),
        workload,
        num_requests=requests,
        coherence=coherence,
    )


class TestSharingProfile:
    def test_validation(self):
        with pytest.raises(ValueError):
            SharingProfile(fraction=1.5)
        with pytest.raises(ValueError):
            SharingProfile(num_lines=0)
        with pytest.raises(ValueError):
            SharingProfile(zipf_s=-1.0)
        with pytest.raises(ValueError):
            SharingProfile(write_fraction=2.0)

    def test_shared_addresses_live_in_their_own_region(self):
        for line in (0, 7, 511):
            address = shared_line_address(line, 64)
            assert address & SHARED_REGION_BIT
            # The home cluster sits in the same bit positions private
            # synthetic addresses use.
            assert ((address >> 26) & 0x3F) == home_for_line(line, 64)

    def test_trace_tagging_fraction_and_homes(self):
        workload = _sharing_workload(fraction=0.4)
        trace = workload.generate(seed=1, num_requests=6_000)
        trace.validate()
        assert trace.shared_fraction() == pytest.approx(0.4, abs=0.05)
        for record in trace.all_records():
            if record.shared:
                assert record.address & SHARED_REGION_BIT
                line = (record.address & ~SHARED_REGION_BIT & ~(0x3F << 26)) // 64
                assert record.home_cluster == home_for_line(line, 64)
            else:
                assert not record.address & SHARED_REGION_BIT

    def test_fraction_zero_generates_identical_trace(self):
        plain = uniform_workload().generate(seed=5, num_requests=2_000)
        zero = uniform_workload(
            sharing=SharingProfile(fraction=0.0)
        ).generate(seed=5, num_requests=2_000)
        assert list(plain.all_records()) == list(zero.all_records())


class TestCoherenceConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            CoherenceConfig(broadcast_threshold=0)
        with pytest.raises(ValueError):
            CoherenceConfig(directory_latency_s=-1.0)


class TestInterconnectMulticast:
    def test_mesh_unicast_fanout_counts_messages_and_hops(self):
        mesh = low_performance_mesh(num_clusters=16, clock_hz=5e9)
        message = Message(src=0, dst=0, message_type=MessageType.INVALIDATE)
        result = mesh.multicast(message, [1, 5, 0, 15], now=0.0)
        # Destination 0 == src is skipped.
        assert result.messages == 3
        assert result.hops > 0
        assert result.last_arrival > 0.0

    def test_broadcast_bus_multicast_is_one_message(self):
        bus = OpticalBroadcastBus(num_clusters=16)
        message = Message(src=0, dst=0, message_type=MessageType.INVALIDATE)
        result = bus.multicast(message, list(range(1, 16)), now=0.0)
        assert result.messages == 1
        assert result.hops == 0
        assert bus.broadcasts_sent == 1
        assert bus.unicast_messages_avoided == 14
        assert bus.busy_seconds > 0.0
        assert bus.occupancy(1e-6) == pytest.approx(bus.busy_seconds / 1e-6)

    def test_broadcast_bus_multicast_all_local_is_free(self):
        bus = OpticalBroadcastBus(num_clusters=16)
        message = Message(src=3, dst=3, message_type=MessageType.INVALIDATE)
        result = bus.multicast(message, [3], now=1e-9)
        assert result.messages == 0
        assert result.last_arrival == 1e-9


class TestCoherentReplay:
    def test_fraction_zero_is_bit_identical_to_plain_engine(self):
        workload = uniform_workload()
        plain = _run("XBar/OCM", workload)
        coherent = _run("XBar/OCM", workload, coherence=CoherenceConfig())
        assert coherent.coherence_enabled and not plain.coherence_enabled
        for field in dataclasses.fields(plain):
            if field.name == "coherence_enabled":
                continue
            assert getattr(plain, field.name) == getattr(coherent, field.name), (
                field.name
            )

    def test_photonic_broadcast_vs_electrical_unicast(self):
        workload = _sharing_workload(fraction=0.3)
        photonic = _run("XBar/OCM", workload, coherence=CoherenceConfig())
        electrical = _run("LMesh/ECM", workload, coherence=CoherenceConfig())

        for result in (photonic, electrical):
            assert result.coherence_enabled
            assert result.shared_requests > 0
            assert result.invalidations_sent > 0
            assert result.cache_to_cache_transfers > 0
            assert result.dirty_writebacks > 0
            assert result.average_invalidation_latency_s > 0.0
            assert result.average_cache_to_cache_latency_s > 0.0

        # The broadcast bus exists only on the Corona photonic stack.
        assert photonic.invalidation_broadcasts > 0
        assert photonic.broadcast_occupancy > 0.0
        assert electrical.invalidation_broadcasts == 0
        assert electrical.broadcast_occupancy == 0.0
        assert electrical.invalidation_unicasts > photonic.invalidation_unicasts

        # The acceptance criterion: broadcast delivery beats per-sharer
        # unicast on the electrical mesh by a wide, stable margin.
        assert (
            photonic.average_invalidation_latency_s
            < 0.5 * electrical.average_invalidation_latency_s
        )

    def test_directory_never_broadcasts_without_the_bus(self):
        workload = _sharing_workload(fraction=0.5, write_fraction=0.3)
        simulator = SystemSimulator(
            configuration=configuration_by_name("HMesh/ECM"),
            coherence=CoherenceConfig(broadcast_threshold=2),
        )
        trace = workload.generate(seed=1, num_requests=REQUESTS)
        simulator.run(trace)
        assert simulator.broadcast_bus is None
        assert all(
            directory.broadcasts_used == 0
            for directory in simulator.coherence.directories
        )
        assert simulator.coherence.stats.unicast_invalidations > 0

    def test_sharer_histogram_merges_directories(self):
        workload = _sharing_workload(fraction=0.5)
        simulator = SystemSimulator(
            configuration=configuration_by_name("XBar/OCM"),
            coherence=CoherenceConfig(),
        )
        simulator.run(workload.generate(seed=1, num_requests=REQUESTS))
        histogram = simulator.coherence.sharer_histogram()
        assert sum(histogram.values()) > 0
        # Read-mostly sharing must produce multi-sharer lines.
        assert any(count > 1 for count in histogram)

    def test_execution_time_grows_with_sharing_on_electrical(self):
        """Coherence traffic is not free: invalidation fan-out plus gating
        must not make the electrical replay faster."""
        none = _run("LMesh/ECM", _sharing_workload(0.0), CoherenceConfig())
        heavy = _run(
            "LMesh/ECM",
            _sharing_workload(0.5, write_fraction=0.4),
            CoherenceConfig(),
        )
        assert heavy.invalidations_sent > 0
        assert heavy.average_latency_s > 0.0
        assert none.invalidations_sent == 0


class TestSerialParallelCoherence:
    def test_run_pairs_pool_matches_serial_for_coherent_pair(self):
        """One coherence-enabled (configuration, workload) pair must replay
        bit-identically in a worker process and in-process."""
        workload = _sharing_workload(fraction=0.3)
        trace = workload.generate(seed=1, num_requests=2_000)
        pairs = [
            ("XBar/OCM", trace, workload.window, CoherenceConfig()),
            ("LMesh/ECM", trace, workload.window, CoherenceConfig()),
        ]
        serial = run_pairs(pairs, jobs=1)
        parallel = run_pairs(pairs, jobs=2)
        assert len(serial) == len(parallel) == 2
        for s, p in zip(serial, parallel):
            for field in dataclasses.fields(s):
                assert getattr(s, field.name) == getattr(p, field.name), field.name

    def test_matrix_coherence_plumbs_through_both_runners(self):
        matrix = EvaluationMatrix(
            scale=ExperimentScale(synthetic_requests=600),
            configuration_names=["XBar/OCM"],
            include_splash=False,
            workload_filter=["Uniform"],
            coherence=CoherenceConfig(),
        )
        serial = EvaluationRunner(matrix=matrix).run()
        parallel = ParallelEvaluationRunner(matrix=matrix, jobs=2).run()
        assert serial == parallel
        assert all(result.coherence_enabled for result in serial)


class TestCoherenceSweep:
    def test_sweep_points_and_report(self):
        points = coherence_sweep(
            fractions=(0.0, 0.3),
            configuration_names=("LMesh/ECM", "XBar/OCM"),
            num_requests=2_000,
        )
        assert [p.sharing_fraction for p in points] == [0.0, 0.3]
        for point in points:
            assert [r.configuration for r in point.results] == [
                "LMesh/ECM",
                "XBar/OCM",
            ]
        zero, shared = points
        assert all(r.invalidations_sent == 0 for r in zero.results)
        by_config = {r.configuration: r for r in shared.results}
        assert (
            by_config["XBar/OCM"].average_invalidation_latency_s
            < by_config["LMesh/ECM"].average_invalidation_latency_s
        )
        report = coherence_sweep_report(points)
        assert "Sharing fraction 0.3" in report
        assert "XBar/OCM" in report

    def test_sweep_parallel_matches_serial(self):
        kwargs = dict(
            fractions=(0.2,),
            configuration_names=("XBar/OCM", "LMesh/ECM"),
            num_requests=1_500,
        )
        assert coherence_sweep(jobs=1, **kwargs)[0].results == coherence_sweep(
            jobs=2, **kwargs
        )[0].results
