"""Tests for resource-occupancy primitives."""

import pytest

from repro.sim.resources import BoundedQueue, SerialResource, TokenPool


class TestSerialResource:
    def test_immediate_grant_when_idle(self):
        resource = SerialResource("link")
        assert resource.reserve(0.0, 1.0) == pytest.approx(1.0)

    def test_back_to_back_reservations_queue(self):
        resource = SerialResource("link")
        first = resource.reserve(0.0, 1.0)
        second = resource.reserve(0.0, 1.0)
        assert first == pytest.approx(1.0)
        assert second == pytest.approx(2.0)

    def test_reservation_after_idle_gap_starts_at_request_time(self):
        resource = SerialResource("link")
        resource.reserve(0.0, 1.0)
        end = resource.reserve(5.0, 1.0)
        assert end == pytest.approx(6.0)

    def test_backfill_of_earlier_gap(self):
        # A reservation far in the future must not block an earlier request
        # for an idle period (the out-of-order case that arises when memory
        # data-returns are booked ahead of later commands).
        resource = SerialResource("channel")
        resource.reserve(100.0, 1.0)
        end = resource.reserve(0.0, 1.0)
        assert end == pytest.approx(1.0)

    def test_backfill_respects_existing_reservations(self):
        resource = SerialResource("channel")
        resource.reserve(2.0, 2.0)  # busy [2, 4)
        end = resource.reserve(1.0, 2.0)  # does not fit before 2.0
        assert end == pytest.approx(6.0)

    def test_small_gap_is_skipped(self):
        # Times in nanoseconds (the scale the simulator actually uses), so the
        # pruning horizon never discards still-relevant intervals.
        ns = 1e-9
        resource = SerialResource("channel")
        resource.reserve(0.0, 1.0 * ns)  # [0, 1) ns
        resource.reserve(1.5 * ns, 1.0 * ns)  # [1.5, 2.5) ns
        end = resource.reserve(0.0, 1.0 * ns)  # 0.5 ns gap too small
        assert end == pytest.approx(3.5 * ns)

    def test_multiple_servers_serve_in_parallel(self):
        resource = SerialResource("banks", servers=2)
        assert resource.reserve(0.0, 1.0) == pytest.approx(1.0)
        assert resource.reserve(0.0, 1.0) == pytest.approx(1.0)
        assert resource.reserve(0.0, 1.0) == pytest.approx(2.0)

    def test_busy_time_accumulates(self):
        resource = SerialResource("link")
        resource.reserve(0.0, 1.5)
        resource.reserve(0.0, 0.5)
        assert resource.busy_time == pytest.approx(2.0)
        assert resource.reservations == 2

    def test_utilization(self):
        resource = SerialResource("link")
        resource.reserve(0.0, 2.0)
        assert resource.utilization(4.0) == pytest.approx(0.5)

    def test_utilization_with_multiple_servers(self):
        resource = SerialResource("banks", servers=4)
        resource.reserve(0.0, 2.0)
        assert resource.utilization(2.0) == pytest.approx(0.25)

    def test_utilization_zero_elapsed(self):
        assert SerialResource("x").utilization(0.0) == 0.0

    def test_queue_delay(self):
        resource = SerialResource("link")
        resource.reserve(0.0, 3.0)
        assert resource.queue_delay(1.0) == pytest.approx(2.0)

    def test_zero_duration_reservation(self):
        resource = SerialResource("link")
        assert resource.reserve(1.0, 0.0) == pytest.approx(1.0)

    def test_rejects_negative_duration(self):
        with pytest.raises(ValueError):
            SerialResource("link").reserve(0.0, -1.0)

    def test_rejects_negative_time(self):
        with pytest.raises(ValueError):
            SerialResource("link").reserve(-1.0, 1.0)

    def test_rejects_zero_servers(self):
        with pytest.raises(ValueError):
            SerialResource("x", servers=0)

    def test_reset(self):
        resource = SerialResource("link")
        resource.reserve(0.0, 5.0)
        resource.reset()
        assert resource.busy_time == 0.0
        assert resource.reserve(0.0, 1.0) == pytest.approx(1.0)

    def test_saturated_resource_throughput_matches_bandwidth(self):
        # 100 back-to-back unit reservations must finish at exactly t=100.
        resource = SerialResource("link")
        end = 0.0
        for _ in range(100):
            end = resource.reserve(0.0, 1.0)
        assert end == pytest.approx(100.0)


class TestBoundedQueue:
    def test_admission_is_immediate_when_space(self):
        queue = BoundedQueue("q", capacity=2)
        assert queue.admission_time(0.0) == 0.0

    def test_admission_waits_when_full(self):
        queue = BoundedQueue("q", capacity=2)
        queue.admit(0.0, departure_time=5.0)
        queue.admit(0.0, departure_time=3.0)
        assert queue.admission_time(1.0) == pytest.approx(3.0)

    def test_occupancy_decreases_after_departures(self):
        queue = BoundedQueue("q", capacity=4)
        queue.admit(0.0, departure_time=2.0)
        queue.admit(0.0, departure_time=4.0)
        assert queue.occupancy(1.0) == 2
        assert queue.occupancy(3.0) == 1
        assert queue.occupancy(5.0) == 0

    def test_admit_rejects_departure_before_admission(self):
        queue = BoundedQueue("q", capacity=1)
        queue.admit(0.0, departure_time=10.0)
        with pytest.raises(ValueError):
            queue.admit(0.0, departure_time=5.0)

    def test_max_occupancy_tracked(self):
        queue = BoundedQueue("q", capacity=3)
        for _ in range(3):
            queue.admit(0.0, departure_time=10.0)
        assert queue.max_occupancy_seen == 3

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            BoundedQueue("q", capacity=0)

    def test_reset(self):
        queue = BoundedQueue("q", capacity=1)
        queue.admit(0.0, departure_time=10.0)
        queue.reset()
        assert queue.occupancy(0.0) == 0
        assert queue.total_admitted == 0


class TestTokenPool:
    def test_grant_immediate_when_tokens_available(self):
        pool = TokenPool("mshrs", tokens=2)
        assert pool.acquire(0.0, release_time_hint=5.0) == 0.0

    def test_grant_waits_when_exhausted(self):
        pool = TokenPool("mshrs", tokens=2)
        pool.acquire(0.0, release_time_hint=4.0)
        pool.acquire(0.0, release_time_hint=6.0)
        assert pool.acquire(1.0, release_time_hint=10.0) == pytest.approx(4.0)

    def test_tokens_free_after_release_time(self):
        pool = TokenPool("mshrs", tokens=1)
        pool.acquire(0.0, release_time_hint=2.0)
        assert pool.acquire(3.0, release_time_hint=5.0) == pytest.approx(3.0)

    def test_acquire_without_hint_and_release_at(self):
        pool = TokenPool("mshrs", tokens=1)
        grant = pool.acquire(0.0)
        pool.release_at(4.0)
        assert grant == 0.0
        assert pool.acquire(1.0, release_time_hint=8.0) == pytest.approx(4.0)

    def test_in_use_counts_outstanding(self):
        pool = TokenPool("mshrs", tokens=4)
        pool.acquire(0.0, release_time_hint=10.0)
        pool.acquire(0.0, release_time_hint=20.0)
        assert pool.in_use(5.0) == 2
        assert pool.in_use(15.0) == 1

    def test_average_wait(self):
        pool = TokenPool("mshrs", tokens=1)
        pool.acquire(0.0, release_time_hint=4.0)
        pool.acquire(0.0, release_time_hint=8.0)
        assert pool.average_wait() == pytest.approx(2.0)

    def test_release_hint_before_grant_rejected(self):
        pool = TokenPool("mshrs", tokens=1)
        pool.acquire(0.0, release_time_hint=10.0)
        with pytest.raises(ValueError):
            pool.acquire(0.0, release_time_hint=5.0)

    def test_rejects_zero_tokens(self):
        with pytest.raises(ValueError):
            TokenPool("x", tokens=0)

    def test_reset(self):
        pool = TokenPool("mshrs", tokens=1)
        pool.acquire(0.0, release_time_hint=100.0)
        pool.reset()
        assert pool.acquire(0.0, release_time_hint=1.0) == 0.0


class TestNextAvailablePrunedFastPath:
    """Regression tests for the pruned next_available fast path.

    next_available used to call the generic gap scan over every committed
    interval per server; it now mirrors reserve's pruned single-bisect fast
    path, so long replays keep the query O(log pruned-intervals) and the
    interval lists bounded.
    """

    def test_idle_resource_returns_now(self):
        assert SerialResource("link").next_available(3.0) == 3.0

    def test_covered_instant_returns_interval_end(self):
        resource = SerialResource("link")
        resource.reserve(2.0, 3.0)  # busy [2, 5)
        assert resource.next_available(3.0) == pytest.approx(5.0)

    def test_instant_in_gap_returns_now(self):
        resource = SerialResource("link")
        resource.reserve(0.0, 1.0)
        resource.reserve(4.0, 1.0)
        assert resource.next_available(2.0) == pytest.approx(2.0)

    def test_queue_delay_consistency(self):
        resource = SerialResource("link")
        resource.reserve(0.0, 3.0)
        assert resource.queue_delay(1.0) == pytest.approx(2.0)

    def test_long_run_stays_pruned_and_correct(self):
        # 2000 disjoint reservations spanning 40 us against the 5 us prune
        # horizon: the committed-interval list must stay bounded, and
        # next_available must keep answering from the pruned tail.
        ns = 1e-9
        resource = SerialResource("link")
        for index in range(2000):
            resource.reserve(index * 20 * ns, 10 * ns)
        assert len(resource._ends[0]) < 600
        tail_end = 1999 * 20 * ns + 10 * ns
        # Covered instant inside the last interval -> that interval's end.
        assert resource.next_available(tail_end - 5 * ns) == pytest.approx(
            tail_end
        )
        # Instant in the gap before the last interval -> itself.
        gap_instant = 1999 * 20 * ns - 5 * ns
        assert resource.next_available(gap_instant) == pytest.approx(gap_instant)
        # Instant beyond every reservation -> itself.
        assert resource.next_available(2 * tail_end) == pytest.approx(
            2 * tail_end
        )

    def test_next_available_itself_prunes(self):
        # A backfilled reservation can commit an interval that is already
        # behind the prune horizon (reserve prunes *before* inserting);
        # next_available must shed it rather than scan past it forever.
        us = 1e-6
        resource = SerialResource("link")
        resource.reserve(100.0 * us, 1.0 * us)  # high water at 100 us
        resource.reserve(0.0, 0.5 * us)  # backfill, expired on arrival
        assert len(resource._ends[0]) == 2
        assert resource.next_available(100.5 * us) == pytest.approx(101.0 * us)
        assert len(resource._ends[0]) == 1

    def test_multi_server_earliest_end_wins(self):
        resource = SerialResource("banks", servers=2)
        resource.reserve(0.0, 4.0)  # server 0 busy [0, 4)
        resource.reserve(0.0, 2.0)  # server 1 busy [0, 2)
        assert resource.next_available(1.0) == pytest.approx(2.0)

    def test_multi_server_free_server_short_circuits(self):
        resource = SerialResource("banks", servers=2)
        resource.reserve(0.0, 4.0)  # only server 0 busy
        assert resource.next_available(1.0) == pytest.approx(1.0)


class TestResourceEdgeCases:
    """Edge cases CI now exercises on every push: queue overflow admission,
    out-of-order token releases, and multi-server prune/backfill interplay."""

    def test_bounded_queue_admission_overflow_path(self):
        # Occupancy can exceed capacity because admit() books future-time
        # admissions; admission_time must then wait for enough departures
        # (the heapq.nsmallest overflow branch), not just the earliest one.
        queue = BoundedQueue("q", capacity=2)
        queue.admit(0.0, departure_time=10.0)
        queue.admit(0.0, departure_time=20.0)
        assert queue.admit(0.0, departure_time=30.0) == pytest.approx(10.0)
        assert queue.admit(0.0, departure_time=40.0) == pytest.approx(20.0)
        # Four residents, capacity 2: a fifth entry needs three departures.
        assert queue.occupancy(5.0) == 4
        assert queue.admission_time(5.0) == pytest.approx(30.0)
        assert queue.max_occupancy_seen == 4

    def test_token_pool_release_at_out_of_order(self):
        pool = TokenPool("mshrs", tokens=2)
        pool.acquire(0.0)
        pool.acquire(0.0)
        # Releases registered in reverse completion order: the heap must
        # grant against the earliest release, not the insertion order.
        pool.release_at(40.0)
        pool.release_at(10.0)
        assert pool.in_use(0.0) == 2
        assert pool.acquire(0.0, release_time_hint=50.0) == pytest.approx(10.0)
        assert pool.in_use(20.0) == 2  # 10.0 expired; 40.0 and 50.0 remain
        assert pool.in_use(60.0) == 0

    def test_multi_server_prune_preserves_backfill_within_horizon(self):
        us = 1e-6
        resource = SerialResource("banks", servers=2)
        resource.reserve(0.0, 1.0 * us)  # server 0 [0, 1) us
        resource.reserve(0.0, 1.0 * us)  # server 1 [0, 1) us
        # Jump far beyond the 5 us prune horizon: the old intervals expire.
        resource.reserve(100.0 * us, 1.0 * us)
        resource.reserve(100.0 * us, 1.0 * us)
        resource.reserve(102.0 * us, 1.0 * us)
        assert all(len(ends) <= 2 for ends in resource._ends)
        # Backfill into the idle gap just before the tail reservations must
        # still work on both servers after pruning.
        assert resource.reserve(97.0 * us, 1.0 * us) == pytest.approx(98.0 * us)
        assert resource.reserve(97.0 * us, 1.0 * us) == pytest.approx(98.0 * us)
        # Accounting is prune-independent.
        assert resource.reservations == 7
        assert resource.busy_time == pytest.approx(7.0 * us)


class _NaiveSerialReference:
    """Bit-exact reference for the single-server backfill scan, with no
    prune horizon and no proven-gap window: a plain left-to-right scan over
    coalesced intervals, mirroring reserve()'s adequacy test exactly."""

    _EPS = 1e-15

    def __init__(self):
        self.intervals = []  # sorted, disjoint (start, end)

    def reserve(self, now, duration):
        candidate = now
        for start, end in self.intervals:
            if end <= candidate:
                continue
            if candidate + duration <= start + self._EPS:
                break
            if end > candidate:
                candidate = end
        self.intervals.append((candidate, candidate + duration))
        self.intervals.sort()
        merged = []
        for start, end in self.intervals:
            if merged and start <= merged[-1][1] + self._EPS:
                merged[-1] = (merged[-1][0], max(merged[-1][1], end))
            else:
                merged.append((start, end))
        self.intervals = merged
        return candidate + duration


class TestBackfillScanIndex:
    """The carried-forward proven-gap window (the indexed structure for the
    single-server backfill scan): placements stay bit-identical to a plain
    scan while congested resources stop rescanning their whole timeline."""

    def test_comb_contention_scan_steps_bounded(self):
        # A comb of committed intervals leaving 0.4 ns gaps; reservations
        # needing 0.5 ns can never backfill and must reach the tail.  A
        # plain scan re-walks all N teeth per reservation (~N*M steps); the
        # proven-gap window pays N once and O(1) per reservation after.
        resource = SerialResource("hot-link")
        teeth, reservations = 4000, 200
        for i in range(teeth):
            resource.reserve(i * 1e-9, 0.6e-9)
        congested_base = resource.scan_steps
        ends = [resource.reserve(0.0, 0.5e-9) for _ in range(reservations)]
        steps = resource.scan_steps - congested_base
        assert steps < teeth + 20 * reservations
        # All placements serialize at the tail, back to back.
        for previous, current in zip(ends, ends[1:]):
            assert current == pytest.approx(previous + 0.5e-9)

    def test_comb_placements_match_plain_scan(self):
        resource = SerialResource("hot-link")
        reference = _NaiveSerialReference()
        for i in range(500):
            now, duration = i * 1e-9, 0.6e-9
            assert resource.reserve(now, duration) == reference.reserve(now, duration)
        for _ in range(50):
            assert resource.reserve(0.0, 0.5e-9) == reference.reserve(0.0, 0.5e-9)

    def test_smaller_duration_ignores_longer_proof(self):
        # The window records proofs per duration: a 0.5 ns scan over 0.4 ns
        # gaps must not block a later 0.3 ns reservation from backfilling.
        resource = SerialResource("link")
        for i in range(10):
            resource.reserve(i * 1e-9, 0.6e-9)  # gaps of 0.4 ns
        tail = resource.reserve(0.0, 0.5e-9)  # too long for any gap
        assert tail == pytest.approx(9 * 1e-9 + 0.6e-9 + 0.5e-9)
        backfilled = resource.reserve(0.0, 0.3e-9)  # fits the first gap
        assert backfilled == pytest.approx(0.6e-9 + 0.3e-9)

    def test_randomized_equivalence_with_plain_scan(self):
        import random

        rng = random.Random(20080621)
        for _ in range(20):
            resource = SerialResource("link")
            reference = _NaiveSerialReference()
            clock = 0.0
            for _ in range(300):
                clock += rng.random() * 2e-9
                now = max(0.0, clock - rng.random() * 3e-9)
                duration = rng.choice((0.0, 0.3e-9, 0.5e-9, 2e-9)) * (
                    1.0 + rng.random()
                )
                assert resource.reserve(now, duration) == reference.reserve(
                    now, duration
                )

    def test_randomized_equivalence_across_prune_horizon(self):
        # Larger steps walk the clock far past the 5 us prune horizon while
        # requests stay within it, so pruning (which merges old gaps and
        # must advance the window) is exercised against the same reference.
        import random

        rng = random.Random(2008)
        resource = SerialResource("link")
        reference = _NaiveSerialReference()
        clock = 0.0
        for _ in range(2000):
            clock += rng.random() * 0.5e-6
            now = max(0.0, clock - rng.random() * 2e-6)
            duration = rng.choice((0.0, 10e-9, 50e-9)) * (1.0 + rng.random())
            assert resource.reserve(now, duration) == reference.reserve(
                now, duration
            )

    def test_reset_clears_scan_state(self):
        resource = SerialResource("link")
        for i in range(50):
            resource.reserve(i * 1e-9, 0.6e-9)
        resource.reserve(0.0, 0.5e-9)
        assert resource.scan_steps > 0
        resource.reset()
        assert resource.scan_steps == 0
        assert resource.reserve(0.0, 1e-9) == pytest.approx(1e-9)
