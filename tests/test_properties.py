"""Property-based tests (hypothesis) on the core data structures and invariants."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.cache import SetAssociativeCache
from repro.cache.coherence import CoherenceController
from repro.network.crossbar import OpticalCrossbar
from repro.network.mesh import high_performance_mesh
from repro.network.message import Message, MessageType
from repro.network.topology import MeshCoordinates
from repro.photonics.inventory import corona_inventory
from repro.sim.engine import Simulator
from repro.sim.resources import SerialResource, TokenPool
from repro.sim.stats import RunningStats, geometric_mean
from repro.trace.synthetic import tornado_destination, transpose_destination


class TestResourceProperties:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=1e-3),
                st.floats(min_value=0.0, max_value=1e-6),
            ),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_serial_resource_never_overlaps_more_than_servers(self, requests):
        """Total busy time never exceeds servers x span, and every reservation
        ends after it starts."""
        resource = SerialResource("r", servers=2)
        ends = []
        for now, duration in requests:
            end = resource.reserve(now, duration)
            assert end >= now + duration - 1e-18
            ends.append(end)
        span = max(ends) if ends else 0.0
        assert resource.busy_time <= 2 * span + 1e-12

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=1e-3), min_size=1, max_size=50
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_serial_resource_grants_are_monotone_for_sorted_requests(self, times):
        """With FIFO arrivals at a single server, completion times are monotone."""
        resource = SerialResource("link")
        previous_end = 0.0
        for now in sorted(times):
            end = resource.reserve(now, 1e-6)
            assert end >= previous_end
            previous_end = end

    @given(st.integers(min_value=1, max_value=16), st.integers(min_value=1, max_value=200))
    @settings(max_examples=40, deadline=None)
    def test_token_pool_never_exceeds_capacity(self, tokens, acquisitions):
        pool = TokenPool("pool", tokens=tokens)
        rng = random.Random(42)
        now = 0.0
        for _ in range(acquisitions):
            now += rng.random() * 1e-8
            grant = pool.acquire(now)
            pool.release_at(grant + 1e-7 + rng.random() * 1e-7)
            assert grant >= now
            assert pool.in_use(grant) <= tokens


class TestStatisticsProperties:
    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_running_stats_matches_direct_computation(self, values):
        stats = RunningStats()
        stats.extend(values)
        assert stats.count == len(values)
        assert stats.mean == sum(values) / len(values) or abs(
            stats.mean - sum(values) / len(values)
        ) < 1e-6 * max(1.0, abs(sum(values)))
        assert stats.minimum == min(values)
        assert stats.maximum == max(values)

    @given(
        st.lists(st.floats(min_value=-1e5, max_value=1e5), min_size=1, max_size=100),
        st.lists(st.floats(min_value=-1e5, max_value=1e5), min_size=1, max_size=100),
    )
    @settings(max_examples=40, deadline=None)
    def test_merge_is_equivalent_to_concatenation(self, left_values, right_values):
        left, right, combined = RunningStats(), RunningStats(), RunningStats()
        left.extend(left_values)
        right.extend(right_values)
        combined.extend(left_values + right_values)
        left.merge(right)
        assert left.count == combined.count
        assert abs(left.mean - combined.mean) < 1e-6 * max(1.0, abs(combined.mean))

    @given(st.lists(st.floats(min_value=0.1, max_value=100.0), min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_geometric_mean_bounded_by_min_and_max(self, values):
        mean = geometric_mean(values)
        assert min(values) - 1e-9 <= mean <= max(values) + 1e-9


class TestTopologyProperties:
    @given(st.integers(min_value=0, max_value=63), st.integers(min_value=0, max_value=63))
    @settings(max_examples=200, deadline=None)
    def test_route_length_equals_manhattan_distance(self, src, dst):
        mesh = MeshCoordinates.square(64)
        route = mesh.dimension_order_route(src, dst)
        assert len(route) == mesh.hop_distance(src, dst)
        # The route is connected and ends at the destination.
        if route:
            assert route[0][0] == src
            assert route[-1][1] == dst
            for (a, b), (c, d) in zip(route, route[1:]):
                assert b == c

    @given(st.integers(min_value=0, max_value=63))
    @settings(max_examples=64, deadline=None)
    def test_synthetic_permutations_stay_in_range(self, cluster):
        assert 0 <= tornado_destination(cluster, 64) < 64
        assert 0 <= transpose_destination(cluster, 64) < 64

    @given(st.sampled_from([4, 16, 64, 256]))
    @settings(max_examples=4, deadline=None)
    def test_transpose_is_involution_for_any_square_size(self, num_clusters):
        for cluster in range(num_clusters):
            twice = transpose_destination(
                transpose_destination(cluster, num_clusters), num_clusters
            )
            assert twice == cluster


class TestInventoryProperties:
    # Generate the grid radix and square it rather than filtering integers
    # down to perfect squares: the filter rejects ~95% of draws and can trip
    # hypothesis's filter_too_much health check on an unlucky seed.
    @given(st.integers(min_value=2, max_value=16).map(lambda radix: radix * radix))
    @settings(max_examples=10, deadline=None)
    def test_crossbar_rings_scale_quadratically(self, clusters):
        inventory = corona_inventory(clusters=clusters)
        assert inventory.by_name()["Crossbar"].ring_resonators == clusters * clusters * 256

    @given(
        st.integers(min_value=2, max_value=128),
        st.integers(min_value=1, max_value=128),
    )
    @settings(max_examples=40, deadline=None)
    def test_inventory_counts_are_never_negative(self, clusters, wavelengths):
        inventory = corona_inventory(
            clusters=clusters, wavelengths_per_waveguide=wavelengths
        )
        assert inventory.total_waveguides > 0
        assert inventory.total_ring_resonators > 0


class TestInterconnectProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=63),
                st.integers(min_value=0, max_value=63),
                st.floats(min_value=0.0, max_value=1e-6),
            ),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_crossbar_transfers_always_arrive_after_request(self, transfers):
        crossbar = OpticalCrossbar()
        for src, dst, now in sorted(transfers, key=lambda item: item[2]):
            message = Message(src=src, dst=dst, message_type=MessageType.READ_RESPONSE)
            result = crossbar.transfer(message, now)
            assert result.arrival_time >= now
            assert result.queueing_delay >= 0
            assert result.network_latency >= 0

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=63),
                st.integers(min_value=0, max_value=63),
            ),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_mesh_energy_matches_hop_count(self, pairs):
        mesh = high_performance_mesh()
        total_hops = 0
        for src, dst in pairs:
            message = Message(src=src, dst=dst, message_type=MessageType.READ_REQUEST)
            result = mesh.transfer(message, 0.0)
            total_hops += result.hops
        assert mesh.total_dynamic_energy_j == sum(
            [196e-12 * total_hops]
        ) or abs(mesh.total_dynamic_energy_j - 196e-12 * total_hops) < 1e-18


class TestCacheProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=1 << 20),
                st.booleans(),
            ),
            min_size=1,
            max_size=300,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_cache_occupancy_never_exceeds_capacity(self, accesses):
        cache = SetAssociativeCache("c", capacity_bytes=4096, associativity=4)
        for address, is_write in accesses:
            cache.access(address * 64, is_write)
        assert cache.resident_lines() <= cache.num_sets * cache.associativity
        assert cache.stats.accesses == len(accesses)
        assert cache.stats.misses <= cache.stats.accesses

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=64),
                st.integers(min_value=0, max_value=15),
                st.booleans(),
            ),
            min_size=1,
            max_size=200,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_directory_always_has_at_most_one_owner(self, operations):
        directory = CoherenceController(home_cluster=0)
        for line, cluster, is_write in operations:
            address = line * 64
            if is_write:
                directory.handle_write(address, cluster)
            else:
                directory.handle_read(address, cluster)
            entry = directory._entry(address)
            # Invariant: a modified/exclusive owner never coexists with itself
            # in the sharer list, and sharer sets never contain the owner.
            if entry.owner is not None:
                assert entry.owner not in entry.sharers


class TestEngineProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=1e-3), min_size=1, max_size=100))
    @settings(max_examples=40, deadline=None)
    def test_events_execute_in_nondecreasing_time_order(self, delays):
        simulator = Simulator()
        executed = []
        for delay in delays:
            simulator.schedule(delay, lambda t=delay: executed.append(simulator.now))
        simulator.run()
        assert executed == sorted(executed)
        assert len(executed) == len(delays)
