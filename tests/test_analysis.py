"""Tests for the static analysis suite (``corona-repro lint``).

Covers the rule registry idioms, fixture snippets per rule (positive and
negative), the suppression pragma, the baseline round-trip, the JSON
reporter schema, the self-scan (the repo must be clean modulo the committed
baseline) and the runtime determinism sanitizer.
"""

import json
from pathlib import Path

import pytest

from repro.analysis import (
    RULES,
    AnalysisError,
    Finding,
    LINT_FORMAT,
    RuleCollisionError,
    RuleRegistry,
    UnknownRuleError,
    analyze_paths,
    analyze_source,
    check_determinism,
    compare_replicas,
    load_baseline,
    parse_pragmas,
    partition_findings,
    render_json,
    render_text,
    write_baseline,
)

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Default fixture path: inside the simulated-time zone (no rule exempt).
SIM_PATH = "src/repro/sim/fixture.py"


def lint(source, path=SIM_PATH, select=None):
    findings, _ = analyze_source(source, path, RULES.select(select=select))
    return findings


def rules_hit(source, path=SIM_PATH):
    return sorted({f.rule for f in lint(source, path)})


class TestRuleRegistry:
    def test_stock_rules_registered(self):
        names = RULES.names()
        determinism = [n for n in names if n.startswith("det-")]
        units = [n for n in names if n.startswith("unit-")]
        assert len(determinism) >= 3
        assert len(units) >= 2

    def test_collision_raises(self):
        registry = RuleRegistry()

        @registry.register("r1", family="f", summary="s")
        def checker(context):
            return []

        with pytest.raises(RuleCollisionError):

            @registry.register("r1", family="f", summary="s")
            def checker2(context):
                return []

    def test_replace_shadows(self):
        registry = RuleRegistry()

        @registry.register("r1", family="f", summary="old")
        def checker(context):
            return []

        @registry.register("r1", family="f", summary="new", replace=True)
        def checker2(context):
            return []

        assert registry.get("r1").summary == "new"
        assert len(registry) == 1

    def test_unknown_rule_lists_registered(self):
        with pytest.raises(UnknownRuleError) as error:
            RULES.select(select=["no-such-rule"])
        assert "no-such-rule" in str(error.value)
        assert "det-set-iter" in str(error.value)

    def test_unknown_ignore_also_fails(self):
        with pytest.raises(UnknownRuleError):
            RULES.select(ignore=["typo-rule"])


class TestSetIterationRule:
    def test_for_over_set_literal(self):
        findings = lint("for x in {1, 2, 3}:\n    print(x)\n")
        assert [f.rule for f in findings] == ["det-set-iter"]
        assert "sorted" in findings[0].suggestion

    def test_for_over_set_call_via_name(self):
        source = "pending = set(items)\nfor x in pending:\n    emit(x)\n"
        assert rules_hit(source) == ["det-set-iter"]

    def test_for_over_set_difference(self):
        source = "for x in set(a) - {1}:\n    emit(x)\n"
        assert rules_hit(source) == ["det-set-iter"]

    def test_list_comprehension_over_set(self):
        assert rules_hit("ys = [f(x) for x in {1, 2}]\n") == ["det-set-iter"]

    def test_list_materialization(self):
        assert rules_hit("ys = list(frozenset(xs))\n") == ["det-set-iter"]

    def test_join_over_set(self):
        assert rules_hit("text = ', '.join({'a', 'b'})\n") == ["det-set-iter"]

    def test_sorted_is_clean(self):
        assert lint("for x in sorted({3, 1, 2}):\n    emit(x)\n") == []

    def test_membership_and_len_are_clean(self):
        source = (
            "seen = set(items)\n"
            "flag = item in seen\n"
            "count = len(seen)\n"
            "lowest = min(seen)\n"
        )
        assert lint(source) == []

    def test_set_comprehension_over_set_is_clean(self):
        # set -> set has no order to leak.
        assert lint("ys = {f(x) for x in {1, 2}}\n") == []

    def test_reassigned_name_is_not_tracked(self):
        source = "xs = set(a)\nxs = sorted(xs)\nfor x in xs:\n    emit(x)\n"
        assert lint(source) == []


class TestFloatAccumulationRule:
    def test_augmented_add_in_set_loop(self):
        source = (
            "total = 0.0\n"
            "for x in weights:\n"
            "    pass\n"
            "values = set(weights)\n"
            "for w in values:\n"
            "    total += w\n"
        )
        assert "det-float-accum" in rules_hit(source)

    def test_sum_over_set(self):
        assert rules_hit("total = sum(set(values))\n") == ["det-float-accum"]

    def test_sum_over_generator_over_set(self):
        source = "s = set(values)\ntotal = sum(v * 2 for v in s)\n"
        assert rules_hit(source) == ["det-float-accum"]

    def test_sum_over_list_is_clean(self):
        assert lint("total = sum(values)\n") == []

    def test_sorted_loop_accumulation_is_clean(self):
        source = (
            "total = 0.0\n"
            "for w in sorted(set(weights)):\n"
            "    total += w\n"
        )
        assert lint(source) == []


class TestUnseededRandomRule:
    def test_module_level_call(self):
        source = "import random\nvalue = random.random()\n"
        findings = lint(source)
        assert [f.rule for f in findings] == ["det-unseeded-random"]
        assert "random.Random(seed)" in findings[0].suggestion

    def test_module_level_seed(self):
        assert rules_hit("import random\nrandom.seed(7)\n") == [
            "det-unseeded-random"
        ]

    def test_from_import_call(self):
        source = "from random import randint\nvalue = randint(1, 6)\n"
        assert rules_hit(source) == ["det-unseeded-random"]

    def test_seeded_instance_is_clean(self):
        source = (
            "import random\n"
            "rng = random.Random(2008)\n"
            "value = rng.random()\n"
        )
        assert lint(source) == []

    def test_unrelated_module_is_clean(self):
        assert lint("import numpy.random\nnumpy.random.rand()\n") == []


class TestWallClockRule:
    def test_perf_counter(self):
        source = "import time\nstarted = time.perf_counter()\n"
        assert rules_hit(source) == ["det-wall-clock"]

    def test_environ_and_getenv(self):
        source = (
            "import os\n"
            "a = os.environ['HOME']\n"
            "b = os.getenv('HOME')\n"
        )
        findings = lint(source)
        assert [f.rule for f in findings] == ["det-wall-clock"] * 2

    def test_id_and_hash_builtins(self):
        source = "key = id(obj)\nbucket = hash(name)\n"
        findings = lint(source)
        assert [f.rule for f in findings] == ["det-wall-clock"] * 2

    def test_uuid4_and_datetime_now(self):
        source = (
            "import uuid\n"
            "import datetime\n"
            "a = uuid.uuid4()\n"
            "b = datetime.datetime.now()\n"
        )
        findings = lint(source)
        assert [f.rule for f in findings] == ["det-wall-clock"] * 2

    def test_harness_zone_is_exempt(self):
        source = "import time\nstarted = time.perf_counter()\n"
        assert lint(source, path="src/repro/harness/fixture.py") == []
        assert lint(source, path="src/repro/obs/fixture.py") == []

    def test_simulated_time_names_are_clean(self):
        # A local attribute that merely *looks* like the time module.
        source = "elapsed = engine.time()\n"
        assert lint(source) == []


class TestMixedArithmeticRule:
    def test_add_across_scales(self):
        findings = lint("total = delay_ns + window_s\n")
        assert [f.rule for f in findings] == ["unit-mixed-arith"]
        assert "delay_ns" in findings[0].message

    def test_subtract_across_dimensions(self):
        assert rules_hit("x = latency_ns - budget_cycles\n") == [
            "unit-mixed-arith"
        ]

    def test_comparison_across_units(self):
        assert rules_hit("flag = deadline_ns < horizon_s\n") == [
            "unit-mixed-arith"
        ]

    def test_same_unit_is_clean(self):
        assert lint("total_ns = a_ns + b_ns\n") == []

    def test_multiplication_is_a_conversion(self):
        # Mult/Div are how conversions are written; never flagged.
        assert lint("ratio = total_bytes / window_s\n") == []
        assert lint("scaled = delay_s * clock_hz\n") == []

    def test_untagged_operand_is_clean(self):
        assert lint("total = delay_ns + 5\n") == []


class TestSuffixDropRule:
    def test_return_with_wrong_suffix(self):
        source = "def latency_ns(job):\n    return job.latency_s\n"
        findings = lint(source)
        assert [f.rule for f in findings] == ["unit-suffix-drop"]
        assert "latency_ns" in findings[0].message

    def test_assignment_with_wrong_suffix(self):
        assert rules_hit("span_ns = window_s\n") == ["unit-suffix-drop"]

    def test_annotated_assignment(self):
        assert rules_hit("span_ns: float = window_s\n") == [
            "unit-suffix-drop"
        ]

    def test_keyword_argument_with_wrong_suffix(self):
        assert rules_hit("record(size_bytes=width_bits)\n") == [
            "unit-suffix-drop"
        ]

    def test_conversion_through_multiplication_is_clean(self):
        source = "def latency_ns(job):\n    return job.latency_s * 1e9\n"
        assert lint(source) == []

    def test_matching_suffixes_are_clean(self):
        source = (
            "def latency_ns(job):\n"
            "    return job.queueing_ns\n"
            "span_s = window_s\n"
            "record(size_bytes=payload_bytes)\n"
        )
        assert lint(source) == []


class TestPragmas:
    def test_same_line_pragma_suppresses(self):
        source = (
            "for x in {1, 2}:  # lint: ignore[det-set-iter] order re-sorted\n"
            "    emit(x)\n"
        )
        findings, suppressed = analyze_source(source, SIM_PATH, RULES.rules())
        assert findings == []
        assert [f.rule for f in suppressed] == ["det-set-iter"]

    def test_standalone_pragma_covers_next_line(self):
        source = (
            "# lint: ignore[det-wall-clock] profiling hook\n"
            "import_time = time.perf_counter()\n"
            "import time\n"
        )
        findings, suppressed = analyze_source(source, SIM_PATH, RULES.rules())
        assert findings == []
        assert [f.rule for f in suppressed] == ["det-wall-clock"]

    def test_comma_separated_rule_ids(self):
        source = (
            "total = sum(set(vals)); flag = a_ns < b_s"
            "  # lint: ignore[det-float-accum, unit-mixed-arith] fixture\n"
        )
        findings, suppressed = analyze_source(source, SIM_PATH, RULES.rules())
        assert findings == []
        assert sorted(f.rule for f in suppressed) == [
            "det-float-accum",
            "unit-mixed-arith",
        ]

    def test_wrong_rule_id_does_not_suppress(self):
        source = (
            "for x in {1, 2}:  # lint: ignore[det-wall-clock] wrong id\n"
            "    emit(x)\n"
        )
        findings, suppressed = analyze_source(source, SIM_PATH, RULES.rules())
        assert [f.rule for f in findings] == ["det-set-iter"]
        assert suppressed == []

    def test_parse_pragmas_map(self):
        pragmas = parse_pragmas(
            "x = 1\n"
            "# lint: ignore[r-a] standalone\n"
            "y = 2  # lint: ignore[r-b, r-c] inline\n"
        )
        assert pragmas[2] == {"r-a"}
        assert pragmas[3] == {"r-a", "r-b", "r-c"}


class TestBaseline:
    def make_finding(self, message="m", line=3):
        return Finding(
            file="src/repro/sim/x.py",
            line=line,
            column=1,
            rule="det-set-iter",
            message=message,
        )

    def test_round_trip(self, tmp_path):
        path = tmp_path / "baseline.json"
        findings = [self.make_finding("a"), self.make_finding("b")]
        write_baseline(path, findings)
        baseline = load_baseline(path)
        assert baseline == {
            ("src/repro/sim/x.py", "det-set-iter", "a"): 1,
            ("src/repro/sim/x.py", "det-set-iter", "b"): 1,
        }

    def test_missing_file_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "absent.json") == {}

    def test_bad_format_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": "other/9", "findings": []}))
        with pytest.raises(AnalysisError):
            load_baseline(path)

    def test_partition_is_line_insensitive(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(path, [self.make_finding(line=3)])
        shifted = [self.make_finding(line=40)]
        new, baselined, stale = partition_findings(
            shifted, load_baseline(path)
        )
        assert new == [] and len(baselined) == 1 and stale == {}

    def test_partition_counts_duplicates(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(path, [self.make_finding()])
        # A second identical hit exceeds the baselined count: new debt.
        new, baselined, _ = partition_findings(
            [self.make_finding(line=3), self.make_finding(line=9)],
            load_baseline(path),
        )
        assert len(baselined) == 1 and len(new) == 1

    def test_partition_reports_stale_entries(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(path, [self.make_finding("gone")])
        new, baselined, stale = partition_findings([], load_baseline(path))
        assert new == [] and baselined == []
        assert stale == {("src/repro/sim/x.py", "det-set-iter", "gone"): 1}


class TestReporters:
    def run_reports(self, tmp_path):
        bad = tmp_path / "src" / "repro" / "sim"
        bad.mkdir(parents=True)
        (bad / "fixture.py").write_text(
            "import time\nstarted = time.perf_counter()\n"
            "for x in {1, 2}:\n    emit(x)\n"
        )
        report = analyze_paths([tmp_path], root=tmp_path)
        new, baselined, stale = partition_findings(report.findings, {})
        return report, new, baselined, stale

    def test_json_schema(self, tmp_path):
        report, new, baselined, stale = self.run_reports(tmp_path)
        payload = render_json(report, new, baselined, stale)
        assert payload["format"] == LINT_FORMAT
        assert payload["files_scanned"] == 1
        assert set(payload["summary"]) == {
            "total", "new", "baselined", "suppressed", "stale_baseline",
        }
        assert payload["summary"]["new"] == 2
        for entry in payload["findings"]:
            assert set(entry) == {
                "file", "line", "column", "rule", "message", "suggestion",
                "new",
            }
            assert entry["new"] is True
        # The payload must be JSON-clean.
        json.dumps(payload)

    def test_text_report(self, tmp_path):
        report, new, baselined, stale = self.run_reports(tmp_path)
        text = render_text(report, new, baselined, stale)
        assert "det-set-iter" in text and "det-wall-clock" in text
        assert "2 new" in text

    def test_finding_round_trip(self):
        finding = Finding(
            file="a.py", line=1, column=2, rule="r", message="m",
            suggestion="s",
        )
        assert Finding.from_dict(finding.to_dict()) == finding
        with pytest.raises(ValueError):
            Finding.from_dict({**finding.to_dict(), "bogus": 1})


class TestSelfScan:
    def test_repo_is_clean_modulo_committed_baseline(self):
        report = analyze_paths(
            [REPO_ROOT / "src" / "repro"], root=REPO_ROOT
        )
        baseline = load_baseline(REPO_ROOT / "lint_baseline.json")
        new, _, stale = partition_findings(report.findings, baseline)
        assert new == [], f"new lint findings: {[str(f.to_dict()) for f in new]}"
        assert stale == {}, f"stale baseline entries: {stale}"

    def test_baseline_demonstrates_wall_clock_rule(self):
        # The acceptance contract: det-wall-clock is demonstrated by real
        # baselined findings (harness-side phase timing in the API layer).
        baseline = load_baseline(REPO_ROOT / "lint_baseline.json")
        assert any(rule == "det-wall-clock" for _, rule, _ in baseline)

    def test_pragmas_in_repo_are_honored(self):
        # The chaos hook's env read carries an inline pragma; it must show
        # up as suppressed, not as a finding.
        report = analyze_paths(
            [REPO_ROOT / "src" / "repro" / "faults"], root=REPO_ROOT
        )
        assert any(
            f.rule == "det-wall-clock" for f in report.suppressed
        )
        assert not any(f.rule == "det-wall-clock" for f in report.findings)


class TestRuntimeDeterminism:
    def test_identical_replicas_pass(self):
        check = compare_replicas(
            [{"a/b": "d1", "c/d": "d2"}, {"a/b": "d1", "c/d": "d2"}]
        )
        assert check.ok and check.diverging == []
        assert check.pairs == 2

    def test_diverging_digest_detected(self):
        check = compare_replicas(
            [{"a/b": "d1", "c/d": "d2"}, {"a/b": "d1", "c/d": "XX"}]
        )
        assert not check.ok
        assert check.diverging == ["c/d"]
        assert "NONDETERMINISTIC" in check.summary()

    def test_missing_pair_counts_as_divergence(self):
        check = compare_replicas([{"a/b": "d1"}, {}])
        assert not check.ok and check.diverging == ["a/b"]

    def test_replica_count_validation(self):
        from repro.api import Scenario

        with pytest.raises(ValueError):
            check_determinism(Scenario(), replicas=1)

    def test_fresh_process_replay_is_deterministic(self):
        from repro.api import ScaleSpec, Scenario, SystemSpec, WorkloadSpec

        scenario = Scenario(
            name="determinism-check",
            system=SystemSpec(configurations=("XBar/OCM",)),
            workloads=(WorkloadSpec(name="Barnes"),),
            scale=ScaleSpec(tier="quick"),
        )
        check = check_determinism(scenario)
        assert check.ok
        assert check.pairs == 1
        assert "deterministic" in check.summary()


class TestLintCli:
    def write_tree(self, tmp_path, source):
        package = tmp_path / "pkg"
        package.mkdir()
        (package / "mod.py").write_text(source)
        return package

    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        from repro.cli import main

        package = self.write_tree(tmp_path, "x = 1\n")
        code = main(
            ["lint", str(package), "--baseline", str(tmp_path / "b.json")]
        )
        assert code == 0
        assert "0 new" in capsys.readouterr().out

    def test_findings_exit_one_and_baseline_quiets(self, tmp_path, capsys):
        from repro.cli import main

        package = self.write_tree(
            tmp_path, "for x in {1, 2}:\n    print(x)\n"
        )
        baseline = str(tmp_path / "b.json")
        assert main(["lint", str(package), "--baseline", baseline]) == 1
        capsys.readouterr()
        assert (
            main(
                ["lint", str(package), "--baseline", baseline,
                 "--update-baseline"]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["lint", str(package), "--baseline", baseline]) == 0
        assert "1 baselined" in capsys.readouterr().out

    def test_json_format(self, tmp_path, capsys):
        from repro.cli import main

        package = self.write_tree(tmp_path, "span_ns = window_s\n")
        code = main(
            ["lint", str(package), "--format", "json",
             "--baseline", str(tmp_path / "b.json")]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["format"] == LINT_FORMAT
        assert payload["summary"]["new"] == 1

    def test_select_limits_rules(self, tmp_path, capsys):
        from repro.cli import main

        package = self.write_tree(
            tmp_path,
            "span_ns = window_s\nfor x in {1, 2}:\n    print(x)\n",
        )
        code = main(
            ["lint", str(package), "--select", "unit-suffix-drop",
             "--baseline", str(tmp_path / "b.json")]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "unit-suffix-drop" in out and "det-set-iter" not in out

    def test_unknown_rule_is_fatal(self, tmp_path):
        from repro.cli import main

        package = self.write_tree(tmp_path, "x = 1\n")
        with pytest.raises(SystemExit):
            main(["lint", str(package), "--select", "not-a-rule"])

    def test_rules_catalog(self, capsys):
        from repro.cli import main

        assert main(["lint", "--rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in RULES.names():
            assert rule_id in out
