"""Integration tests for the trace-driven system simulator."""

import pytest

from repro.core.configs import configuration_by_name
from repro.core.system import SystemSimulator, simulate_workload
from repro.trace.record import AccessKind, TraceRecord, TraceStream


def _single_request_trace(num_clusters=16, src=0, home=5, is_write=False):
    trace = TraceStream("single", num_clusters=num_clusters, threads_per_cluster=2)
    trace.add(
        TraceRecord(
            thread_id=src * 2,
            cluster_id=src,
            home_cluster=home,
            kind=AccessKind.WRITE if is_write else AccessKind.READ,
            address=(home << 26) | 0x40,
            gap_cycles=10.0,
        )
    )
    return trace


class TestSingleTransaction:
    def test_read_latency_breakdown_on_corona(self, small_config):
        simulator = SystemSimulator(
            configuration_by_name("XBar/OCM"), corona_config=small_config
        )
        result = simulator.run(_single_request_trace())
        assert result.num_requests == 1
        # One uncontested read: ~2 ns gap + network + ~22 ns memory.
        assert 20e-9 < result.average_latency_s < 60e-9
        assert result.execution_time_s > result.average_latency_s

    def test_read_latency_on_baseline_is_higher(self, small_config):
        corona = SystemSimulator(
            configuration_by_name("XBar/OCM"), corona_config=small_config
        ).run(_single_request_trace())
        baseline = SystemSimulator(
            configuration_by_name("LMesh/ECM"), corona_config=small_config
        ).run(_single_request_trace())
        assert baseline.average_latency_s > corona.average_latency_s

    def test_local_request_skips_network(self, small_config):
        simulator = SystemSimulator(
            configuration_by_name("XBar/OCM"), corona_config=small_config
        )
        result = simulator.run(_single_request_trace(src=3, home=3))
        assert result.network_messages == 0
        assert simulator.stats.network_messages == 0

    def test_write_transaction_completes(self, small_config):
        simulator = SystemSimulator(
            configuration_by_name("HMesh/OCM"), corona_config=small_config
        )
        result = simulator.run(_single_request_trace(is_write=True))
        assert result.num_requests == 1
        assert simulator.stats.writes == 1

    def test_memory_bytes_counted(self, small_config):
        simulator = SystemSimulator(
            configuration_by_name("XBar/OCM"), corona_config=small_config
        )
        result = simulator.run(_single_request_trace())
        assert result.memory_bytes == 64


class TestWorkloadReplay:
    def test_all_requests_complete(self, small_config, small_uniform_workload):
        result = simulate_workload(
            configuration_by_name("XBar/OCM"),
            small_uniform_workload,
            num_requests=2000,
            corona_config=small_config,
        )
        assert result.num_requests == 2000
        assert result.execution_time_s > 0
        assert result.achieved_bandwidth_bytes_per_s > 0

    def test_every_configuration_runs(
        self, small_config, small_uniform_workload, any_configuration
    ):
        result = simulate_workload(
            any_configuration,
            small_uniform_workload,
            num_requests=1000,
            corona_config=small_config,
        )
        assert result.configuration == any_configuration.name
        assert result.num_requests == 1000
        assert result.average_latency_s > 0

    def test_corona_outperforms_baseline_on_uniform(
        self, small_config, small_uniform_workload
    ):
        corona = simulate_workload(
            configuration_by_name("XBar/OCM"),
            small_uniform_workload,
            num_requests=3000,
            corona_config=small_config,
        )
        baseline = simulate_workload(
            configuration_by_name("LMesh/ECM"),
            small_uniform_workload,
            num_requests=3000,
            corona_config=small_config,
        )
        assert corona.execution_time_s < baseline.execution_time_s
        assert corona.average_latency_s < baseline.average_latency_s
        assert (
            corona.achieved_bandwidth_bytes_per_s
            > baseline.achieved_bandwidth_bytes_per_s
        )

    def test_splash_workload_runs(self, small_config, small_splash_workload):
        result = simulate_workload(
            configuration_by_name("HMesh/OCM"),
            small_splash_workload,
            num_requests=2000,
            corona_config=small_config,
        )
        assert result.num_requests == 2000
        assert not result.is_synthetic

    def test_deterministic_replay(self, small_config, small_uniform_workload):
        first = simulate_workload(
            configuration_by_name("XBar/OCM"),
            small_uniform_workload,
            num_requests=1500,
            corona_config=small_config,
            seed=11,
        )
        second = simulate_workload(
            configuration_by_name("XBar/OCM"),
            small_uniform_workload,
            num_requests=1500,
            corona_config=small_config,
            seed=11,
        )
        assert first.execution_time_s == pytest.approx(second.execution_time_s)
        assert first.average_latency_s == pytest.approx(second.average_latency_s)

    def test_network_power_accounts_static_for_crossbar(
        self, small_config, small_uniform_workload
    ):
        corona = simulate_workload(
            configuration_by_name("XBar/OCM"),
            small_uniform_workload,
            num_requests=1000,
            corona_config=small_config,
        )
        assert corona.network_static_power_w == pytest.approx(26.0)
        assert corona.network_power_w >= 26.0

    def test_mesh_power_is_purely_dynamic(
        self, small_config, small_uniform_workload
    ):
        baseline = simulate_workload(
            configuration_by_name("LMesh/ECM"),
            small_uniform_workload,
            num_requests=1000,
            corona_config=small_config,
        )
        assert baseline.network_static_power_w == 0.0
        assert baseline.network_dynamic_power_w > 0.0

    def test_window_depth_improves_throughput(self, small_config, small_uniform_workload):
        narrow = simulate_workload(
            configuration_by_name("XBar/OCM"),
            small_uniform_workload,
            num_requests=2000,
            corona_config=small_config,
            window_depth=1,
        )
        wide = simulate_workload(
            configuration_by_name("XBar/OCM"),
            small_uniform_workload,
            num_requests=2000,
            corona_config=small_config,
            window_depth=8,
        )
        assert wide.execution_time_s < narrow.execution_time_s

    def test_rejects_bad_window(self, small_config):
        with pytest.raises(ValueError):
            SystemSimulator(
                configuration_by_name("XBar/OCM"),
                corona_config=small_config,
                window_depth=0,
            )

    def test_stats_conservation(self, small_config, small_uniform_workload):
        simulator = SystemSimulator(
            configuration_by_name("XBar/OCM"),
            corona_config=small_config,
            window_depth=4,
        )
        trace = small_uniform_workload.generate(seed=1, num_requests=2000)
        result = simulator.run(trace)
        stats = simulator.stats
        assert stats.requests == 2000
        assert stats.reads + stats.writes == 2000
        assert stats.memory_bytes == pytest.approx(2000 * 64)
        assert result.memory_bytes == pytest.approx(stats.memory_bytes)
        # Every remote transaction contributes exactly two network messages.
        remote = stats.network_messages // 2
        assert simulator.network.messages_sent == 2 * remote

    def test_latency_never_below_memory_floor(self, small_config, small_uniform_workload):
        simulator = SystemSimulator(
            configuration_by_name("XBar/OCM"), corona_config=small_config
        )
        trace = small_uniform_workload.generate(seed=1, num_requests=1000)
        simulator.run(trace)
        # No transaction can complete faster than the 20 ns DRAM access.
        assert simulator.stats.latency.minimum >= 20e-9

    def test_p99_latency_not_clamped_for_slow_tails(self):
        """Regression: the latency histogram used to truncate at 2000 ns, so
        configurations with slower tails reported a silently capped p99."""
        from repro.core.system import TransactionStats

        stats = TransactionStats()
        for _ in range(99):
            stats.record(100e-9, 0.0, 0.0, 0.0, False, 64, 0, 2)
        for _ in range(3):
            stats.record(9000e-9, 0.0, 0.0, 0.0, False, 64, 0, 2)
        p99_ns = stats.latency_histogram.percentile(0.99)
        assert p99_ns > 2000.0
        assert p99_ns == pytest.approx(9000.0, rel=0.05)
        # The raw accumulator agrees that the tail is real.
        assert stats.latency.maximum == pytest.approx(9000e-9)

    def test_transaction_stats_properties_track_new_samples(self):
        from repro.core.system import TransactionStats

        stats = TransactionStats()
        stats.record(100e-9, 1e-9, 2e-9, 3e-9, False, 64, 2, 2)
        assert stats.latency.count == 1  # materializes the lazy view
        stats.record(300e-9, 1e-9, 2e-9, 3e-9, True, 64, 2, 2)
        assert stats.latency.count == 2
        assert stats.latency.mean == pytest.approx(200e-9)
        assert stats.queueing.mean == pytest.approx(1e-9)
        assert stats.network_latency.mean == pytest.approx(2e-9)
        assert stats.memory_latency.mean == pytest.approx(3e-9)
