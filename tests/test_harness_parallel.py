"""Serial/parallel evaluation equivalence tests.

The :class:`~repro.harness.parallel.ParallelEvaluationRunner` must be a
drop-in replacement for the serial runner: same results (bit-identical, not
approximately equal), same ordering, same bookkeeping shape.  The matrix
under test is ``quick_matrix()`` -- every (configuration, workload) pair of
the evaluation -- with the request counts scaled down (via
``dataclasses.replace`` of the scale) so the 2x85 replays stay test-suite
fast while still covering every pair.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.harness.experiments import EvaluationMatrix, quick_matrix
from repro.harness.parallel import ParallelEvaluationRunner, available_cpus
from repro.harness.runner import EvaluationRunner


def _small_quick_matrix() -> EvaluationMatrix:
    """quick_matrix() shrunk to test-suite request counts (same 85 pairs)."""
    matrix = quick_matrix()
    matrix.scale = dataclasses.replace(
        matrix.scale,
        synthetic_requests=600,
        splash_min_requests=400,
        splash_max_requests=700,
    )
    return matrix


@pytest.fixture(scope="module")
def serial_run():
    runner = EvaluationRunner(matrix=_small_quick_matrix())
    runner.run()
    return runner


class TestSerialParallelEquivalence:
    def test_in_process_fallback_is_identical(self, serial_run):
        """jobs=1 uses no pool and must reproduce the serial run exactly."""
        runner = ParallelEvaluationRunner(matrix=_small_quick_matrix(), jobs=1)
        results = runner.run()
        assert results == serial_run.results

    def test_pool_run_is_identical_for_every_pair(self, serial_run):
        """Worker processes replay shipped traces to bit-identical results."""
        runner = ParallelEvaluationRunner(matrix=_small_quick_matrix(), jobs=2)
        results = runner.run()
        assert len(results) == serial_run.matrix.run_count() == 85
        for serial, parallel in zip(serial_run.results, results):
            # Field-by-field so a mismatch names the offending metric.
            for field in dataclasses.fields(serial):
                assert getattr(serial, field.name) == getattr(
                    parallel, field.name
                ), (serial.workload, serial.configuration, field.name)

    def test_result_ordering_matches_serial_iteration(self, serial_run):
        runner = ParallelEvaluationRunner(matrix=_small_quick_matrix(), jobs=2)
        results = runner.run()
        assert [(r.workload, r.configuration) for r in results] == [
            (r.workload, r.configuration) for r in serial_run.results
        ]

    def test_run_seconds_bookkeeping(self, serial_run):
        runner = ParallelEvaluationRunner(matrix=_small_quick_matrix(), jobs=2)
        runner.run()
        assert set(runner.run_seconds) == set(serial_run.run_seconds)
        assert runner.total_wall_clock_seconds() > 0.0
        assert (
            runner.total_simulated_requests()
            == serial_run.total_simulated_requests()
        )


class TestRunnerApi:
    def test_resolved_jobs_defaults_to_available_cpus(self):
        runner = ParallelEvaluationRunner(matrix=_small_quick_matrix())
        assert runner.resolved_jobs() == available_cpus()

    def test_explicit_jobs_respected(self):
        runner = ParallelEvaluationRunner(matrix=_small_quick_matrix(), jobs=3)
        assert runner.resolved_jobs() == 3

    def test_run_workload_unknown_name_raises(self):
        runner = ParallelEvaluationRunner(matrix=_small_quick_matrix(), jobs=1)
        with pytest.raises(KeyError):
            runner.run_workload("NoSuchWorkload")

    def test_run_workload_covers_every_configuration(self):
        matrix = _small_quick_matrix()
        runner = ParallelEvaluationRunner(matrix=matrix, jobs=1)
        results = runner.run_workload("Uniform")
        assert [r.configuration for r in results] == list(
            matrix.configuration_names
        )
        assert all(r.workload == "Uniform" for r in results)

    def test_shipments_released_after_pool_run(self):
        """The parent frees every shared-memory shipment once results are in."""
        runner = ParallelEvaluationRunner(matrix=_small_quick_matrix(), jobs=2)
        runner.run()
        assert runner._shipments == {}

    def test_progress_reported_in_serial_order(self):
        matrix = _small_quick_matrix()
        lines = []
        runner = ParallelEvaluationRunner(
            matrix=matrix, jobs=2, progress=lines.append
        )
        runner.run()
        assert len(lines) == matrix.run_count()
        assert lines[0].split()[0] == matrix.workload_names()[0]
