"""Tests for :class:`repro.trace.file.TraceFileWorkload`: on-disk traces as
scenario- and sweep-addressable workloads, deterministic truncation, and the
``fixed_requests`` protocol in both evaluation matrices."""

from __future__ import annotations

import pytest

from repro.api import Scenario, ScenarioError, SystemSpec, WorkloadSpec, run
from repro.api.run import ScenarioMatrix
from repro.core.configs import configuration_by_name
from repro.core.system import SystemSimulator
from repro.harness.experiments import EvaluationMatrix
from repro.sweeps import SweepAxis, SweepSpec, run_sweep
from repro.trace.file import TraceFileWorkload, truncate_packed
from repro.trace.io import write_trace, write_trace_binary
from repro.trace.synthetic import uniform_workload


@pytest.fixture
def packed_trace():
    return uniform_workload().generate_packed(seed=7, num_requests=3_000)


@pytest.fixture
def binary_path(tmp_path, packed_trace):
    path = tmp_path / "uniform.trace.bin"
    write_trace_binary(packed_trace, path)
    return path


class TestTraceFileWorkload:
    def test_loads_either_format(self, tmp_path, packed_trace, binary_path):
        text_path = tmp_path / "uniform.trace"
        write_trace(packed_trace, text_path)
        from_binary = TraceFileWorkload(binary_path)
        from_text = TraceFileWorkload(text_path)
        assert from_binary.name == "Uniform"
        assert from_binary.fixed_requests == 3_000
        assert from_binary.num_clusters == 64
        assert not from_binary.is_synthetic
        # The text format rounds gaps to 4 decimals and drops the
        # description (documented); the exact columns must agree between
        # formats.
        binary_packed = from_binary.generate_packed()
        text_packed = from_text.generate_packed()
        assert binary_packed.header()._replace(description="") == (
            text_packed.header()._replace(description="")
        )
        assert bytes(memoryview(binary_packed.meta)) == bytes(
            memoryview(text_packed.meta)
        )
        assert bytes(memoryview(binary_packed.addresses)) == bytes(
            memoryview(text_packed.addresses)
        )

    def test_replay_matches_in_memory_trace(self, packed_trace, binary_path):
        workload = TraceFileWorkload(binary_path, window=8)
        configuration = configuration_by_name("XBar/OCM")
        direct = SystemSimulator(configuration, window_depth=8).run(packed_trace)
        from_file = SystemSimulator(configuration, window_depth=8).run(
            workload.generate_packed()
        )
        assert from_file == direct

    def test_truncation_is_deterministic_and_exact(self, binary_path):
        workload = TraceFileWorkload(binary_path)
        once = workload.generate_packed(num_requests=1_000)
        again = workload.generate_packed(num_requests=1_000)
        assert once.total_requests == 1_000
        assert once == again
        # Every kept segment is a prefix of the original thread's records.
        full = workload.generate_packed()
        full_by_thread = {
            t: (start, stop) for t, _c, start, stop in full.thread_segments()
        }
        for thread_id, _c, start, stop in once.thread_segments():
            f_start, f_stop = full_by_thread[thread_id]
            count = stop - start
            assert count <= f_stop - f_start
            assert list(once.meta[start:stop]) == list(
                full.meta[f_start:f_start + count]
            )

    def test_truncation_clamps_and_validates(self, binary_path, packed_trace):
        workload = TraceFileWorkload(binary_path)
        assert workload.generate_packed(num_requests=10_000) == packed_trace
        with pytest.raises(ValueError, match=">= 1"):
            truncate_packed(packed_trace, 0)

    def test_rename_via_param(self, binary_path):
        workload = TraceFileWorkload(binary_path, name="External")
        assert workload.name == "External"
        assert workload.generate_packed().name == "External"
        assert workload.generate(num_requests=500).name == "External"

    def test_seed_is_ignored(self, binary_path):
        workload = TraceFileWorkload(binary_path)
        assert workload.generate_packed(seed=1) == workload.generate_packed(seed=99)

    def test_construction_reads_only_the_header(self, binary_path):
        # Sweep engines build a fresh workload per grid point; the columns
        # must not load until a trace is actually needed.
        workload = TraceFileWorkload(binary_path)
        assert workload._packed is None
        assert workload.fixed_requests == 3_000  # header-only for binary
        assert workload._packed is None
        workload.generate_packed()
        assert workload._packed is not None

    def test_text_names_with_spaces_round_trip(self, tmp_path):
        # The sweep labels ('Uniform s=0.3') contain spaces; the text
        # header quotes the name and the parser must keep it whole.
        trace = uniform_workload(name="Uniform s=0.3").generate_packed(
            seed=1, num_requests=300
        )
        path = tmp_path / "shared.trace"
        write_trace(trace, path)
        workload = TraceFileWorkload(path)
        assert workload.name == "Uniform s=0.3"
        assert workload.generate_packed().name == "Uniform s=0.3"


class TestScenarioIntegration:
    def _scenario(self, binary_path, **workload_fields) -> Scenario:
        return Scenario(
            system=SystemSpec(configurations=("XBar/OCM",)),
            workloads=(
                WorkloadSpec(
                    name="trace-file",
                    params={"path": str(binary_path), "window": 8},
                    **workload_fields,
                ),
            ),
        )

    def test_registered_and_scenario_runnable(self, binary_path, packed_trace):
        result = run(self._scenario(binary_path))
        assert len(result.results) == 1
        # Whole file replayed regardless of the scale tier.
        assert result.results[0].num_requests == 3_000
        direct = SystemSimulator(
            configuration_by_name("XBar/OCM"), window_depth=8
        ).run(packed_trace)
        assert result.results[0] == direct

    def test_num_requests_caps_the_replay(self, binary_path):
        result = run(self._scenario(binary_path, num_requests=800))
        assert result.results[0].num_requests == 800

    def test_matrices_honor_fixed_requests(self, binary_path):
        workload = TraceFileWorkload(binary_path)
        assert EvaluationMatrix().requests_for(workload) == 3_000
        matrix = ScenarioMatrix(self._scenario(binary_path))
        assert matrix.requests_for(matrix.workloads()[0]) == 3_000

    def test_excluded_from_default_expansion(self):
        matrix = ScenarioMatrix(Scenario())
        assert "trace-file" not in matrix.workload_names()

    def test_missing_path_is_a_scenario_error(self, tmp_path):
        scenario = Scenario(
            system=SystemSpec(configurations=("XBar/OCM",)),
            workloads=(
                WorkloadSpec(
                    name="trace-file",
                    params={"path": str(tmp_path / "missing.bin")},
                ),
            ),
        )
        with pytest.raises(ScenarioError, match=r"workloads\[0\].params"):
            ScenarioMatrix(scenario)

    def test_sweep_addressable(self, binary_path):
        # The ROADMAP item: external traces as sweep-able workloads.  Sweep
        # the replay window of the on-disk trace across two systems; the
        # trace is read/generated once per distinct workload signature.
        spec = SweepSpec(
            name="trace-window",
            base=Scenario(
                system=SystemSpec(configurations=("XBar/OCM",)),
                workloads=(
                    WorkloadSpec(
                        name="trace-file",
                        params={"path": str(binary_path), "window": 4},
                        num_requests=600,
                    ),
                ),
            ),
            axes=(
                SweepAxis(
                    name="window",
                    path="workloads[0].params.window",
                    values=(2, 8),
                ),
                SweepAxis(
                    name="configuration",
                    path="system.configurations",
                    values=(["LMesh/ECM"], ["XBar/OCM"]),
                ),
            ),
        )
        outcome = run_sweep(spec)
        assert len(outcome.records) == 4
        assert {r.result.num_requests for r in outcome.records} == {600}
