"""Shared fixtures for the Corona reproduction test suite.

System-level tests run on a scaled-down Corona (16 clusters, 2 threads per
cluster) so each test finishes in well under a second while still exercising
every code path of the full design.
"""

from __future__ import annotations

import pytest

from repro.core.config import CoronaConfig
from repro.core.configs import all_configurations, configuration_by_name
from repro.cores.cluster import ClusterParameters
from repro.cores.core import CoreParameters
from repro.trace.splash2 import splash2_workload
from repro.trace.synthetic import uniform_workload


@pytest.fixture
def small_config() -> CoronaConfig:
    """A 16-cluster Corona used by fast system-level tests."""
    return CoronaConfig(
        num_clusters=16,
        cluster=ClusterParameters(),
        core=CoreParameters(),
    )


@pytest.fixture
def small_uniform_workload():
    """A Uniform workload shaped for the 16-cluster test system."""
    return uniform_workload(num_clusters=16, threads_per_cluster=2)


@pytest.fixture
def small_splash_workload():
    """An FFT workload shaped for the 16-cluster test system."""
    return splash2_workload("FFT", num_clusters=16, threads_per_cluster=2)


@pytest.fixture
def corona_configuration():
    return configuration_by_name("XBar/OCM")


@pytest.fixture
def baseline_configuration():
    return configuration_by_name("LMesh/ECM")


@pytest.fixture(params=[c.name for c in all_configurations()])
def any_configuration(request):
    """Parametrized over all five evaluated configurations."""
    return configuration_by_name(request.param)
