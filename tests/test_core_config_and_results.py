"""Tests for the Corona configuration, the five system configurations and the
results/speedup analysis."""

import pytest

from repro.core.config import CORONA_DEFAULT, CoronaConfig
from repro.core.configs import (
    BASELINE_CONFIGURATION_NAME,
    CONFIGURATION_ORDER,
    all_configurations,
    configuration_by_name,
    corona_configuration,
)
from repro.core.results import (
    WorkloadResult,
    geometric_mean_speedup,
    metric_table,
    speedup_table,
)
from repro.memory.system import MemorySystem
from repro.network.topology import Interconnect


class TestCoronaConfig:
    def test_default_structure(self):
        assert CORONA_DEFAULT.num_clusters == 64
        assert CORONA_DEFAULT.num_cores == 256
        assert CORONA_DEFAULT.num_threads == 1024

    def test_peak_performance_is_10_teraflops(self):
        assert CORONA_DEFAULT.peak_flops == pytest.approx(10.24e12, rel=0.05)

    def test_crossbar_bandwidth_is_20_tbytes(self):
        assert CORONA_DEFAULT.crossbar_total_bandwidth_bytes_per_s == pytest.approx(
            20.48e12
        )
        assert CORONA_DEFAULT.crossbar_channel_bandwidth_bytes_per_s == pytest.approx(
            320e9
        )

    def test_memory_bandwidth_is_10_tbytes(self):
        assert CORONA_DEFAULT.memory_total_bandwidth_bytes_per_s == pytest.approx(
            10.24e12
        )
        assert (
            CORONA_DEFAULT.memory_bandwidth_per_controller_bytes_per_s
            == pytest.approx(160e9)
        )

    def test_bytes_per_flop_is_about_one(self):
        assert CORONA_DEFAULT.bytes_per_flop == pytest.approx(1.0, rel=0.05)

    def test_channel_width_is_256_bits(self):
        assert CORONA_DEFAULT.crossbar_channel_width_bits == 256

    def test_table1_rows_match_paper(self):
        rows = dict(CORONA_DEFAULT.resource_configuration_rows())
        assert rows["Number of clusters"] == "64"
        assert rows["L2 cache size/assoc"] == "4 MB/16-way"
        assert rows["Frequency"] == "5 GHz"
        assert rows["Issue policy"] == "In-order"
        assert rows["Threads"] == "4"

    def test_summary_headline_numbers(self):
        summary = CORONA_DEFAULT.summary()
        assert summary["peak_teraflops"] == pytest.approx(10.24, rel=0.05)
        assert summary["crossbar_bandwidth_tbps"] == pytest.approx(20.48)
        assert summary["memory_bandwidth_tbps"] == pytest.approx(10.24)

    def test_scaled_configuration_propagates(self, small_config):
        assert small_config.num_cores == 64
        assert small_config.crossbar_total_bandwidth_bytes_per_s == pytest.approx(
            16 * 320e9
        )

    def test_rejects_too_few_clusters(self):
        with pytest.raises(ValueError):
            CoronaConfig(num_clusters=1)


class TestSystemConfigurations:
    def test_five_configurations_in_paper_order(self):
        assert CONFIGURATION_ORDER == [
            "LMesh/ECM",
            "HMesh/ECM",
            "LMesh/OCM",
            "HMesh/OCM",
            "XBar/OCM",
        ]
        assert len(all_configurations()) == 5

    def test_baseline_is_lmesh_ecm(self):
        assert BASELINE_CONFIGURATION_NAME == "LMesh/ECM"

    def test_corona_configuration_is_xbar_ocm(self):
        corona = corona_configuration()
        assert corona.name == "XBar/OCM"
        assert corona.is_corona
        assert corona.network_static_power_w == pytest.approx(26.0)

    def test_lookup_unknown_name(self):
        with pytest.raises(KeyError):
            configuration_by_name("Ring/OCM")

    def test_factories_build_consistent_components(self, small_config):
        for configuration in all_configurations():
            network = configuration.build_network(small_config)
            memory = configuration.build_memory(small_config)
            assert isinstance(network, Interconnect)
            assert isinstance(memory, MemorySystem)
            assert network.num_clusters == small_config.num_clusters
            assert memory.num_controllers == small_config.num_clusters

    def test_network_bandwidth_ordering(self, small_config):
        lmesh = configuration_by_name("LMesh/ECM").build_network(small_config)
        hmesh = configuration_by_name("HMesh/ECM").build_network(small_config)
        xbar = configuration_by_name("XBar/OCM").build_network(small_config)
        assert (
            lmesh.bisection_bandwidth_bytes_per_s()
            < hmesh.bisection_bandwidth_bytes_per_s()
            < xbar.bisection_bandwidth_bytes_per_s()
        )

    def test_memory_bandwidth_ordering(self, small_config):
        ecm = configuration_by_name("LMesh/ECM").build_memory(small_config)
        ocm = configuration_by_name("XBar/OCM").build_memory(small_config)
        assert ocm.peak_bandwidth_bytes_per_s > 10 * ecm.peak_bandwidth_bytes_per_s


def _result(workload, configuration, execution_time, bandwidth=1e12, latency=50e-9,
            power=10.0):
    return WorkloadResult(
        workload=workload,
        configuration=configuration,
        num_requests=1000,
        execution_time_s=execution_time,
        achieved_bandwidth_bytes_per_s=bandwidth,
        average_latency_s=latency,
        p99_latency_s=latency * 3,
        network_dynamic_power_w=power,
        network_static_power_w=0.0,
        network_energy_j=1e-6,
        network_messages=2000,
        network_hops=10000,
        memory_bytes=64000.0,
        is_synthetic=True,
    )


class TestResults:
    def test_speedup_table_normalizes_to_baseline(self):
        results = [
            _result("Uniform", "LMesh/ECM", 10e-6),
            _result("Uniform", "XBar/OCM", 2e-6),
        ]
        table = speedup_table(results)
        assert table["Uniform"]["LMesh/ECM"] == pytest.approx(1.0)
        assert table["Uniform"]["XBar/OCM"] == pytest.approx(5.0)

    def test_speedup_table_missing_baseline(self):
        with pytest.raises(KeyError):
            speedup_table([_result("Uniform", "XBar/OCM", 1e-6)])

    def test_geometric_mean_speedup(self):
        results = [
            _result("A", "HMesh/ECM", 4e-6),
            _result("A", "HMesh/OCM", 1e-6),
            _result("B", "HMesh/ECM", 1e-6),
            _result("B", "HMesh/OCM", 1e-6),
        ]
        speedup = geometric_mean_speedup(results, "HMesh/OCM", "HMesh/ECM", ["A", "B"])
        assert speedup == pytest.approx(2.0)

    def test_metric_table_extracts_properties(self):
        results = [_result("A", "XBar/OCM", 1e-6, bandwidth=2e12)]
        table = metric_table(results, "achieved_bandwidth_tbps")
        assert table["A"]["XBar/OCM"] == pytest.approx(2.0)

    def test_metric_table_rejects_non_numeric(self):
        results = [_result("A", "XBar/OCM", 1e-6)]
        with pytest.raises(TypeError):
            metric_table(results, "workload")

    def test_result_properties(self):
        result = _result("A", "XBar/OCM", 1e-6, bandwidth=1.5e12, latency=100e-9)
        assert result.achieved_bandwidth_tbps == pytest.approx(1.5)
        assert result.average_latency_ns == pytest.approx(100.0)
        assert result.network_power_w == pytest.approx(10.0)
        assert result.requests_per_second == pytest.approx(1e9)
