"""Tests for the fault-injection subsystem (`repro.faults`): spec
validation and round-trips, the Scenario wiring, deterministic draws, the
inactive-spec identity (``faults: null`` == all-zero spec == no faults),
each fault model's effect on its counters and metrics, serial/parallel
bit-equivalence under faults, and sweepable fault axes."""

from __future__ import annotations

import dataclasses

import pytest

from repro.api import (
    ScaleSpec,
    Scenario,
    ScenarioError,
    SystemSpec,
    WorkloadSpec,
    run,
)
from repro.faults import FaultError, FaultSpec
from repro.faults.determinism import stable_uniform
from repro.faults.inject import FaultInjector, build_injector
from repro.sweeps import SweepAxis, SweepSpec, run_sweep

#: A spec exercising every fault model at once.
ALL_FAULTS = {
    "seed": 9,
    "ring_detuning_fraction": 0.002,
    "token_loss_rate": 0.02,
    "dead_link_fraction": 0.05,
    "dram_timeout_rate": 0.01,
}


def _scenario(
    configurations=("XBar/OCM", "HMesh/ECM"),
    faults=None,
    num_requests: int = 600,
    seed: int = 3,
) -> Scenario:
    return Scenario(
        name="faulty",
        system=SystemSpec(configurations=tuple(configurations)),
        workloads=(WorkloadSpec(name="Uniform", num_requests=num_requests),),
        scale=ScaleSpec(seed=seed),
        faults=faults,
    )


class TestFaultSpec:
    def test_default_spec_is_inactive(self):
        spec = FaultSpec()
        assert not spec.any_active

    def test_any_rate_activates(self):
        for field in (
            "ring_detuning_fraction",
            "token_loss_rate",
            "dead_link_fraction",
            "dram_timeout_rate",
        ):
            assert FaultSpec(**{field: 0.1}).any_active, field

    def test_dict_round_trip_is_exact(self):
        spec = FaultSpec(**ALL_FAULTS)
        assert FaultSpec.from_dict(spec.to_dict()) == spec

    def test_probabilities_validated(self):
        for field in (
            "ring_detuning_fraction",
            "token_loss_rate",
            "dead_link_fraction",
            "dram_timeout_rate",
        ):
            with pytest.raises(FaultError) as err:
                FaultSpec(**{field: 1.5})
            assert err.value.field == field
            with pytest.raises(FaultError):
                FaultSpec(**{field: -0.1})
            with pytest.raises(FaultError):
                FaultSpec(**{field: "high"})

    def test_seed_must_be_nonnegative_integer(self):
        with pytest.raises(FaultError) as err:
            FaultSpec(seed=-1)
        assert err.value.field == "seed"
        with pytest.raises(FaultError):
            FaultSpec(seed=1.5)
        with pytest.raises(FaultError):
            FaultSpec(seed=True)

    def test_integral_float_seed_coerced_from_dict(self):
        # JSON numbers may arrive as floats; 3.0 is an acceptable seed.
        assert FaultSpec.from_dict({"seed": 3.0}).seed == 3

    def test_zero_bandwidth_scale_rejected(self):
        # A zero-bandwidth link would stall transfers forever.
        with pytest.raises(FaultError, match="deadlock"):
            FaultSpec(dead_link_fraction=0.5, dead_link_bandwidth_scale=0.0)

    def test_negative_latencies_rejected(self):
        with pytest.raises(FaultError):
            FaultSpec(token_regeneration_cycles=-1.0)
        with pytest.raises(FaultError):
            FaultSpec(dram_retry_latency_ns=-5.0)

    def test_unknown_field_rejected_by_name(self):
        with pytest.raises(FaultError) as err:
            FaultSpec.from_dict({"cosmic_ray_rate": 0.5})
        assert err.value.field == "cosmic_ray_rate"

    def test_non_mapping_rejected(self):
        with pytest.raises(FaultError, match="expected an object"):
            FaultSpec.from_dict(["not", "a", "mapping"])


class TestScenarioWiring:
    def test_scenario_round_trip_with_faults(self):
        scenario = _scenario(faults=FaultSpec(**ALL_FAULTS))
        again = Scenario.from_dict(scenario.to_dict())
        assert again.faults == scenario.faults
        assert again == scenario

    def test_faults_null_round_trips_to_none(self):
        scenario = _scenario()
        payload = scenario.to_dict()
        assert payload["faults"] is None
        assert Scenario.from_dict(payload).faults is None

    def test_bad_fault_field_is_scenario_error_with_path(self):
        payload = _scenario().to_dict()
        payload["faults"] = {"token_loss_rate": 2.0}
        with pytest.raises(ScenarioError, match=r"faults\.token_loss_rate"):
            Scenario.from_dict(payload)

    def test_unknown_fault_field_is_scenario_error(self):
        payload = _scenario().to_dict()
        payload["faults"] = {"bogus": 1}
        with pytest.raises(ScenarioError, match=r"faults\.bogus"):
            Scenario.from_dict(payload)


class TestDeterministicDraws:
    def test_uniform_range_and_repeatability(self):
        draws = [stable_uniform(5, 1, i) for i in range(200)]
        assert all(0.0 <= value < 1.0 for value in draws)
        assert draws == [stable_uniform(5, 1, i) for i in range(200)]

    def test_sites_and_seeds_decorrelate(self):
        assert stable_uniform(5, 1, 7) != stable_uniform(5, 2, 7)
        assert stable_uniform(5, 1, 7) != stable_uniform(6, 1, 7)

    def test_inactive_spec_builds_no_injector(self):
        assert build_injector(None) is None
        assert build_injector(FaultSpec()) is None
        assert isinstance(
            build_injector(FaultSpec(token_loss_rate=0.1)), FaultInjector
        )


@pytest.fixture(scope="module")
def fault_free_run():
    return run(_scenario(), jobs=1)


@pytest.fixture(scope="module")
def faulty_run():
    return run(_scenario(faults=FaultSpec(**ALL_FAULTS)), jobs=1)


class TestFaultFreeIdentity:
    def test_all_zero_spec_is_bit_identical_to_no_faults(self, fault_free_run):
        zeroed = run(_scenario(faults=FaultSpec(seed=123)), jobs=1)
        assert zeroed.results == fault_free_run.results
        assert all(not r.faults_enabled for r in zeroed.results)

    def test_fault_free_counters_are_zero(self, fault_free_run):
        for result in fault_free_run.results:
            assert not result.faults_enabled
            assert result.fault_tokens_lost == 0
            assert result.fault_wavelengths_disabled == 0
            assert result.fault_links_degraded == 0
            assert result.fault_dram_timeouts == 0


class TestFaultEffects:
    def test_faults_flag_and_counters_populate(self, faulty_run):
        by_config = {r.configuration: r for r in faulty_run.results}
        optical = by_config["XBar/OCM"]
        mesh = by_config["HMesh/ECM"]
        assert optical.faults_enabled and mesh.faults_enabled
        assert optical.fault_tokens_lost > 0
        assert optical.fault_wavelengths_disabled > 0
        assert optical.fault_token_regen_wait_s > 0.0

    def test_faults_slow_the_run_down(self, fault_free_run, faulty_run):
        clean = {r.configuration: r for r in fault_free_run.results}
        faulty = {r.configuration: r for r in faulty_run.results}
        for name in ("XBar/OCM", "HMesh/ECM"):
            assert (
                faulty[name].execution_time_s > clean[name].execution_time_s
            ), name

    def test_token_loss_only_hits_the_optical_arbiter(self):
        outcome = run(
            _scenario(faults=FaultSpec(token_loss_rate=0.05)), jobs=1
        )
        by_config = {r.configuration: r for r in outcome.results}
        assert by_config["XBar/OCM"].fault_tokens_lost > 0
        assert by_config["HMesh/ECM"].fault_tokens_lost == 0

    def test_dead_links_degrade_the_mesh(self):
        outcome = run(
            _scenario(faults=FaultSpec(dead_link_fraction=0.2)), jobs=1
        )
        by_config = {r.configuration: r for r in outcome.results}
        assert by_config["HMesh/ECM"].fault_links_degraded > 0

    def test_dram_timeouts_count_and_delay(self):
        outcome = run(
            _scenario(faults=FaultSpec(dram_timeout_rate=0.05)), jobs=1
        )
        for result in outcome.results:
            assert result.fault_dram_timeouts > 0
            assert result.fault_dram_retry_s > 0.0

    def test_fault_seed_changes_the_schedule(self):
        one = run(
            _scenario(faults=FaultSpec(seed=1, token_loss_rate=0.05)), jobs=1
        )
        two = run(
            _scenario(faults=FaultSpec(seed=2, token_loss_rate=0.05)), jobs=1
        )
        lost = lambda outcome: [  # noqa: E731
            r.fault_tokens_lost for r in outcome.results
        ]
        assert lost(one) != lost(two)


class TestParallelDeterminismUnderFaults:
    def test_jobs_1_vs_2_bit_identical_with_faults(self, faulty_run):
        parallel = run(_scenario(faults=FaultSpec(**ALL_FAULTS)), jobs=2)
        assert len(parallel.results) == len(faulty_run.results)
        for serial, pooled in zip(faulty_run.results, parallel.results):
            for field in dataclasses.fields(serial):
                assert getattr(serial, field.name) == getattr(
                    pooled, field.name
                ), (serial.workload, serial.configuration, field.name)


class TestFaultSweeps:
    def test_fault_rate_axis_over_null_base(self):
        # The base scenario never mentions faults; the axis creates the node.
        spec = SweepSpec(
            name="token-loss",
            base=_scenario(
                configurations=("XBar/OCM",), num_requests=400
            ),
            axes=(
                SweepAxis(
                    name="loss",
                    path="faults.token_loss_rate",
                    values=(0.0, 0.05),
                ),
            ),
        )
        outcome = run_sweep(spec, jobs=1)
        assert [p.scenario.faults for p in outcome.points] == [
            FaultSpec(token_loss_rate=0.0),
            FaultSpec(token_loss_rate=0.05),
        ]
        by_point = {r.point_id: r.result for r in outcome.records}
        rates = {
            pid: result.fault_tokens_lost
            for pid, result in by_point.items()
        }
        assert rates["000-loss=0"] == 0
        assert rates["001-loss=0.05"] > 0
