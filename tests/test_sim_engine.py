"""Tests for the discrete-event engine."""

import pytest

from repro.sim.engine import EventQueue, Simulator


class TestEventQueue:
    def test_starts_empty(self):
        assert len(EventQueue()) == 0

    def test_push_and_pop_in_time_order(self):
        queue = EventQueue()
        order = []
        queue.push(3.0, order.append, ("c",))
        queue.push(1.0, order.append, ("a",))
        queue.push(2.0, order.append, ("b",))
        while (event := queue.pop()) is not None:
            _time, _seq, callback, args = event
            callback(*args)
        assert order == ["a", "b", "c"]

    def test_ties_processed_in_insertion_order(self):
        queue = EventQueue()
        first = queue.push(1.0, lambda: None, ())
        second = queue.push(1.0, lambda: None, ())
        assert queue.pop() is first
        assert queue.pop() is second

    def test_cancelled_events_are_skipped(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None, ())
        keeper = queue.push(2.0, lambda: None, ())
        queue.cancel(event)
        assert queue.pop() is keeper

    def test_cancel_updates_length(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None, ())
        queue.push(2.0, lambda: None, ())
        queue.cancel(event)
        assert len(queue) == 1
        queue.cancel(event)  # idempotent
        assert len(queue) == 1

    def test_peek_time(self):
        queue = EventQueue()
        queue.push(5.0, lambda: None, ())
        queue.push(2.0, lambda: None, ())
        assert queue.peek_time() == 2.0

    def test_peek_time_empty(self):
        assert EventQueue().peek_time() is None

    def test_peek_time_skips_cancelled_head(self):
        queue = EventQueue()
        head = queue.push(1.0, lambda: None, ())
        queue.push(2.0, lambda: None, ())
        queue.cancel(head)
        assert queue.peek_time() == 2.0
        assert len(queue) == 1

    def test_pop_after_peek_shares_dead_entry_skipping(self):
        """peek_time and pop agree on the head after interleaved cancels."""
        queue = EventQueue()
        dead = queue.push(1.0, lambda: None, ())
        live = queue.push(1.0, lambda: None, ())
        queue.cancel(dead)
        assert queue.peek_time() == 1.0
        assert queue.pop() is live
        assert queue.pop() is None

    def test_interleaved_cancel_and_schedule_at_equal_times_is_fifo(self):
        """Cancelling among same-time entries preserves deterministic FIFO order."""
        queue = EventQueue()
        order = []
        kept = []
        for label in range(8):
            entry = queue.push(1.0, order.append, (label,))
            if label % 2 == 0:
                queue.cancel(entry)
            else:
                kept.append(label)
            # Interleave: a later push at the same timestamp must not leapfrog
            # survivors that were scheduled earlier.
            queue.push(1.0, order.append, (f"tail-{label}",))
        while (event := queue.pop()) is not None:
            event[2](*event[3])
        expected = []
        for label in range(8):
            if label % 2 == 1:
                expected.append(label)
            expected.append(f"tail-{label}")
        assert order == expected
        assert len(queue) == 0


class TestSimulator:
    def test_now_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_run_executes_events_and_advances_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(1e-9, seen.append, "first")
        sim.schedule(3e-9, seen.append, "second")
        sim.run()
        assert seen == ["first", "second"]
        assert sim.now == pytest.approx(3e-9)
        assert sim.events_executed == 2

    def test_events_can_schedule_more_events(self):
        sim = Simulator()
        seen = []

        def chain(depth):
            seen.append(depth)
            if depth < 5:
                sim.schedule(1e-9, chain, depth + 1)

        sim.schedule(0.0, chain, 1)
        sim.run()
        assert seen == [1, 2, 3, 4, 5]
        assert sim.now == pytest.approx(4e-9)

    def test_schedule_rejects_negative_delay(self):
        with pytest.raises(ValueError):
            Simulator().schedule(-1e-9, lambda: None)

    def test_schedule_at_rejects_past_times(self):
        sim = Simulator()
        sim.schedule(5e-9, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(1e-9, lambda: None)

    def test_run_until_stops_at_bound(self):
        sim = Simulator()
        seen = []
        sim.schedule(1e-9, seen.append, "early")
        sim.schedule(10e-9, seen.append, "late")
        sim.run(until=5e-9)
        assert seen == ["early"]
        assert sim.now == pytest.approx(5e-9)
        assert sim.pending_events() == 1

    def test_run_resumes_after_until(self):
        sim = Simulator()
        seen = []
        sim.schedule(1e-9, seen.append, "early")
        sim.schedule(10e-9, seen.append, "late")
        sim.run(until=5e-9)
        sim.run()
        assert seen == ["early", "late"]

    def test_max_events_limit(self):
        sim = Simulator()
        for i in range(10):
            sim.schedule(i * 1e-9, lambda: None)
        sim.run(max_events=4)
        assert sim.events_executed == 4
        assert sim.pending_events() == 6

    def test_stop_from_callback(self):
        sim = Simulator()
        seen = []

        def stopper():
            seen.append("stop")
            sim.stop()

        sim.schedule(1e-9, stopper)
        sim.schedule(2e-9, seen.append, "after")
        sim.run()
        assert seen == ["stop"]
        sim.run()
        assert seen == ["stop", "after"]

    def test_cancel_prevents_execution(self):
        sim = Simulator()
        seen = []
        event = sim.schedule(1e-9, seen.append, "cancelled")
        sim.schedule(2e-9, seen.append, "kept")
        sim.cancel(event)
        sim.run()
        assert seen == ["kept"]

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        event = sim.schedule(1e-9, lambda: None)
        sim.cancel(event)
        sim.cancel(event)
        sim.run()
        assert sim.events_executed == 0
        assert sim.pending_events() == 0

    def test_cancel_then_schedule_at_same_time_is_deterministic(self):
        """Cancel/schedule interleaving at one timestamp keeps FIFO order."""
        sim = Simulator()
        seen = []
        first = sim.schedule(1e-9, seen.append, "first")
        sim.schedule(1e-9, seen.append, "second")
        sim.cancel(first)
        sim.schedule(1e-9, seen.append, "third")
        replacement = sim.schedule(1e-9, seen.append, "replacement")
        sim.cancel(replacement)
        sim.schedule(1e-9, seen.append, "fourth")
        sim.run()
        assert seen == ["second", "third", "fourth"]
        assert sim.events_executed == 3

    def test_deterministic_order_for_simultaneous_events(self):
        sim = Simulator()
        seen = []
        for label in range(20):
            sim.schedule(1e-9, seen.append, label)
        sim.run()
        assert seen == list(range(20))
