"""Tests for the Scenario API: registries, spec round-trips, validation
errors, the run() entry point, and the parallel worker resolution errors."""

from __future__ import annotations

import json
from dataclasses import replace

import pytest

from repro.api import (
    CONFIGURATIONS,
    WORKLOADS,
    ExperimentSpec,
    OutputSpec,
    Registry,
    RegistryCollisionError,
    ScaleSpec,
    Scenario,
    ScenarioError,
    SystemSpec,
    UnknownEntryError,
    WorkloadSpec,
    build_matrix,
    load_scenario,
    run,
)
from repro.coherence.engine import CoherenceConfig
from repro.coherence.sharing import SharingProfile
from repro.core.configs import CONFIGURATION_ORDER, SystemConfiguration
from repro.core.results import RESULT_CSV_COLUMNS, WorkloadResult
from repro.harness.experiments import EvaluationMatrix, QUICK_SCALE
from repro.harness.parallel import (
    WorkerSetupError,
    _replay_pair,
    run_pairs,
)
from repro.harness.report import build_report
from repro.trace.splash2 import (
    SPLASH2_SHARING_PROFILES,
    splash2_workload,
)
from repro.trace.synthetic import uniform_workload


def _rich_scenario() -> Scenario:
    return Scenario(
        name="rich",
        description="everything the schema can carry",
        system=SystemSpec(
            configurations=("LMesh/ECM", "XBar/OCM"),
            overrides={"num_clusters": 16, "cluster": {"cores": 2}},
        ),
        workloads=(
            WorkloadSpec(
                name="Uniform",
                params={"num_clusters": 16, "mean_gap_cycles": 20.0},
                num_requests=500,
            ),
            WorkloadSpec(
                name="Barnes",
                params={"num_clusters": 16, "label": "Barnes s=0.25"},
                sharing=SharingProfile(fraction=0.25),
            ),
            WorkloadSpec(name="Hot Spot", sharing="default"),
        ),
        scale=ScaleSpec(tier="full", synthetic_requests=1000, seed=7),
        coherence=CoherenceConfig(broadcast_threshold=2),
        experiments=(ExperimentSpec(name="sensitivity"),),
        jobs=3,
        modules=("some.module",),
        output=OutputSpec(report="r.md", json="r.json", csv="r.csv"),
    )


class TestScenarioRoundTrip:
    def test_dict_round_trip_is_exact(self):
        scenario = _rich_scenario()
        assert Scenario.from_dict(scenario.to_dict()) == scenario

    def test_default_scenario_round_trips(self):
        scenario = Scenario()
        assert Scenario.from_dict(scenario.to_dict()) == scenario

    def test_dict_form_is_json_clean(self):
        scenario = _rich_scenario()
        rebuilt = Scenario.from_dict(json.loads(json.dumps(scenario.to_dict())))
        assert rebuilt == scenario

    def test_json_file_round_trip(self, tmp_path):
        scenario = _rich_scenario()
        path = scenario.save(tmp_path / "scenario.json")
        assert load_scenario(path) == scenario

    def test_workload_shorthand_string(self):
        scenario = Scenario.from_dict({"workloads": ["Uniform"]})
        assert scenario.workloads == (WorkloadSpec(name="Uniform"),)

    def test_workload_result_round_trip(self):
        result = run(
            Scenario(
                system=SystemSpec(configurations=("XBar/OCM",)),
                workloads=(WorkloadSpec(name="Uniform", num_requests=400),),
            )
        ).results[0]
        assert WorkloadResult.from_dict(result.to_dict()) == result
        with pytest.raises(ValueError, match="bogus_field"):
            WorkloadResult.from_dict({**result.to_dict(), "bogus_field": 1})


class TestScenarioValidation:
    def test_unknown_top_level_field_is_named(self):
        with pytest.raises(ScenarioError, match="frobnicate"):
            Scenario.from_dict({"frobnicate": 1})

    def test_bad_sharing_fraction_names_the_path(self):
        with pytest.raises(ScenarioError, match=r"workloads\[0\].sharing"):
            Scenario.from_dict(
                {"workloads": [{"name": "Uniform",
                                "sharing": {"fraction": 2.0}}]}
            )

    def test_wrong_typed_values_still_raise_scenario_errors(self):
        # __post_init__ range checks raise TypeError on non-numeric values;
        # the parsers must translate those to field-pathed ScenarioErrors.
        with pytest.raises(ScenarioError, match=r"workloads\[0\].sharing"):
            Scenario.from_dict(
                {"workloads": [{"name": "Uniform",
                                "sharing": {"fraction": "high"}}]}
            )
        with pytest.raises(ScenarioError, match="coherence"):
            Scenario.from_dict({"coherence": {"broadcast_threshold": "many"}})

    def test_unknown_sharing_field_is_named(self):
        with pytest.raises(ScenarioError, match=r"workloads\[0\].sharing"):
            Scenario.from_dict(
                {"workloads": [{"name": "Uniform",
                                "sharing": {"fractoin": 0.2}}]}
            )

    def test_bad_scale_tier_names_the_path(self):
        with pytest.raises(ScenarioError, match="scale.tier"):
            Scenario.from_dict({"scale": {"tier": "warp"}})

    def test_bad_override_names_the_path(self):
        with pytest.raises(ScenarioError, match="system.overrides"):
            Scenario.from_dict(
                {"system": {"overrides": {"num_flux_capacitors": 3}}}
            )

    def test_negative_jobs_rejected(self):
        with pytest.raises(ScenarioError, match="jobs"):
            Scenario.from_dict({"jobs": -1})

    def test_workload_name_required(self):
        with pytest.raises(ScenarioError, match=r"workloads\[0\].name"):
            Scenario.from_dict({"workloads": [{"params": {}}]})

    def test_empty_configuration_list_rejected(self):
        with pytest.raises(ScenarioError, match="system.configurations"):
            Scenario.from_dict({"system": {"configurations": []}})

    def test_validate_flags_unknown_names(self):
        with pytest.raises(ScenarioError, match=r"workloads\[0\].name"):
            Scenario(workloads=(WorkloadSpec(name="NotAWorkload"),)).validate()
        with pytest.raises(ScenarioError, match=r"system.configurations\[0\]"):
            Scenario(
                system=SystemSpec(configurations=("NotAConfig",))
            ).validate()
        with pytest.raises(ScenarioError, match=r"experiments\[0\].name"):
            Scenario(experiments=(ExperimentSpec(name="nope"),)).validate()

    def test_validate_flags_missing_module(self):
        with pytest.raises(ScenarioError, match=r"modules\[0\]"):
            Scenario(modules=("no_such_module_abc",)).validate()

    def test_bad_json_file_names_the_file(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ScenarioError, match="broken.json"):
            load_scenario(path)

    def test_duplicate_workload_names_rejected(self):
        scenario = Scenario(
            workloads=(
                WorkloadSpec(name="Uniform"),
                WorkloadSpec(name="Uniform", params={"mean_gap_cycles": 10.0}),
            )
        )
        # The error points at the *duplicate* entry, not the original.
        with pytest.raises(ScenarioError, match=r"workloads\[1\]: duplicate"):
            build_matrix(scenario)
        # validate() is faithful to run(): it builds the matrix too.
        with pytest.raises(ScenarioError, match=r"workloads\[1\]: duplicate"):
            scenario.validate()

    def test_sharing_mapping_in_params_builds(self):
        # "validates implies runs": a sharing dict placed in params resolves
        # to a profile at construction instead of exploding mid-generation.
        scenario = Scenario.from_dict(
            {"workloads": [{"name": "Uniform",
                            "params": {"sharing": {"fraction": 0.3}}}]}
        )
        matrix = build_matrix(scenario)
        assert matrix.workloads()[0].sharing == SharingProfile(fraction=0.3)

    def test_num_requests_in_params_rejected(self):
        scenario = Scenario.from_dict(
            {"workloads": [{"name": "Uniform",
                            "params": {"num_requests": 500}}]}
        )
        with pytest.raises(
            ScenarioError, match=r"workloads\[0\].params.num_requests"
        ):
            scenario.validate()

    def test_cluster_count_mismatch_rejected(self):
        scenario = Scenario(
            system=SystemSpec(
                configurations=("XBar/OCM",), overrides={"num_clusters": 16}
            ),
            workloads=(WorkloadSpec(name="Uniform"),),
        )
        with pytest.raises(ScenarioError, match="num_clusters"):
            build_matrix(scenario)


class TestRegistry:
    def test_collision_raises(self):
        registry = Registry("demo")
        registry.register("x")(lambda: 1)
        with pytest.raises(RegistryCollisionError, match="already registered"):
            registry.register("x")(lambda: 2)
        registry.register("x", replace=True)(lambda: 3)
        assert registry.build("x") == 3

    def test_unknown_entry_lists_known(self):
        registry = Registry("demo")
        registry.register("alpha")(lambda: 1)
        with pytest.raises(UnknownEntryError, match="alpha"):
            registry.get("beta")

    def test_seed_entries_present(self):
        # Prefix comparison: user/test registrations append after the seeds.
        assert CONFIGURATIONS.names()[:5] == CONFIGURATION_ORDER
        assert WORKLOADS.names()[:6] == [
            "Uniform", "Hot Spot", "Tornado", "Transpose",
            "Bit Reversal", "Neighbor",
        ]
        assert "Water-Sp" in WORKLOADS

    def test_custom_registration_runs_end_to_end(self):
        from repro.core.configs import (
            crossbar_network,
            ecm_memory,
        )

        name = "Test/XBarECM"
        if name not in CONFIGURATIONS:
            CONFIGURATIONS.register(name)(
                lambda: SystemConfiguration(
                    name=name,
                    network_name="XBar",
                    memory_name="ECM",
                    network_factory=crossbar_network,
                    memory_factory=ecm_memory,
                )
            )
        result = run(
            Scenario(
                system=SystemSpec(configurations=(name,)),
                workloads=(WorkloadSpec(name="Uniform", num_requests=400),),
            )
        )
        assert result.results[0].configuration == name

    def test_factory_name_mismatch_rejected(self):
        name = "Test/Mismatch"
        if name not in CONFIGURATIONS:
            from repro.core.configs import configuration_by_name

            CONFIGURATIONS.register(name)(
                lambda: configuration_by_name("XBar/OCM")
            )
        scenario = Scenario(
            system=SystemSpec(configurations=(name,)),
            workloads=(WorkloadSpec(name="Uniform", num_requests=400),),
        )
        with pytest.raises(ScenarioError, match="names must match"):
            build_matrix(scenario)


def _small_scale_kwargs():
    return dict(
        synthetic_requests=800, splash_min_requests=800, splash_max_requests=800
    )


class TestRunEntryPoint:
    def test_run_matches_legacy_evaluate_bit_identically(self):
        """The acceptance criterion: a scenario translated from the legacy
        evaluate flags reproduces the quick-scale matrix bit-identically."""
        legacy = build_report(
            EvaluationMatrix(
                scale=replace(QUICK_SCALE, **_small_scale_kwargs()),
                configuration_names=["LMesh/ECM", "XBar/OCM"],
                workload_filter=["Uniform", "Barnes"],
            )
        )
        scenario = Scenario(
            system=SystemSpec(configurations=("LMesh/ECM", "XBar/OCM")),
            workloads=(WorkloadSpec(name="Uniform"), WorkloadSpec(name="Barnes")),
            scale=ScaleSpec(tier="quick", **_small_scale_kwargs()),
        )
        assert run(scenario).results == legacy.results

    def test_parallel_run_matches_serial(self):
        scenario = Scenario(
            system=SystemSpec(configurations=("LMesh/ECM", "XBar/OCM")),
            workloads=(WorkloadSpec(name="Uniform", num_requests=600),),
        )
        assert run(scenario, jobs=2).results == run(scenario).results

    def test_on_result_streams_in_serial_order(self):
        scenario = Scenario(
            system=SystemSpec(configurations=("LMesh/ECM", "XBar/OCM")),
            workloads=(
                WorkloadSpec(name="Uniform", num_requests=500),
                WorkloadSpec(name="Neighbor", num_requests=500),
            ),
            jobs=2,
        )
        streamed = []
        result = run(
            scenario,
            on_result=lambda r: streamed.append((r.workload, r.configuration)),
        )
        assert streamed == [
            (r.workload, r.configuration) for r in result.results
        ]
        assert streamed[0] == ("Uniform", "LMesh/ECM")

    def test_output_sinks_written(self, tmp_path):
        scenario = Scenario(
            system=SystemSpec(configurations=("XBar/OCM",)),
            workloads=(WorkloadSpec(name="Uniform", num_requests=500),),
            output=OutputSpec(
                report=str(tmp_path / "out" / "report.md"),
                json=str(tmp_path / "out" / "results.json"),
                csv=str(tmp_path / "out" / "results.csv"),
            ),
        )
        result = run(scenario)
        # A JSON sink also gets the corona-artifacts/1 manifest next to it.
        assert sorted(result.written) == ["artifacts", "csv", "json", "report"]
        report = result.written["report"].read_text()
        assert report.startswith("# Corona reproduction report")
        payload = json.loads(result.written["json"].read_text())
        assert payload["format"] == "corona-results/1"
        assert Scenario.from_dict(payload["scenario"]) == scenario
        rebuilt = WorkloadResult.from_dict(payload["results"][0])
        assert rebuilt == result.results[0]
        header = result.written["csv"].read_text().splitlines()[0]
        assert header == ",".join(RESULT_CSV_COLUMNS)

    def test_empty_workloads_means_all_registered(self):
        matrix = build_matrix(Scenario())
        # Explicit-only entries (trace-file needs a path) are not part of
        # the "every registered workload" expansion.
        assert matrix.workload_names() == WORKLOADS.default_names()
        assert "trace-file" in WORKLOADS.names()
        assert "trace-file" not in WORKLOADS.default_names()
        assert matrix.run_count() == 5 * 17

    def test_overrides_flow_into_simulators(self):
        scenario = Scenario(
            system=SystemSpec(
                configurations=("XBar/OCM",), overrides={"num_clusters": 16}
            ),
            workloads=(
                WorkloadSpec(
                    name="Uniform",
                    params={"num_clusters": 16},
                    num_requests=400,
                ),
            ),
        )
        serial = run(scenario)
        assert serial.results[0].num_requests == 400
        assert run(scenario, jobs=2).results == serial.results

    def test_coherence_sweep_experiment_honors_overrides(self):
        scenario = Scenario(
            system=SystemSpec(
                configurations=("LMesh/ECM", "XBar/OCM"),
                overrides={"num_clusters": 16},
            ),
            workloads=(
                WorkloadSpec(
                    name="Uniform", params={"num_clusters": 16},
                    num_requests=400,
                ),
            ),
            experiments=(
                ExperimentSpec(
                    name="coherence-sweep",
                    params={"fractions": [0.3], "num_requests": 400},
                ),
            ),
        )
        markdown = run(scenario).to_markdown()
        # The sweep replays at the overridden 16-cluster design; with the
        # old silent fallback to 64 clusters this raised no error but
        # reported the stock architecture.  Sanity: section present and the
        # sweep ran on both configurations.
        section = markdown[markdown.index("Coherence cost sweep"):]
        assert "LMesh/ECM" in section and "XBar/OCM" in section

    def test_experiment_section_appended(self):
        scenario = Scenario(
            system=SystemSpec(configurations=("XBar/OCM",)),
            workloads=(WorkloadSpec(name="Uniform", num_requests=400),),
            experiments=(ExperimentSpec(name="sensitivity"),),
        )
        markdown = run(scenario).to_markdown()
        assert "Photonic design sensitivity" in markdown


class TestWorkerResolutionErrors:
    def test_unknown_configuration_in_worker_is_actionable(self):
        trace = uniform_workload().generate_packed(seed=1, num_requests=200)
        with pytest.raises(WorkerSetupError, match="could not resolve"):
            _replay_pair("No/Such", trace, 4)
        with pytest.raises(WorkerSetupError, match="scenario"):
            # The hint mentions the scenario 'modules' remediation.
            _replay_pair("No/Such", trace, 4)

    def test_missing_module_in_worker_is_actionable(self):
        trace = uniform_workload().generate_packed(seed=1, num_requests=200)
        with pytest.raises(WorkerSetupError, match="no_such_module_abc"):
            _replay_pair(
                "XBar/OCM", trace, 4, None, None, ("no_such_module_abc",)
            )

    def test_pool_error_is_clean_of_worker_traceback(self):
        trace = uniform_workload().generate_packed(seed=1, num_requests=200)
        pairs = [("No/Such", trace, 4, None), ("No/Such", trace, 4, None)]
        with pytest.raises(WorkerSetupError) as excinfo:
            run_pairs(pairs, jobs=2)
        assert excinfo.value.__cause__ is None
        assert excinfo.value.__suppress_context__


class TestSplash2Sharing:
    def test_sharing_off_by_default(self):
        trace = splash2_workload("Barnes").generate_packed(
            seed=1, num_requests=2000
        )
        assert trace.shared_fraction() == 0.0

    def test_default_profile_tags_shared_lines(self):
        trace = splash2_workload("Barnes", sharing="default").generate_packed(
            seed=1, num_requests=4000
        )
        expected = SPLASH2_SHARING_PROFILES["Barnes"].fraction
        assert abs(trace.shared_fraction() - expected) < 0.05

    def test_every_benchmark_has_a_profile(self):
        from repro.trace.splash2 import SPLASH2_ORDER

        assert sorted(SPLASH2_SHARING_PROFILES) == sorted(SPLASH2_ORDER)

    def test_stream_and_packed_agree_with_sharing(self):
        from repro.trace.packed import as_packed

        workload = splash2_workload("LU", sharing="default")
        stream = as_packed(workload.generate(seed=5, num_requests=2000))
        packed = workload.generate_packed(seed=5, num_requests=2000)
        assert stream.meta == packed.meta
        assert stream.addresses == packed.addresses
        assert stream.gaps == packed.gaps

    def test_label_renames_the_workload(self):
        workload = splash2_workload("FFT", label="FFT shared")
        assert workload.name == "FFT shared"
        assert workload.generate(seed=1, num_requests=1200).name == "FFT shared"

    def test_bad_sharing_string_rejected(self):
        with pytest.raises(ValueError, match="default"):
            splash2_workload("FFT", sharing="everything")

    def test_coherent_replay_consumes_shared_splash_trace(self):
        scenario = Scenario(
            system=SystemSpec(configurations=("XBar/OCM",)),
            workloads=(
                WorkloadSpec(name="Radiosity", sharing="default",
                             num_requests=1500),
            ),
            coherence=CoherenceConfig(),
        )
        result = run(scenario).results[0]
        assert result.coherence_enabled
        assert result.shared_requests > 0
