"""Repository tooling scripts (runnable via ``python -m scripts.<name>``)."""
