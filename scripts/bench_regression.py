"""Replay-performance regression tracker.

Runs the replay micro-benchmarks (single-run events/sec on each interconnect
family, plus a coherence-enabled replay with the timed MOESI directory and
broadcast-bus invalidations) and the reduced evaluation-matrix comparison
(serial vs parallel wall-clock), writes the numbers to ``BENCH_replay.json``
at the repository root, and -- when a committed baseline exists -- **fails
(exit 1) if any throughput metric regressed by more than 20%**.

Usage::

    python -m scripts.bench_regression                 # measure + compare
    python -m scripts.bench_regression --update-baseline
    python -m scripts.bench_regression --output /tmp/bench.json

The baseline is machine-specific (wall-clock numbers move between hosts), so
re-baseline with ``--update-baseline`` when the hardware changes; the
``history`` list in the JSON keeps the trajectory.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from datetime import datetime, timezone
from pathlib import Path
from typing import Dict

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.coherence import CoherenceConfig, SharingProfile  # noqa: E402
from repro.core.configs import configuration_by_name  # noqa: E402
from repro.core.system import SystemSimulator  # noqa: E402
from repro.harness.experiments import EvaluationMatrix, ExperimentScale  # noqa: E402
from repro.harness.parallel import (  # noqa: E402
    ParallelEvaluationRunner,
    available_cpus,
)
from repro.harness.runner import EvaluationRunner  # noqa: E402
from repro.trace.synthetic import uniform_workload  # noqa: E402

DEFAULT_BENCH_PATH = REPO_ROOT / "BENCH_replay.json"

#: Allowed slowdown before the script fails (fraction of the baseline).
REGRESSION_TOLERANCE = 0.20

#: Replay micro-benchmark: requests per single run.
REPLAY_REQUESTS = 5_000

#: Reduced matrix mirroring benchmarks/bench_parallel_runner.py.
MATRIX_SCALE = ExperimentScale(synthetic_requests=3_000)
MATRIX_CONFIGURATIONS = ("LMesh/ECM", "XBar/OCM")


#: Sharing profile of the coherence-enabled replay measurement.
COHERENT_SHARING = SharingProfile(fraction=0.3)


def _replay_best_seconds(
    configuration_name: str, trace, window: int, rounds: int, coherence=None
):
    best = float("inf")
    events = 0
    for _ in range(rounds):
        simulator = SystemSimulator(
            configuration_by_name(configuration_name),
            window_depth=window,
            coherence=coherence,
        )
        started = time.perf_counter()
        simulator.run(trace)
        best = min(best, time.perf_counter() - started)
        events = simulator._simulator.events_executed
    return best, events


def _matrix() -> EvaluationMatrix:
    return EvaluationMatrix(
        scale=MATRIX_SCALE,
        configuration_names=list(MATRIX_CONFIGURATIONS),
        include_splash=False,
    )


def measure(rounds: int = 3) -> Dict[str, float]:
    """Collect every tracked metric; higher is better for ``*_per_s``."""
    workload = uniform_workload()
    trace = workload.generate(seed=1, num_requests=REPLAY_REQUESTS)
    metrics: Dict[str, float] = {}

    for label, configuration in (
        ("xbar_ocm", "XBar/OCM"),
        ("lmesh_ecm", "LMesh/ECM"),
        ("hmesh_ocm", "HMesh/OCM"),
    ):
        seconds, events = _replay_best_seconds(
            configuration, trace, workload.window, rounds
        )
        metrics[f"replay_{label}_events_per_s"] = events / seconds
        metrics[f"replay_{label}_requests_per_s"] = REPLAY_REQUESTS / seconds

    # Coherence-enabled replay: a sharing-tagged trace with the timed MOESI
    # directory on the Corona design (broadcast-bus invalidations live).
    coherent_workload = uniform_workload(sharing=COHERENT_SHARING)
    coherent_trace = coherent_workload.generate(
        seed=1, num_requests=REPLAY_REQUESTS
    )
    seconds, events = _replay_best_seconds(
        "XBar/OCM",
        coherent_trace,
        coherent_workload.window,
        rounds,
        coherence=CoherenceConfig(),
    )
    metrics["replay_xbar_ocm_coherent_events_per_s"] = events / seconds
    metrics["replay_xbar_ocm_coherent_requests_per_s"] = REPLAY_REQUESTS / seconds

    pairs = _matrix().run_count()
    started = time.perf_counter()
    EvaluationRunner(matrix=_matrix()).run()
    serial_seconds = time.perf_counter() - started
    metrics["matrix_serial_seconds"] = serial_seconds
    metrics["matrix_serial_pairs_per_s"] = pairs / serial_seconds

    jobs = min(4, available_cpus())
    started = time.perf_counter()
    ParallelEvaluationRunner(matrix=_matrix(), jobs=jobs).run()
    parallel_seconds = time.perf_counter() - started
    metrics["matrix_parallel_seconds"] = parallel_seconds
    metrics["matrix_parallel_jobs"] = jobs
    metrics["matrix_parallel_pairs_per_s"] = pairs / parallel_seconds
    return metrics


def compare(baseline: Dict[str, float], current: Dict[str, float]):
    """Return (ok, lines): throughput metrics may not drop >20%."""
    lines = []
    ok = True
    for key in sorted(current):
        if not key.endswith("_per_s"):
            continue
        new = current[key]
        old = baseline.get(key)
        if not old:
            lines.append(f"  {key:<38} {new:14,.0f}  (no baseline)")
            continue
        ratio = new / old
        flag = ""
        if ratio < 1.0 - REGRESSION_TOLERANCE:
            ok = False
            flag = "  REGRESSION"
        lines.append(
            f"  {key:<38} {new:14,.0f}  vs {old:14,.0f}  ({ratio:5.2f}x){flag}"
        )
    return ok, lines


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        type=Path,
        default=DEFAULT_BENCH_PATH,
        help="benchmark JSON path (default: BENCH_replay.json at the repo root)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="overwrite the baseline with this run instead of comparing",
    )
    parser.add_argument("--rounds", type=int, default=3)
    args = parser.parse_args(argv)

    print(f"measuring replay throughput ({args.rounds} rounds per config)...")
    current = measure(rounds=args.rounds)
    for key in sorted(current):
        print(f"  {key:<38} {current[key]:14,.2f}")

    existing = None
    if args.output.exists():
        existing = json.loads(args.output.read_text())

    snapshot = {
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "python": platform.python_version(),
        "metrics": current,
    }

    if existing is not None and not args.update_baseline:
        print("\ncomparing against committed baseline:")
        ok, lines = compare(existing["metrics"], current)
        print("\n".join(lines))
        if not ok:
            print(
                f"\nFAIL: throughput regressed more than "
                f"{REGRESSION_TOLERANCE:.0%} vs {args.output}"
            )
            return 1
        print("\nOK: no throughput regression beyond tolerance")
        return 0

    history = []
    if existing is not None:
        history = existing.get("history", [])
        history.append(
            {
                "timestamp": existing.get("timestamp"),
                "metrics": existing.get("metrics"),
            }
        )
        history = history[-10:]
    snapshot["history"] = history
    args.output.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
    print(f"\nbaseline written to {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
