"""Replay-performance regression tracker.

Runs the replay micro-benchmarks (single-run events/sec on each interconnect
family, plus a coherence-enabled replay with the timed MOESI directory and
broadcast-bus invalidations) and the reduced evaluation-matrix comparison
(serial vs parallel wall-clock), writes the numbers to ``BENCH_replay.json``
at the repository root, and -- when a committed baseline exists -- **fails
(exit 1) if any throughput metric regressed by more than 20%**.

Usage::

    python -m scripts.bench_regression                 # measure + compare
    python -m scripts.bench_regression --update-baseline
    python -m scripts.bench_regression --output /tmp/bench.json
    python -m scripts.bench_regression --smoke --json  # CI smoke artifact

The baseline is machine-specific (wall-clock numbers move between hosts), so
re-baseline with ``--update-baseline`` when the hardware changes; the
``history`` list in the JSON keeps the trajectory.

``--smoke`` runs every metric at sharply reduced request counts and **never
gates or touches the baseline**: it exists so CI can prove the benchmark
pipeline end-to-end on shared runners whose absolute numbers are
meaningless.  ``--json`` prints the machine-readable snapshot to stdout
(human-readable progress moves to stderr), which CI uploads as an artifact.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from datetime import datetime, timezone
from pathlib import Path
from typing import Dict

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.coherence import CoherenceConfig, SharingProfile  # noqa: E402
from repro.core.configs import configuration_by_name  # noqa: E402
from repro.core.system import SystemSimulator  # noqa: E402
from repro.harness.experiments import EvaluationMatrix, ExperimentScale  # noqa: E402
from repro.harness.parallel import (  # noqa: E402
    ParallelEvaluationRunner,
    available_cpus,
)
from repro.harness.runner import EvaluationRunner  # noqa: E402
from repro.trace.synthetic import uniform_workload  # noqa: E402

DEFAULT_BENCH_PATH = REPO_ROOT / "BENCH_replay.json"

#: Allowed slowdown before the script fails (fraction of the baseline).
REGRESSION_TOLERANCE = 0.20

#: Replay micro-benchmark: requests per single run (full / smoke mode).
REPLAY_REQUESTS = 5_000
SMOKE_REPLAY_REQUESTS = 800

#: Reduced matrix mirroring benchmarks/bench_parallel_runner.py.
MATRIX_SCALE = ExperimentScale(synthetic_requests=3_000)
SMOKE_MATRIX_SCALE = ExperimentScale(synthetic_requests=600)
MATRIX_CONFIGURATIONS = ("LMesh/ECM", "XBar/OCM")


#: Sharing profile of the coherence-enabled replay measurement.
COHERENT_SHARING = SharingProfile(fraction=0.3)


def _replay_best_seconds(
    configuration_name: str, trace, window: int, rounds: int, coherence=None
):
    best = float("inf")
    events = 0
    for _ in range(rounds):
        simulator = SystemSimulator(
            configuration_by_name(configuration_name),
            window_depth=window,
            coherence=coherence,
        )
        started = time.perf_counter()
        simulator.run(trace)
        best = min(best, time.perf_counter() - started)
        events = simulator._simulator.events_executed
    return best, events


def _matrix(smoke: bool = False) -> EvaluationMatrix:
    return EvaluationMatrix(
        scale=SMOKE_MATRIX_SCALE if smoke else MATRIX_SCALE,
        configuration_names=list(MATRIX_CONFIGURATIONS),
        include_splash=False,
    )


def measure(rounds: int = 3, smoke: bool = False) -> Dict[str, float]:
    """Collect every tracked metric; higher is better for ``*_per_s``.

    ``smoke`` shrinks every request count so the full pipeline finishes in
    seconds; smoke numbers are for plumbing verification, not comparison.
    The matrix runners' per-phase wall-clock breakdown lands in the
    module-level ``LAST_PHASE_TIMINGS`` (serial and parallel sections), so
    the written snapshot can *explain* a regression, not just detect it.
    """
    requests = SMOKE_REPLAY_REQUESTS if smoke else REPLAY_REQUESTS
    workload = uniform_workload()
    trace = workload.generate_packed(seed=1, num_requests=requests)
    metrics: Dict[str, float] = {}

    for label, configuration in (
        ("xbar_ocm", "XBar/OCM"),
        ("lmesh_ecm", "LMesh/ECM"),
        ("hmesh_ocm", "HMesh/OCM"),
    ):
        seconds, events = _replay_best_seconds(
            configuration, trace, workload.window, rounds
        )
        metrics[f"replay_{label}_events_per_s"] = events / seconds
        metrics[f"replay_{label}_requests_per_s"] = requests / seconds

    # Coherence-enabled replay: a sharing-tagged trace with the timed MOESI
    # directory on the Corona design (broadcast-bus invalidations live).
    coherent_workload = uniform_workload(sharing=COHERENT_SHARING)
    coherent_trace = coherent_workload.generate_packed(
        seed=1, num_requests=requests
    )
    seconds, events = _replay_best_seconds(
        "XBar/OCM",
        coherent_trace,
        coherent_workload.window,
        rounds,
        coherence=CoherenceConfig(),
    )
    metrics["replay_xbar_ocm_coherent_events_per_s"] = events / seconds
    metrics["replay_xbar_ocm_coherent_requests_per_s"] = requests / seconds

    pairs = _matrix(smoke).run_count()
    serial_runner = EvaluationRunner(matrix=_matrix(smoke))
    started = time.perf_counter()
    serial_runner.run()
    serial_seconds = time.perf_counter() - started
    metrics["matrix_serial_seconds"] = serial_seconds
    metrics["matrix_serial_pairs_per_s"] = pairs / serial_seconds

    jobs = min(4, available_cpus())
    runner = ParallelEvaluationRunner(matrix=_matrix(smoke), jobs=jobs)
    started = time.perf_counter()
    runner.run()
    parallel_seconds = time.perf_counter() - started
    metrics["matrix_parallel_seconds"] = parallel_seconds
    metrics["matrix_parallel_jobs"] = jobs
    metrics["matrix_parallel_pairs_per_s"] = pairs / parallel_seconds
    # Dispatch overhead: pool wall-clock beyond the ideal division of the
    # workers' replay seconds -- trace generation, shipping (a shared-memory
    # handle per pair since the packed pipeline) and result collection.
    metrics["matrix_dispatch_seconds"] = max(
        0.0, parallel_seconds - runner.total_wall_clock_seconds() / jobs
    )
    LAST_PHASE_TIMINGS.clear()
    LAST_PHASE_TIMINGS.update(
        {
            "matrix_serial": dict(serial_runner.phase_seconds),
            "matrix_parallel": dict(runner.phase_seconds),
        }
    )
    return metrics


#: Per-phase wall-clock breakdown of the matrix runs of the last
#: :func:`measure` call (``{"matrix_serial": {...}, "matrix_parallel":
#: {...}}``); written into the snapshot's ``phase_timings`` section.
LAST_PHASE_TIMINGS: Dict[str, Dict[str, float]] = {}


def compare(baseline: Dict[str, float], current: Dict[str, float]):
    """Return (ok, lines): throughput metrics may not drop >20%.

    The comparison itself lives in the diff engine
    (:func:`repro.diffing.metric_deltas`, the same codepath behind
    ``corona-repro diff`` on bench snapshots); this wrapper keeps the
    historical line format and the (ok, lines) contract.
    """
    from repro.diffing import metric_deltas

    lines = []
    ok = True
    for delta in metric_deltas(baseline, current, REGRESSION_TOLERANCE):
        new = delta.current
        if not delta.has_baseline:
            lines.append(f"  {delta.metric:<38} {new:14,.0f}  (no baseline)")
            continue
        flag = ""
        if delta.regressed:
            ok = False
            flag = "  REGRESSION"
        lines.append(
            f"  {delta.metric:<38} {new:14,.0f}  vs {delta.baseline:14,.0f}  "
            f"({delta.ratio:5.2f}x){flag}"
        )
    return ok, lines


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        type=Path,
        default=DEFAULT_BENCH_PATH,
        help="benchmark JSON path (default: BENCH_replay.json at the repo root)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="overwrite the baseline with this run instead of comparing",
    )
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=(
            "reduced request counts, one round, no gating: verifies the "
            "benchmark pipeline without comparing against (or ever writing) "
            "the baseline"
        ),
    )
    parser.add_argument(
        "--json",
        action="store_true",
        dest="json_output",
        help=(
            "print the snapshot as JSON on stdout (progress moves to "
            "stderr); for CI artifacts"
        ),
    )
    args = parser.parse_args(argv)

    def say(message: str) -> None:
        print(message, file=sys.stderr if args.json_output else sys.stdout)

    rounds = 1 if args.smoke else args.rounds
    mode = "smoke" if args.smoke else "full"
    say(f"measuring replay throughput ({mode} mode, {rounds} round(s) per config)...")
    current = measure(rounds=rounds, smoke=args.smoke)
    for key in sorted(current):
        say(f"  {key:<38} {current[key]:14,.2f}")

    snapshot = {
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpus": os.cpu_count(),
        "mode": mode,
        "metrics": current,
        "phase_timings": {
            section: {phase: round(value, 4) for phase, value in phases.items()}
            for section, phases in LAST_PHASE_TIMINGS.items()
        },
    }

    if args.smoke:
        # Smoke numbers come from throwaway request counts on arbitrary
        # hardware: never gate on them and never touch the baseline.
        if args.json_output:
            print(json.dumps(snapshot, indent=2, sort_keys=True))
        say("\nOK: smoke run complete (baseline untouched, no gating)")
        return 0

    existing = None
    if args.output.exists():
        existing = json.loads(args.output.read_text())

    if args.json_output:
        print(json.dumps(snapshot, indent=2, sort_keys=True))

    if existing is not None and not args.update_baseline:
        say("\ncomparing against committed baseline:")
        ok, lines = compare(existing["metrics"], current)
        say("\n".join(lines))
        if not ok:
            say(
                f"\nFAIL: throughput regressed more than "
                f"{REGRESSION_TOLERANCE:.0%} vs {args.output}"
            )
            return 1
        say("\nOK: no throughput regression beyond tolerance")
        return 0

    history = []
    if existing is not None:
        history = existing.get("history", [])
        # Each history entry carries the environment it measured on, so a
        # trajectory spanning interpreter or hardware changes stays
        # interpretable (older entries predate some of these fields).
        history.append(
            {
                "timestamp": existing.get("timestamp"),
                "python": existing.get("python"),
                "platform": existing.get("platform"),
                "cpus": existing.get("cpus"),
                "metrics": existing.get("metrics"),
            }
        )
        history = history[-10:]
    snapshot["history"] = history
    args.output.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
    say(f"\nbaseline written to {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
