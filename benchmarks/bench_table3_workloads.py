"""Table 3 -- Benchmarks and Configurations.

Checks the workload suite against the paper's Table 3 (the four synthetic
patterns at 1 M requests and the eleven SPLASH-2 applications with their
scaled datasets and request counts, plus the Bit Reversal / Neighbor
extensions) and benchmarks trace generation, which is the reproduction's
stand-in for the paper's COTSon trace-collection stage.
"""

from repro.harness.tables import format_table, table3_benchmarks
from repro.trace.splash2 import SPLASH2_PROFILES, splash2_workload
from repro.trace.synthetic import synthetic_workloads, uniform_workload

#: SPLASH-2 rows of Table 3: dataset and network request count.
PAPER_TABLE3_SPLASH = {
    "Barnes": ("64 K particles", 7_200_000),
    "Cholesky": ("tk29.O", 600_000),
    "FFT": ("16 M points", 176_000_000),
    "FMM": ("1 M particles", 1_800_000),
    "LU": ("2048x2048 matrix", 34_000_000),
    "Ocean": ("2050x2050 grid", 240_000_000),
    "Radiosity": ("roomlarge", 4_200_000),
    "Radix": ("64 M integers", 189_000_000),
    "Raytrace": ("balls4", 700_000),
    "Volrend": ("head", 3_600_000),
    "Water-Sp": ("32 K molecules", 3_200_000),
}


def test_table3_matches_paper(benchmark):
    rows = benchmark(table3_benchmarks)
    # The paper's 15 workloads plus the Bit Reversal / Neighbor extensions.
    assert len(rows) == 17
    for name, (dataset, requests) in PAPER_TABLE3_SPLASH.items():
        profile = SPLASH2_PROFILES[name]
        assert profile.dataset == dataset
        assert profile.paper_requests == requests
    for workload in synthetic_workloads():
        assert workload.num_requests == 1_000_000
    print()
    print(format_table(
        ["Benchmark", "Data Set / Description", "# Network Requests"],
        rows,
        title="Table 3 (reproduced)",
    ))


def test_synthetic_trace_generation_rate(benchmark):
    """Benchmark the synthetic trace generator (records per second)."""
    workload = uniform_workload()
    trace = benchmark(workload.generate, 1, 20_000)
    assert trace.total_requests == 20_000


def test_splash_trace_generation_rate(benchmark):
    """Benchmark the SPLASH-2 statistical trace generator."""
    workload = splash2_workload("Ocean")
    trace = benchmark(workload.generate, 1, 20_000)
    assert trace.total_requests == 20_000
    assert trace.mean_gap_cycles() > 0
