"""Figure 10 -- Average L2 Miss Latency.

Regenerates the average L2-miss latency (queueing plus transit, in
nanoseconds) per workload and configuration.  Shape claims checked:

* on an unloaded system the latency floor is the ~20 ns memory access plus a
  few tens of ns of interconnect, and Corona's crossbar has the lowest latency
  of all configurations for nearly every workload;
* bandwidth-starved runs (high-demand workloads on ECM) show queueing-driven
  latencies many times the floor;
* LU and Raytrace -- the paper's bursty, latency-bound codes -- see their
  latency collapse by a large factor when moving from ECM to OCM.
"""


from repro.harness.figures import figure10_latency, render_figure

LOW_BANDWIDTH = ["Barnes", "Radiosity", "Volrend", "Water-Sp"]
HIGH_BANDWIDTH = ["Uniform", "FFT", "Radix", "Ocean"]


def test_figure10_average_latency(benchmark, evaluation_results, workload_order):
    latencies = benchmark(figure10_latency, evaluation_results, workload_order)
    print()
    print(render_figure(latencies, title="Figure 10: Average L2 Miss Latency", unit=" ns"))

    for workload, by_config in latencies.items():
        # Nothing beats the raw memory latency floor.
        for value in by_config.values():
            assert value >= 20.0

    # Unloaded (cache-resident) workloads sit near the floor everywhere, and
    # the crossbar is the fastest network.
    for workload in LOW_BANDWIDTH:
        by_config = latencies[workload]
        assert by_config["XBar/OCM"] < 60.0
        assert by_config["XBar/OCM"] <= min(by_config.values()) * 1.2

    # Memory-intensive workloads on the electrical baseline queue heavily.
    for workload in HIGH_BANDWIDTH:
        assert latencies[workload]["LMesh/ECM"] > 3 * latencies[workload]["XBar/OCM"]

    # LU and Raytrace: latency is the story (Section 5).
    for workload in ("LU", "Raytrace"):
        ecm = latencies[workload]["HMesh/ECM"]
        ocm = latencies[workload]["HMesh/OCM"]
        assert ecm > 2 * ocm
