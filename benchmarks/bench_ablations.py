"""Ablation benchmarks for the design choices called out in DESIGN.md.

Each ablation varies one modelling or architectural knob and checks that the
system responds the way the paper's argument predicts:

* **Thread window (memory-level parallelism)** -- Corona's bandwidth advantage
  only materializes if the cores can keep several misses in flight.
* **Token-ring round-trip time** -- the paper's 8-clock uncontested worst case
  is visible in unloaded latency but does not throttle a contended channel.
* **Crossbar channel width** -- halving the per-channel bandwidth pushes the
  bandwidth-hungry workloads back toward the mesh numbers.
* **Memory latency** -- both OCM and ECM assume 20 ns; Corona's advantage is
  bandwidth, not latency, so inflating the DRAM latency hurts both roughly
  equally.
"""


from repro.core.configs import configuration_by_name
from repro.core.system import SystemSimulator
from repro.network.crossbar import OpticalCrossbar
from repro.trace.synthetic import uniform_workload

REQUESTS = 16000


def _uniform_trace(num_requests=REQUESTS, seed=1):
    return uniform_workload().generate(seed=seed, num_requests=num_requests)


def test_ablation_thread_window(benchmark):
    """Corona's achieved bandwidth scales with per-thread MLP."""
    trace = _uniform_trace()

    def sweep():
        achieved = {}
        for window in (1, 4, 8):
            simulator = SystemSimulator(
                configuration_by_name("XBar/OCM"), window_depth=window
            )
            achieved[window] = simulator.run(trace).achieved_bandwidth_bytes_per_s
        return achieved

    achieved = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert achieved[4] > 1.3 * achieved[1]
    assert achieved[8] >= achieved[4]


def test_ablation_token_ring_round_trip(benchmark):
    """A slower arbitration ring raises unloaded latency, not saturated bandwidth."""
    trace = _uniform_trace(3000)

    def run_with_round_trip(cycles):
        network = OpticalCrossbar(ring_round_trip_cycles=cycles)
        simulator = SystemSimulator(
            configuration_by_name("XBar/OCM"), network=network, window_depth=8
        )
        return simulator.run(trace)

    fast = run_with_round_trip(8.0)
    slow = benchmark.pedantic(run_with_round_trip, args=(64.0,), rounds=1, iterations=1)
    assert slow.average_latency_s > fast.average_latency_s
    # Bandwidth degrades by far less than the 8x arbitration slowdown.
    assert slow.achieved_bandwidth_bytes_per_s > 0.5 * fast.achieved_bandwidth_bytes_per_s


def test_ablation_crossbar_channel_width(benchmark):
    """Halving channel bandwidth costs bandwidth-hungry workloads throughput."""
    trace = _uniform_trace()

    def run_with_channel_bandwidth(bytes_per_s):
        network = OpticalCrossbar(channel_bandwidth_bytes_per_s=bytes_per_s)
        simulator = SystemSimulator(
            configuration_by_name("XBar/OCM"), network=network, window_depth=8
        )
        return simulator.run(trace).achieved_bandwidth_bytes_per_s

    full = run_with_channel_bandwidth(320e9)
    narrow = benchmark.pedantic(run_with_channel_bandwidth, args=(80e9,), rounds=1, iterations=1)
    assert narrow < full

    # Even the narrow crossbar still beats the electrical baseline.
    baseline = SystemSimulator(
        configuration_by_name("LMesh/ECM"), window_depth=8
    ).run(trace)
    assert narrow > baseline.achieved_bandwidth_bytes_per_s


def test_ablation_memory_latency(benchmark):
    """Doubling DRAM latency hurts, but bandwidth remains the differentiator."""
    trace = _uniform_trace()

    def run_with_memory_latency(scale):
        from repro.memory.dram import DramTimings
        from repro.memory.system import MemorySystem
        from repro.memory.channel import OpticalMemoryChannel

        memory = MemorySystem(
            name="OCM-slow",
            channel_factory=OpticalMemoryChannel,
            dram_timings=DramTimings(
                access_latency_s=20e-9 * scale, cycle_time_s=20e-9 * scale
            ),
        )
        simulator = SystemSimulator(
            configuration_by_name("XBar/OCM"), memory=memory, window_depth=8
        )
        return simulator.run(trace)

    nominal = run_with_memory_latency(1.0)
    slow = benchmark.pedantic(run_with_memory_latency, args=(2.0,), rounds=1, iterations=1)
    assert slow.average_latency_s > nominal.average_latency_s
    assert slow.execution_time_s > nominal.execution_time_s

    baseline = SystemSimulator(
        configuration_by_name("LMesh/ECM"), window_depth=8
    ).run(trace)
    assert slow.execution_time_s < baseline.execution_time_s
