"""Figure 11 -- On-chip Network Power.

Regenerates the on-chip network power per workload and configuration.  The
paper's claims checked here:

* the photonic crossbar draws an essentially constant ~26 W (laser, trimming
  and analog power do not scale down with traffic), so for cache-resident
  applications it can actually dissipate more than the meshes;
* for memory-intensive applications the electrical meshes' dynamic power
  (196 pJ per message-hop) grows with traffic and overtakes the crossbar,
  even while delivering less performance;
* mesh power tracks delivered bandwidth times average hop count.
"""


from repro.harness.figures import figure11_power, figure9_bandwidth, render_figure

LOW_BANDWIDTH = ["Barnes", "Radiosity", "Volrend", "Water-Sp"]
HIGH_BANDWIDTH = ["Uniform", "FFT", "Radix", "Ocean"]


def test_figure11_network_power(benchmark, evaluation_results, workload_order):
    powers = benchmark(figure11_power, evaluation_results, workload_order)
    bandwidths = figure9_bandwidth(evaluation_results, workload_order)
    print()
    print(render_figure(powers, title="Figure 11: On-chip Network Power", unit=" W"))

    # The crossbar's power is dominated by its constant 26 W.
    for workload, by_config in powers.items():
        assert 26.0 <= by_config["XBar/OCM"] < 40.0

    # For cache-resident codes the crossbar dissipates more than the meshes.
    for workload in LOW_BANDWIDTH:
        assert powers[workload]["XBar/OCM"] > powers[workload]["HMesh/OCM"]

    # For memory-intensive codes the HMesh/OCM mesh burns more power than the
    # crossbar while achieving less bandwidth.
    for workload in HIGH_BANDWIDTH:
        assert powers[workload]["HMesh/OCM"] > powers[workload]["XBar/OCM"]
        assert (
            bandwidths[workload]["HMesh/OCM"] < bandwidths[workload]["XBar/OCM"]
        )

    # Mesh dynamic power grows with delivered traffic.
    for config in ("LMesh/ECM", "HMesh/OCM"):
        busy = max(powers[w][config] for w in HIGH_BANDWIDTH)
        idle = min(powers[w][config] for w in LOW_BANDWIDTH)
        assert busy > 3 * idle
