"""Figure 9 -- Achieved Bandwidth.

Regenerates the achieved main-memory bandwidth per workload and
configuration.  Shape claims checked against the paper:

* ECM-based systems never exceed their ~0.96 TB/s read-bandwidth ceiling by a
  meaningful margin;
* the low-bandwidth SPLASH-2 group demands (and achieves) well under the ECM
  limit on every configuration, which is why it shows no speedup in Figure 8;
* the bandwidth-hungry group achieves multiple TB/s only on XBar/OCM;
* Hot Spot is throttled by a single memory controller on every configuration.
"""


from repro.harness.figures import figure9_bandwidth, render_figure

LOW_BANDWIDTH = ["Barnes", "Radiosity", "Volrend", "Water-Sp"]
HIGH_BANDWIDTH = ["Uniform", "Tornado", "Transpose", "FFT", "Radix", "Ocean"]

#: ECM aggregate read bandwidth (Table 4) plus write headroom and tolerance.
ECM_CEILING_TBPS = 1.3


def test_figure9_achieved_bandwidth(benchmark, evaluation_results, workload_order):
    bandwidths = benchmark(figure9_bandwidth, evaluation_results, workload_order)
    print()
    print(render_figure(bandwidths, title="Figure 9: Achieved Bandwidth", unit=" TB/s"))

    for workload, by_config in bandwidths.items():
        # ECM systems are capped by the electrical memory interconnect.
        assert by_config["LMesh/ECM"] < ECM_CEILING_TBPS
        assert by_config["HMesh/ECM"] < ECM_CEILING_TBPS

    for workload in LOW_BANDWIDTH:
        for value in bandwidths[workload].values():
            assert value < 0.6, f"{workload} should be a low-bandwidth application"

    for workload in HIGH_BANDWIDTH:
        corona = bandwidths[workload]["XBar/OCM"]
        baseline = bandwidths[workload]["LMesh/ECM"]
        assert corona > 1.5, f"{workload}: Corona should exceed 1.5 TB/s"
        assert corona > 2 * baseline

    # Hot Spot: all traffic through one controller keeps bandwidth far below
    # the aggregate capability of any configuration.
    for value in bandwidths["Hot Spot"].values():
        assert value < 0.25

    # The crossbar never does worse than the high-performance mesh on OCM.
    for workload, by_config in bandwidths.items():
        assert by_config["XBar/OCM"] >= 0.8 * by_config["HMesh/OCM"]
