"""Micro-benchmarks of the trace-driven replay engine.

Measures the wall-clock cost of the end-to-end system simulation (events per
second) on the Corona configuration and on the electrical baseline, which is
the quantity that determines how far the paper's 1 M / 240 M-request traces
must be scaled down for a pure-Python replay.
"""

from repro.core.configs import configuration_by_name
from repro.core.system import SystemSimulator
from repro.trace.synthetic import uniform_workload


def _run(configuration_name, trace, window):
    simulator = SystemSimulator(
        configuration_by_name(configuration_name), window_depth=window
    )
    return simulator.run(trace)


def test_replay_rate_corona(benchmark):
    workload = uniform_workload()
    trace = workload.generate(seed=1, num_requests=5000)
    result = benchmark.pedantic(_run, args=("XBar/OCM", trace, workload.window), rounds=2, iterations=1)
    assert result.num_requests == 5000


def test_replay_rate_electrical_baseline(benchmark):
    workload = uniform_workload()
    trace = workload.generate(seed=1, num_requests=5000)
    result = benchmark.pedantic(_run, args=("LMesh/ECM", trace, workload.window), rounds=2, iterations=1)
    assert result.num_requests == 5000


def test_replay_rate_packed_trace(benchmark):
    """Replay straight off the packed columns (the production path)."""
    workload = uniform_workload()
    packed = workload.generate_packed(seed=1, num_requests=5000)
    result = benchmark.pedantic(
        _run, args=("XBar/OCM", packed, workload.window), rounds=2, iterations=1
    )
    assert result.num_requests == 5000


def test_packed_generation_rate(benchmark):
    """Chunk-wise packed generation (no record objects), 20k requests."""
    workload = uniform_workload()
    packed = benchmark.pedantic(
        workload.generate_packed,
        kwargs=dict(seed=2, num_requests=20_000),
        rounds=2,
        iterations=1,
    )
    assert packed.total_requests == 20_000


def test_trace_plus_replay_end_to_end(benchmark):
    """Generation plus replay, the unit of work the harness repeats 85 times."""

    def end_to_end():
        workload = uniform_workload()
        trace = workload.generate_packed(seed=3, num_requests=3000)
        return _run("HMesh/OCM", trace, workload.window)

    result = benchmark.pedantic(end_to_end, rounds=2, iterations=1)
    assert result.achieved_bandwidth_bytes_per_s > 0
