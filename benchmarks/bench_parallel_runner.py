"""Benchmarks of the parallel evaluation harness.

Measures the wall-clock of a reduced (configuration x workload) matrix run
serially and through the :class:`~repro.harness.parallel.
ParallelEvaluationRunner`, plus the trace-shipping overhead of the pool path
(packed traces shipped once per workload through shared memory; workers
receive a ~100-byte handle per pair instead of a pickled record-object
trace).  The reduced matrix keeps the suite fast while still exercising
trace reuse, worker dispatch and result collection;
`scripts/bench_regression.py` runs the same comparison and records it --
including the ``matrix_dispatch_seconds`` overhead metric -- in
``BENCH_replay.json``.

On a multicore host the parallel runs complete in roughly ``serial /
min(jobs, cores)``; on a single-core host the pool path measures the
multiprocessing overhead floor.
"""

from __future__ import annotations

from repro.harness.experiments import EvaluationMatrix, ExperimentScale
from repro.harness.parallel import ParallelEvaluationRunner, available_cpus
from repro.harness.runner import EvaluationRunner

#: Small but non-trivial: 2 configurations x the 4 synthetic workloads.
_BENCH_SCALE = ExperimentScale(synthetic_requests=3_000)
_BENCH_CONFIGURATIONS = ("LMesh/ECM", "XBar/OCM")


def _bench_matrix() -> EvaluationMatrix:
    return EvaluationMatrix(
        scale=_BENCH_SCALE,
        configuration_names=list(_BENCH_CONFIGURATIONS),
        include_splash=False,
    )


def _run_serial():
    runner = EvaluationRunner(matrix=_bench_matrix())
    return runner.run()


def _run_parallel(jobs: int):
    runner = ParallelEvaluationRunner(matrix=_bench_matrix(), jobs=jobs)
    return runner.run()


def test_matrix_serial(benchmark):
    results = benchmark.pedantic(_run_serial, rounds=2, iterations=1)
    assert len(results) == len(_bench_matrix().workloads()) * len(
        _BENCH_CONFIGURATIONS
    )


def test_matrix_parallel_all_cores(benchmark):
    jobs = available_cpus()
    results = benchmark.pedantic(_run_parallel, args=(jobs,), rounds=2, iterations=1)
    assert len(results) == len(_bench_matrix().workloads()) * len(
        _BENCH_CONFIGURATIONS
    )


def test_matrix_parallel_matches_serial(benchmark):
    """The parallel runner must be a drop-in: identical results, any jobs."""
    serial = _run_serial()

    def parallel():
        return _run_parallel(2)

    parallel_results = benchmark.pedantic(parallel, rounds=1, iterations=1)
    assert parallel_results == serial
