"""Table 2 -- Optical Resource Inventory.

Derives the waveguide and ring-resonator counts per photonic subsystem from
the architectural parameters and checks them against the paper's table
(Memory 128 / 16 K, Crossbar 256 / 1024 K, Broadcast 1 / 8 K, Arbitration
2 / 8 K, Clock 1 / 64, total 388 / ~1056 K).
"""

from repro.harness.tables import format_table, table2_optical_inventory
from repro.photonics.inventory import corona_inventory

#: (waveguides, ring resonators) per subsystem in the paper's Table 2.
PAPER_TABLE2 = {
    "Memory": (128, 16 * 1024),
    "Crossbar": (256, 1024 * 1024),
    "Broadcast": (1, 8 * 1024),
    "Arbitration": (2, 8 * 1024),
    "Clock": (1, 64),
}


def test_table2_matches_paper(benchmark):
    inventory = benchmark(corona_inventory)
    by_name = inventory.by_name()
    for subsystem, (waveguides, rings) in PAPER_TABLE2.items():
        assert by_name[subsystem].waveguides == waveguides
        assert by_name[subsystem].ring_resonators == rings
    assert inventory.total_waveguides == 388
    # The paper rounds the total to "~1056 K".
    assert abs(inventory.total_ring_resonators - 1056 * 1024) < 32 * 1024
    print()
    print(format_table(
        ["Photonic Subsystem", "Waveguides", "Ring Resonators"],
        table2_optical_inventory(),
        title="Table 2 (reproduced)",
    ))


def test_inventory_scaling_ablation(benchmark):
    """Ablation: how the ring budget scales with cluster count.

    The crossbar's ring count grows quadratically with the number of clusters,
    which is the main scalability pressure on the design (DESIGN.md).
    """
    def sweep():
        return {
            clusters: corona_inventory(clusters=clusters).total_ring_resonators
            for clusters in (16, 32, 64, 128)
        }

    rings = benchmark(sweep)
    assert rings[128] > 3.5 * rings[64] > 3.5 * 3.5 * rings[32] / 4
    assert rings[64] == 1_081_408
