"""Figure 8 -- Normalized Speedup.

Replays the full evaluation matrix (shared session fixture, scaled-down
traces) and regenerates the paper's speedup figure: the execution time of
every workload on every configuration, normalized to LMesh/ECM.  Absolute
bar heights depend on the trace scale and on the statistical workload models,
so the assertions check the paper's *shape* claims rather than exact values:

* the Corona configuration (XBar/OCM) is the fastest configuration on every
  bandwidth-hungry workload;
* low-miss-rate SPLASH-2 codes (Barnes, Radiosity, Volrend, Water-Sp) are
  insensitive to the interconnect;
* Hot Spot gains essentially nothing from the crossbar over HMesh/OCM;
* LU and Raytrace get most of their speedup from OCM alone;
* the OCM-over-ECM and crossbar-over-mesh geometric means are well above 1.
"""

import pytest

from repro.harness.figures import (
    PAPER_SPEEDUP_SUMMARY,
    figure8_speedup,
    render_figure,
    speedup_summary,
)

LOW_BANDWIDTH = ["Barnes", "Radiosity", "Volrend", "Water-Sp"]
HIGH_BANDWIDTH = ["Uniform", "Tornado", "Transpose", "FFT", "Radix", "Ocean", "Cholesky"]


def test_figure8_normalized_speedup(benchmark, evaluation_results, workload_order,
                                    synthetic_names, splash_names):
    speedups = benchmark(figure8_speedup, evaluation_results, "LMesh/ECM", workload_order)
    print()
    print(render_figure(speedups, title="Figure 8: Normalized Speedup", unit="x"))

    # Baseline is 1.0 by construction.
    for workload, by_config in speedups.items():
        assert by_config["LMesh/ECM"] == pytest.approx(1.0)

    # Corona wins on every bandwidth-hungry workload.
    for workload in HIGH_BANDWIDTH:
        corona = speedups[workload]["XBar/OCM"]
        assert corona > 1.8, f"{workload}: expected a clear Corona win, got {corona:.2f}"
        assert corona == pytest.approx(
            max(speedups[workload].values()), rel=0.25
        )

    # Cache-resident applications are insensitive to the interconnect.
    for workload in LOW_BANDWIDTH:
        for value in speedups[workload].values():
            assert value == pytest.approx(1.0, abs=0.2)

    # Hot Spot: the crossbar adds little over HMesh/OCM (memory is the limit).
    hot_spot = speedups["Hot Spot"]
    assert hot_spot["XBar/OCM"] == pytest.approx(hot_spot["HMesh/OCM"], rel=0.25)

    # LU and Raytrace: OCM provides the bulk of the gain.
    for workload in ("LU", "Raytrace"):
        ocm_gain = speedups[workload]["HMesh/OCM"]
        extra_from_crossbar = speedups[workload]["XBar/OCM"] / ocm_gain
        assert ocm_gain > 1.5
        assert extra_from_crossbar < 1.5

    summary = speedup_summary(evaluation_results, synthetic_names, splash_names)
    print("Geometric-mean summary (measured vs paper):")
    for key, value in summary.items():
        paper = PAPER_SPEEDUP_SUMMARY.get(key)
        suffix = f"(paper {paper:.2f})" if paper else ""
        print(f"  {key:<34} {value:6.2f} {suffix}")

    # The qualitative claims of Section 5: both steps help, multiplicatively.
    assert summary["synthetic_ocm_over_ecm"] > 1.5
    assert summary["synthetic_xbar_over_hmesh_ocm"] > 1.5
    assert summary["splash_ocm_over_ecm"] > 1.3
    assert summary["splash_xbar_over_hmesh_ocm"] > 1.0
    # Abstract: 2-6x on memory-intensive workloads.
    assert summary["corona_over_baseline_splash"] > 1.3
    assert summary["corona_over_baseline_synthetic"] > 2.0
