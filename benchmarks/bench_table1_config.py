"""Table 1 -- Resource Configuration.

Regenerates the paper's Table 1 from :class:`repro.core.config.CoronaConfig`
and checks every row against the published values.
"""

from repro.core.config import CORONA_DEFAULT
from repro.harness.tables import format_table, table1_resource_configuration

#: The paper's Table 1, verbatim.
PAPER_TABLE1 = {
    "Number of clusters": "64",
    "L2 cache size/assoc": "4 MB/16-way",
    "L2 cache line size": "64 B",
    "L2 coherence": "MOESI",
    "Memory controllers": "1",
    "Cores": "4",
    "L1 ICache size/assoc": "16 KB/4-way",
    "L1 DCache size/assoc": "32 KB/4-way",
    "L1 I & D cache line size": "64 B",
    "Frequency": "5 GHz",
    "Threads": "4",
    "Issue policy": "In-order",
    "Issue width": "2",
    "64 b floating point SIMD width": "4",
    "Fused floating point operations": "Multiply-Add",
}


def test_table1_matches_paper(benchmark):
    rows = benchmark(table1_resource_configuration, CORONA_DEFAULT)
    assert dict(rows) == PAPER_TABLE1
    print()
    print(format_table(["Resource", "Value"], rows, title="Table 1 (reproduced)"))


def test_table1_headline_derivations(benchmark):
    summary = benchmark(CORONA_DEFAULT.summary)
    # The abstract's headline numbers follow from Table 1.
    assert round(summary["peak_teraflops"], 1) == 10.2
    assert summary["crossbar_bandwidth_tbps"] == 20.48
    assert summary["memory_bandwidth_tbps"] == 10.24
    assert summary["threads"] == 1024
