"""Table 4 -- Optical vs Electrical Memory Interconnects.

Derives the OCM and ECM columns from the channel models and checks the
published numbers: 64 controllers each, 256 fibers vs 1536 pins, 128 b half
duplex vs 12 b full duplex at 10 Gb/s, 10.24 vs 0.96 TB/s, 20 ns latency, and
the ~0.078 vs ~2 mW/Gb/s interconnect power that yields ~6.4 W vs >160 W for a
10 TB/s-class memory system.
"""

import pytest

from repro.harness.tables import format_table, table4_memory_interconnects
from repro.memory.ecm import ElectricallyConnectedMemory, ecm_interconnect_summary
from repro.memory.ocm import OpticallyConnectedMemory, ocm_interconnect_summary
from repro.power.electrical import electrical_memory_interconnect_power_w


def test_table4_matches_paper(benchmark):
    rows = benchmark(table4_memory_interconnects)
    by_key = {row[0]: (row[1], row[2]) for row in rows}
    assert by_key["Memory controllers"] == (64, 64)
    assert by_key["External connectivity"] == ("256 fibers", "1536 pins")
    assert by_key["Channel width"] == ("128 b half duplex", "12 b full duplex")
    assert by_key["Channel data rate"] == ("10 Gb/s", "10 Gb/s")
    assert float(by_key["Memory bandwidth (TB/s)"][0]) == pytest.approx(10.24)
    assert float(by_key["Memory bandwidth (TB/s)"][1]) == pytest.approx(0.96)
    assert float(by_key["Memory latency (ns)"][0]) == 20.0
    print()
    print(format_table(["Resource", "OCM", "ECM"], rows, title="Table 4 (reproduced)"))


def test_memory_power_claims(benchmark):
    summaries = benchmark(
        lambda: (ocm_interconnect_summary(), ecm_interconnect_summary())
    )
    ocm, _ecm = summaries
    # Section 3.3: ~6.4 W for the optical memory interconnect; >160 W if the
    # same bandwidth were delivered electrically.
    assert ocm["Interconnect power (W)"] == pytest.approx(6.4, rel=0.05)
    assert electrical_memory_interconnect_power_w(10.24e12) > 160.0


def test_per_controller_bandwidth_gap(benchmark):
    """Micro-benchmark: sustained single-controller bandwidth, OCM vs ECM."""

    def saturate(system_factory):
        system = system_factory(num_controllers=1)
        controller = system.controller(0)
        finish = 0.0
        for i in range(600):
            result = controller.access(
                now=0.0, size_bytes=64, is_write=False, address=i * 64
            )
            finish = max(finish, result.completion_time)
        return controller.bytes_transferred / finish

    ocm_bandwidth = saturate(OpticallyConnectedMemory)
    ecm_bandwidth = benchmark.pedantic(saturate, args=(ElectricallyConnectedMemory,), rounds=2, iterations=1)
    # Table 4's 160 vs 15 GB/s per controller, within DRAM-bank limits.
    assert ecm_bandwidth == pytest.approx(15e9, rel=0.15)
    assert ocm_bandwidth > 5 * ecm_bandwidth
