"""Shared fixtures for the paper-reproduction benchmarks.

The figure benchmarks (Figures 8-11) all consume the same evaluation matrix,
so it is run exactly once per benchmark session at the quick scale and shared
through a session-scoped fixture.  Table benchmarks and micro-benchmarks do
not need it and stay fast.
"""

from __future__ import annotations

import pytest

from repro.harness.experiments import quick_matrix
from repro.harness.runner import EvaluationRunner


@pytest.fixture(scope="session")
def evaluation_matrix():
    """The 5-configuration x 15-workload matrix at the quick scale."""
    return quick_matrix()


@pytest.fixture(scope="session")
def evaluation_results(evaluation_matrix):
    """Results of running the full matrix once (shared by all figure benches)."""
    runner = EvaluationRunner(matrix=evaluation_matrix)
    runner.run()
    return runner.results


@pytest.fixture(scope="session")
def workload_order(evaluation_matrix):
    return evaluation_matrix.workload_names()


@pytest.fixture(scope="session")
def synthetic_names(evaluation_matrix):
    return evaluation_matrix.synthetic_names()


@pytest.fixture(scope="session")
def splash_names(evaluation_matrix):
    return evaluation_matrix.splash_names()
