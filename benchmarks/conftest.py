"""Shared fixtures for the paper-reproduction benchmarks.

The figure benchmarks (Figures 8-11) all consume the same evaluation matrix,
so it is run exactly once per benchmark session at the quick scale and shared
through a session-scoped fixture.  The matrix is fanned across worker
processes (``REPRO_BENCH_JOBS`` processes; default: every available CPU),
which divides its wall-clock by the core count while producing results
bit-identical to the serial runner.  Table benchmarks and micro-benchmarks do
not need it and stay fast.
"""

from __future__ import annotations

import os

import pytest

from repro.harness.experiments import quick_matrix
from repro.harness.parallel import ParallelEvaluationRunner


@pytest.fixture(scope="session")
def evaluation_matrix():
    """The 5-configuration x 15-workload matrix at the quick scale."""
    return quick_matrix()


@pytest.fixture(scope="session")
def evaluation_results(evaluation_matrix):
    """Results of running the full matrix once (shared by all figure benches).

    ``REPRO_BENCH_JOBS`` overrides the worker count (0 = all CPUs, 1 =
    serial in-process); either way the results match the serial runner
    bit for bit.
    """
    jobs = int(os.environ.get("REPRO_BENCH_JOBS", "0"))
    runner = ParallelEvaluationRunner(matrix=evaluation_matrix, jobs=jobs)
    runner.run()
    return runner.results


@pytest.fixture(scope="session")
def workload_order(evaluation_matrix):
    return evaluation_matrix.workload_names()


@pytest.fixture(scope="session")
def synthetic_names(evaluation_matrix):
    return evaluation_matrix.synthetic_names()


@pytest.fixture(scope="session")
def splash_names(evaluation_matrix):
    return evaluation_matrix.splash_names()
