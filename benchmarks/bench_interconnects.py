"""Micro-benchmarks of the interconnect models themselves.

These benchmark the simulation substrate (transfers per second of wall-clock
time) and double as regression checks on the modelled latencies and
bandwidths of the crossbar and the meshes under light and heavy load.
"""


from repro.network.arbitration import TokenRingArbiter
from repro.network.crossbar import OpticalCrossbar
from repro.network.mesh import high_performance_mesh, low_performance_mesh
from repro.network.message import Message, MessageType


def _line(src, dst):
    return Message(src=src, dst=dst, message_type=MessageType.READ_RESPONSE)


def test_crossbar_transfer_rate(benchmark):
    """Crossbar message transfers per second of host time."""
    crossbar = OpticalCrossbar()

    def send_batch():
        now = 0.0
        for i in range(1000):
            result = crossbar.transfer(_line(i % 64, (i * 7 + 1) % 64), now)
            now += 0.1e-9
        return result

    result = benchmark(send_batch)
    assert result.arrival_time > 0


def test_hmesh_transfer_rate(benchmark):
    """Mesh message transfers per second of host time (dimension-order)."""
    mesh = high_performance_mesh()

    def send_batch():
        now = 0.0
        for i in range(1000):
            result = mesh.transfer(_line(i % 64, (i * 7 + 1) % 64), now)
            now += 0.1e-9
        return result

    result = benchmark(send_batch)
    assert result.hops > 0


def test_token_arbitration_rate(benchmark):
    """Token acquire/release pairs per second of host time."""
    arbiter = TokenRingArbiter()

    def arbitrate():
        now = 0.0
        for i in range(2000):
            channel = i % 64
            cluster = (i * 13) % 64
            grant = arbiter.acquire(channel, cluster, now)
            arbiter.release(channel, cluster, grant + 0.2e-9)
            now += 0.05e-9
        return arbiter.average_wait_s()

    wait = benchmark(arbitrate)
    assert wait >= 0.0


def test_unloaded_latency_gap_crossbar_vs_mesh(benchmark):
    """The crossbar's unloaded latency beats the mesh for distant clusters."""

    def measure():
        crossbar = OpticalCrossbar()
        mesh = high_performance_mesh()
        xbar_latency = crossbar.transfer(_line(0, 63), 0.0).network_latency
        mesh_latency = mesh.transfer(_line(0, 63), 0.0).network_latency
        return xbar_latency, mesh_latency

    xbar_latency, mesh_latency = benchmark(measure)
    # 14 mesh hops at 5 clocks each dwarf the crossbar's <= 8-clock flight.
    assert mesh_latency > 4 * xbar_latency


def test_saturated_channel_bandwidth(benchmark):
    """A single crossbar channel under contention sustains most of 320 GB/s."""

    def saturate():
        crossbar = OpticalCrossbar()
        last = 0.0
        count = 500
        for i in range(count):
            last = crossbar.transfer(_line(1 + i % 63, 0), 0.0).arrival_time
        return count * 72 / last

    achieved = benchmark(saturate)
    assert achieved > 0.5 * 320e9


def test_mesh_bisection_limits_uniform_traffic(benchmark):
    """Uniform traffic across the LMesh saturates near its bisection bandwidth."""

    def saturate():
        mesh = low_performance_mesh()
        import random

        rng = random.Random(1)
        last = 0.0
        count = 2000
        for _ in range(count):
            src, dst = rng.randrange(64), rng.randrange(64)
            last = max(last, mesh.transfer(_line(src, dst), 0.0).arrival_time)
        return count * 72 / last

    achieved = benchmark(saturate)
    # Uniform random traffic cannot exceed ~2x the bisection bandwidth and
    # should reach a significant fraction of it.
    assert 0.2 * 0.64e12 < achieved < 2.5 * 0.64e12
