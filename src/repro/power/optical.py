"""Photonic interconnect power models.

The paper's optical power figures:

* the complete on-stack photonic subsystem (laser power delivered to the
  photonic die, ring trimming/heating and the analog drive circuitry)
  dissipates about **39 W**;
* of that, the crossbar's share charged against the on-chip network budget is
  a **26 W continuous** draw (Section 4), constant because laser and trimming
  power do not scale down with traffic;
* optically connected memory signalling costs about **0.078 mW/Gb/s**, so the
  10 TB/s OCM interconnect needs only **~6.4 W**.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Continuous crossbar power assumed by the paper's evaluation.
CROSSBAR_CONTINUOUS_POWER_W = 26.0

#: Total photonic interconnect power (laser + trimming + analog layer).
PHOTONIC_SUBSYSTEM_POWER_W = 39.0

#: Optical off-stack signalling power per Gb/s.
OPTICAL_SIGNALLING_W_PER_GBPS = 0.078e-3


@dataclass(frozen=True)
class PhotonicPowerBudget:
    """Breakdown of the 39 W photonic subsystem power.

    The split between laser, trimming and analog electronics is not given
    explicitly in the paper; the defaults below apportion the total in the
    proportions implied by its component discussion and can be overridden for
    sensitivity studies.
    """

    laser_power_w: float = 13.0
    ring_trimming_power_w: float = 10.0
    analog_circuitry_power_w: float = 16.0

    @property
    def total_w(self) -> float:
        return (
            self.laser_power_w
            + self.ring_trimming_power_w
            + self.analog_circuitry_power_w
        )

    def crossbar_share_w(self, fraction: float = CROSSBAR_CONTINUOUS_POWER_W / PHOTONIC_SUBSYSTEM_POWER_W) -> float:
        """The crossbar's share of the photonic budget (26 W of 39 W)."""
        if not 0 <= fraction <= 1:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        return self.total_w * fraction


@dataclass(frozen=True)
class OpticalMemoryPower:
    """Off-stack optical signalling power at a given data rate."""

    power_w_per_gbps: float = OPTICAL_SIGNALLING_W_PER_GBPS

    def power_w(self, data_rate_gbps: float) -> float:
        if data_rate_gbps < 0:
            raise ValueError("data rate must be non-negative")
        return self.power_w_per_gbps * data_rate_gbps


def optical_memory_interconnect_power_w(
    memory_bandwidth_bytes_per_s: float,
    power_w_per_gbps: float = OPTICAL_SIGNALLING_W_PER_GBPS,
) -> float:
    """Interconnect power for the OCM memory system (~6.4 W at 10.24 TB/s)."""
    if memory_bandwidth_bytes_per_s < 0:
        raise ValueError("bandwidth must be non-negative")
    gbps = memory_bandwidth_bytes_per_s * 8.0 / 1e9
    return OpticalMemoryPower(power_w_per_gbps).power_w(gbps)
