"""Chip-level power and area roll-up (Section 3.1 of the Corona paper).

The paper quotes, for the full 256-core design at 16 nm:

* total processor + cache + memory-controller + hub power between **82 W**
  (Silverthorne-based estimate) and **155 W** (Penryn-based estimate);
* processor/L1 die area between **423 mm^2** (Penryn-based) and **491 mm^2**
  (Silverthorne-based);
* 39 W for the photonic subsystem and ~6.4 W for the OCM links.

``corona_chip_power`` reassembles those numbers from the per-component models
so the whole budget is auditable and re-parameterizable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.config import CoronaConfig, CORONA_DEFAULT
from repro.cores.core import CorePowerAreaModel
from repro.power.cacti import CacheGeometry, cache_power_area
from repro.power.optical import (
    PHOTONIC_SUBSYSTEM_POWER_W,
    optical_memory_interconnect_power_w,
)


@dataclass(frozen=True)
class ChipPowerReport:
    """Breakdown of chip power (watts) and area (mm^2) for one anchor design."""

    anchor: str
    core_power_w: float
    l1_power_w: float
    l2_power_w: float
    directory_power_w: float
    hub_mc_power_w: float
    photonic_power_w: float
    memory_interconnect_power_w: float
    core_die_area_mm2: float

    @property
    def processor_power_w(self) -> float:
        """Processor + caches + MC/hub power (the paper's 82-155 W range)."""
        return (
            self.core_power_w
            + self.l1_power_w
            + self.l2_power_w
            + self.directory_power_w
            + self.hub_mc_power_w
        )

    @property
    def total_power_w(self) -> float:
        return (
            self.processor_power_w
            + self.photonic_power_w
            + self.memory_interconnect_power_w
        )

    def as_dict(self) -> Dict[str, float]:
        return {
            "anchor": self.anchor,
            "core_power_w": self.core_power_w,
            "l1_power_w": self.l1_power_w,
            "l2_power_w": self.l2_power_w,
            "directory_power_w": self.directory_power_w,
            "hub_mc_power_w": self.hub_mc_power_w,
            "processor_power_w": self.processor_power_w,
            "photonic_power_w": self.photonic_power_w,
            "memory_interconnect_power_w": self.memory_interconnect_power_w,
            "total_power_w": self.total_power_w,
            "core_die_area_mm2": self.core_die_area_mm2,
        }


#: Fraction of peak access rate assumed for cache dynamic power sizing.
_CACHE_ACTIVITY_FACTOR = 0.10
#: Hub + memory-controller power per cluster, scaled from the paper's
#: synthesized 65 nm designs (watts).
_HUB_MC_POWER_PER_CLUSTER_W = 0.35


def corona_chip_power(
    config: CoronaConfig = CORONA_DEFAULT,
    anchor: str = "penryn",
    model: CorePowerAreaModel = CorePowerAreaModel(),
) -> ChipPowerReport:
    """Roll up chip power/area for the ``penryn`` or ``silverthorne`` anchor."""
    anchor = anchor.lower()
    if anchor not in ("penryn", "silverthorne"):
        raise ValueError(f"anchor must be 'penryn' or 'silverthorne', got {anchor!r}")

    if anchor == "penryn":
        core_power = model.penryn_based_core_power_w()
        core_area = model.penryn_based_core_area_mm2()
        cell_type = "6T"
    else:
        core_power = model.silverthorne_based_core_power_w()
        core_area = model.silverthorne_based_core_area_mm2()
        cell_type = "8T"

    num_cores = config.num_cores
    num_clusters = config.num_clusters
    clock = config.clock_hz

    l1_geometry = CacheGeometry(
        capacity_bytes=config.core.l1_icache_bytes + config.core.l1_dcache_bytes,
        associativity=config.core.l1_dcache_assoc,
        technology_nm=16.0,
        cell_type=cell_type,
    )
    l1_estimate = cache_power_area(l1_geometry)
    l1_access_rate = clock * _CACHE_ACTIVITY_FACTOR
    l1_power = num_cores * l1_estimate.total_power_w(
        reads_per_s=l1_access_rate * 0.7, writes_per_s=l1_access_rate * 0.3
    )

    l2_geometry = CacheGeometry(
        capacity_bytes=config.cluster.l2_cache_bytes,
        associativity=config.cluster.l2_associativity,
        technology_nm=16.0,
        banks=4,
    )
    l2_estimate = cache_power_area(l2_geometry)
    l2_access_rate = clock * 0.02
    l2_power = num_clusters * l2_estimate.total_power_w(
        reads_per_s=l2_access_rate * 0.7, writes_per_s=l2_access_rate * 0.3
    )

    directory_geometry = CacheGeometry(
        capacity_bytes=config.cluster.l2_cache_bytes // 16,
        associativity=config.cluster.l2_associativity,
        technology_nm=16.0,
    )
    directory_estimate = cache_power_area(directory_geometry)
    directory_power = num_clusters * directory_estimate.total_power_w(
        reads_per_s=l2_access_rate, writes_per_s=l2_access_rate * 0.5
    )

    hub_mc_power = num_clusters * _HUB_MC_POWER_PER_CLUSTER_W

    l1_area = l1_estimate.area_mm2 * num_cores
    core_die_area = num_cores * core_area + l1_area

    return ChipPowerReport(
        anchor=anchor,
        core_power_w=num_cores * core_power,
        l1_power_w=l1_power,
        l2_power_w=l2_power,
        directory_power_w=directory_power,
        hub_mc_power_w=hub_mc_power,
        photonic_power_w=PHOTONIC_SUBSYSTEM_POWER_W,
        memory_interconnect_power_w=optical_memory_interconnect_power_w(
            config.memory_total_bandwidth_bytes_per_s
        ),
        core_die_area_mm2=core_die_area,
    )
