"""A simplified CACTI-style cache power and area model.

The paper used CACTI 5 to estimate directory and L2 cache power.  A faithful
CACTI reimplementation is out of scope; this module provides a transparent
analytical stand-in with the same interface role: given a cache geometry and a
process node, estimate area, leakage and per-access dynamic energy, with
constants chosen so the Corona-sized caches land in the range the paper's
die-area and power budgets imply.  All constants are exposed so ablation
benches can explore their sensitivity.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CacheGeometry:
    """Geometry of one cache instance."""

    capacity_bytes: int
    associativity: int
    line_bytes: int = 64
    banks: int = 1
    technology_nm: float = 16.0
    cell_type: str = "6T"

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        if self.associativity < 1:
            raise ValueError("associativity must be >= 1")
        if self.line_bytes <= 0 or self.capacity_bytes % self.line_bytes:
            raise ValueError("capacity must be a whole number of lines")
        if self.banks < 1:
            raise ValueError("banks must be >= 1")

    @property
    def lines(self) -> int:
        return self.capacity_bytes // self.line_bytes

    @property
    def sets(self) -> int:
        return max(self.lines // self.associativity, 1)


@dataclass(frozen=True)
class CachePowerArea:
    """Estimated power and area of one cache instance."""

    area_mm2: float
    leakage_w: float
    read_energy_j: float
    write_energy_j: float

    def dynamic_power_w(self, reads_per_s: float, writes_per_s: float) -> float:
        if reads_per_s < 0 or writes_per_s < 0:
            raise ValueError("access rates must be non-negative")
        return reads_per_s * self.read_energy_j + writes_per_s * self.write_energy_j

    def total_power_w(self, reads_per_s: float, writes_per_s: float) -> float:
        return self.leakage_w + self.dynamic_power_w(reads_per_s, writes_per_s)


#: SRAM cell area in square microns at a reference 65 nm node.
_CELL_AREA_UM2_65NM = {"6T": 0.52, "8T": 0.69}
#: Array-efficiency factor (peripheral circuitry overhead).
_ARRAY_EFFICIENCY = 0.45
#: Leakage per bit at 16 nm (watts).
_LEAKAGE_PER_BIT_W = 5e-12
#: Dynamic energy per bit read at 16 nm (joules), before wire/associativity
#: overheads.
_READ_ENERGY_PER_BIT_J = 0.18e-12


def cache_power_area(geometry: CacheGeometry) -> CachePowerArea:
    """Estimate power and area for ``geometry``.

    The model scales cell area quadratically with feature size from a 65 nm
    reference, applies an array-efficiency factor for decoders/sense-amps, and
    charges dynamic energy proportional to the bits moved per access plus a
    tag-comparison term that grows with associativity.
    """
    cell_area_um2 = _CELL_AREA_UM2_65NM.get(geometry.cell_type)
    if cell_area_um2 is None:
        raise ValueError(f"unknown cell type {geometry.cell_type!r}")
    scale = (geometry.technology_nm / 65.0) ** 2
    bits = geometry.capacity_bytes * 8
    array_area_um2 = bits * cell_area_um2 * scale / _ARRAY_EFFICIENCY
    area_mm2 = array_area_um2 / 1e6

    leakage_w = bits * _LEAKAGE_PER_BIT_W

    line_bits = geometry.line_bytes * 8
    # Tag energy: compare `associativity` tags of ~40 bits each.
    tag_bits = geometry.associativity * 40
    read_energy_j = (line_bits + tag_bits) * _READ_ENERGY_PER_BIT_J
    write_energy_j = read_energy_j * 1.15
    return CachePowerArea(
        area_mm2=area_mm2,
        leakage_w=leakage_w,
        read_energy_j=read_energy_j,
        write_energy_j=write_energy_j,
    )
