"""Power and area models (Sections 3.1-3.3 and Figure 11 of the Corona paper).

The paper's power story has four pieces, each reproduced here:

* :mod:`repro.power.electrical` -- dynamic energy of the electrical meshes
  (196 pJ per transaction per hop) and electrical off-stack signalling
  (~2 mW/Gb/s), the numbers behind Figure 11 and the ">160 W for an
  electrically connected 10 TB/s memory" claim.
* :mod:`repro.power.optical` -- the photonic interconnect power budget: 26 W
  of continuous crossbar power, 39 W for the full photonic subsystem
  (laser + ring trimming + analog drive), and 0.078 mW/Gb/s optical memory
  links totalling ~6.4 W.
* :mod:`repro.power.cacti` -- a simplified CACTI-style cache/directory energy
  and area model used for the L2/directory estimates.
* :mod:`repro.power.chip` -- the chip-level roll-up reproducing the paper's
  82-155 W processor power range and 423-491 mm^2 die area range.
"""

from repro.power.cacti import CacheGeometry, CachePowerArea, cache_power_area
from repro.power.chip import ChipPowerReport, corona_chip_power
from repro.power.electrical import (
    ElectricalLinkPower,
    MeshPowerModel,
    electrical_memory_interconnect_power_w,
)
from repro.power.optical import (
    OpticalMemoryPower,
    PhotonicPowerBudget,
    optical_memory_interconnect_power_w,
)

__all__ = [
    "MeshPowerModel",
    "ElectricalLinkPower",
    "electrical_memory_interconnect_power_w",
    "PhotonicPowerBudget",
    "OpticalMemoryPower",
    "optical_memory_interconnect_power_w",
    "CacheGeometry",
    "CachePowerArea",
    "cache_power_area",
    "ChipPowerReport",
    "corona_chip_power",
]
