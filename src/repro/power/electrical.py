"""Electrical interconnect power models.

Two electrical power figures drive the paper's comparison:

* the on-chip meshes dissipate **196 pJ per transaction per hop** (an
  aggressive low-swing estimate that ignores leakage), so their power grows
  linearly with traffic and hop count -- this is Figure 11's mesh curves;
* off-stack electrical signalling costs about **2 mW/Gb/s** (Palmer et al.),
  which is why a 10 TB/s electrically connected memory would need over 160 W
  of interconnect power alone.
"""

from __future__ import annotations

from dataclasses import dataclass

#: The paper's per-transaction-per-hop mesh energy (includes router overhead).
MESH_ENERGY_PER_HOP_J = 196e-12

#: Electrical off-stack signalling power per Gb/s (Palmer et al. [25]).
ELECTRICAL_SIGNALLING_W_PER_GBPS = 2e-3


@dataclass(frozen=True)
class MeshPowerModel:
    """Dynamic power of an electrical mesh under a given traffic load."""

    energy_per_hop_j: float = MESH_ENERGY_PER_HOP_J

    def transaction_energy_j(self, hops: int) -> float:
        """Energy of one message traversing ``hops`` router-to-router hops."""
        if hops < 0:
            raise ValueError(f"hop count must be non-negative, got {hops}")
        return hops * self.energy_per_hop_j

    def dynamic_power_w(self, hop_traversals_per_second: float) -> float:
        """Power at a sustained rate of message-hop traversals per second."""
        if hop_traversals_per_second < 0:
            raise ValueError("traversal rate must be non-negative")
        return hop_traversals_per_second * self.energy_per_hop_j

    def power_for_bandwidth_w(
        self,
        delivered_bytes_per_s: float,
        average_hops: float,
        bytes_per_message: float = 72.0,
    ) -> float:
        """Power needed to deliver a payload bandwidth at a mean hop count.

        This is the back-of-envelope form of Figure 11: messages per second
        times hops times 196 pJ.
        """
        if delivered_bytes_per_s < 0 or average_hops < 0:
            raise ValueError("bandwidth and hops must be non-negative")
        if bytes_per_message <= 0:
            raise ValueError("message size must be positive")
        messages_per_s = delivered_bytes_per_s / bytes_per_message
        return messages_per_s * average_hops * self.energy_per_hop_j


@dataclass(frozen=True)
class ElectricalLinkPower:
    """Off-stack electrical signalling power at a given data rate."""

    power_w_per_gbps: float = ELECTRICAL_SIGNALLING_W_PER_GBPS

    def power_w(self, data_rate_gbps: float) -> float:
        if data_rate_gbps < 0:
            raise ValueError("data rate must be non-negative")
        return self.power_w_per_gbps * data_rate_gbps


def electrical_memory_interconnect_power_w(
    memory_bandwidth_bytes_per_s: float,
    power_w_per_gbps: float = ELECTRICAL_SIGNALLING_W_PER_GBPS,
) -> float:
    """Interconnect power for an electrically signalled memory system.

    The paper's example: a 10 TB/s memory system at 2 mW/Gb/s would need over
    160 W just to move the bits.
    """
    if memory_bandwidth_bytes_per_s < 0:
        raise ValueError("bandwidth must be non-negative")
    gbps = memory_bandwidth_bytes_per_s * 8.0 / 1e9
    return ElectricalLinkPower(power_w_per_gbps).power_w(gbps)
