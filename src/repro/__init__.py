"""repro -- a reproduction of "Corona: System Implications of Emerging
Nanophotonic Technology" (Vantrease et al., ISCA 2008).

The package implements the Corona many-core architecture study end to end:

* nanophotonic device and budget models (:mod:`repro.photonics`);
* the optical crossbar, optical token arbitration, broadcast bus and the
  electrical mesh baselines (:mod:`repro.network`);
* optically and electrically connected memory systems (:mod:`repro.memory`);
* cache, coherence, core and cluster substrates (:mod:`repro.cache`,
  :mod:`repro.cores`);
* synthetic and SPLASH-2 workload models (:mod:`repro.trace`);
* power and area models (:mod:`repro.power`);
* the Corona system assembly and trace-driven simulator (:mod:`repro.core`);
* the experiment harness that regenerates the paper's tables and figures
  (:mod:`repro.harness`).

Quickstart::

    from repro import simulate_workload, configuration_by_name, uniform_workload

    result = simulate_workload(
        configuration_by_name("XBar/OCM"),
        uniform_workload(),
        num_requests=20_000,
    )
    print(result.execution_time_s, result.achieved_bandwidth_tbps)
"""

from repro.coherence import CoherenceConfig, SharingProfile
from repro.core.config import CoronaConfig, CORONA_DEFAULT
from repro.core.configs import (
    SystemConfiguration,
    all_configurations,
    configuration_by_name,
    corona_configuration,
)
from repro.core.results import (
    WorkloadResult,
    geometric_mean_speedup,
    metric_table,
    speedup_table,
)
from repro.core.system import SystemSimulator, simulate_workload
from repro.trace.splash2 import splash2_workload, splash2_workloads
from repro.trace.synthetic import (
    bit_reversal_workload,
    hot_spot_workload,
    neighbor_workload,
    synthetic_workloads,
    tornado_workload,
    transpose_workload,
    uniform_workload,
)

__version__ = "1.1.0"

__all__ = [
    "CoronaConfig",
    "CORONA_DEFAULT",
    "SystemConfiguration",
    "all_configurations",
    "configuration_by_name",
    "corona_configuration",
    "SystemSimulator",
    "simulate_workload",
    "WorkloadResult",
    "speedup_table",
    "metric_table",
    "geometric_mean_speedup",
    "CoherenceConfig",
    "SharingProfile",
    "uniform_workload",
    "hot_spot_workload",
    "tornado_workload",
    "transpose_workload",
    "bit_reversal_workload",
    "neighbor_workload",
    "synthetic_workloads",
    "splash2_workload",
    "splash2_workloads",
    "__version__",
]
