"""The Corona design point (Table 1 of the paper) and derived quantities.

``CoronaConfig`` is the single source of truth for the architecture's
parameters: cluster/core counts, cache geometry, clock, interconnect widths
and memory bandwidths.  Every other subsystem takes its numbers from here, so
re-parameterizing the design (say, 32 clusters or a 2.5 GHz clock) propagates
consistently through the interconnect models, the photonic inventory, the
power roll-up and the benchmark harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Dict, List, Mapping, Tuple

from repro.cores.cluster import ClusterParameters
from repro.cores.core import CoreParameters


@dataclass(frozen=True)
class CoronaConfig:
    """Architecture-level configuration of a Corona system."""

    num_clusters: int = 64
    cluster: ClusterParameters = field(default_factory=ClusterParameters)
    core: CoreParameters = field(default_factory=CoreParameters)

    # On-stack interconnect (Section 3.2).
    crossbar_wavelengths_per_waveguide: int = 64
    crossbar_waveguides_per_channel: int = 4
    signalling_rate_bps: float = 10e9
    crossbar_max_propagation_cycles: float = 8.0
    token_ring_round_trip_cycles: float = 8.0

    # Off-stack memory (Section 3.3).
    memory_links_per_controller: int = 2
    memory_wavelengths_per_link: int = 64
    memory_latency_s: float = 20e-9

    def __post_init__(self) -> None:
        if self.num_clusters < 2:
            raise ValueError(f"need at least two clusters, got {self.num_clusters}")
        if self.signalling_rate_bps <= 0:
            raise ValueError("signalling rate must be positive")

    # -- structural totals ----------------------------------------------------
    @property
    def num_cores(self) -> int:
        return self.num_clusters * self.cluster.cores

    @property
    def num_threads(self) -> int:
        return self.num_cores * self.core.threads

    @property
    def clock_hz(self) -> float:
        return self.core.frequency_hz

    @property
    def peak_flops(self) -> float:
        """Chip peak double-precision FLOP/s (10 teraflops for the default)."""
        return self.num_cores * self.core.peak_flops

    # -- interconnect bandwidths ----------------------------------------------
    @property
    def crossbar_channel_width_bits(self) -> int:
        return (
            self.crossbar_wavelengths_per_waveguide
            * self.crossbar_waveguides_per_channel
        )

    @property
    def crossbar_channel_bandwidth_bytes_per_s(self) -> float:
        """Per-cluster crossbar bandwidth: 2.56 Tb/s = 320 GB/s."""
        return self.crossbar_channel_width_bits * self.signalling_rate_bps / 8.0

    @property
    def crossbar_total_bandwidth_bytes_per_s(self) -> float:
        """Aggregate crossbar bandwidth: 20.48 TB/s for the default design."""
        return self.num_clusters * self.crossbar_channel_bandwidth_bytes_per_s

    @property
    def memory_bandwidth_per_controller_bytes_per_s(self) -> float:
        """Per-controller OCM bandwidth: 160 GB/s."""
        return (
            self.memory_links_per_controller
            * self.memory_wavelengths_per_link
            * self.signalling_rate_bps
            / 8.0
        )

    @property
    def memory_total_bandwidth_bytes_per_s(self) -> float:
        """Aggregate OCM bandwidth: 10.24 TB/s for the default design."""
        return (
            self.num_clusters * self.memory_bandwidth_per_controller_bytes_per_s
        )

    @property
    def bytes_per_flop(self) -> float:
        """The design target of roughly one byte per flop of memory bandwidth."""
        return self.memory_total_bandwidth_bytes_per_s / self.peak_flops

    # -- re-parameterization ---------------------------------------------------
    def with_overrides(self, overrides: Mapping[str, object]) -> "CoronaConfig":
        """A copy of this configuration with ``overrides`` applied by name.

        ``overrides`` maps top-level field names to new values; the nested
        ``cluster`` and ``core`` parameter blocks accept a mapping of their
        own field names (``{"cluster": {"cores": 2}}``).  Unknown field names
        raise a :class:`ValueError` that names the offending key, which is
        what lets scenario files fail with a message pointing at the bad
        field instead of a ``TypeError`` from ``dataclasses.replace``.
        """
        known = {f.name for f in fields(self)}
        resolved: Dict[str, object] = {}
        for key, value in overrides.items():
            if key not in known:
                raise ValueError(
                    f"unknown CoronaConfig field {key!r}; known: {sorted(known)}"
                )
            if key in ("cluster", "core") and isinstance(value, Mapping):
                target = getattr(self, key)
                nested_known = {f.name for f in fields(target)}
                unknown = set(value) - nested_known
                if unknown:
                    raise ValueError(
                        f"unknown {key} field {sorted(unknown)[0]!r}; "
                        f"known: {sorted(nested_known)}"
                    )
                resolved[key] = replace(target, **dict(value))
            else:
                resolved[key] = value
        return replace(self, **resolved) if resolved else self

    # -- reporting -------------------------------------------------------------
    def resource_configuration_rows(self) -> List[Tuple[str, str]]:
        """Rows of Table 1, in the paper's order."""
        cluster = self.cluster
        core = self.core
        return [
            ("Number of clusters", str(self.num_clusters)),
            ("L2 cache size/assoc",
             f"{cluster.l2_cache_bytes // (1024 * 1024)} MB/{cluster.l2_associativity}-way"),
            ("L2 cache line size", f"{cluster.l2_line_bytes} B"),
            ("L2 coherence", cluster.l2_coherence),
            ("Memory controllers", str(cluster.memory_controllers)),
            ("Cores", str(cluster.cores)),
            ("L1 ICache size/assoc",
             f"{core.l1_icache_bytes // 1024} KB/{core.l1_icache_assoc}-way"),
            ("L1 DCache size/assoc",
             f"{core.l1_dcache_bytes // 1024} KB/{core.l1_dcache_assoc}-way"),
            ("L1 I & D cache line size", f"{core.cache_line_bytes} B"),
            ("Frequency", f"{core.frequency_hz / 1e9:g} GHz"),
            ("Threads", str(core.threads)),
            ("Issue policy", "In-order" if core.in_order else "Out-of-order"),
            ("Issue width", str(core.issue_width)),
            ("64 b floating point SIMD width", str(core.simd_width)),
            ("Fused floating point operations",
             "Multiply-Add" if core.fused_multiply_add else "None"),
        ]

    def summary(self) -> Dict[str, float]:
        """Headline numbers the paper's abstract quotes."""
        return {
            "clusters": self.num_clusters,
            "cores": self.num_cores,
            "threads": self.num_threads,
            "peak_teraflops": self.peak_flops / 1e12,
            "crossbar_bandwidth_tbps": self.crossbar_total_bandwidth_bytes_per_s / 1e12,
            "memory_bandwidth_tbps": self.memory_total_bandwidth_bytes_per_s / 1e12,
            "bytes_per_flop": self.bytes_per_flop,
        }


#: The paper's design point.
CORONA_DEFAULT = CoronaConfig()
