"""Result containers and speedup analysis for the evaluation.

A :class:`WorkloadResult` captures everything Figures 8-11 need about one
(workload, configuration) pair: execution time, achieved memory bandwidth,
average L2-miss latency and network power.  ``speedup_table`` normalizes the
execution times against the paper's baseline (LMesh/ECM) and computes the
geometric-mean speedups quoted in Section 5.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields
from math import ceil
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.sim.stats import geometric_mean

#: Format tag of the per-pair raw-sample artifact (``--samples-out``).
SAMPLES_FORMAT = "corona-samples/1"


def nearest_rank(ordered: Sequence[float], quantile: float) -> float:
    """Nearest-rank percentile of an already-sorted sample (0.0 when empty).

    The same estimator the replay uses for its p99/sojourn fields, exposed
    so the diff engine computes percentile deltas with identical semantics.
    """
    if not ordered:
        return 0.0
    rank = ceil(quantile * len(ordered))
    return ordered[min(len(ordered) - 1, max(0, rank - 1))]


def samples_payload(
    configuration: str,
    workload: str,
    latency_s: Sequence[float],
    sojourn_s: Sequence[float] = (),
) -> Dict[str, object]:
    """The raw-sample sink document: per-transaction latency (and, on
    open-loop replays, sojourn) samples in replay order.

    Kept as a separate artifact rather than result fields so the long-form
    CSV/JSON sinks stay fixed-width; the diff engine reads these to compute
    exact per-percentile deltas and KS distances instead of comparing only
    the summarized p50/p95/p99 fields.
    """
    payload: Dict[str, object] = {
        "format": SAMPLES_FORMAT,
        "configuration": configuration,
        "workload": workload,
        "latency_s": list(latency_s),
    }
    if sojourn_s:
        payload["sojourn_s"] = list(sojourn_s)
    return payload


def load_samples(path: str) -> Dict[str, object]:
    """Parse a :data:`SAMPLES_FORMAT` artifact, validating its format tag."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, Mapping) or payload.get("format") != SAMPLES_FORMAT:
        raise ValueError(
            f"{path}: not a raw-sample artifact (expected format "
            f"{SAMPLES_FORMAT!r}, got {payload.get('format')!r})"
        )
    return dict(payload)


@dataclass(frozen=True)
class WorkloadResult:
    """Measurements from replaying one workload on one configuration."""

    workload: str
    configuration: str
    num_requests: int
    execution_time_s: float
    achieved_bandwidth_bytes_per_s: float
    average_latency_s: float
    p99_latency_s: float
    network_dynamic_power_w: float
    network_static_power_w: float
    network_energy_j: float
    network_messages: int
    network_hops: int
    memory_bytes: float
    average_token_wait_s: float = 0.0
    average_queueing_delay_s: float = 0.0
    is_synthetic: bool = False
    # -- coherence subsystem (zero/False on coherence-free replays) ---------
    coherence_enabled: bool = False
    #: Misses to shared lines that consulted a home directory.
    shared_requests: int = 0
    #: Total sharer copies invalidated, regardless of delivery mechanism.
    invalidations_sent: int = 0
    #: Invalidation rounds delivered as one optical broadcast.
    invalidation_broadcasts: int = 0
    #: Unicast INVALIDATE messages sent on the interconnect.
    invalidation_unicasts: int = 0
    #: Mean time from directory action to the slowest sharer's invalidation.
    average_invalidation_latency_s: float = 0.0
    cache_to_cache_transfers: int = 0
    #: Mean time from directory action to data arrival at the requester.
    average_cache_to_cache_latency_s: float = 0.0
    dirty_writebacks: int = 0
    #: Fraction of the replay the broadcast bus spent modulating.
    broadcast_occupancy: float = 0.0
    # -- fault injection (zero/False on fault-free replays) -----------------
    faults_enabled: bool = False
    #: DWDM wavelengths detuned out of optical channels at install time.
    fault_wavelengths_disabled: int = 0
    #: Links/waveguide bundles running at reduced bandwidth.
    fault_links_degraded: int = 0
    #: Arbitration tokens lost (and regenerated) during the replay.
    fault_tokens_lost: int = 0
    #: Total grant time spent waiting on token regeneration.
    fault_token_regen_wait_s: float = 0.0
    #: Transient DRAM timeouts retried during the replay.
    fault_dram_timeouts: int = 0
    #: Total extra latency charged by DRAM retries.
    fault_dram_retry_s: float = 0.0
    # -- open-loop arrivals (zero/False on closed-loop replays) --------------
    #: Realized offered load: trace requests over the arrival-schedule span.
    offered_rps: float = 0.0
    #: Completed requests divided by the replay makespan.
    achieved_rps: float = 0.0
    #: Achieved throughput fell below 95% of the offered load.
    saturated: bool = False
    #: Sojourn = completion minus scheduled arrival (queueing plus service).
    p50_sojourn_ns: float = 0.0
    p95_sojourn_ns: float = 0.0
    p99_sojourn_ns: float = 0.0

    @property
    def network_power_w(self) -> float:
        """Total on-chip network power (dynamic plus always-on)."""
        return self.network_dynamic_power_w + self.network_static_power_w

    @property
    def achieved_bandwidth_tbps(self) -> float:
        return self.achieved_bandwidth_bytes_per_s / 1e12

    @property
    def average_latency_ns(self) -> float:
        return self.average_latency_s * 1e9

    @property
    def requests_per_second(self) -> float:
        if self.execution_time_s <= 0:
            return 0.0
        return self.num_requests / self.execution_time_s

    @property
    def average_invalidation_latency_ns(self) -> float:
        return self.average_invalidation_latency_s * 1e9

    @property
    def average_cache_to_cache_latency_ns(self) -> float:
        return self.average_cache_to_cache_latency_s * 1e9

    # -- serialization (Scenario API result sinks) ---------------------------
    def to_dict(self) -> Dict[str, object]:
        """All stored fields as a JSON-ready mapping (exact round-trip)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "WorkloadResult":
        """Rebuild a result from :meth:`to_dict` output.

        Unknown keys raise a :class:`ValueError` naming the key, so stale
        result files fail loudly instead of silently dropping fields.
        """
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown WorkloadResult field {sorted(unknown)[0]!r}; "
                f"known: {sorted(known)}"
            )
        return cls(**data)


#: Column order of :func:`results_to_csv_rows`: the stored dataclass fields.
RESULT_CSV_COLUMNS: List[str] = [f.name for f in fields(WorkloadResult)]


def results_to_csv_rows(
    results: Iterable[WorkloadResult],
) -> List[List[object]]:
    """Results as rows matching :data:`RESULT_CSV_COLUMNS` (header excluded)."""
    return [
        [getattr(result, column) for column in RESULT_CSV_COLUMNS]
        for result in results
    ]


def long_form_columns(axis_names: Sequence[str]) -> List[str]:
    """CSV header of a long-form sweep sink: the point id, one ``axis.<name>``
    column per sweep axis (prefixed so axis names can never collide with
    result fields), then every stored :class:`WorkloadResult` field."""
    return [
        "point_id",
        *(f"axis.{name}" for name in axis_names),
        *RESULT_CSV_COLUMNS,
    ]


def long_form_row(
    point_id: str,
    axis_values: Sequence[object],
    result: WorkloadResult,
) -> List[object]:
    """One long-form sweep row matching :func:`long_form_columns`."""
    return [
        point_id,
        *axis_values,
        *(getattr(result, column) for column in RESULT_CSV_COLUMNS),
    ]


@dataclass
class ConfigurationResult:
    """All workload results for one system configuration."""

    configuration: str
    results: Dict[str, WorkloadResult] = field(default_factory=dict)

    def add(self, result: WorkloadResult) -> None:
        if result.configuration != self.configuration:
            raise ValueError(
                f"result for {result.configuration} added to {self.configuration}"
            )
        self.results[result.workload] = result

    def workloads(self) -> List[str]:
        return list(self.results)

    def __getitem__(self, workload: str) -> WorkloadResult:
        return self.results[workload]


def _group(results: Iterable[WorkloadResult]) -> Dict[str, Dict[str, WorkloadResult]]:
    """Group results as ``{workload: {configuration: result}}``."""
    grouped: Dict[str, Dict[str, WorkloadResult]] = {}
    for result in results:
        grouped.setdefault(result.workload, {})[result.configuration] = result
    return grouped


def speedup_table(
    results: Iterable[WorkloadResult],
    baseline: str = "LMesh/ECM",
) -> Dict[str, Dict[str, float]]:
    """Normalized speedup of every configuration over ``baseline``, per workload.

    Speedup is the ratio of execution times (baseline / configuration), the
    quantity plotted in Figure 8.
    """
    grouped = _group(results)
    table: Dict[str, Dict[str, float]] = {}
    for workload, by_config in grouped.items():
        if baseline not in by_config:
            raise KeyError(
                f"workload {workload!r} has no {baseline!r} result to normalize by"
            )
        base_time = by_config[baseline].execution_time_s
        table[workload] = {
            config: base_time / result.execution_time_s
            for config, result in by_config.items()
        }
    return table


def geometric_mean_speedup(
    results: Iterable[WorkloadResult],
    numerator: str,
    denominator: str,
    workloads: Optional[Sequence[str]] = None,
) -> float:
    """Geometric-mean speedup of one configuration over another.

    Reproduces the paper's aggregate claims, e.g. HMesh/OCM over HMesh/ECM is
    3.28x on the synthetic benchmarks and 1.80x on SPLASH-2.
    """
    grouped = _group(results)
    selected = workloads if workloads is not None else sorted(grouped)
    ratios: List[float] = []
    for workload in selected:
        by_config = grouped.get(workload, {})
        if numerator not in by_config or denominator not in by_config:
            raise KeyError(
                f"workload {workload!r} lacks results for "
                f"{numerator!r} and/or {denominator!r}"
            )
        ratios.append(
            by_config[denominator].execution_time_s
            / by_config[numerator].execution_time_s
        )
    return geometric_mean(ratios)


def metric_table(
    results: Iterable[WorkloadResult], metric: str
) -> Dict[str, Dict[str, float]]:
    """Extract ``{workload: {configuration: value}}`` for a result attribute.

    ``metric`` is any numeric attribute/property of :class:`WorkloadResult`,
    e.g. ``"achieved_bandwidth_tbps"`` (Figure 9), ``"average_latency_ns"``
    (Figure 10) or ``"network_power_w"`` (Figure 11).
    """
    grouped = _group(results)
    table: Dict[str, Dict[str, float]] = {}
    for workload, by_config in grouped.items():
        table[workload] = {}
        for config, result in by_config.items():
            value = getattr(result, metric)
            if not isinstance(value, (int, float)):
                raise TypeError(f"metric {metric!r} is not numeric")
            table[workload][config] = float(value)
    return table
