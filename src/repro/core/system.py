"""The trace-driven Corona system simulator.

This is the reproduction of the paper's network/memory simulator (Section 4):
L2-miss traces are replayed through a request-response on-stack interconnect
transaction plus an off-stack memory transaction, with MSHRs, hubs,
interconnect arbitration and memory modelled with finite buffers, queues and
ports so that bandwidth, latency, back-pressure and capacity limits are
enforced throughout.

The replay is event driven.  Each L2 miss becomes a transaction with four
stages -- issue (MSHR + hub + request message), memory access at the home
cluster, response message, completion -- and each stage is scheduled at the
simulated time at which it actually starts, so every resource reservation
(crossbar token, mesh link, memory channel, DRAM bank) is made in global time
order.  Threads issue their misses in program order subject to their compute
gaps and a bounded window of outstanding misses; this is what converts
interconnect and memory latency into execution time, and execution time for
the fixed number of trace requests is the performance metric behind Figure 8.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.config import CoronaConfig, CORONA_DEFAULT
from repro.core.configs import SystemConfiguration
from repro.core.results import WorkloadResult
from repro.cores.hub import Hub
from repro.memory.system import MemorySystem
from repro.network.message import Message, MessageType
from repro.network.topology import Interconnect, TransferResult
from repro.sim.engine import Simulator
from repro.sim.stats import Histogram, RunningStats
from repro.trace.record import TraceRecord, TraceStream


@dataclass
class TransactionStats:
    """Aggregate statistics over all replayed L2-miss transactions."""

    latency: RunningStats = field(default_factory=lambda: RunningStats("latency"))
    queueing: RunningStats = field(default_factory=lambda: RunningStats("queueing"))
    network_latency: RunningStats = field(
        default_factory=lambda: RunningStats("network-latency")
    )
    memory_latency: RunningStats = field(
        default_factory=lambda: RunningStats("memory-latency")
    )
    latency_histogram: Histogram = field(
        default_factory=lambda: Histogram(
            "latency-ns", lower=0.0, upper=2000.0, bins=200
        )
    )
    requests: int = 0
    reads: int = 0
    writes: int = 0
    memory_bytes: float = 0.0
    network_hops: int = 0
    network_messages: int = 0

    def record(
        self,
        latency_s: float,
        queueing_s: float,
        network_s: float,
        memory_s: float,
        is_write: bool,
        memory_bytes: int,
        hops: int,
        messages: int,
    ) -> None:
        self.latency.add(latency_s)
        self.queueing.add(queueing_s)
        self.network_latency.add(network_s)
        self.memory_latency.add(memory_s)
        self.latency_histogram.add(latency_s * 1e9)
        self.requests += 1
        if is_write:
            self.writes += 1
        else:
            self.reads += 1
        self.memory_bytes += memory_bytes
        self.network_hops += hops
        self.network_messages += messages


def _local_transfer(now: float) -> TransferResult:
    """A zero-cost transfer result for misses homed at the issuing cluster."""
    return TransferResult(
        arrival_time=now,
        queueing_delay=0.0,
        serialization_delay=0.0,
        propagation_delay=0.0,
        hops=0,
        dynamic_energy_j=0.0,
    )


@dataclass
class _Transaction:
    """In-flight state of one L2-miss transaction."""

    record: TraceRecord
    index: int
    issue_time: float
    mshr_wait: float = 0.0
    request_result: Optional[TransferResult] = None
    memory_queueing: float = 0.0
    memory_latency: float = 0.0
    response_result: Optional[TransferResult] = None


@dataclass
class _ThreadState:
    """Replay bookkeeping for one hardware thread."""

    thread_id: int
    cluster_id: int
    records: List[TraceRecord]
    window: int
    next_index: int = 0
    issue_scheduled: bool = False
    issue_times: List[float] = field(default_factory=list)
    completions: List[Optional[float]] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.completions = [None] * len(self.records)

    def finished_issuing(self) -> bool:
        return self.next_index >= len(self.records)


class SystemSimulator:
    """Replay a workload trace on one system configuration."""

    def __init__(
        self,
        configuration: SystemConfiguration,
        corona_config: CoronaConfig = CORONA_DEFAULT,
        network: Optional[Interconnect] = None,
        memory: Optional[MemorySystem] = None,
        window_depth: int = 4,
        mshrs_per_cluster: int = 64,
        hub_queue_depth: int = 64,
    ) -> None:
        if window_depth < 1:
            raise ValueError(f"window depth must be >= 1, got {window_depth}")
        self.configuration = configuration
        self.corona_config = corona_config
        self.network = network or configuration.build_network(corona_config)
        self.memory = memory or configuration.build_memory(corona_config)
        self.window_depth = window_depth
        self.hubs: Dict[int, Hub] = {
            cluster: Hub(
                cluster_id=cluster,
                queue_depth=hub_queue_depth,
                mshrs=mshrs_per_cluster,
            )
            for cluster in range(corona_config.num_clusters)
        }
        self.stats = TransactionStats()
        self._simulator = Simulator()
        self._threads: Dict[int, _ThreadState] = {}
        self._makespan = 0.0

    # ------------------------------------------------------------------ replay
    def run(self, trace: TraceStream) -> WorkloadResult:
        """Replay ``trace`` to completion and return the workload result."""
        self._simulator = Simulator()
        self._threads = {}
        self._makespan = 0.0

        clock = self.corona_config.clock_hz
        for thread_id, thread_trace in trace.threads.items():
            if not thread_trace.records:
                continue
            state = _ThreadState(
                thread_id=thread_id,
                cluster_id=thread_trace.cluster_id,
                records=thread_trace.records,
                window=self.window_depth,
            )
            self._threads[thread_id] = state
            first_issue = state.records[0].gap_cycles / clock
            state.issue_scheduled = True
            self._simulator.schedule_at(first_issue, self._on_issue, state)

        self._simulator.run()
        return self._build_result(trace, self._makespan)

    # --------------------------------------------------------------- scheduling
    def _try_schedule_issue(self, state: _ThreadState) -> None:
        """Schedule the thread's next miss if its gap and window allow it."""
        if state.issue_scheduled or state.finished_issuing():
            return
        index = state.next_index
        clock = self.corona_config.clock_hz
        prev_issue = state.issue_times[index - 1] if index > 0 else 0.0
        gap_ready = prev_issue + state.records[index].gap_cycles / clock
        gate_index = index - state.window
        if gate_index >= 0:
            gate_completion = state.completions[gate_index]
            if gate_completion is None:
                # The window slot has not freed yet; the completion event of
                # the gating miss will call back into this method.
                return
            issue_time = max(gap_ready, gate_completion)
        else:
            issue_time = gap_ready
        issue_time = max(issue_time, self._simulator.now)
        state.issue_scheduled = True
        self._simulator.schedule_at(issue_time, self._on_issue, state)

    # ------------------------------------------------------------ stage handlers
    def _on_issue(self, state: _ThreadState) -> None:
        """Stage 1: the miss leaves the core, allocates an MSHR, and the
        request message crosses the interconnect to the home cluster."""
        now = self._simulator.now
        state.issue_scheduled = False
        index = state.next_index
        record = state.records[index]
        state.issue_times.append(now)
        state.next_index += 1

        transaction = _Transaction(record=record, index=index, issue_time=now)
        hub = self.hubs[record.cluster_id]
        mshr_grant = hub.mshr_pool.acquire(now)
        transaction.mshr_wait = mshr_grant - now

        inject_time = hub.inject(mshr_grant, mshr_grant + hub.forwarding_latency_s)
        if record.cluster_id == record.home_cluster:
            # Local miss: the hub hands it straight to the cluster's own
            # memory controller without touching the interconnect.
            transaction.request_result = _local_transfer(inject_time)
        else:
            request_type = (
                MessageType.WRITEBACK if record.is_write else MessageType.READ_REQUEST
            )
            request = Message(
                src=record.cluster_id,
                dst=record.home_cluster,
                message_type=request_type,
                transaction_id=self.stats.requests,
            )
            transaction.request_result = self.network.transfer(request, inject_time)

        home_hub = self.hubs[record.home_cluster]
        memory_start = (
            transaction.request_result.arrival_time + home_hub.forwarding_latency_s
        )
        self._simulator.schedule_at(memory_start, self._on_memory, state, transaction)

        # The next miss of this thread may already be eligible (its window
        # slot may be free and only the compute gap remains).
        self._try_schedule_issue(state)

    def _on_memory(self, state: _ThreadState, transaction: _Transaction) -> None:
        """Stage 2: the memory transaction at the home cluster's controller."""
        now = self._simulator.now
        record = transaction.record
        memory_result = self.memory.access(
            home_cluster=record.home_cluster,
            now=now,
            size_bytes=record.size_bytes,
            is_write=record.is_write,
            address=record.address,
        )
        transaction.memory_queueing = memory_result.queueing_delay
        transaction.memory_latency = memory_result.memory_latency
        home_hub = self.hubs[record.home_cluster]
        response_start = memory_result.completion_time + home_hub.forwarding_latency_s
        self._simulator.schedule_at(
            response_start, self._on_response, state, transaction
        )

    def _on_response(self, state: _ThreadState, transaction: _Transaction) -> None:
        """Stage 3: the response message returns to the requesting cluster."""
        now = self._simulator.now
        record = transaction.record
        if record.cluster_id == record.home_cluster:
            transaction.response_result = _local_transfer(now)
        else:
            response_type = (
                MessageType.WRITE_ACK if record.is_write else MessageType.READ_RESPONSE
            )
            response = Message(
                src=record.home_cluster,
                dst=record.cluster_id,
                message_type=response_type,
                transaction_id=transaction.index,
            )
            transaction.response_result = self.network.transfer(response, now)
        hub = self.hubs[record.cluster_id]
        completion_time = (
            transaction.response_result.arrival_time + hub.forwarding_latency_s
        )
        self._simulator.schedule_at(
            completion_time, self._on_complete, state, transaction
        )

    def _on_complete(self, state: _ThreadState, transaction: _Transaction) -> None:
        """Stage 4: the data (or acknowledgement) reaches the core."""
        now = self._simulator.now
        record = transaction.record
        hub = self.hubs[record.cluster_id]
        hub.mshr_pool.release_at(now)

        state.completions[transaction.index] = now
        self._makespan = max(self._makespan, now)

        request_result = transaction.request_result
        response_result = transaction.response_result
        latency = now - transaction.issue_time
        queueing = (
            transaction.mshr_wait
            + request_result.queueing_delay
            + transaction.memory_queueing
            + response_result.queueing_delay
        )
        network_latency = (
            request_result.network_latency + response_result.network_latency
        )
        is_remote = record.cluster_id != record.home_cluster
        self.stats.record(
            latency_s=latency,
            queueing_s=queueing,
            network_s=network_latency,
            memory_s=transaction.memory_latency,
            is_write=record.is_write,
            memory_bytes=record.size_bytes,
            hops=request_result.hops + response_result.hops,
            messages=2 if is_remote else 0,
        )

        # This completion may free the window slot the thread's next miss is
        # waiting for.
        self._try_schedule_issue(state)

    # ------------------------------------------------------------- result assembly
    def _build_result(self, trace: TraceStream, makespan: float) -> WorkloadResult:
        elapsed = max(makespan, 1e-12)
        dynamic_power = self.network.dynamic_power_w(elapsed)
        static_power = max(
            self.network.static_power_w(), self.configuration.network_static_power_w
        )
        token_wait = 0.0
        arbiter = getattr(self.network, "arbiter", None)
        if arbiter is not None and hasattr(arbiter, "average_wait_s"):
            token_wait = arbiter.average_wait_s()
        return WorkloadResult(
            workload=trace.name,
            configuration=self.configuration.name,
            num_requests=self.stats.requests,
            execution_time_s=makespan,
            achieved_bandwidth_bytes_per_s=self.stats.memory_bytes / elapsed,
            average_latency_s=self.stats.latency.mean,
            p99_latency_s=self.stats.latency_histogram.percentile(0.99) * 1e-9,
            network_dynamic_power_w=dynamic_power,
            network_static_power_w=static_power,
            network_energy_j=self.network.total_dynamic_energy_j,
            network_messages=self.network.messages_sent,
            network_hops=self.stats.network_hops,
            memory_bytes=self.stats.memory_bytes,
            average_token_wait_s=token_wait,
            average_queueing_delay_s=self.stats.queueing.mean,
            is_synthetic="splash" not in trace.description.lower(),
        )


def simulate_workload(
    configuration: SystemConfiguration,
    workload,
    num_requests: Optional[int] = None,
    seed: int = 1,
    corona_config: CoronaConfig = CORONA_DEFAULT,
    window_depth: Optional[int] = None,
) -> WorkloadResult:
    """Convenience wrapper: generate a workload's trace and replay it.

    ``workload`` is any object with ``generate(seed, num_requests)`` and a
    ``window`` attribute (both synthetic and SPLASH-2 workloads qualify).
    """
    trace = workload.generate(seed=seed, num_requests=num_requests)
    depth = window_depth if window_depth is not None else getattr(workload, "window", 4)
    simulator = SystemSimulator(
        configuration=configuration,
        corona_config=corona_config,
        window_depth=depth,
    )
    return simulator.run(trace)
