"""The trace-driven Corona system simulator.

This is the reproduction of the paper's network/memory simulator (Section 4):
L2-miss traces are replayed through a request-response on-stack interconnect
transaction plus an off-stack memory transaction, with MSHRs, hubs,
interconnect arbitration and memory modelled with finite buffers, queues and
ports so that bandwidth, latency, back-pressure and capacity limits are
enforced throughout.

The replay is event driven.  Each L2 miss becomes a transaction with four
stages -- issue (MSHR + hub + request message), memory access at the home
cluster, response message, completion -- and each stage is scheduled at the
simulated time at which it actually starts, so every resource reservation
(crossbar token, mesh link, memory channel, DRAM bank) is made in global time
order.  Threads issue their misses in program order subject to their compute
gaps and a bounded window of outstanding misses; this is what converts
interconnect and memory latency into execution time, and execution time for
the fixed number of trace requests is the performance metric behind Figure 8.

Coherence-enabled replay
------------------------
With a :class:`~repro.coherence.engine.CoherenceConfig`, misses to
shared-tagged lines consult the home cluster's MOESI directory
(:mod:`repro.cache.coherence`) in stage 2 instead of going straight to
memory: cache-to-cache forwards, invalidation fan-outs (one optical
broadcast on configurations with the Section 3.2.2 bus, per-sharer unicasts
on the electrical baselines) and dirty writebacks all reserve interconnect
and memory resources.  Shared writes reuse the plain engine's
writeback-sized request message on the issue leg, a deliberate
simplification that keeps the issue stage branch-free.  Without a coherence
config (the default) none of this code is installed and the replay is
bit-identical to the coherence-free engine.

Performance notes
-----------------
The stage handlers execute once per miss and dominate the replay's
wall-clock cost, so everything invariant across records is hoisted out of
them at ``run`` time: the core clock, each cluster's hub and its forwarding
latency, and the home-cluster memory controllers.  Request/response
:class:`Message` objects are preallocated per type and reused (the
interconnect models read but never retain them), and misses homed at the
issuing cluster skip both the message and the :class:`TransferResult`
entirely.

The replay consumes traces in packed columnar form
(:class:`~repro.trace.packed.PackedTrace`): each stage reads plain ints and
floats straight out of the trace's flat columns (one ``uint64`` meta word,
one address, one gap per record), so the hot path allocates no per-record
objects at all -- a :class:`~repro.trace.record.TraceStream` handed to
:meth:`SystemSimulator.run` is packed once up front.
"""

from __future__ import annotations

import gc
from dataclasses import dataclass, field
from heapq import heappop, heappush, nsmallest
from typing import Dict, List, Optional

from repro.coherence.engine import CoherenceConfig, CoherenceEngine, CoherentMiss
from repro.core.config import CoronaConfig, CORONA_DEFAULT
from repro.faults.inject import build_injector
from repro.faults.spec import FaultSpec
from repro.core.configs import SystemConfiguration
from repro.core.results import WorkloadResult, nearest_rank
from repro.cores.hub import Hub
from repro.memory.system import MemorySystem
from repro.network.broadcast import OpticalBroadcastBus
from repro.network.message import Message, MessageType
from repro.network.topology import Interconnect, TransferResult
from repro.obs.metrics import MetricsSampler
from repro.obs.spec import ObservabilitySpec
from repro.obs.timeline import TimelineRecorder
from repro.sim.engine import Simulator
from repro.sim.stats import Histogram, RunningStats
from repro.trace.packed import (
    HOME_MASK,
    HOME_SHIFT,
    KIND_BIT,
    SHARED_BIT,
    SIZE_SHIFT,
    AnyTrace,
    PackedTrace,
    generate_packed_trace,
)


class TransactionStats:
    """Aggregate statistics over all replayed L2-miss transactions.

    The hot path (:meth:`record`, once per miss) only appends raw samples and
    bumps plain counters; the :class:`RunningStats` accumulators and the
    latency :class:`Histogram` exposed as properties are materialized lazily
    from the samples on first access (and cached until the next record).
    The histogram auto-expands, so its percentiles are order-independent and
    never clamp at the initial 2000 ns range.
    """

    __slots__ = (
        "_samples",
        "_derived",
        "requests",
        "reads",
        "writes",
        "memory_bytes",
        "network_hops",
        "network_messages",
    )

    def __init__(self) -> None:
        #: One (latency, queueing, network, memory) tuple per transaction.
        self._samples: List[tuple] = []
        self._derived: Dict[str, object] = {}
        self.requests = 0
        self.reads = 0
        self.writes = 0
        self.memory_bytes = 0.0
        self.network_hops = 0
        self.network_messages = 0

    def record(
        self,
        latency_s: float,
        queueing_s: float,
        network_s: float,
        memory_s: float,
        is_write: bool,
        memory_bytes: int,
        hops: int,
        messages: int,
    ) -> None:
        if self._derived:
            self._derived.clear()
        self._samples.append((latency_s, queueing_s, network_s, memory_s))
        self.requests += 1
        if is_write:
            self.writes += 1
        else:
            self.reads += 1
        self.memory_bytes += memory_bytes
        self.network_hops += hops
        self.network_messages += messages

    def _running(self, key: str, column: int) -> RunningStats:
        stats = self._derived.get(key)
        if stats is None:
            stats = RunningStats(key)
            stats.extend(sample[column] for sample in self._samples)
            self._derived[key] = stats
        return stats

    @property
    def latency(self) -> RunningStats:
        return self._running("latency", 0)

    @property
    def queueing(self) -> RunningStats:
        return self._running("queueing", 1)

    @property
    def network_latency(self) -> RunningStats:
        return self._running("network-latency", 2)

    @property
    def memory_latency(self) -> RunningStats:
        return self._running("memory-latency", 3)

    @property
    def latency_histogram(self) -> Histogram:
        histogram = self._derived.get("histogram")
        if histogram is None:
            histogram = Histogram(
                "latency-ns", lower=0.0, upper=2000.0, bins=200, auto_expand=True
            )
            add = histogram.add
            for sample in self._samples:
                add(sample[0] * 1e9)
            self._derived["histogram"] = histogram
        return histogram


# Nearest-rank percentile; shared with the diff engine so percentile deltas
# are computed with exactly the replay's estimator.
_nearest_rank = nearest_rank


class _Transaction:
    """In-flight state of one L2-miss transaction.

    The trace record's fields are decoded from the packed meta word once at
    issue time and carried here as plain scalars; no
    :class:`~repro.trace.record.TraceRecord` object exists during replay.
    ``request_result``/``response_result`` stay ``None`` for misses homed at
    the issuing cluster: a local miss never touches the interconnect, so no
    :class:`TransferResult` is materialized for it.
    """

    __slots__ = (
        "index",
        "issue_time",
        "arrival_time",
        "home",
        "is_write",
        "address",
        "size_bytes",
        "shared",
        "mshr_wait",
        "request_result",
        "memory_queueing",
        "memory_latency",
        "response_result",
        "coherence",
    )

    def __init__(
        self,
        index: int,
        issue_time: float,
        home: int,
        is_write: bool,
        address: int,
        size_bytes: int,
        shared: bool,
    ) -> None:
        self.index = index
        self.issue_time = issue_time
        #: Scheduled arrival instant; equals ``issue_time`` on closed-loop
        #: replays, precedes it when an open-loop arrival queued behind the
        #: issue window (sojourn = completion - arrival).
        self.arrival_time = issue_time
        self.home = home
        self.is_write = is_write
        self.address = address
        self.size_bytes = size_bytes
        self.shared = shared
        self.mshr_wait = 0.0
        self.request_result: Optional[TransferResult] = None
        self.memory_queueing = 0.0
        self.memory_latency = 0.0
        self.response_result: Optional[TransferResult] = None
        #: Resolved coherence activity for shared misses (coherent mode only).
        self.coherence: Optional[CoherentMiss] = None


@dataclass(slots=True)
class _ThreadState:
    """Replay bookkeeping for one hardware thread.

    ``meta``/``addresses``/``gaps`` alias the packed trace's whole columns;
    the thread's records occupy ``[base, base + count)`` and the handlers
    index ``base + next_index`` directly, so issuing a miss reads three flat
    slots instead of touching a record object.
    """

    thread_id: int
    cluster_id: int
    meta: object
    addresses: object
    gaps: object
    base: int
    count: int
    window: int
    next_index: int = 0
    issue_scheduled: bool = False
    #: Issue time of the most recently issued miss (gap accounting).
    last_issue_time: float = 0.0
    #: Open-loop arrival schedule: cumulative sum of the thread's gaps.
    arrival_clock: float = 0.0
    completions: List[Optional[float]] = field(default_factory=list)
    #: The issuing cluster's hub, bound once at replay start.
    hub: Optional[Hub] = None

    def __post_init__(self) -> None:
        self.completions = [None] * self.count

    def finished_issuing(self) -> bool:
        return self.next_index >= self.count


class SystemSimulator:
    """Replay a workload trace on one system configuration."""

    __slots__ = (
        "configuration",
        "corona_config",
        "network",
        "memory",
        "window_depth",
        "hubs",
        "stats",
        "_simulator",
        "_push",
        "_equeue",
        "_eheap",
        "_transfer",
        "_threads",
        "_makespan",
        "_clock",
        "_hub_fwd",
        "_controllers",
        "_msg_read_request",
        "_msg_writeback",
        "_msg_read_response",
        "_msg_write_ack",
        "coherence_config",
        "coherence",
        "broadcast_bus",
        "_stage_memory",
        "fault_spec",
        "fault_injector",
        "observability",
        "_obs_metrics",
        "_obs_timeline",
        "_open_loop",
        "_offered_rps",
        "_sojourns",
    )

    def __init__(
        self,
        configuration: SystemConfiguration,
        corona_config: CoronaConfig = CORONA_DEFAULT,
        network: Optional[Interconnect] = None,
        memory: Optional[MemorySystem] = None,
        window_depth: int = 4,
        mshrs_per_cluster: int = 64,
        hub_queue_depth: int = 64,
        coherence: Optional[CoherenceConfig] = None,
        faults: Optional[FaultSpec] = None,
        observability: Optional[ObservabilitySpec] = None,
    ) -> None:
        if window_depth < 1:
            raise ValueError(f"window depth must be >= 1, got {window_depth}")
        self.configuration = configuration
        self.corona_config = corona_config
        self.network = network or configuration.build_network(corona_config)
        self.memory = memory or configuration.build_memory(corona_config)
        # Fault injection (opt-in, same discipline as coherence below): with
        # ``faults=None`` -- or an all-zero spec -- nothing is installed and
        # the replay is bit-identical to a fault-free build.
        self.fault_spec = faults
        self.fault_injector = build_injector(faults)
        if self.fault_injector is not None:
            self.fault_injector.install(self.network, self.memory)
        # Observability (opt-in, same zero-overhead discipline): with
        # ``observability=None`` -- or a spec with no sinks -- neither the
        # sampler nor the recorder is constructed and the stage handlers'
        # hooks stay ``None``.
        self.observability = observability
        self._obs_metrics: Optional[MetricsSampler] = None
        self._obs_timeline: Optional[TimelineRecorder] = None
        # Open-loop replay state, rebound per run() from the trace's arrival
        # metadata.  Closed-loop traces leave all three at their defaults and
        # the replay is bit-identical to builds without this machinery.
        self._open_loop = False
        self._offered_rps = 0.0
        self._sojourns: Optional[List[float]] = None
        self.window_depth = window_depth
        self.hubs: Dict[int, Hub] = {
            cluster: Hub(
                cluster_id=cluster,
                queue_depth=hub_queue_depth,
                mshrs=mshrs_per_cluster,
            )
            for cluster in range(corona_config.num_clusters)
        }
        self.stats = TransactionStats()
        self._simulator = Simulator()
        self._push = self._simulator._queue.push
        self._equeue = self._simulator._queue
        self._eheap = self._equeue._heap
        # Bound method of the per-run interconnect, re-resolved per call
        # otherwise in the two transfer-issuing handlers.
        self._transfer = self.network.transfer
        self._threads: Dict[int, _ThreadState] = {}
        self._makespan = 0.0
        # Per-record invariants hoisted out of the stage handlers.  Clusters
        # are numbered contiguously from zero, so per-cluster lookups use
        # lists instead of dicts on the hot path.
        self._clock = corona_config.clock_hz
        self._hub_fwd: List[float] = [
            self.hubs[cluster].forwarding_latency_s
            for cluster in range(corona_config.num_clusters)
        ]
        controllers = self.memory.controllers
        if sorted(controllers) == list(range(len(controllers))):
            self._controllers = [controllers[i] for i in range(len(controllers))]
        else:
            self._controllers = controllers
        # Reusable request/response messages, one per type.  The interconnect
        # models read src/dst/size and record counters but never retain the
        # message, so mutating these in place is safe and avoids two dataclass
        # constructions per remote miss.
        self._msg_read_request = Message(0, 1, MessageType.READ_REQUEST)
        self._msg_writeback = Message(0, 1, MessageType.WRITEBACK)
        self._msg_read_response = Message(0, 1, MessageType.READ_RESPONSE)
        self._msg_write_ack = Message(0, 1, MessageType.WRITE_ACK)
        # Coherence subsystem (opt-in).  With ``coherence=None`` the replay
        # is the plain engine: the coherent handlers are never installed, so
        # results and throughput are untouched.  With a config, shared-tagged
        # records consult their home directory and the protocol's messages
        # reserve interconnect/memory resources; invalidations ride the
        # optical broadcast bus on configurations that carry one.
        self.coherence_config = coherence
        if coherence is not None:
            self.broadcast_bus = (
                OpticalBroadcastBus(
                    num_clusters=corona_config.num_clusters,
                    clock_hz=corona_config.clock_hz,
                )
                if configuration.has_broadcast_bus
                else None
            )
            self.coherence = CoherenceEngine(
                config=coherence,
                num_clusters=corona_config.num_clusters,
                network=self.network,
                controllers=self._controllers,
                hub_fwd=self._hub_fwd,
                broadcast_bus=self.broadcast_bus,
            )
            self._stage_memory = self._on_memory_coherent
        else:
            self.broadcast_bus = None
            self.coherence = None
            self._stage_memory = self._on_memory

    # ------------------------------------------------------------------ replay
    def run(self, trace: AnyTrace) -> WorkloadResult:
        """Replay ``trace`` to completion and return the workload result.

        Accepts either representation; a :class:`~repro.trace.record.
        TraceStream` is packed up front (exactly, field for field), so both
        inputs replay bit-identically.
        """
        packed = (
            trace
            if isinstance(trace, PackedTrace)
            else PackedTrace.from_stream(trace)
        )
        self._simulator = Simulator()
        self._threads = {}
        self._makespan = 0.0
        # Open-loop replay: the trace's gap column encodes a fixed arrival
        # schedule (the cumulative per-thread gap sum), so misses are
        # timestamped at their scheduled *arrival* instant and sojourn
        # (queueing behind the issue window plus service) is reported
        # alongside the closed-loop latency statistics.
        self._open_loop = packed.arrival_process not in ("", "closed")
        self._offered_rps = packed.offered_rps if self._open_loop else 0.0
        self._sojourns = [] if self._open_loop else None
        # Direct push into the event calendar: every stage time is derived
        # from ``now`` plus non-negative delays, so the schedule_at past-time
        # guard is redundant on this path.  The handlers push heap entries
        # directly (EventQueue.push, inlined).
        self._push = self._simulator._queue.push
        self._equeue = self._simulator._queue
        self._eheap = self._equeue._heap

        clock = self._clock
        gaps = packed.gaps
        for thread_id, cluster_id, start, stop in packed.thread_segments():
            if start == stop:
                continue
            state = _ThreadState(
                thread_id=thread_id,
                cluster_id=cluster_id,
                meta=packed.meta,
                addresses=packed.addresses,
                gaps=gaps,
                base=start,
                count=stop - start,
                window=self.window_depth,
                hub=self.hubs[cluster_id],
            )
            self._threads[thread_id] = state
            first_issue = gaps[start] / clock
            state.issue_scheduled = True
            self._simulator.schedule_at(first_issue, self._on_issue, state)

        observability = self.observability
        if observability is not None and observability.simulation_active:
            self._install_observability(observability)

        # The replay allocates heavily (events, transactions, results) but
        # creates no reference cycles, so the cyclic collector only adds
        # overhead; pause it for the duration of the event loop.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            self._simulator.run()
        finally:
            if gc_was_enabled:
                gc.enable()
        return self._build_result(packed, self._makespan)

    def _install_observability(self, spec: ObservabilitySpec) -> None:
        """Build and install the sampler/recorder on the fresh calendar.

        Runs after the thread states exist (the sampler reads them) and
        before the event loop starts.  Each :meth:`run` call gets fresh
        collectors; the previous run's data is dropped.
        """
        recorder = None
        if spec.timeline_enabled:
            recorder = TimelineRecorder(
                hub_fwd=self._hub_fwd, limit=spec.timeline_limit
            )
            injector = self.fault_injector
            if injector is not None:
                simulator = self._simulator
                injector.on_fault = (
                    lambda kind, site, delay_s: recorder.fault_event(
                        simulator.now, kind, site, delay_s
                    )
                )
        self._obs_timeline = recorder
        if spec.metrics_enabled:
            sampler = MetricsSampler(
                self,
                interval_ns=spec.metrics_interval_ns,
                counter_sink=recorder.counter if recorder is not None else None,
            )
            sampler.install(self._simulator)
            self._obs_metrics = sampler
        else:
            self._obs_metrics = None

    # --------------------------------------------------------------- scheduling
    def _try_schedule_issue(self, state: _ThreadState) -> None:
        """Schedule the thread's next miss if its gap and window allow it."""
        if state.issue_scheduled:
            return
        index = state.next_index
        if index >= state.count:
            return
        if self._open_loop:
            # Fixed arrival schedule: the next miss arrives one gap after the
            # previous *arrival*, regardless of when the replay issued it, so
            # queueing accumulates when the system falls behind the load.
            gap_ready = (
                state.arrival_clock + state.gaps[state.base + index] / self._clock
            )
        else:
            gap_ready = (
                state.last_issue_time + state.gaps[state.base + index] / self._clock
            )
        gate_index = index - state.window
        if gate_index >= 0:
            gate_completion = state.completions[gate_index]
            if gate_completion is None:
                # The window slot has not freed yet; the completion event of
                # the gating miss will call back into this method.
                return
            issue_time = gap_ready if gap_ready > gate_completion else gate_completion
        else:
            issue_time = gap_ready
        now = self._simulator.now
        if issue_time < now:
            issue_time = now
        state.issue_scheduled = True
        equeue = self._equeue
        heappush(self._eheap, (issue_time, equeue._seq, self._on_issue, (state,)))
        equeue._seq += 1

    # ------------------------------------------------------------ stage handlers
    def _on_issue(self, state: _ThreadState) -> None:
        """Stage 1: the miss leaves the core, allocates an MSHR, and the
        request message crosses the interconnect to the home cluster.

        The miss's fields are decoded inline from its packed meta word
        (kind/shared bits, home cluster, size) plus the address column; this
        is the only place the trace is read, so the whole replay allocates
        one :class:`_Transaction` and zero record objects per miss.
        """
        simulator = self._simulator
        now = simulator.now
        state.issue_scheduled = False
        index = state.next_index
        slot = state.base + index
        word = state.meta[slot]
        state.last_issue_time = now
        state.next_index = index + 1

        home = (word >> HOME_SHIFT) & HOME_MASK
        is_write = bool(word & KIND_BIT)
        transaction = _Transaction(
            index,
            now,
            home,
            is_write,
            state.addresses[slot],
            word >> SIZE_SHIFT,
            bool(word & SHARED_BIT),
        )
        if self._open_loop:
            arrival_instant = state.arrival_clock + state.gaps[slot] / self._clock
            state.arrival_clock = arrival_instant
            transaction.arrival_time = arrival_instant
        hub = state.hub
        # MSHR allocation, transcribed from TokenPool.acquire (the reference
        # implementation): expire released tokens, then grant immediately or
        # at the earliest release.
        pool = hub.mshr_pool
        releases = pool._releases
        while releases and releases[0] <= now:
            heappop(releases)
        outstanding = len(releases)
        if outstanding < pool.tokens:
            mshr_grant = now
        else:
            overflow = outstanding - pool.tokens
            if overflow == 0:
                mshr_grant = releases[0]
            else:
                mshr_grant = nsmallest(overflow + 1, releases)[-1]
        pool.acquisitions += 1
        pool.total_wait += mshr_grant - now
        transaction.mshr_wait = mshr_grant - now

        # Injection-queue admission (Hub.inject / BoundedQueue.admit,
        # inlined; reference implementations there).  The departure time is
        # the hub forwarding completion, which is always >= the grant.
        forwarding_latency = hub.forwarding_latency_s
        queue = hub.injection_queue
        departures = queue._departures
        while departures and departures[0] <= mshr_grant:
            heappop(departures)
        resident = len(departures)
        if resident < queue.capacity:
            admitted = mshr_grant
        else:
            overflow = resident - queue.capacity
            if overflow == 0:
                admitted = departures[0]
            else:
                admitted = nsmallest(overflow + 1, departures)[-1]
        departure = mshr_grant + forwarding_latency
        if departure < admitted:
            raise ValueError(
                f"departure {departure} precedes admission {admitted}"
            )
        heappush(departures, departure)
        queue.total_admitted += 1
        if resident + 1 > queue.max_occupancy_seen:
            queue.max_occupancy_seen = resident + 1
        hub.messages_routed += 1
        inject_time = admitted + forwarding_latency
        if state.cluster_id == home:
            # Local miss: the hub hands it straight to the cluster's own
            # memory controller without touching the interconnect; no message
            # or transfer result is materialized.
            arrival = inject_time
        else:
            if is_write:
                request = self._msg_writeback
            else:
                request = self._msg_read_request
            request.src = state.cluster_id
            request.dst = home
            request.transaction_id = self.stats.requests
            result = self._transfer(request, inject_time)
            transaction.request_result = result
            arrival = result.arrival_time

        memory_start = arrival + self._hub_fwd[home]
        equeue = self._equeue
        heappush(
            self._eheap,
            (memory_start, equeue._seq, self._stage_memory, (state, transaction)),
        )
        equeue._seq += 1

        # The next miss of this thread may already be eligible (its window
        # slot may be free and only the compute gap remains).
        self._try_schedule_issue(state)

    def _on_memory(self, state: _ThreadState, transaction: _Transaction) -> None:
        """Stage 2: the memory transaction at the home cluster's controller."""
        home = transaction.home
        completion, mem_queueing, channel_delay, dram_delay = self._controllers[
            home
        ].access(
            self._simulator.now,
            transaction.size_bytes,
            transaction.is_write,
            transaction.address,
        )
        transaction.memory_queueing = mem_queueing
        transaction.memory_latency = mem_queueing + channel_delay + dram_delay
        response_start = completion + self._hub_fwd[home]
        equeue = self._equeue
        heappush(
            self._eheap,
            (response_start, equeue._seq, self._on_response, (state, transaction)),
        )
        equeue._seq += 1

    def _on_memory_coherent(
        self, state: _ThreadState, transaction: _Transaction
    ) -> None:
        """Stage 2, coherence-enabled: shared misses consult the home
        cluster's MOESI directory; private misses take the plain memory path.

        The directory resolves the miss's protocol actions analytically
        (invalidation fan-out, cache-to-cache forward, memory access -- see
        :meth:`repro.coherence.engine.CoherenceEngine.process_miss`), and the
        response stage is scheduled at the moment the data supplier may
        answer.  A stripped owner's dirty writeback gets its own calendar
        event so its memory reservation is made in global time order.
        """
        if not transaction.shared:
            self._on_memory(state, transaction)
            return
        miss = self.coherence.process_miss(
            home=transaction.home,
            requester=state.cluster_id,
            is_write=transaction.is_write,
            address=transaction.address,
            size_bytes=transaction.size_bytes,
            now=self._simulator.now,
        )
        transaction.coherence = miss
        transaction.memory_queueing = miss.memory_queueing
        transaction.memory_latency = miss.memory_latency
        equeue = self._equeue
        if miss.writeback_time is not None:
            heappush(
                self._eheap,
                (
                    miss.writeback_time,
                    equeue._seq,
                    self._on_dirty_writeback,
                    (transaction,),
                ),
            )
            equeue._seq += 1
        response_start = miss.response_ready + self._hub_fwd[miss.response_src]
        heappush(
            self._eheap,
            (response_start, equeue._seq, self._on_response_coherent, (state, transaction)),
        )
        equeue._seq += 1

    def _on_dirty_writeback(self, transaction: _Transaction) -> None:
        """A stripped owner's dirty line arrives at the home memory controller."""
        self.coherence.complete_writeback(
            transaction.home,
            transaction.size_bytes,
            transaction.address,
            self._simulator.now,
        )

    def _on_response_coherent(
        self, state: _ThreadState, transaction: _Transaction
    ) -> None:
        """Stages 3+4 for a shared miss: the data supplier (remote owner for
        cache-to-cache transfers, otherwise the home cluster) answers the
        requester, and completion folds in the coherence legs' costs.

        Mirrors :meth:`_on_response` (same MSHR-release and statistics
        conventions) with three differences: the response source comes from
        the directory's action, the response is data-sized whenever a cache
        line moves (including writes satisfied by a cache-to-cache forward),
        and queueing/network/hop totals include the forward and invalidation
        legs resolved in stage 2.
        """
        now = self._simulator.now
        miss = transaction.coherence
        src = state.cluster_id
        is_write = transaction.is_write
        supplier = miss.response_src

        if supplier == src:
            # Home (or owner) is the requesting cluster: no response leg.
            arrival = now
            rsp_queue = 0.0
            rsp_network = 0.0
            rsp_hops = 0
            rsp_messages = 0
        else:
            if miss.carries_data:
                response = self._msg_read_response
            else:
                response = self._msg_write_ack
            response.src = supplier
            response.dst = src
            response.transaction_id = transaction.index
            response_result = self._transfer(response, now)
            transaction.response_result = response_result
            arrival, rsp_queue, rsp_serial, rsp_prop, rsp_hops, _ = response_result
            rsp_network = rsp_queue + rsp_serial + rsp_prop
            rsp_messages = 1

        if miss.is_c2c:
            self.coherence.note_c2c_complete(miss, arrival)

        request_result = transaction.request_result
        if request_result is None:
            req_queue = 0.0
            req_network = 0.0
            req_hops = 0
            req_messages = 0
        else:
            _, req_queue, req_serial, req_prop, req_hops, _ = request_result
            req_network = req_queue + req_serial + req_prop
            req_messages = 1

        completion_time = arrival + self._hub_fwd[src]
        queueing = (
            transaction.mshr_wait
            + req_queue
            + miss.extra_queueing
            + miss.memory_queueing
            + rsp_queue
        )
        network_latency = req_network + miss.extra_network + rsp_network
        hops = req_hops + miss.extra_hops + rsp_hops
        messages = req_messages + miss.extra_messages + rsp_messages

        # MSHR release (TokenPool.release_at, inlined to a heap push).
        heappush(state.hub.mshr_pool._releases, completion_time)
        state.completions[transaction.index] = completion_time
        if completion_time > self._makespan:
            self._makespan = completion_time

        # TransactionStats.record, inlined (reference implementation there).
        stats = self.stats
        if stats._derived:
            stats._derived.clear()
        stats._samples.append(
            (
                completion_time - transaction.issue_time,
                queueing,
                network_latency,
                transaction.memory_latency,
            )
        )
        stats.requests += 1
        if is_write:
            stats.writes += 1
        else:
            stats.reads += 1
        stats.memory_bytes += transaction.size_bytes
        stats.network_hops += hops
        stats.network_messages += messages

        sojourns = self._sojourns
        if sojourns is not None:
            sojourns.append(completion_time - transaction.arrival_time)

        recorder = self._obs_timeline
        if recorder is not None:
            recorder.record_transaction(state, transaction, now, completion_time)

        self._try_schedule_issue(state)

    def _on_response(self, state: _ThreadState, transaction: _Transaction) -> None:
        """Stages 3+4: the response message returns to the requesting cluster
        and the data (or acknowledgement) reaches the core.

        The response transfer is the last resource reservation of the
        transaction, and it yields the completion time analytically, so the
        completion bookkeeping (MSHR release, window slot, statistics) is
        folded into this handler instead of costing a fourth calendar event:
        the MSHR pool and the issue window both accept future timestamps, and
        the next miss this completion unblocks cannot be eligible before the
        completion time it is gated on.

        MSHR timing note: registering the release here (with the future
        completion time) means a token is visibly held from response
        processing until completion, so acquires in that span can observe
        occupancy.  The previous four-event pipeline registered the release
        *at* completion with the then-current timestamp, which an immediately
        following acquire would expire -- the pool effectively never pushed
        back.  This is a deliberate tightening of the MSHR model; it only
        changes results when a cluster holds more than ``mshrs_per_cluster``
        (64) transactions between response and completion, which no shipped
        workload reaches (threads_per_cluster x window <= 64 throughout).
        """
        now = self._simulator.now
        src = state.cluster_id
        is_write = transaction.is_write
        request_result = transaction.request_result
        if request_result is None:
            # Local miss: no interconnect contribution on either leg.
            completion_time = now + self._hub_fwd[src]
            queueing = transaction.mshr_wait + transaction.memory_queueing
            network_latency = 0.0
            hops = 0
            messages = 0
        else:
            if is_write:
                response = self._msg_write_ack
            else:
                response = self._msg_read_response
            response.src = transaction.home
            response.dst = src
            response.transaction_id = transaction.index
            response_result = self._transfer(response, now)
            transaction.response_result = response_result
            arrival, rsp_queue, rsp_serial, rsp_prop, rsp_hops, _ = response_result
            _, req_queue, req_serial, req_prop, req_hops, _ = request_result
            completion_time = arrival + self._hub_fwd[src]
            queueing = (
                transaction.mshr_wait
                + req_queue
                + transaction.memory_queueing
                + rsp_queue
            )
            network_latency = (
                req_queue + req_serial + req_prop + rsp_queue + rsp_serial + rsp_prop
            )
            hops = req_hops + rsp_hops
            messages = 2

        # MSHR release (TokenPool.release_at, inlined to a heap push).
        heappush(state.hub.mshr_pool._releases, completion_time)
        state.completions[transaction.index] = completion_time
        if completion_time > self._makespan:
            self._makespan = completion_time

        # TransactionStats.record, inlined (reference implementation there).
        stats = self.stats
        if stats._derived:
            stats._derived.clear()
        stats._samples.append(
            (
                completion_time - transaction.issue_time,
                queueing,
                network_latency,
                transaction.memory_latency,
            )
        )
        stats.requests += 1
        if is_write:
            stats.writes += 1
        else:
            stats.reads += 1
        stats.memory_bytes += transaction.size_bytes
        stats.network_hops += hops
        stats.network_messages += messages

        sojourns = self._sojourns
        if sojourns is not None:
            sojourns.append(completion_time - transaction.arrival_time)

        recorder = self._obs_timeline
        if recorder is not None:
            recorder.record_transaction(state, transaction, now, completion_time)

        # This completion may free the window slot the thread's next miss is
        # waiting for.
        self._try_schedule_issue(state)

    # ------------------------------------------------------------- result assembly
    def _build_result(self, trace: PackedTrace, makespan: float) -> WorkloadResult:
        elapsed = max(makespan, 1e-12)
        dynamic_power = self.network.dynamic_power_w(elapsed)
        static_power = max(
            self.network.static_power_w(), self.configuration.network_static_power_w
        )
        token_wait = 0.0
        arbiter = getattr(self.network, "arbiter", None)
        if arbiter is not None and hasattr(arbiter, "average_wait_s"):
            token_wait = arbiter.average_wait_s()
        coherence = self.coherence
        if coherence is not None:
            cstats = coherence.stats
            coherence_fields = dict(
                coherence_enabled=True,
                shared_requests=cstats.shared_requests,
                invalidations_sent=cstats.invalidations_sent,
                invalidation_broadcasts=cstats.broadcasts_used,
                invalidation_unicasts=cstats.unicast_invalidations,
                average_invalidation_latency_s=cstats.invalidation_latency.mean,
                cache_to_cache_transfers=cstats.c2c_transfers,
                average_cache_to_cache_latency_s=cstats.c2c_latency.mean,
                dirty_writebacks=cstats.dirty_writebacks,
                broadcast_occupancy=coherence.broadcast_occupancy(elapsed),
            )
        else:
            coherence_fields = {}
        injector = self.fault_injector
        if injector is not None:
            fstats = injector.stats
            fault_fields = dict(
                faults_enabled=True,
                fault_wavelengths_disabled=fstats.wavelengths_disabled,
                fault_links_degraded=fstats.links_degraded,
                fault_tokens_lost=fstats.tokens_lost,
                fault_token_regen_wait_s=fstats.token_regen_wait_s,
                fault_dram_timeouts=fstats.dram_timeouts,
                fault_dram_retry_s=fstats.dram_retry_s,
            )
        else:
            fault_fields = {}
        if self._open_loop and self._sojourns is not None:
            # Realized offered load: requests over the arrival-schedule span
            # (the slowest thread's final arrival).  Dividing achieved by
            # this is exactly the schedule-slip ratio -- it only drops below
            # one when the replay finished later than the arrivals did -- so
            # saturation detection is immune to the finite-trace tail bias
            # of the nominal process rate.
            arrival_span = max(
                (state.arrival_clock for state in self._threads.values()),
                default=0.0,
            )
            offered = (
                self.stats.requests / arrival_span
                if arrival_span > 0.0
                else self._offered_rps
            )
            achieved = self.stats.requests / elapsed
            ordered = sorted(self._sojourns)
            arrival_fields = dict(
                offered_rps=offered,
                achieved_rps=achieved,
                saturated=offered > 0.0 and achieved < 0.95 * offered,
                p50_sojourn_ns=_nearest_rank(ordered, 0.50) * 1e9,
                p95_sojourn_ns=_nearest_rank(ordered, 0.95) * 1e9,
                p99_sojourn_ns=_nearest_rank(ordered, 0.99) * 1e9,
            )
        else:
            arrival_fields = {}
        return WorkloadResult(
            workload=trace.name,
            configuration=self.configuration.name,
            num_requests=self.stats.requests,
            execution_time_s=makespan,
            achieved_bandwidth_bytes_per_s=self.stats.memory_bytes / elapsed,
            average_latency_s=self.stats.latency.mean,
            p99_latency_s=self.stats.latency_histogram.percentile(0.99) * 1e-9,
            network_dynamic_power_w=dynamic_power,
            network_static_power_w=static_power,
            network_energy_j=self.network.total_dynamic_energy_j,
            network_messages=self.network.messages_sent,
            network_hops=self.stats.network_hops,
            memory_bytes=self.stats.memory_bytes,
            average_token_wait_s=token_wait,
            average_queueing_delay_s=self.stats.queueing.mean,
            is_synthetic="splash" not in trace.description.lower(),
            **coherence_fields,
            **fault_fields,
            **arrival_fields,
        )


def simulate_workload(
    configuration: SystemConfiguration,
    workload,
    num_requests: Optional[int] = None,
    seed: int = 1,
    corona_config: CoronaConfig = CORONA_DEFAULT,
    window_depth: Optional[int] = None,
    coherence: Optional[CoherenceConfig] = None,
    faults: Optional[FaultSpec] = None,
    observability: Optional[ObservabilitySpec] = None,
) -> WorkloadResult:
    """Convenience wrapper: generate a workload's trace and replay it.

    ``workload`` is any object with ``generate(seed, num_requests)`` and a
    ``window`` attribute (both synthetic and SPLASH-2 workloads qualify);
    workloads that also offer ``generate_packed`` stream straight into the
    packed columns, skipping record-object construction entirely.  Pass a
    :class:`~repro.coherence.engine.CoherenceConfig` to enable the timed
    MOESI directory for shared-tagged records, and/or a
    :class:`~repro.faults.spec.FaultSpec` to replay on deterministically
    degraded hardware.
    """
    trace = generate_packed_trace(workload, seed=seed, num_requests=num_requests)
    depth = window_depth if window_depth is not None else getattr(workload, "window", 4)
    simulator = SystemSimulator(
        configuration=configuration,
        corona_config=corona_config,
        window_depth=depth,
        coherence=coherence,
        faults=faults,
        observability=observability,
    )
    return simulator.run(trace)
