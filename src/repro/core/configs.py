"""The five system configurations evaluated in the paper (Section 4).

=============  =========================  ==========================
Configuration  On-stack interconnect      Memory interconnect
=============  =========================  ==========================
XBar/OCM       Optical crossbar, 20 TB/s  Optical, 10.24 TB/s, 20 ns
HMesh/OCM      Electrical mesh, 1.28 TB/s Optical, 10.24 TB/s, 20 ns
LMesh/OCM      Electrical mesh, 0.64 TB/s Optical, 10.24 TB/s, 20 ns
HMesh/ECM      Electrical mesh, 1.28 TB/s Electrical, 0.96 TB/s, 20 ns
LMesh/ECM      Electrical mesh, 0.64 TB/s Electrical, 0.96 TB/s, 20 ns
=============  =========================  ==========================

``XBar/OCM`` is the Corona design; ``LMesh/ECM`` is the all-electrical
baseline every speedup in Figure 8 is normalized to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.core.config import CoronaConfig, CORONA_DEFAULT
from repro.memory.ecm import ElectricallyConnectedMemory
from repro.memory.ocm import OpticallyConnectedMemory
from repro.memory.system import MemorySystem
from repro.network.crossbar import OpticalCrossbar
from repro.network.mesh import high_performance_mesh, low_performance_mesh
from repro.network.topology import Interconnect


@dataclass(frozen=True)
class SystemConfiguration:
    """One evaluated system: an on-stack network plus a memory system."""

    name: str
    network_name: str
    memory_name: str
    network_factory: Callable[[CoronaConfig], Interconnect]
    memory_factory: Callable[[CoronaConfig], MemorySystem]
    #: Continuous on-chip network power assumed by the paper for this network
    #: (26 W for the crossbar; the meshes dissipate traffic-dependent dynamic
    #: power instead, reported by the network model itself).
    network_static_power_w: float = 0.0
    #: Whether the design includes the optical broadcast bus (Section 3.2.2).
    #: Only the photonic Corona stack carries it; on electrical baselines
    #: coherence invalidations fall back to per-sharer unicasts.
    has_broadcast_bus: bool = False

    def build_network(self, config: CoronaConfig = CORONA_DEFAULT) -> Interconnect:
        return self.network_factory(config)

    def build_memory(self, config: CoronaConfig = CORONA_DEFAULT) -> MemorySystem:
        return self.memory_factory(config)

    @property
    def is_corona(self) -> bool:
        return self.network_name == "XBar" and self.memory_name == "OCM"


def crossbar_network(config: CoronaConfig) -> Interconnect:
    """The Section 3.2 optical crossbar, sized from ``config``.

    Public so user modules (scenario ``modules`` entries, the Scenario API's
    ``@register_configuration`` factories) can compose custom
    :class:`SystemConfiguration`s from the same building blocks the five
    paper configurations use.
    """
    return OpticalCrossbar(
        num_clusters=config.num_clusters,
        clock_hz=config.clock_hz,
        channel_bandwidth_bytes_per_s=config.crossbar_channel_bandwidth_bytes_per_s,
        max_propagation_cycles=config.crossbar_max_propagation_cycles,
        ring_round_trip_cycles=config.token_ring_round_trip_cycles,
    )


def hmesh_network(config: CoronaConfig) -> Interconnect:
    """The high-performance (1.28 TB/s) electrical mesh baseline."""
    return high_performance_mesh(
        num_clusters=config.num_clusters, clock_hz=config.clock_hz
    )


def lmesh_network(config: CoronaConfig) -> Interconnect:
    """The low-performance (0.64 TB/s) electrical mesh baseline."""
    return low_performance_mesh(
        num_clusters=config.num_clusters, clock_hz=config.clock_hz
    )


def ocm_memory(config: CoronaConfig) -> MemorySystem:
    """Optically connected memory: 10.24 TB/s aggregate at 64 controllers."""
    return OpticallyConnectedMemory(num_controllers=config.num_clusters)


def ecm_memory(config: CoronaConfig) -> MemorySystem:
    """Electrically connected memory: the 0.96 TB/s package-pin baseline."""
    return ElectricallyConnectedMemory(num_controllers=config.num_clusters)


_CONFIGURATIONS: List[SystemConfiguration] = [
    SystemConfiguration(
        name="LMesh/ECM",
        network_name="LMesh",
        memory_name="ECM",
        network_factory=lmesh_network,
        memory_factory=ecm_memory,
    ),
    SystemConfiguration(
        name="HMesh/ECM",
        network_name="HMesh",
        memory_name="ECM",
        network_factory=hmesh_network,
        memory_factory=ecm_memory,
    ),
    SystemConfiguration(
        name="LMesh/OCM",
        network_name="LMesh",
        memory_name="OCM",
        network_factory=lmesh_network,
        memory_factory=ocm_memory,
    ),
    SystemConfiguration(
        name="HMesh/OCM",
        network_name="HMesh",
        memory_name="OCM",
        network_factory=hmesh_network,
        memory_factory=ocm_memory,
    ),
    SystemConfiguration(
        name="XBar/OCM",
        network_name="XBar",
        memory_name="OCM",
        network_factory=crossbar_network,
        memory_factory=ocm_memory,
        network_static_power_w=26.0,
        has_broadcast_bus=True,
    ),
]

#: The reference configuration every speedup is normalized against.
BASELINE_CONFIGURATION_NAME = "LMesh/ECM"

#: Plot order used by the paper's figures (baseline first, Corona last).
CONFIGURATION_ORDER = [c.name for c in _CONFIGURATIONS]


def all_configurations() -> List[SystemConfiguration]:
    """The five configurations in the paper's plot order."""
    return list(_CONFIGURATIONS)


def configuration_by_name(name: str) -> SystemConfiguration:
    """Look up a configuration by its paper name (e.g. ``"XBar/OCM"``)."""
    table: Dict[str, SystemConfiguration] = {c.name: c for c in _CONFIGURATIONS}
    if name not in table:
        raise KeyError(
            f"unknown configuration {name!r}; known: {sorted(table)}"
        )
    return table[name]


def corona_configuration() -> SystemConfiguration:
    """The Corona design point (XBar/OCM)."""
    return configuration_by_name("XBar/OCM")
