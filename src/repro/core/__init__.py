"""The Corona architecture: configuration, system assembly and replay engine.

This package is the paper's primary contribution expressed as code:

* :mod:`repro.core.config` -- the Corona design point (Table 1) and the
  architecture-level derived quantities (peak flops, bandwidths).
* :mod:`repro.core.configs` -- the five evaluated system configurations
  (XBar/OCM, HMesh/OCM, LMesh/OCM, HMesh/ECM, LMesh/ECM).
* :mod:`repro.core.system` -- the trace-driven system simulator that replays a
  workload trace through clusters, an interconnect and a memory system, with
  finite MSHRs, queues and channel bandwidths throughout.
* :mod:`repro.core.results` -- result containers and speedup/geomean analysis.
"""

from repro.core.config import CoronaConfig, CORONA_DEFAULT
from repro.core.configs import (
    SystemConfiguration,
    all_configurations,
    configuration_by_name,
    corona_configuration,
)
from repro.core.results import ConfigurationResult, WorkloadResult, speedup_table
from repro.core.system import SystemSimulator, TransactionStats

__all__ = [
    "CoronaConfig",
    "CORONA_DEFAULT",
    "SystemConfiguration",
    "all_configurations",
    "configuration_by_name",
    "corona_configuration",
    "SystemSimulator",
    "TransactionStats",
    "WorkloadResult",
    "ConfigurationResult",
    "speedup_table",
]
