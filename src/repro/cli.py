"""Command-line interface for the Corona reproduction.

Installed as ``corona-repro`` (see ``pyproject.toml``).  Subcommands:

``run``
    Execute a scenario JSON file through the Scenario API (the stable
    entry point everything below is built on).  ``--check-determinism``
    instead replays the scenario in fresh processes and diffs result
    digests (exit code 4 on divergence).
``lint``
    Static determinism & unit-flow analysis over the source tree, gated
    by a committed baseline of grandfathered findings.
``scenario``
    ``init`` (write a template scenario file), ``validate`` (parse + check
    names against the registries) and ``list`` (show every registered
    configuration, workload and experiment).
``sweep``
    ``run`` (execute a sweep spec file or a registered sweep by name, with
    ``--directory`` checkpointing and resume), ``expand`` (preview the grid
    points a spec expands to) and ``status`` (progress of a sweep
    directory).
``diff``
    Compare two runs (result JSON/CSV, sweep directories, bench
    snapshots) and emit a ranked divergence report; exit code 5 when a
    divergence crosses the threshold.
``trace``
    ``info`` (inspect a trace file, either format), ``convert``
    (text <-> packed binary, the on-disk import hook for externally
    generated traces) and ``view`` (summarize a ``--timeline-out``
    artifact: span histograms, slowest transactions, fault events).
``tables``
    Print Tables 1-4 regenerated from the models.
``inventory``
    Print the Table 2 optical inventory for an arbitrary cluster count.
``power``
    Print the chip-level power/area roll-up and the memory-interconnect power
    comparison.
``simulate``
    Replay one workload on one or more configurations and print the results.
``evaluate``
    Run the full evaluation matrix and print (or write) the markdown report.
``sensitivity``
    Print the physical-design sensitivity sweeps (waveguide loss, ring loss,
    laser power).

``simulate`` and ``evaluate`` are thin translators: each builds a
:class:`~repro.api.scenario.Scenario` from its flags and executes it through
:func:`repro.api.run`, so the legacy flags and a hand-written scenario file
drive the exact same machinery (and produce bit-identical results --
equivalence-tested).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.api import (
    CONFIGURATIONS,
    EXPERIMENTS,
    WORKLOADS,
    ExperimentSpec,
    OutputSpec,
    ScaleSpec,
    Scenario,
    ScenarioError,
    SystemSpec,
    WorkloadSpec,
    load_scenario,
)
from repro import __version__
from repro.api import run as run_scenario
from repro.core.configs import CONFIGURATION_ORDER
from repro.harness.experiments import (
    COHERENCE_SWEEP_CONFIGURATIONS,
    COHERENCE_SWEEP_FRACTIONS,
)
from repro.harness.parallel import WorkerSetupError
from repro.harness.resilience import (
    PairFailureError,
    RetryPolicy,
    summarize_failures,
)
from repro.harness.sensitivity import physical_design_sweeps_text
from repro.harness.tables import format_table, render_all_tables
from repro.obs.log import configure_logging
from repro.photonics.inventory import corona_inventory
from repro.power.chip import corona_chip_power
from repro.power.electrical import electrical_memory_interconnect_power_w
from repro.power.optical import optical_memory_interconnect_power_w
from repro.trace.splash2 import SPLASH2_ORDER


def _workload_name(name: str) -> str:
    """Canonical registry name for ``name`` (case-insensitive match)."""
    for registered in WORKLOADS.names():
        if registered.lower() == name.lower():
            return registered
    raise SystemExit(
        f"unknown workload {name!r}; choose one of {WORKLOADS.names()}"
    )


# ---------------------------------------------------------------------------
# Static report commands (tables / inventory / power / sensitivity)
# ---------------------------------------------------------------------------

def _cmd_tables(_args: argparse.Namespace) -> int:
    print(render_all_tables())
    return 0


def _cmd_inventory(args: argparse.Namespace) -> int:
    inventory = corona_inventory(clusters=args.clusters)
    print(inventory.report())
    return 0


def _cmd_power(_args: argparse.Namespace) -> int:
    print("Chip power / area roll-up (Section 3.1):")
    rows = []
    for anchor in ("penryn", "silverthorne"):
        report = corona_chip_power(anchor=anchor)
        rows.append(
            (
                anchor,
                f"{report.processor_power_w:.1f}",
                f"{report.total_power_w:.1f}",
                f"{report.core_die_area_mm2:.0f}",
            )
        )
    print(
        format_table(
            ["anchor", "processor W", "total W", "core die mm^2"], rows
        )
    )
    print()
    print("Memory interconnect power at 10.24 TB/s:")
    print(f"  optical (OCM):    {optical_memory_interconnect_power_w(10.24e12):7.2f} W")
    print(f"  electrical:       {electrical_memory_interconnect_power_w(10.24e12):7.2f} W")
    return 0


def _cmd_sensitivity(_args: argparse.Namespace) -> int:
    print(physical_design_sweeps_text())
    return 0


# ---------------------------------------------------------------------------
# Legacy translators: simulate / evaluate -> Scenario (deprecated)
# ---------------------------------------------------------------------------

def _warn_deprecated(command: str, replacement: str) -> None:
    """Flag a legacy subcommand: DeprecationWarning for programmatic callers
    plus a stderr pointer for humans.  Results and stdout are unchanged (the
    translators stay equivalence-tested until removal)."""
    import warnings

    message = (
        f"`corona-repro {command}` is deprecated; use {replacement} "
        f"(see README: \"Migrating from simulate/evaluate\")"
    )
    warnings.warn(message, DeprecationWarning, stacklevel=3)
    print(f"note: {message}", file=sys.stderr)


def _cmd_simulate(args: argparse.Namespace) -> int:
    """One workload across configurations, as a streamed scenario run."""
    _warn_deprecated("simulate", "`corona-repro run <scenario.json>`")
    workload = _workload_name(args.workload)
    configurations = tuple(args.configurations or CONFIGURATION_ORDER)
    scenario = Scenario(
        name=f"simulate-{workload}",
        system=SystemSpec(configurations=configurations),
        workloads=(WorkloadSpec(name=workload, num_requests=args.requests),),
        scale=ScaleSpec(seed=args.seed),
    )
    print(
        f"{'configuration':<12}{'speedup':>9}{'bw (TB/s)':>11}"
        f"{'latency (ns)':>14}{'power (W)':>11}"
    )
    baseline_time: List[float] = []

    def stream(result) -> None:
        if not baseline_time:
            baseline_time.append(result.execution_time_s)
        print(
            f"{result.configuration:<12}"
            f"{baseline_time[0] / result.execution_time_s:>9.2f}"
            f"{result.achieved_bandwidth_tbps:>11.3f}"
            f"{result.average_latency_ns:>14.1f}"
            f"{result.network_power_w:>11.2f}"
        )

    run_scenario(scenario, on_result=stream)
    return 0


def _filter_configurations(terms: Optional[List[str]]) -> List[str]:
    """Configuration names matching any of the substring ``terms``."""
    if not terms:
        return list(CONFIGURATION_ORDER)
    matched = [
        name
        for name in CONFIGURATION_ORDER
        if any(term.lower() in name.lower() for term in terms)
    ]
    if not matched:
        raise SystemExit(
            f"no configuration matches {terms!r}; known: {CONFIGURATION_ORDER}"
        )
    return matched


def _evaluate_workload_names(args: argparse.Namespace) -> List[str]:
    """The matrix's workload names after --skip-splash/--workloads."""
    names = [
        name
        for name in WORKLOADS.default_names()
        if not (args.skip_splash and name in SPLASH2_ORDER)
    ]
    if args.workloads:
        terms = [term.lower() for term in args.workloads]
        names = [
            name
            for name in names
            if any(term in name.lower() for term in terms)
        ]
        if not names:
            raise SystemExit(
                f"no workload matches {args.workloads!r}; known: "
                f"{WORKLOADS.names()}"
            )
    return names


def _scenario_from_evaluate(args: argparse.Namespace) -> Scenario:
    """Translate the legacy ``evaluate`` flags into a scenario."""
    configuration_names = _filter_configurations(args.configs)
    experiments = ()
    if args.coherence:
        # The sweep honors --configs: restrict the default sweep trio to the
        # filtered configurations, falling back to the filtered set itself
        # (never to configurations the user excluded).
        sweep_configurations = [
            name
            for name in COHERENCE_SWEEP_CONFIGURATIONS
            if name in configuration_names
        ] or configuration_names
        experiments = (
            ExperimentSpec(
                name="coherence-sweep",
                params={
                    "fractions": list(args.sharing_fractions),
                    "configurations": list(sweep_configurations),
                },
            ),
        )
    return Scenario(
        name=f"evaluate-{args.scale}",
        description="translated from the legacy `evaluate` flags",
        system=SystemSpec(configurations=tuple(configuration_names)),
        workloads=tuple(
            WorkloadSpec(name=name) for name in _evaluate_workload_names(args)
        ),
        scale=ScaleSpec(tier=args.scale),
        experiments=experiments,
        jobs=args.jobs,
        output=OutputSpec(report=args.output),
    )


def _cmd_evaluate(args: argparse.Namespace) -> int:
    _warn_deprecated(
        "evaluate",
        "`corona-repro run <scenario.json>` (write one with "
        "`corona-repro scenario init`) or `corona-repro sweep run`",
    )
    scenario = _scenario_from_evaluate(args)
    progress = print if args.verbose else None
    result = run_scenario(scenario, jobs=args.jobs, progress=progress)
    if args.output:
        print(f"report written to {result.written['report']}")
    else:
        print(result.to_markdown())
    return 0


# ---------------------------------------------------------------------------
# Scenario API commands: run / scenario init|validate|list
# ---------------------------------------------------------------------------

def _scenario_error_message(path: str, exc: ScenarioError) -> str:
    """Prefix a scenario error with its file path exactly once.

    File-level errors from :func:`load_scenario` already carry the path as
    their field (Path-normalized, e.g. ``./x.json`` becomes ``x.json``);
    re-prefixing those would print ``x.json: x.json: ...``.
    """
    from pathlib import Path

    message = str(exc)
    if message.startswith(f"{Path(path)}:"):
        return message
    return f"{path}: {message}"


#: Exit code when pairs/points failed after exhausting their retries (a
#: clean partial run under ``--allow-failures`` still exits 0).
EXIT_FAILURES = 3
#: ``run --check-determinism`` found diverging result digests.
EXIT_DETERMINISM = 4
#: ``lint`` found findings not covered by the baseline.
EXIT_LINT_FINDINGS = 1
#: ``diff`` found gating divergences between the two runs.
EXIT_DIVERGENCE = 5


def _policy_from_args(args: argparse.Namespace) -> Optional[RetryPolicy]:
    """The resilience policy the ``--timeout/--retries/--allow-failures``
    flags describe, or None when none was given (historic behavior)."""
    if (
        args.timeout is None
        and args.retries is None
        and not args.allow_failures
    ):
        return None
    policy = RetryPolicy(
        timeout_s=args.timeout,
        allow_failures=args.allow_failures,
    )
    if args.retries is not None:
        from dataclasses import replace

        policy = replace(policy, max_retries=args.retries)
    return policy


def _print_failures(failures) -> None:
    counts = summarize_failures(failures)
    rendering = ", ".join(f"{count} {kind}" for kind, count in counts.items())
    print(f"{len(failures)} pair(s) failed after retries ({rendering}):")
    for failure in failures:
        print(
            f"  {failure.workload} {failure.configuration} "
            f"[{failure.kind}, {failure.attempts} attempt(s)] "
            f"{failure.message}"
        )


def _cmd_run(args: argparse.Namespace) -> int:
    try:
        scenario = load_scenario(args.scenario)
    except ScenarioError as exc:
        raise SystemExit(_scenario_error_message(args.scenario, exc)) from None
    if args.arrival:
        import json as json_module

        try:
            arrival = json_module.loads(args.arrival)
        except json_module.JSONDecodeError as exc:
            raise SystemExit(f"--arrival: not valid JSON: {exc}") from None
        try:
            scenario = scenario.with_field("workloads[*].arrival", arrival)
        except ScenarioError as exc:
            raise SystemExit(f"--arrival: {exc}") from None
    if args.output:
        from dataclasses import replace

        scenario = replace(
            scenario, output=OutputSpec(report=args.output).derived()
        )
    observability = _observability_from_args(args, scenario.observability)
    if observability is not scenario.observability:
        from dataclasses import replace

        scenario = replace(scenario, observability=observability)
    if args.check_determinism:
        from repro.analysis.runtime import check_determinism

        try:
            check = check_determinism(scenario, jobs=args.jobs)
        except (RuntimeError, ValueError) as exc:
            raise SystemExit(str(exc)) from None
        print(check.summary())
        return 0 if check.ok else EXIT_DETERMINISM
    progress = print if args.verbose else None
    try:
        result = run_scenario(
            scenario,
            jobs=args.jobs,
            progress=progress,
            policy=_policy_from_args(args),
        )
    except ScenarioError as exc:
        raise SystemExit(_scenario_error_message(args.scenario, exc)) from None
    except WorkerSetupError as exc:
        raise SystemExit(str(exc)) from None
    except PairFailureError as exc:
        _print_failures(exc.failures)
        return EXIT_FAILURES
    if result.written:
        for kind, path in sorted(result.written.items()):
            print(f"{kind} written to {path}")
        print(
            f"{len(result.results)} results "
            f"({result.wall_clock_seconds:.1f} s wall clock)"
        )
    else:
        print(result.to_markdown())
    if result.failures:
        # --allow-failures: the partial run is the requested outcome; report
        # what was skipped and exit clean.
        _print_failures(result.failures)
        print("continuing with partial results (--allow-failures)")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    import json as json_module
    from pathlib import Path

    from repro.analysis import (
        AnalysisError,
        analyze_paths,
        load_baseline,
        partition_findings,
        render_json,
        render_rule_catalog,
        render_text,
        write_baseline,
    )

    if args.rules:
        print(render_rule_catalog())
        return 0
    paths = [Path(p) for p in (args.paths or ["src/repro"])]
    baseline_path = Path(args.baseline)
    try:
        report = analyze_paths(paths, select=args.select, ignore=args.ignore)
        baseline = load_baseline(baseline_path)
    except AnalysisError as exc:
        raise SystemExit(str(exc)) from None
    if args.update_baseline:
        write_baseline(baseline_path, report.findings)
        print(
            f"baseline written to {baseline_path} "
            f"({len(report.findings)} findings)"
        )
        return 0
    new, baselined, stale = partition_findings(report.findings, baseline)
    if args.format == "json":
        print(
            json_module.dumps(
                render_json(report, new, baselined, stale), indent=2
            )
        )
    else:
        print(render_text(report, new, baselined, stale))
    return EXIT_LINT_FINDINGS if new else 0


def _template_scenario(args: argparse.Namespace) -> Scenario:
    for name in args.configurations or []:
        if name not in CONFIGURATIONS:
            raise SystemExit(
                f"unknown configuration {name!r}; choose one of "
                f"{CONFIGURATIONS.names()}"
            )
    configurations = tuple(args.configurations or CONFIGURATION_ORDER)
    workload_names = [
        _workload_name(name)
        for name in (args.workloads or WORKLOADS.default_names())
    ]
    return Scenario(
        name="example",
        description=(
            "Template scenario written by `corona-repro scenario init`. "
            "Every field is optional and shown with its default; see the "
            "README's Scenario API section for the schema."
        ),
        system=SystemSpec(configurations=configurations),
        workloads=tuple(WorkloadSpec(name=name) for name in workload_names),
        scale=ScaleSpec(tier=args.scale),
        jobs=args.jobs,
        output=OutputSpec(report=args.report).derived() if args.report
        else OutputSpec(),
    )


def _cmd_scenario_init(args: argparse.Namespace) -> int:
    from pathlib import Path

    path = Path(args.path)
    if path.exists() and not args.force:
        raise SystemExit(f"{path} exists; pass --force to overwrite")
    scenario = _template_scenario(args)
    scenario.save(path)
    print(
        f"wrote {path}: {len(scenario.system.configurations)} configurations "
        f"x {len(scenario.workloads)} workloads at scale "
        f"{scenario.scale.tier!r}"
    )
    print(f"run it with: corona-repro run {path}")
    return 0


def _cmd_scenario_validate(args: argparse.Namespace) -> int:
    try:
        scenario = load_scenario(args.path)
        scenario.validate()
    except ScenarioError as exc:
        raise SystemExit(
            f"INVALID: {_scenario_error_message(args.path, exc)}"
        ) from None
    workloads = len(scenario.workloads) or len(WORKLOADS)
    print(
        f"{args.path}: OK ({len(scenario.system.configurations)} "
        f"configurations x {workloads} workloads = "
        f"{len(scenario.system.configurations) * workloads} pairs, "
        f"scale {scenario.scale.tier!r}, jobs {scenario.jobs})"
    )
    return 0


def _cmd_scenario_list(args: argparse.Namespace) -> int:
    import importlib

    from repro.api import SWEEPS

    importlib.import_module("repro.sweeps")  # registers the stock sweeps
    for module in args.modules or []:
        try:
            importlib.import_module(module)
        except ImportError as exc:
            raise SystemExit(f"cannot import {module!r}: {exc}") from None
    sections = [
        ("configurations", CONFIGURATIONS),
        ("workloads", WORKLOADS),
        ("experiments", EXPERIMENTS),
        ("sweeps", SWEEPS),
    ]
    for title, registry_table in sections:
        print(f"{title} ({len(registry_table)}):")
        for name in registry_table.names():
            doc = (registry_table.get(name).__doc__ or "").strip()
            summary = doc.splitlines()[0] if doc else ""
            print(f"  {name:<14} {summary}".rstrip())
        print()
    return 0


# ---------------------------------------------------------------------------
# Sweep commands: run / expand / status
# ---------------------------------------------------------------------------

def _load_sweep_argument(spec_argument: str, **params):
    """A sweep spec from a JSON file path or a registered sweep name.

    ``params`` go to the registered sweep's factory (the ``--scale`` flag);
    a spec *file* is already fully parameterized, so passing any rejects
    the combination loudly instead of silently ignoring the flag.
    Parse/validation failures exit with the clean field-path message (like
    every other subcommand), never a raw traceback.
    """
    from pathlib import Path

    from repro import sweeps

    try:
        if Path(spec_argument).exists():
            if params:
                raise SystemExit(
                    f"{'/'.join(f'--{k}' for k in params)} applies to "
                    f"registered sweep names only; {spec_argument!r} is a "
                    f"spec file (edit the file instead)"
                )
            return sweeps.load_sweep(spec_argument)
        if spec_argument in sweeps.SWEEPS:
            try:
                return sweeps.build_registered_sweep(spec_argument, **params)
            except (TypeError, ValueError) as exc:
                raise SystemExit(
                    f"sweep {spec_argument!r} rejected its parameters: {exc}"
                ) from None
    except ScenarioError as exc:  # SweepError subclasses ScenarioError
        raise SystemExit(_scenario_error_message(spec_argument, exc)) from None
    raise SystemExit(
        f"{spec_argument!r} is neither a sweep spec file nor a registered "
        f"sweep; registered: {sweeps.SWEEPS.names()} (write a spec with the "
        f"README's \"Parameter sweeps\" snippet)"
    )


def _cmd_sweep_run(args: argparse.Namespace) -> int:
    from repro.sweeps import run_sweep

    params = {}
    if args.scale is not None:
        params["scale"] = args.scale
    spec = _load_sweep_argument(args.spec, **params)
    obs_override = _observability_from_args(args, spec.base.observability)
    if obs_override is spec.base.observability:
        obs_override = None  # no flags: each point keeps its own spec
    try:
        outcome = run_sweep(
            spec,
            directory=args.directory,
            jobs=args.jobs,
            progress=print if args.verbose else None,
            resume=not args.fresh,
            policy=_policy_from_args(args),
            observability=obs_override,
        )
    except ScenarioError as exc:  # SweepError subclasses ScenarioError
        raise SystemExit(str(exc)) from None
    except WorkerSetupError as exc:
        raise SystemExit(str(exc)) from None
    except PairFailureError as exc:
        # Completed points are checkpointed and the sinks written before the
        # engine raises; re-running the same command retries just the failed
        # points.
        _print_failures(exc.failures)
        if args.directory:
            print(
                f"completed points are checkpointed in {args.directory}; "
                f"re-run the same command to retry only the failed points"
            )
        return EXIT_FAILURES
    if outcome.skipped_point_ids:
        print(
            f"resumed: {len(outcome.skipped_point_ids)} completed points "
            f"skipped, {len(outcome.executed_point_ids)} executed"
        )
    print(
        f"sweep '{spec.name}': {len(outcome.records)} records from "
        f"{len(outcome.points)} points "
        f"({outcome.wall_clock_seconds:.1f} s wall clock)"
    )
    if outcome.retried_pairs:
        print(f"{outcome.retried_pairs} pair attempt(s) were retried")
    for kind, path in sorted(outcome.written.items()):
        print(f"{kind} written to {path}")
    if outcome.failures:
        flat = [f for fs in outcome.failures.values() for f in fs]
        _print_failures(flat)
        print(
            f"{len(outcome.failures)} point(s) recorded as failed "
            f"(continuing with partial results; they re-run on resume)"
        )
    return 0


def _cmd_sweep_expand(args: argparse.Namespace) -> int:
    from repro.sweeps import expand

    spec = _load_sweep_argument(args.spec)
    try:
        points = expand(spec)
    except ScenarioError as exc:
        raise SystemExit(str(exc)) from None
    axis_names = [axis.name for axis in spec.axes]
    print(
        f"sweep '{spec.name}': {len(points)} points over "
        f"axes {axis_names}"
    )
    for point in points:
        values = ", ".join(
            f"{name}={value!r}" for name, value in point.axis_values.items()
        )
        workload_count = len(point.scenario.workloads) or len(
            WORKLOADS.default_names()
        )
        pairs = len(point.scenario.system.configurations) * workload_count
        print(f"  {point.point_id}  [{values}]  ({pairs} pairs)")
    return 0


def _cmd_sweep_status(args: argparse.Namespace) -> int:
    from repro.sweeps import sweep_status

    try:
        status = sweep_status(args.directory)
    except ScenarioError as exc:
        raise SystemExit(str(exc)) from None
    state = "complete" if status.complete else "in progress"
    print(
        f"sweep '{status.name}': {len(status.completed_ids)}/{status.total} "
        f"points complete ({state})"
    )
    if status.failed_ids or status.retried_pairs or status.quarantined_pairs:
        print(
            f"resilience: {len(status.failed_ids)} failed point(s), "
            f"{status.retried_pairs} retried pair(s), "
            f"{status.quarantined_pairs} quarantined pair(s)"
        )
    failed = set(status.failed_ids)
    timings = status.point_seconds if getattr(args, "timings", False) else {}

    def _annotate(point_id: str) -> str:
        if point_id in timings:
            return f"  ({timings[point_id]:.2f} s replay)"
        return ""

    for point_id in status.completed_ids:
        print(f"  done     {point_id}{_annotate(point_id)}")
    for point_id in status.failed_ids:
        print(f"  failed   {point_id}{_annotate(point_id)}")
    for point_id in status.pending_ids:
        if point_id not in failed:
            print(f"  pending  {point_id}")
    if timings:
        print(f"total replay: {sum(timings.values()):.2f} s")
    return 0


# ---------------------------------------------------------------------------
# Differential analysis
# ---------------------------------------------------------------------------

def _cmd_diff(args: argparse.Namespace) -> int:
    import json as json_module
    from pathlib import Path

    from repro.diffing import (
        DiffLoadError,
        DiffThresholds,
        diff_json_dict,
        diff_markdown,
        diff_runs,
        load_run,
    )

    try:
        baseline = load_run(args.baseline, label=args.baseline)
        current = load_run(args.current, label=args.current)
    except DiffLoadError as exc:
        raise SystemExit(str(exc)) from None
    thresholds = DiffThresholds(
        relative=args.threshold, ks=args.ks_threshold
    )
    try:
        result = diff_runs(baseline, current, thresholds)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    if args.json:
        print(json_module.dumps(diff_json_dict(result), indent=2))
    else:
        print(diff_markdown(result, top=args.top))
    if args.output:
        path = Path(args.output)
        if path.parent and not path.parent.exists():
            path.parent.mkdir(parents=True, exist_ok=True)
        if path.suffix.lower() == ".json":
            path.write_text(
                json_module.dumps(diff_json_dict(result), indent=2) + "\n",
                encoding="utf-8",
            )
        else:
            path.write_text(
                diff_markdown(result, top=args.top) + "\n", encoding="utf-8"
            )
        print(f"diff written to {path}", file=sys.stderr)
    return EXIT_DIVERGENCE if result.gating() else 0


# ---------------------------------------------------------------------------
# Trace file commands
# ---------------------------------------------------------------------------

def _cmd_trace_info(args: argparse.Namespace) -> int:
    from repro.trace.io import trace_summary

    try:
        summary = trace_summary(args.path)
    except (OSError, ValueError) as exc:
        raise SystemExit(str(exc)) from None
    width = max(len(key) for key in summary)
    for key, value in summary.items():
        if isinstance(value, float):
            value = f"{value:.4f}"
        print(f"{key:<{width}}  {value}")
    return 0


def _cmd_trace_convert(args: argparse.Namespace) -> int:
    from repro.trace.io import (
        read_trace_packed,
        sniff_trace_format,
        write_trace,
        write_trace_binary,
    )

    try:
        source_format = sniff_trace_format(args.input)
        packed = read_trace_packed(args.input)
    except (OSError, ValueError) as exc:
        raise SystemExit(str(exc)) from None
    target = args.to
    if target == "auto":
        target = "text" if source_format == "binary" else "binary"
    if target == "binary":
        write_trace_binary(packed, args.output)
    else:
        write_trace(packed, args.output)
    print(
        f"converted {args.input} ({source_format}, "
        f"{packed.total_requests:,} records) -> {args.output} ({target})"
    )
    return 0


def _cmd_trace_view(args: argparse.Namespace) -> int:
    from repro.obs.trace_view import (
        TraceViewError,
        load_timeline,
        render_timeline_summary,
        summarize_timeline,
    )

    try:
        events = load_timeline(args.path)
    except (OSError, TraceViewError) as exc:
        raise SystemExit(str(exc)) from None
    summary = summarize_timeline(events, top=args.top)
    print(render_timeline_summary(summary))
    return 0


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------

def _add_resilience_arguments(parser: argparse.ArgumentParser) -> None:
    """The retry/timeout/partial-results flags shared by run and sweep run."""
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "per-pair wall-clock timeout; a hung pair's worker is killed "
            "and the pair retried (parallel runs only)"
        ),
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help=(
            "max retries per pair for crashes/timeouts (default 2); "
            "deterministic errors are never retried"
        ),
    )
    parser.add_argument(
        "--allow-failures",
        action="store_true",
        help=(
            "record pairs that stay broken as structured failures and "
            "continue with partial results (exit 0) instead of aborting "
            f"with exit code {EXIT_FAILURES}"
        ),
    )


def _add_observability_arguments(parser: argparse.ArgumentParser) -> None:
    """The telemetry flags shared by run and sweep run."""
    parser.add_argument(
        "--progress",
        action="store_true",
        help=(
            "print a heartbeat line to stderr (pairs done, pairs/s, ETA, "
            "retried/failed counts)"
        ),
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        help=(
            "sample resource utilization on simulated time into a long-form "
            "CSV (or JSON, by extension); multi-pair runs insert the pair "
            "name before the extension, or write to a {pair} placeholder"
        ),
    )
    parser.add_argument(
        "--timeline-out",
        metavar="PATH",
        help=(
            "record per-transaction spans and fault events as Chrome "
            "trace_event JSON (open in Perfetto / chrome://tracing, or "
            "summarize with 'corona-repro trace view')"
        ),
    )
    parser.add_argument(
        "--samples-out",
        metavar="PATH",
        help=(
            "export each pair's raw per-transaction latency (and open-loop "
            "sojourn) samples as corona-samples/1 JSON; 'corona-repro diff' "
            "reads these for exact percentile and KS-distance comparison"
        ),
    )


def _execution_parent() -> argparse.ArgumentParser:
    """The execution flags ``run`` and ``sweep run`` share, defined once and
    attached to both subparsers via ``parents=``: worker count, verbosity,
    the telemetry flags and the resilience policy flags."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--jobs",
        type=int,
        default=None,
        help=(
            "override the scenario's/spec's worker count "
            "(1 = serial, 0 = all CPUs)"
        ),
    )
    parent.add_argument("--verbose", action="store_true")
    _add_observability_arguments(parent)
    _add_resilience_arguments(parent)
    return parent


def _observability_from_args(args: argparse.Namespace, base):
    """The scenario's ObservabilitySpec overridden by the CLI flags.

    Returns ``base`` untouched (possibly ``None``) when no telemetry flag
    was given, so flag-free invocations stay bit-identical to before the
    flags existed.
    """
    from dataclasses import replace as dc_replace

    from repro.obs.spec import ObservabilitySpec

    if not (
        args.progress
        or args.metrics_out
        or args.timeline_out
        or args.samples_out
    ):
        return base
    spec = base if base is not None else ObservabilitySpec()
    updates = {}
    if args.progress:
        updates["progress"] = True
    if args.metrics_out:
        updates["metrics_path"] = args.metrics_out
    if args.timeline_out:
        updates["timeline_path"] = args.timeline_out
    if args.samples_out:
        updates["samples_path"] = args.samples_out
    return dc_replace(spec, **updates)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="corona-repro",
        description="Reproduction of Corona (ISCA 2008): tables, figures and simulations.",
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"corona-repro {__version__}",
    )
    parser.add_argument(
        "-v",
        action="count",
        default=0,
        dest="verbosity",
        help="raise the log level (-v = INFO, -vv = DEBUG); applies to "
        "workers too",
    )
    parser.add_argument(
        "-q",
        action="count",
        default=0,
        dest="quiet",
        help="lower the log level (ERROR and up only)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    execution_flags = _execution_parent()

    run_p = subparsers.add_parser(
        "run",
        help="execute a scenario JSON file",
        parents=[execution_flags],
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=(
            "scenario files:\n"
            "  A scenario file serializes everything a run needs:\n"
            "  configurations (by registry name, plus CoronaConfig\n"
            "  overrides), workloads with parameters and sharing profiles,\n"
            "  the scale tier, coherence settings, follow-on experiments,\n"
            "  worker count and output sinks.  Start from\n"
            "  `corona-repro scenario init`, check a file with\n"
            "  `corona-repro scenario validate`, and see the registered\n"
            "  names with `corona-repro scenario list`.  User modules named\n"
            "  in the scenario's \"modules\" list can register custom\n"
            "  configurations and workloads (see examples/custom_scenario.py)."
        ),
    )
    run_p.add_argument("scenario", help="path to a scenario JSON file")
    run_p.add_argument(
        "--output",
        help=(
            "write the markdown report here (JSON/CSV result files are "
            "derived next to it), overriding the scenario's output block"
        ),
    )
    run_p.add_argument(
        "--arrival",
        metavar="JSON",
        help=(
            "open-loop arrival process applied to every workload, e.g. "
            "'{\"process\": \"poisson\", \"rate_rps\": 1e10}' (equivalent "
            "to setting workloads[*].arrival in the scenario file)"
        ),
    )
    run_p.add_argument(
        "--check-determinism",
        action="store_true",
        help=(
            "replay the scenario in two fresh spawned processes (output "
            "sinks and observability stripped) and compare SHA-256 result "
            f"digests; exit code {EXIT_DETERMINISM} on divergence"
        ),
    )
    run_p.set_defaults(handler=_cmd_run)

    lint_p = subparsers.add_parser(
        "lint",
        help="static determinism & unit-flow analysis over the source tree",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=(
            "rules:\n"
            "  Determinism rules hunt nondeterminism hazards (set iteration\n"
            "  feeding ordered computation, module-level random.* calls,\n"
            "  wall-clock/env reads outside the harness/obs zone, float\n"
            "  accumulation ordered by set iteration); unit-flow rules\n"
            "  infer units from the _ns/_s/_cycles/_bytes_per_s suffix\n"
            "  convention and flag mixed-unit arithmetic and suffix drops\n"
            "  across binding boundaries.  `lint --rules` lists them.\n"
            "  Suppress one finding with an inline pragma:\n"
            "      x = f()  # lint: ignore[det-set-iter] reason\n"
            "  Grandfathered findings live in lint_baseline.json; the exit\n"
            "  code only reflects *new* findings.  Refresh the baseline\n"
            "  with --update-baseline after deliberate changes."
        ),
    )
    lint_p.add_argument(
        "paths",
        nargs="*",
        help="files or directories to scan (default: src/repro)",
    )
    lint_p.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (json follows the corona-lint/1 schema)",
    )
    lint_p.add_argument(
        "--baseline", default="lint_baseline.json", metavar="FILE",
        help=(
            "baseline of grandfathered findings (default: "
            "lint_baseline.json; a missing file means an empty baseline)"
        ),
    )
    lint_p.add_argument(
        "--select", nargs="+", metavar="RULE",
        help="run only these rule ids",
    )
    lint_p.add_argument(
        "--ignore", nargs="+", metavar="RULE",
        help="skip these rule ids",
    )
    lint_p.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline file from the current findings and exit",
    )
    lint_p.add_argument(
        "--rules", action="store_true",
        help="list the registered rules and exit",
    )
    lint_p.set_defaults(handler=_cmd_lint)

    scenario_p = subparsers.add_parser(
        "scenario", help="create, validate and introspect scenario files"
    )
    scenario_sub = scenario_p.add_subparsers(dest="scenario_command", required=True)

    init_p = scenario_sub.add_parser(
        "init", help="write a template scenario file"
    )
    init_p.add_argument(
        "path", nargs="?", default="scenario.json",
        help="where to write the template (default: scenario.json)",
    )
    init_p.add_argument(
        "--configurations", nargs="+", metavar="NAME",
        help="configuration registry names (default: the paper's five)",
    )
    init_p.add_argument(
        "--workloads", nargs="+", metavar="NAME",
        help="workload registry names (default: all seventeen)",
    )
    init_p.add_argument(
        "--scale", choices=("quick", "default", "full", "paper"),
        default="quick",
    )
    init_p.add_argument("--jobs", type=int, default=1)
    init_p.add_argument(
        "--report", help="set the output report path (JSON/CSV derived)"
    )
    init_p.add_argument("--force", action="store_true")
    init_p.set_defaults(handler=_cmd_scenario_init)

    validate_p = scenario_sub.add_parser(
        "validate", help="parse a scenario and check names against registries"
    )
    validate_p.add_argument("path")
    validate_p.set_defaults(handler=_cmd_scenario_validate)

    list_p = scenario_sub.add_parser(
        "list", help="show registered configurations, workloads, experiments"
    )
    list_p.add_argument(
        "--modules", nargs="+", metavar="MODULE",
        help="import these modules first (to include their registrations)",
    )
    list_p.set_defaults(handler=_cmd_scenario_list)

    sweep_p = subparsers.add_parser(
        "sweep",
        help="run, preview and track declarative parameter sweeps",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=(
            "sweep specs:\n"
            "  A sweep spec (corona-sweep/1 JSON) is a base scenario plus\n"
            "  named axes, each writing a list of values into one field\n"
            "  path (e.g. \"workloads[0].params.mean_gap_cycles\" or\n"
            "  \"system.configurations\").  Axes cross as a cartesian\n"
            "  product; an axis with \"zip\" advances in lockstep with the\n"
            "  named axis.  `sweep run SPEC --directory OUT` checkpoints\n"
            "  each completed point to OUT/points.jsonl; re-running the\n"
            "  same spec on the same directory resumes, skipping completed\n"
            "  points.  SPEC is a file path or a registered sweep name\n"
            "  (`corona-repro scenario list` shows those).  Results land as\n"
            "  long-form records -- point id + axis values + every result\n"
            "  field -- in OUT/results.json and OUT/results.csv."
        ),
    )
    sweep_sub = sweep_p.add_subparsers(dest="sweep_command", required=True)

    sweep_run_p = sweep_sub.add_parser(
        "run",
        help="execute a sweep spec (file or registered name)",
        parents=[execution_flags],
    )
    sweep_run_p.add_argument(
        "spec", help="sweep spec JSON file, or a registered sweep name"
    )
    sweep_run_p.add_argument(
        "--directory",
        help="checkpoint/resume directory (also receives default sinks)",
    )
    sweep_run_p.add_argument(
        "--fresh",
        action="store_true",
        help="discard any previous checkpoints instead of resuming",
    )
    sweep_run_p.add_argument(
        "--scale",
        choices=("quick", "default", "full", "paper"),
        default=None,
        help=(
            "pass a scale tier to a *registered* sweep's factory (e.g. "
            "latency-throughput uses it to size the ladder); spec files "
            "carry their own scale"
        ),
    )
    sweep_run_p.set_defaults(handler=_cmd_sweep_run)

    sweep_expand_p = sweep_sub.add_parser(
        "expand", help="print the grid points a sweep spec expands to"
    )
    sweep_expand_p.add_argument(
        "spec", help="sweep spec JSON file, or a registered sweep name"
    )
    sweep_expand_p.set_defaults(handler=_cmd_sweep_expand)

    sweep_status_p = sweep_sub.add_parser(
        "status", help="report a sweep directory's completed/pending points"
    )
    sweep_status_p.add_argument("directory")
    sweep_status_p.add_argument(
        "--timings",
        action="store_true",
        help="also print per-point replay seconds from the checkpoint log",
    )
    sweep_status_p.set_defaults(handler=_cmd_sweep_status)

    diff_p = subparsers.add_parser(
        "diff",
        help="compare two runs and rank their divergences",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        description=(
            "Align two run artifacts -- corona-results/1 JSON, result CSVs "
            "(plain or long-form), sweep directories (manifest.json + "
            "points.jsonl), corona-sweep-results/1 JSON, or BENCH_replay "
            "snapshots -- by (point_id, configuration, workload) and compare "
            "every result field: relative-threshold scalar and counter "
            "deltas, flag flips, added/removed/failed pairs, and -- when "
            "both runs carry --samples-out artifacts -- exact per-percentile "
            "deltas plus a two-sample KS distance over the raw latency "
            "samples.  Wall-clock phase timings are reported informationally "
            "and never gate."
        ),
        epilog=(
            "exit codes:\n"
            f"  0  no divergence above threshold\n"
            f"  {EXIT_DIVERGENCE}  at least one gating divergence\n"
        ),
    )
    diff_p.add_argument("baseline", help="baseline run artifact")
    diff_p.add_argument("current", help="current run artifact")
    diff_p.add_argument(
        "--threshold",
        type=float,
        default=0.05,
        metavar="FRACTION",
        help="relative delta a metric may move before it diverges "
        "(default 0.05)",
    )
    diff_p.add_argument(
        "--ks-threshold",
        type=float,
        default=0.1,
        metavar="DISTANCE",
        help="two-sample KS distance the latency distribution may show "
        "(default 0.1)",
    )
    diff_p.add_argument(
        "--top",
        type=int,
        default=0,
        metavar="N",
        help="truncate the markdown divergence table to the worst N "
        "(default: all)",
    )
    diff_p.add_argument(
        "--json",
        action="store_true",
        help="print the corona-diff/1 JSON document instead of markdown",
    )
    diff_p.add_argument(
        "--output",
        metavar="PATH",
        help="also write the report to PATH (.json extension selects the "
        "JSON document)",
    )
    diff_p.set_defaults(handler=_cmd_diff)

    trace_p = subparsers.add_parser(
        "trace", help="inspect, convert and summarize trace files"
    )
    trace_sub = trace_p.add_subparsers(dest="trace_command", required=True)

    info_p = trace_sub.add_parser(
        "info", help="print a trace file's header and statistics"
    )
    info_p.add_argument("path")
    info_p.set_defaults(handler=_cmd_trace_info)

    convert_p = trace_sub.add_parser(
        "convert",
        help="convert between the text and packed binary trace formats",
        description=(
            "Convert corona-trace files between the diffable v1 text format "
            "and the packed bin2 binary format (24 bytes/record, loads "
            "without per-record parsing).  Externally generated traces in "
            "either format drop straight into the replay engine."
        ),
    )
    convert_p.add_argument("input")
    convert_p.add_argument("output")
    convert_p.add_argument(
        "--to", choices=("auto", "text", "binary"), default="auto",
        help="target format (auto = the opposite of the input's)",
    )
    convert_p.set_defaults(handler=_cmd_trace_convert)

    view_p = trace_sub.add_parser(
        "view",
        help="summarize a --timeline-out artifact in the terminal",
        description=(
            "Summarize a Chrome trace_event timeline written by "
            "--timeline-out: per-stage span duration histograms, the "
            "slowest transactions, the fault-event table and the recorded "
            "counter tracks -- without leaving the terminal."
        ),
    )
    view_p.add_argument("path", help="TIMELINE.json written by --timeline-out")
    view_p.add_argument(
        "--top",
        type=int,
        default=10,
        metavar="N",
        help="slowest transactions to list (default 10)",
    )
    view_p.set_defaults(handler=_cmd_trace_view)

    subparsers.add_parser("tables", help="print Tables 1-4").set_defaults(
        handler=_cmd_tables
    )

    inventory = subparsers.add_parser(
        "inventory", help="print the optical resource inventory"
    )
    inventory.add_argument("--clusters", type=int, default=64)
    inventory.set_defaults(handler=_cmd_inventory)

    power = subparsers.add_parser("power", help="print the chip power roll-up")
    power.set_defaults(handler=_cmd_power)

    simulate = subparsers.add_parser(
        "simulate", help="replay one workload on the evaluated configurations"
    )
    simulate.add_argument("workload", help="e.g. Uniform, 'Hot Spot', FFT, LU")
    simulate.add_argument("--requests", type=int, default=20_000)
    simulate.add_argument("--seed", type=int, default=1)
    simulate.add_argument(
        "--configurations",
        nargs="+",
        choices=CONFIGURATION_ORDER,
        help="subset of configurations (default: all five)",
    )
    simulate.set_defaults(handler=_cmd_simulate)

    evaluate = subparsers.add_parser(
        "evaluate",
        help="run the full matrix and emit a markdown report",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=(
            "performance:\n"
            "  The 85 (configuration, workload) pairs of the full matrix are\n"
            "  independent, so --jobs N fans them across N worker processes\n"
            "  and divides the matrix wall-clock by roughly N on a multicore\n"
            "  host.  Traces are generated once per workload in the parent\n"
            "  (in packed binary form, overlapping the earliest replays) and\n"
            "  shipped to workers through shared memory -- a ~100-byte handle\n"
            "  per pair instead of a per-pair pickle -- and the results are\n"
            "  bit-identical to a serial run (--jobs 1).  --jobs 0 uses every\n"
            "  CPU.  --configs/--workloads cut the matrix down to matching\n"
            "  pairs (substring match), e.g. --configs XBar --workloads\n"
            "  Uniform runs a single pair.  See scripts/bench_regression.py\n"
            "  for the tracked replay-throughput and matrix wall-clock\n"
            "  numbers (BENCH_replay.json).\n"
            "coherence:\n"
            "  --coherence appends the sharing-fraction sweep to the report:\n"
            "  a sharing-tagged Uniform workload replayed with the timed\n"
            "  MOESI directory on "
            + ", ".join(COHERENCE_SWEEP_CONFIGURATIONS)
            + ",\n"
            "  comparing broadcast-bus invalidation delivery (photonic)\n"
            "  against per-sharer unicasts (electrical meshes).\n"
            "scenario api:\n"
            "  evaluate is a thin translator now: the flags build a Scenario\n"
            "  and execute it through repro.api.run, bit-identically to a\n"
            "  scenario file with the same content (corona-repro run)."
        ),
    )
    evaluate.add_argument(
        "--scale",
        choices=("quick", "default", "full", "paper"),
        default="quick",
        help=(
            "request-count tier: quick (12k/workload), default (60k), full "
            "(200k+), paper (the paper's own 1M synthetic counts; hours of "
            "CPU -- combine with --jobs 0)"
        ),
    )
    evaluate.add_argument("--skip-splash", action="store_true")
    evaluate.add_argument("--output", help="write the report to this path")
    evaluate.add_argument("--verbose", action="store_true")
    evaluate.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the matrix (1 = serial, 0 = all CPUs)",
    )
    evaluate.add_argument(
        "--configs",
        nargs="+",
        metavar="SUBSTRING",
        help="keep only configurations whose name contains a given substring",
    )
    evaluate.add_argument(
        "--workloads",
        nargs="+",
        metavar="SUBSTRING",
        help="keep only workloads whose name contains a given substring",
    )
    evaluate.add_argument(
        "--coherence",
        action="store_true",
        help="append the coherence sharing-fraction sweep to the report",
    )
    evaluate.add_argument(
        "--sharing-fractions",
        nargs="+",
        type=float,
        default=list(COHERENCE_SWEEP_FRACTIONS),
        metavar="FRACTION",
        help="sharing fractions for the --coherence sweep",
    )
    evaluate.set_defaults(handler=_cmd_evaluate)

    sensitivity = subparsers.add_parser(
        "sensitivity", help="print the photonic-design sensitivity sweeps"
    )
    sensitivity.set_defaults(handler=_cmd_sensitivity)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    configure_logging(
        getattr(args, "verbosity", 0) - getattr(args, "quiet", 0)
    )
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
