"""Command-line interface for the Corona reproduction.

Installed as ``corona-repro`` (see ``pyproject.toml``).  Subcommands:

``tables``
    Print Tables 1-4 regenerated from the models.
``inventory``
    Print the Table 2 optical inventory for an arbitrary cluster count.
``power``
    Print the chip-level power/area roll-up and the memory-interconnect power
    comparison.
``simulate``
    Replay one workload on one or more configurations and print the results.
``evaluate``
    Run the full evaluation matrix and print (or write) the markdown report.
``sensitivity``
    Print the physical-design sensitivity sweeps (waveguide loss, ring loss,
    laser power).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.core.configs import CONFIGURATION_ORDER, configuration_by_name
from repro.core.system import simulate_workload
from repro.harness.experiments import (
    COHERENCE_SWEEP_CONFIGURATIONS,
    COHERENCE_SWEEP_FRACTIONS,
    FULL_SCALE,
    PAPER_SCALE,
    QUICK_SCALE,
    EvaluationMatrix,
    ExperimentScale,
    coherence_sweep,
    coherence_sweep_report,
)
from repro.harness.report import build_report
from repro.harness.sensitivity import (
    format_sweep,
    required_laser_power_sensitivity,
    ring_through_loss_sensitivity,
    waveguide_loss_sensitivity,
)
from repro.harness.tables import format_table, render_all_tables
from repro.photonics.inventory import corona_inventory
from repro.power.chip import corona_chip_power
from repro.power.electrical import electrical_memory_interconnect_power_w
from repro.power.optical import optical_memory_interconnect_power_w
from repro.trace.splash2 import SPLASH2_ORDER, splash2_workload
from repro.trace.synthetic import synthetic_workloads

_SYNTHETIC_NAMES = [w.name for w in synthetic_workloads()]


def _workload_by_name(name: str):
    for workload in synthetic_workloads():
        if workload.name.lower() == name.lower():
            return workload
    for benchmark in SPLASH2_ORDER:
        if benchmark.lower() == name.lower():
            return splash2_workload(benchmark)
    raise SystemExit(
        f"unknown workload {name!r}; choose one of "
        f"{_SYNTHETIC_NAMES + SPLASH2_ORDER}"
    )


def _cmd_tables(_args: argparse.Namespace) -> int:
    print(render_all_tables())
    return 0


def _cmd_inventory(args: argparse.Namespace) -> int:
    inventory = corona_inventory(clusters=args.clusters)
    print(inventory.report())
    return 0


def _cmd_power(_args: argparse.Namespace) -> int:
    print("Chip power / area roll-up (Section 3.1):")
    rows = []
    for anchor in ("penryn", "silverthorne"):
        report = corona_chip_power(anchor=anchor)
        rows.append(
            (
                anchor,
                f"{report.processor_power_w:.1f}",
                f"{report.total_power_w:.1f}",
                f"{report.core_die_area_mm2:.0f}",
            )
        )
    print(
        format_table(
            ["anchor", "processor W", "total W", "core die mm^2"], rows
        )
    )
    print()
    print("Memory interconnect power at 10.24 TB/s:")
    print(f"  optical (OCM):    {optical_memory_interconnect_power_w(10.24e12):7.2f} W")
    print(f"  electrical:       {electrical_memory_interconnect_power_w(10.24e12):7.2f} W")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    workload = _workload_by_name(args.workload)
    configurations = args.configurations or CONFIGURATION_ORDER
    baseline_time = None
    print(
        f"{'configuration':<12}{'speedup':>9}{'bw (TB/s)':>11}"
        f"{'latency (ns)':>14}{'power (W)':>11}"
    )
    for name in configurations:
        result = simulate_workload(
            configuration_by_name(name),
            workload,
            num_requests=args.requests,
            seed=args.seed,
        )
        if baseline_time is None:
            baseline_time = result.execution_time_s
        print(
            f"{name:<12}{baseline_time / result.execution_time_s:>9.2f}"
            f"{result.achieved_bandwidth_tbps:>11.3f}"
            f"{result.average_latency_ns:>14.1f}"
            f"{result.network_power_w:>11.2f}"
        )
    return 0


def _filter_configurations(terms: Optional[List[str]]) -> List[str]:
    """Configuration names matching any of the substring ``terms``."""
    if not terms:
        return list(CONFIGURATION_ORDER)
    matched = [
        name
        for name in CONFIGURATION_ORDER
        if any(term.lower() in name.lower() for term in terms)
    ]
    if not matched:
        raise SystemExit(
            f"no configuration matches {terms!r}; known: {CONFIGURATION_ORDER}"
        )
    return matched


def _cmd_evaluate(args: argparse.Namespace) -> int:
    scale = {
        "quick": QUICK_SCALE,
        "default": ExperimentScale(),
        "full": FULL_SCALE,
        "paper": PAPER_SCALE,
    }[args.scale]
    configuration_names = _filter_configurations(args.configs)
    matrix = EvaluationMatrix(
        scale=scale,
        include_splash=not args.skip_splash,
        configuration_names=configuration_names,
        workload_filter=args.workloads,
    )
    if args.workloads and not matrix.workloads():
        raise SystemExit(
            f"no workload matches {args.workloads!r}; known: "
            f"{EvaluationMatrix(scale=scale).workload_names()}"
        )
    progress = print if args.verbose else None
    report = build_report(matrix, progress=progress, jobs=args.jobs)
    if args.coherence:
        # The sweep honors --configs: restrict the default sweep trio to the
        # filtered configurations, falling back to the filtered set itself
        # (never to configurations the user excluded).
        sweep_configurations = [
            name
            for name in COHERENCE_SWEEP_CONFIGURATIONS
            if name in configuration_names
        ] or configuration_names
        points = coherence_sweep(
            fractions=args.sharing_fractions,
            configuration_names=sweep_configurations,
            num_requests=scale.synthetic_requests,
            seed=scale.seed,
            jobs=args.jobs,
            progress=progress,
        )
        report.extra_sections.append(coherence_sweep_report(points))
    if args.output:
        path = report.write(args.output)
        print(f"report written to {path}")
    else:
        print(report.to_markdown())
    return 0


def _cmd_sensitivity(_args: argparse.Namespace) -> int:
    print(
        format_sweep(
            "Crossbar link-budget margin vs waveguide loss",
            waveguide_loss_sensitivity(),
            parameter_label="dB/cm",
            metric_label="margin (dB)",
        )
    )
    print()
    print(
        format_sweep(
            "Crossbar link-budget margin vs per-ring through loss",
            ring_through_loss_sensitivity(),
            parameter_label="dB/ring",
            metric_label="margin (dB)",
        )
    )
    print()
    print(
        format_sweep(
            "Crossbar laser wall-plug power vs waveguide loss",
            required_laser_power_sensitivity(),
            parameter_label="dB/cm",
            metric_label="laser power (W)",
        )
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="corona-repro",
        description="Reproduction of Corona (ISCA 2008): tables, figures and simulations.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("tables", help="print Tables 1-4").set_defaults(
        handler=_cmd_tables
    )

    inventory = subparsers.add_parser(
        "inventory", help="print the optical resource inventory"
    )
    inventory.add_argument("--clusters", type=int, default=64)
    inventory.set_defaults(handler=_cmd_inventory)

    power = subparsers.add_parser("power", help="print the chip power roll-up")
    power.set_defaults(handler=_cmd_power)

    simulate = subparsers.add_parser(
        "simulate", help="replay one workload on the evaluated configurations"
    )
    simulate.add_argument("workload", help="e.g. Uniform, 'Hot Spot', FFT, LU")
    simulate.add_argument("--requests", type=int, default=20_000)
    simulate.add_argument("--seed", type=int, default=1)
    simulate.add_argument(
        "--configurations",
        nargs="+",
        choices=CONFIGURATION_ORDER,
        help="subset of configurations (default: all five)",
    )
    simulate.set_defaults(handler=_cmd_simulate)

    evaluate = subparsers.add_parser(
        "evaluate",
        help="run the full matrix and emit a markdown report",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=(
            "performance:\n"
            "  The 85 (configuration, workload) pairs of the full matrix are\n"
            "  independent, so --jobs N fans them across N worker processes\n"
            "  and divides the matrix wall-clock by roughly N on a multicore\n"
            "  host.  Traces are generated once per workload in the parent\n"
            "  (in packed binary form, overlapping the earliest replays) and\n"
            "  shipped to workers through shared memory -- a ~100-byte handle\n"
            "  per pair instead of a per-pair pickle -- and the results are\n"
            "  bit-identical to a serial run (--jobs 1).  --jobs 0 uses every\n"
            "  CPU.  --configs/--workloads cut the matrix down to matching\n"
            "  pairs (substring match), e.g. --configs XBar --workloads\n"
            "  Uniform runs a single pair.  See scripts/bench_regression.py\n"
            "  for the tracked replay-throughput and matrix wall-clock\n"
            "  numbers (BENCH_replay.json).\n"
            "coherence:\n"
            "  --coherence appends the sharing-fraction sweep to the report:\n"
            "  a sharing-tagged Uniform workload replayed with the timed\n"
            "  MOESI directory on "
            + ", ".join(COHERENCE_SWEEP_CONFIGURATIONS)
            + ",\n"
            "  comparing broadcast-bus invalidation delivery (photonic)\n"
            "  against per-sharer unicasts (electrical meshes)."
        ),
    )
    evaluate.add_argument(
        "--scale",
        choices=("quick", "default", "full", "paper"),
        default="quick",
        help=(
            "request-count tier: quick (12k/workload), default (60k), full "
            "(200k+), paper (the paper's own 1M synthetic counts; hours of "
            "CPU -- combine with --jobs 0)"
        ),
    )
    evaluate.add_argument("--skip-splash", action="store_true")
    evaluate.add_argument("--output", help="write the report to this path")
    evaluate.add_argument("--verbose", action="store_true")
    evaluate.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the matrix (1 = serial, 0 = all CPUs)",
    )
    evaluate.add_argument(
        "--configs",
        nargs="+",
        metavar="SUBSTRING",
        help="keep only configurations whose name contains a given substring",
    )
    evaluate.add_argument(
        "--workloads",
        nargs="+",
        metavar="SUBSTRING",
        help="keep only workloads whose name contains a given substring",
    )
    evaluate.add_argument(
        "--coherence",
        action="store_true",
        help="append the coherence sharing-fraction sweep to the report",
    )
    evaluate.add_argument(
        "--sharing-fractions",
        nargs="+",
        type=float,
        default=list(COHERENCE_SWEEP_FRACTIONS),
        metavar="FRACTION",
        help="sharing fractions for the --coherence sweep",
    )
    evaluate.set_defaults(handler=_cmd_evaluate)

    sensitivity = subparsers.add_parser(
        "sensitivity", help="print the photonic-design sensitivity sweeps"
    )
    sensitivity.set_defaults(handler=_cmd_sensitivity)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
