"""Interconnect interface and topology helpers.

Every on-stack interconnect (optical crossbar, electrical meshes) implements
the same small interface: ``transfer`` moves a message from a source cluster
to a destination cluster starting no earlier than ``now`` and returns a
:class:`TransferResult` describing when it arrived and what it cost.  The
system simulator is therefore completely agnostic of which network it drives,
exactly mirroring the paper's five-configuration comparison.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List, NamedTuple, Tuple

from repro.network.message import Message


class TransferResult(NamedTuple):
    """Outcome of one message transfer across an interconnect.

    A :class:`~typing.NamedTuple` rather than a dataclass: transfer results
    are created twice per remote miss on the replay hot path, and tuple
    construction is several times cheaper than a frozen dataclass while
    staying immutable.

    Attributes
    ----------
    arrival_time:
        Absolute simulated time at which the last bit arrives at the
        destination.
    queueing_delay:
        Time spent waiting for arbitration / free links before the message
        started moving.
    serialization_delay:
        Time spent clocking the message onto the channel(s).
    propagation_delay:
        Time of flight (including per-hop forwarding latency for meshes).
    hops:
        Number of router-to-router hops traversed (0 for a crossbar).
    dynamic_energy_j:
        Dynamic energy attributed to this transfer.
    """

    arrival_time: float
    queueing_delay: float
    serialization_delay: float
    propagation_delay: float
    hops: int
    dynamic_energy_j: float

    @property
    def network_latency(self) -> float:
        """Total latency contributed by the interconnect."""
        return self.queueing_delay + self.serialization_delay + self.propagation_delay


class MulticastResult(NamedTuple):
    """Outcome of delivering one logical message to several destinations.

    ``last_arrival`` is what a requester waiting on every delivery (e.g. a
    directory collecting invalidation acknowledgements) experiences;
    ``messages``/``hops`` count the physical messages the fan-out cost, which
    is where a unicast-only network pays for multicasts the broadcast bus
    gets for one message.
    """

    last_arrival: float
    #: Queueing delay of the slowest leg.
    queueing_delay: float
    hops: int
    messages: int


class Interconnect(abc.ABC):
    """Abstract on-stack interconnect."""

    __slots__ = (
        "name",
        "num_clusters",
        "clock_hz",
        "messages_sent",
        "bytes_sent",
        "total_dynamic_energy_j",
    )

    def __init__(self, name: str, num_clusters: int, clock_hz: float) -> None:
        if num_clusters < 2:
            raise ValueError(f"need at least two clusters, got {num_clusters}")
        if clock_hz <= 0:
            raise ValueError(f"clock must be positive, got {clock_hz}")
        self.name = name
        self.num_clusters = num_clusters
        self.clock_hz = clock_hz
        self.messages_sent = 0
        self.bytes_sent = 0.0
        self.total_dynamic_energy_j = 0.0

    @property
    def cycle_time(self) -> float:
        return 1.0 / self.clock_hz

    @abc.abstractmethod
    def transfer(self, message: Message, now: float) -> TransferResult:
        """Move ``message`` starting no earlier than ``now``."""

    @abc.abstractmethod
    def bisection_bandwidth_bytes_per_s(self) -> float:
        """Bisection bandwidth of the interconnect."""

    def multicast(
        self, message: Message, destinations: List[int], now: float
    ) -> MulticastResult:
        """Deliver ``message`` to every cluster in ``destinations``.

        The default implementation is a unicast fan-out: one :meth:`transfer`
        per destination (``message.dst`` is mutated in place, matching the
        replay engine's reusable-message convention), each reserving its own
        links/channels.  Broadcast-capable interconnects override this with a
        single-message delivery.  Destinations equal to ``message.src`` are
        skipped -- a cluster never needs the network to invalidate itself.
        """
        last_arrival = now
        slowest_queueing = 0.0
        hops = 0
        messages = 0
        src = message.src
        transfer = self.transfer
        for dst in destinations:
            if dst == src:
                continue
            message.dst = dst
            result = transfer(message, now)
            if result.arrival_time > last_arrival:
                last_arrival = result.arrival_time
                slowest_queueing = result.queueing_delay
            hops += result.hops
            messages += 1
        return MulticastResult(
            last_arrival=last_arrival,
            queueing_delay=slowest_queueing,
            hops=hops,
            messages=messages,
        )

    def static_power_w(self) -> float:
        """Always-on power (lasers, ring trimming, clocking); zero by default."""
        return 0.0

    def record_transfer(self, message: Message, result: TransferResult) -> None:
        """Accumulate book-keeping common to every interconnect."""
        self.messages_sent += 1
        self.bytes_sent += message.size_bytes
        self.total_dynamic_energy_j += result.dynamic_energy_j

    def dynamic_power_w(self, elapsed_seconds: float) -> float:
        """Average dynamic power over ``elapsed_seconds`` of simulated time."""
        if elapsed_seconds <= 0:
            return 0.0
        return self.total_dynamic_energy_j / elapsed_seconds

    def reset_statistics(self) -> None:
        self.messages_sent = 0
        self.bytes_sent = 0.0
        self.total_dynamic_energy_j = 0.0


@dataclass(frozen=True)
class MeshCoordinates:
    """Maps cluster ids onto an (x, y) grid and computes routes."""

    radix_x: int
    radix_y: int

    def __post_init__(self) -> None:
        if self.radix_x < 1 or self.radix_y < 1:
            raise ValueError("mesh radix must be at least 1 in each dimension")

    @classmethod
    def square(cls, num_clusters: int) -> "MeshCoordinates":
        import math

        radix = int(round(math.sqrt(num_clusters)))
        if radix * radix != num_clusters:
            raise ValueError(
                f"cannot build a square mesh from {num_clusters} clusters"
            )
        return cls(radix_x=radix, radix_y=radix)

    @property
    def num_nodes(self) -> int:
        return self.radix_x * self.radix_y

    def position(self, cluster: int) -> Tuple[int, int]:
        if not 0 <= cluster < self.num_nodes:
            raise ValueError(f"cluster {cluster} outside mesh of {self.num_nodes}")
        return cluster % self.radix_x, cluster // self.radix_x

    def cluster_at(self, x: int, y: int) -> int:
        if not (0 <= x < self.radix_x and 0 <= y < self.radix_y):
            raise ValueError(f"position ({x}, {y}) outside mesh")
        return y * self.radix_x + x

    def hop_distance(self, src: int, dst: int) -> int:
        """Manhattan distance between two clusters."""
        sx, sy = self.position(src)
        dx, dy = self.position(dst)
        return abs(sx - dx) + abs(sy - dy)

    def dimension_order_route(self, src: int, dst: int) -> List[Tuple[int, int]]:
        """The XY (dimension-order) route as a list of directed node pairs.

        Returns the sequence of ``(from_node, to_node)`` link traversals; an
        empty list when ``src == dst``.
        """
        route: List[Tuple[int, int]] = []
        sx, sy = self.position(src)
        dx, dy = self.position(dst)
        x, y = sx, sy
        while x != dx:
            step = 1 if dx > x else -1
            nxt = self.cluster_at(x + step, y)
            route.append((self.cluster_at(x, y), nxt))
            x += step
        while y != dy:
            step = 1 if dy > y else -1
            nxt = self.cluster_at(x, y + step)
            route.append((self.cluster_at(x, y), nxt))
            y += step
        return route

    def all_links(self) -> List[Tuple[int, int]]:
        """Every directed link in the mesh."""
        links: List[Tuple[int, int]] = []
        for y in range(self.radix_y):
            for x in range(self.radix_x):
                node = self.cluster_at(x, y)
                if x + 1 < self.radix_x:
                    east = self.cluster_at(x + 1, y)
                    links.append((node, east))
                    links.append((east, node))
                if y + 1 < self.radix_y:
                    north = self.cluster_at(x, y + 1)
                    links.append((node, north))
                    links.append((north, node))
        return links

    def bisection_link_count(self) -> int:
        """Directed links crossing the vertical bisection of the mesh."""
        # A vertical cut between column radix_x/2 - 1 and radix_x/2 severs one
        # link pair per row.
        return 2 * self.radix_y

    def average_hops(self) -> float:
        """Average Manhattan distance over all source/destination pairs."""
        total = 0
        pairs = 0
        for src in range(self.num_nodes):
            for dst in range(self.num_nodes):
                if src == dst:
                    continue
                total += self.hop_distance(src, dst)
                pairs += 1
        return total / pairs if pairs else 0.0
