"""Corona's optical crossbar (Section 3.2.1 of the paper).

The crossbar is 64 *many-writer, single-reader* channels: channel ``d`` can be
written by any cluster but is only read by cluster ``d`` (its home).  Each
channel is 256 wavelengths wide (a 4-waveguide bundle of 64-wavelength combs),
modulated on both edges of the 5 GHz clock, so one channel carries 2.56 Tb/s
(320 GB/s) and a 64-byte cache line crosses in a single clock.  The 64
channels together provide 20 TB/s of aggregate bandwidth.  The waveguide
bundle of channel ``d`` originates at cluster ``d``, serpentines past every
other cluster and terminates back at ``d``, so a message modulated by cluster
``s`` propagates ``(d - s) mod 64`` / 64 of the ring, at most 8 clocks.

Exclusive access to a channel is granted by the optical token arbitration of
:mod:`repro.network.arbitration`: only the token holder modulates, the token
is re-injected alongside the tail of the message, and the next holder's light
follows immediately behind -- which is why several messages can be in flight
on the same bundle at once.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.network.arbitration import TokenRingArbiter
from repro.network.message import Message
from repro.network.topology import Interconnect, TransferResult
from repro.photonics.dwdm import DwdmChannel, corona_crossbar_channel


class OpticalCrossbar(Interconnect):
    """The Corona DWDM crossbar with optical token arbitration."""

    __slots__ = (
        "channel_bandwidth_bytes_per_s",
        "max_propagation_s",
        "_static_power_w",
        "energy_per_bit_j",
        "arbiter",
        "channel_messages",
        "channel_bytes",
        "photonic_channels",
        "_fault_channel_bw",
        "_fault_injector",
    )

    def __init__(
        self,
        num_clusters: int = 64,
        clock_hz: float = 5e9,
        channel_bandwidth_bytes_per_s: float = 320e9,
        max_propagation_cycles: float = 8.0,
        ring_round_trip_cycles: float = 8.0,
        static_power_w: float = 26.0,
        energy_per_bit_j: float = 100e-15,
        name: str = "XBar",
        build_photonic_channels: bool = False,
    ) -> None:
        super().__init__(name=name, num_clusters=num_clusters, clock_hz=clock_hz)
        if channel_bandwidth_bytes_per_s <= 0:
            raise ValueError("channel bandwidth must be positive")
        self.channel_bandwidth_bytes_per_s = channel_bandwidth_bytes_per_s
        self.max_propagation_s = max_propagation_cycles / clock_hz
        self._static_power_w = static_power_w
        self.energy_per_bit_j = energy_per_bit_j
        self.arbiter = TokenRingArbiter(
            num_clusters=num_clusters,
            num_channels=num_clusters,
            clock_hz=clock_hz,
            ring_round_trip_cycles=ring_round_trip_cycles,
        )
        #: Per-channel counters: messages and bytes delivered to each home.
        self.channel_messages: Dict[int, int] = {c: 0 for c in range(num_clusters)}
        self.channel_bytes: Dict[int, float] = {c: 0.0 for c in range(num_clusters)}
        #: Fault injection hooks (:mod:`repro.faults.inject`): a per-channel
        #: bandwidth table replacing the uniform channel bandwidth when rings
        #: are detuned or a bundle is partially dead, and the injector whose
        #: per-grant draw models arbitration token loss.  Both stay ``None``
        #: on fault-free builds, so the transfer hot path pays one ``is
        #: None`` check each and computes bit-identical results.
        self._fault_channel_bw: Optional[list] = None
        self._fault_injector = None
        #: Optional detailed photonic channel models (device-level view).
        self.photonic_channels: Optional[Dict[int, DwdmChannel]] = None
        if build_photonic_channels:
            self.photonic_channels = {
                c: corona_crossbar_channel(name=f"xbar-ch{c}")
                for c in range(num_clusters)
            }

    # -- Interconnect interface ---------------------------------------------
    def bisection_bandwidth_bytes_per_s(self) -> float:
        """All channels can be driven across any bisection simultaneously."""
        return self.num_clusters * self.channel_bandwidth_bytes_per_s

    def static_power_w(self) -> float:
        """Laser, ring-trimming and clocking power; constant by construction."""
        return self._static_power_w

    def propagation_delay_s(self, src: int, dst: int) -> float:
        """Serpentine flight time from the modulating cluster to the home."""
        if src == dst:
            return 0.0
        distance = (dst - src) % self.num_clusters
        return self.max_propagation_s * distance / self.num_clusters

    def serialization_delay_s(self, size_bytes: float) -> float:
        return size_bytes / self.channel_bandwidth_bytes_per_s

    def transfer(self, message: Message, now: float) -> TransferResult:
        if message.src >= self.num_clusters or message.dst >= self.num_clusters:
            raise ValueError(
                f"message endpoints {message.src}->{message.dst} outside crossbar"
            )
        if message.is_local:
            result = TransferResult(now, 0.0, 0.0, 0.0, 0, 0.0)
            self.record_transfer(message, result)
            return result

        channel = message.dst
        src = message.src
        size = message.size_bytes
        num_clusters = self.num_clusters
        # Token arbitration, transcribed from TokenChannelArbiter.acquire /
        # release (the reference implementation) onto the same per-channel
        # arbiter state; the aggregate wait statistic is derived from the
        # per-channel counters by TokenRingArbiter.average_wait_s.
        channel_arbiter = self.arbiter.channels[channel]
        release_time = channel_arbiter.release_time
        round_trip = channel_arbiter.ring_round_trip_s
        if now >= release_time:
            # Uncontested: the token is circulating; it arrives one travel
            # time after its last release, modulo full revolutions.
            distance = (src - channel_arbiter.release_position) % num_clusters
            if distance == 0:
                distance = num_clusters
            arrival = release_time + round_trip * distance / num_clusters
            while arrival < now and round_trip > 0:
                arrival += round_trip
            grant_time = arrival if arrival > now else now
        else:
            # Contested: the token hops to the next requester downstream.
            grant_time = release_time + round_trip / num_clusters
        injector = self._fault_injector
        if injector is not None:
            # Lost token: the home cluster regenerates it after the timeout,
            # so this grant (keyed by the channel's deterministic grant
            # counter) completes late instead of deadlocking the channel.
            grant_time += injector.token_extra_delay(
                channel, channel_arbiter.grants
            )
        channel_arbiter.grants += 1
        channel_arbiter.total_wait_s += grant_time - now
        fault_bw = self._fault_channel_bw
        serialization = size / (
            fault_bw[channel]
            if fault_bw is not None
            else self.channel_bandwidth_bytes_per_s
        )
        modulation_done = grant_time + serialization
        # The token is re-injected with the tail of the message; monotonicity
        # holds by construction (modulation_done >= grant_time >= last release).
        channel_arbiter.release_position = src
        channel_arbiter.release_time = modulation_done
        # Serpentine flight time, inlined from propagation_delay_s.
        propagation = (
            self.max_propagation_s * ((channel - src) % self.num_clusters)
            / self.num_clusters
        )
        arrival = modulation_done + propagation

        energy = size * 8.0 * self.energy_per_bit_j
        self.channel_messages[channel] += 1
        self.channel_bytes[channel] += size
        # record_transfer, inlined.
        self.messages_sent += 1
        self.bytes_sent += size
        self.total_dynamic_energy_j += energy

        return TransferResult(
            arrival, grant_time - now, serialization, propagation, 0, energy
        )

    # -- reporting ------------------------------------------------------------
    def channel_utilization(self, elapsed_seconds: float) -> Dict[int, float]:
        """Fraction of each channel's bandwidth used over the run."""
        if elapsed_seconds <= 0:
            return {c: 0.0 for c in self.channel_bytes}
        return {
            c: self.channel_bytes[c]
            / (self.channel_bandwidth_bytes_per_s * elapsed_seconds)
            for c in self.channel_bytes
        }

    def busiest_channels(self, count: int = 5) -> list[tuple[int, float]]:
        ordered = sorted(
            self.channel_bytes.items(), key=lambda item: item[1], reverse=True
        )
        return ordered[:count]

    def total_ring_resonators(self) -> int:
        """Ring count implied by the crossbar geometry (Table 2 cross-check)."""
        channel_width = 256
        return self.num_clusters * self.num_clusters * channel_width

    def reset_statistics(self) -> None:
        super().reset_statistics()
        self.channel_messages = {c: 0 for c in range(self.num_clusters)}
        self.channel_bytes = {c: 0.0 for c in range(self.num_clusters)}
        self.arbiter = TokenRingArbiter(
            num_clusters=self.num_clusters,
            num_channels=self.num_clusters,
            clock_hz=self.clock_hz,
            ring_round_trip_cycles=self.arbiter.ring_round_trip_s * self.clock_hz,
        )
