"""Network interfaces and inter-stack DWDM links (Section 3.1 of the paper).

Each cluster's hub connects to a network interface; like the memory
controller's fiber links, the NI drives DWDM fibers off the package so that
*multiple Corona stacks* can be composed into a larger NUMA system.  The paper
only sketches this capability ("Network interfaces, similar to the interface
to off-stack main memory, provide inter-stack communication for larger
systems"), so the model here is intentionally at the same level as the OCM
links: per-NI bandwidth from wavelength count and signalling rate, fiber
flight latency from cable length, serialization and contention from a
:class:`~repro.sim.resources.SerialResource`, and an energy-per-bit figure for
power accounting.  ``MultiStackFabric`` composes the NIs of several stacks
into an all-to-all fabric and estimates the remote-access penalty -- the
extension experiment in ``benchmarks/bench_ablations.py`` and DESIGN.md's
future-work list.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.sim.resources import SerialResource

#: Speed of light in optical fiber (m/s), index ~1.47.
FIBER_LIGHT_SPEED_M_PER_S = 2.04e8


@dataclass
class NetworkInterface:
    """One cluster's off-stack network interface.

    Parameters
    ----------
    cluster_id:
        The cluster this NI serves.
    wavelengths:
        DWDM wavelengths per direction (matches the OCM links: 64).
    bit_rate_per_wavelength_bps:
        Signalling rate per wavelength (10 Gb/s).
    fiber_length_m:
        One-way fiber length to the partner stack.
    energy_per_bit_j:
        Electrical energy per transmitted bit (modulator + receiver).
    """

    cluster_id: int
    wavelengths: int = 64
    bit_rate_per_wavelength_bps: float = 10e9
    fiber_length_m: float = 1.0
    energy_per_bit_j: float = 100e-15
    _egress: SerialResource = field(init=False, repr=False)
    _ingress: SerialResource = field(init=False, repr=False)
    bytes_sent: float = field(default=0.0, repr=False)
    bytes_received: float = field(default=0.0, repr=False)
    energy_j: float = field(default=0.0, repr=False)

    def __post_init__(self) -> None:
        if self.wavelengths < 1:
            raise ValueError(f"need at least one wavelength, got {self.wavelengths}")
        if self.fiber_length_m < 0:
            raise ValueError(f"fiber length must be non-negative, got {self.fiber_length_m}")
        self._egress = SerialResource(name=f"ni{self.cluster_id}-egress")
        self._ingress = SerialResource(name=f"ni{self.cluster_id}-ingress")

    @property
    def bandwidth_bytes_per_s(self) -> float:
        """Per-direction NI bandwidth (80 GB/s with the defaults)."""
        return self.wavelengths * self.bit_rate_per_wavelength_bps / 8.0

    @property
    def fiber_latency_s(self) -> float:
        return self.fiber_length_m / FIBER_LIGHT_SPEED_M_PER_S

    def send(self, now: float, size_bytes: float) -> float:
        """Transmit toward the remote stack; returns arrival time there."""
        if size_bytes < 0:
            raise ValueError(f"size must be non-negative, got {size_bytes}")
        duration = size_bytes / self.bandwidth_bytes_per_s
        done = self._egress.reserve(now, duration)
        self.bytes_sent += size_bytes
        self.energy_j += size_bytes * 8.0 * self.energy_per_bit_j
        return done + self.fiber_latency_s

    def receive(self, now: float, size_bytes: float) -> float:
        """Accept traffic arriving from the remote stack; returns drain time."""
        if size_bytes < 0:
            raise ValueError(f"size must be non-negative, got {size_bytes}")
        duration = size_bytes / self.bandwidth_bytes_per_s
        done = self._ingress.reserve(now, duration)
        self.bytes_received += size_bytes
        return done

    def utilization(self, elapsed_seconds: float) -> float:
        if elapsed_seconds <= 0:
            return 0.0
        busy = self._egress.busy_time + self._ingress.busy_time
        return busy / (2 * elapsed_seconds)


@dataclass
class MultiStackFabric:
    """An all-to-all DWDM fabric connecting several Corona stacks.

    Every (stack, cluster) pair owns one :class:`NetworkInterface`; a remote
    access crosses the local cluster's NI, the fiber, and the remote cluster's
    NI.  This is a first-order model of the paper's "larger systems" claim:
    it quantifies how much extra latency and how much NI bandwidth an
    inter-stack NUMA hop costs, without modelling the remote stack's internal
    interconnect (which the single-stack simulator already covers).
    """

    num_stacks: int = 2
    clusters_per_stack: int = 64
    fiber_length_m: float = 1.0
    interfaces: Dict[Tuple[int, int], NetworkInterface] = field(
        default_factory=dict, repr=False
    )
    remote_transfers: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.num_stacks < 2:
            raise ValueError(f"a fabric needs at least two stacks, got {self.num_stacks}")
        if self.clusters_per_stack < 1:
            raise ValueError("each stack needs at least one cluster")
        if not self.interfaces:
            for stack in range(self.num_stacks):
                for cluster in range(self.clusters_per_stack):
                    self.interfaces[(stack, cluster)] = NetworkInterface(
                        cluster_id=cluster, fiber_length_m=self.fiber_length_m
                    )

    def interface(self, stack: int, cluster: int) -> NetworkInterface:
        key = (stack, cluster)
        if key not in self.interfaces:
            raise ValueError(f"no interface for stack {stack}, cluster {cluster}")
        return self.interfaces[key]

    @property
    def aggregate_bandwidth_bytes_per_s(self) -> float:
        """Total egress bandwidth of the fabric."""
        return sum(ni.bandwidth_bytes_per_s for ni in self.interfaces.values())

    def remote_transfer(
        self,
        src_stack: int,
        src_cluster: int,
        dst_stack: int,
        dst_cluster: int,
        size_bytes: float,
        now: float,
    ) -> float:
        """Move ``size_bytes`` between clusters on different stacks.

        Returns the completion time.  Same-stack transfers are rejected --
        they belong to the on-stack interconnect models.
        """
        if src_stack == dst_stack:
            raise ValueError("remote_transfer is for inter-stack traffic only")
        egress = self.interface(src_stack, src_cluster)
        ingress = self.interface(dst_stack, dst_cluster)
        arrival = egress.send(now, size_bytes)
        completed = ingress.receive(arrival, size_bytes)
        self.remote_transfers += 1
        return completed

    def remote_access_penalty_s(self, size_bytes: float = 72.0) -> float:
        """Unloaded extra latency of one inter-stack hop (both NIs + fiber)."""
        interface = next(iter(self.interfaces.values()))
        serialization = 2 * size_bytes / interface.bandwidth_bytes_per_s
        return serialization + interface.fiber_latency_s

    def total_energy_j(self) -> float:
        return sum(ni.energy_j for ni in self.interfaces.values())
