"""Electrical 2D mesh interconnects (the HMesh and LMesh baselines).

The paper's electrical baselines are 8x8 meshes of the 64 clusters using
dimension-order wormhole routing with a per-hop latency of 5 clocks
(forwarding plus wire propagation) and bisection bandwidths of 1.28 TB/s
(HMesh) and 0.64 TB/s (LMesh).  Dynamic energy is charged at 196 pJ per
message per hop, the paper's aggressive low-swing estimate that ignores
leakage.

The transfer model is wormhole-accurate to first order: the head flit advances
one hop every ``hop latency`` once each successive link is free, each link is
occupied for the full serialization time of the message, and the message
arrives once the tail flit has crossed the final link.  Link contention and
the resulting queueing (and back-pressure through the routers' finite buffers)
is therefore captured, which is what produces the mesh's collapse under the
paper's high-bandwidth workloads.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, List, Optional, Tuple

from repro.network.link import Link
from repro.network.message import Message
from repro.network.router import MeshRouter
from repro.network.topology import Interconnect, MeshCoordinates, TransferResult
from repro.sim.resources import _EPSILON, _PRUNE_HORIZON


class ElectricalMesh(Interconnect):
    """A 2D mesh with dimension-order wormhole routing."""

    __slots__ = (
        "coordinates",
        "_bisection_bandwidth",
        "hop_latency_s",
        "energy_per_hop_j",
        "flit_bytes",
        "link_bandwidth_bytes_per_s",
        "links",
        "_link_resources",
        "routers",
        "hop_count_total",
        "_fault_link_slow",
    )

    def __init__(
        self,
        name: str,
        num_clusters: int = 64,
        clock_hz: float = 5e9,
        bisection_bandwidth_bytes_per_s: float = 1.28e12,
        hop_latency_cycles: float = 5.0,
        energy_per_hop_j: float = 196e-12,
        router_buffer_flits: int = 16,
        flit_bytes: int = 16,
    ) -> None:
        super().__init__(name=name, num_clusters=num_clusters, clock_hz=clock_hz)
        self.coordinates = MeshCoordinates.square(num_clusters)
        self._bisection_bandwidth = bisection_bandwidth_bytes_per_s
        self.hop_latency_s = hop_latency_cycles / clock_hz
        self.energy_per_hop_j = energy_per_hop_j
        self.flit_bytes = flit_bytes

        # Per-link bandwidth is set so that the links crossing the bisection
        # add up to the configured bisection bandwidth.
        bisection_links = self.coordinates.bisection_link_count()
        self.link_bandwidth_bytes_per_s = (
            bisection_bandwidth_bytes_per_s / bisection_links
        )

        self.links: Dict[Tuple[int, int], Link] = {
            (src, dst): Link(
                src=src,
                dst=dst,
                bandwidth_bytes_per_s=self.link_bandwidth_bytes_per_s,
                latency_s=self.hop_latency_s,
            )
            for src, dst in self.coordinates.all_links()
        }
        #: Hot-path view of the links' serial resources, so a transfer does
        #: not pay a wrapper call per hop (the Link objects stay authoritative
        #: for reporting -- both views share the same resource instances).
        #: Keyed by ``src * num_clusters + dst`` so the per-hop lookup hashes
        #: an int instead of allocating a tuple.
        self._link_resources = {
            src * num_clusters + dst: link._resource
            for (src, dst), link in self.links.items()
        }
        self.routers: Dict[int, MeshRouter] = {
            node: MeshRouter(
                node_id=node,
                buffer_flits=router_buffer_flits,
                flit_bytes=flit_bytes,
                forwarding_latency_s=self.hop_latency_s,
                energy_per_hop_j=energy_per_hop_j,
            )
            for node in range(num_clusters)
        }
        self.hop_count_total = 0
        #: Fault injection hook (:mod:`repro.faults.inject`): serialization
        #: multipliers for partially dead links, keyed like
        #: ``_link_resources``.  ``None`` on fault-free builds, so the
        #: per-hop hot path pays one ``is None`` check and computes
        #: bit-identical results.
        self._fault_link_slow: Optional[Dict[int, float]] = None

    # -- Interconnect interface ---------------------------------------------
    def bisection_bandwidth_bytes_per_s(self) -> float:
        return self._bisection_bandwidth

    def transfer(self, message: Message, now: float) -> TransferResult:
        if message.src >= self.num_clusters or message.dst >= self.num_clusters:
            raise ValueError(
                f"message endpoints {message.src}->{message.dst} outside mesh"
            )
        if message.is_local:
            result = TransferResult(now, 0.0, 0.0, 0.0, 0, 0.0)
            self.record_transfer(message, result)
            return result

        # Walk the XY (dimension-order) route inline: same traversal as
        # MeshCoordinates.dimension_order_route, without materializing the
        # route list.  The per-hop link reservation is the single hottest
        # operation of the mesh configurations (tens of thousands of calls per
        # replay), so the single-server SerialResource.reserve logic is
        # transcribed here verbatim -- same prune horizon, gap search and
        # tail-coalescing insert -- operating directly on each link resource's
        # interval lists.  SerialResource.reserve is the reference
        # implementation; behavioral changes must be mirrored in both places.
        serialization = message.size_bytes / self.link_bandwidth_bytes_per_s
        radix = self.coordinates.radix_x
        num_clusters = self.num_clusters
        x, y = message.src % radix, message.src // radix
        dest_x, dest_y = message.dst % radix, message.dst // radix
        resources = self._link_resources
        link_slow = self._fault_link_slow
        hop_latency = self.hop_latency_s
        epsilon = _EPSILON
        horizon = _PRUNE_HORIZON

        head_time = now
        queueing = 0.0
        hops = 0
        hop_serialization = serialization
        node = message.src
        while node != message.dst:
            if x != dest_x:
                x += 1 if dest_x > x else -1
            else:
                y += 1 if dest_y > y else -1
            next_node = y * radix + x
            link_key = node * num_clusters + next_node
            resource = resources[link_key]
            if link_slow is None:
                hop_serialization = serialization
            else:
                # Partially dead link: survivors carry the message at a
                # fraction of the bandwidth (degraded, never severed).
                hop_serialization = serialization * link_slow.get(link_key, 1.0)

            if head_time > resource._high_water_request:
                resource._high_water_request = head_time
            prune_before = resource._high_water_request - horizon
            starts = resource._starts[0]
            ends = resource._ends[0]
            if prune_before > 0 and ends and ends[0] <= prune_before:
                cut = bisect_right(ends, prune_before)
                del ends[:cut]
                del starts[:cut]
            # Earliest gap of `hop_serialization` seconds at or after head_time.
            start = head_time
            n = len(starts)
            index = bisect_right(ends, start)
            while index < n:
                if start + hop_serialization <= starts[index] + epsilon:
                    break
                interval_end = ends[index]
                if interval_end > start:
                    start = interval_end
                index += 1
            end = start + hop_serialization
            if index >= n:
                if n and ends[-1] >= start - epsilon:
                    if end > ends[-1]:
                        ends[-1] = end
                else:
                    starts.append(start)
                    ends.append(end)
            else:
                # Interior commit at the position the gap search already
                # found (SerialResource._insert with a known index).
                if index > 0 and ends[index - 1] >= start - epsilon:
                    merged = index - 1
                    if end > ends[merged]:
                        ends[merged] = end
                else:
                    starts.insert(index, start)
                    ends.insert(index, end)
                    merged = index
                following = merged + 1
                while (
                    following < len(starts)
                    and starts[following] <= ends[merged] + epsilon
                ):
                    if ends[following] > ends[merged]:
                        ends[merged] = ends[following]
                    del starts[following]
                    del ends[following]
            resource.busy_time += hop_serialization
            resource.reservations += 1

            queueing += start - head_time
            # Head flit crosses this hop; body/tail pipeline behind it.
            head_time = start + hop_latency
            node = next_node
            hops += 1
        # The tail crosses the final link at that link's (possibly degraded)
        # rate; the reported serialization stays the nominal per-link figure.
        arrival = head_time + hop_serialization
        energy = hops * self.energy_per_hop_j
        self.hop_count_total += hops

        # record_transfer, inlined.
        self.messages_sent += 1
        self.bytes_sent += message.size_bytes
        self.total_dynamic_energy_j += energy
        return TransferResult(
            arrival, queueing, serialization, hops * hop_latency, hops, energy
        )

    # -- reporting ------------------------------------------------------------
    def average_link_utilization(self, elapsed_seconds: float) -> float:
        if not self.links or elapsed_seconds <= 0:
            return 0.0
        return sum(
            link.utilization(elapsed_seconds) for link in self.links.values()
        ) / len(self.links)

    def most_utilized_links(
        self, elapsed_seconds: float, count: int = 5
    ) -> List[Tuple[Tuple[int, int], float]]:
        """The ``count`` hottest links -- useful for diagnosing Hot Spot runs."""
        utilizations = [
            (pair, link.utilization(elapsed_seconds))
            for pair, link in self.links.items()
        ]
        utilizations.sort(key=lambda item: item[1], reverse=True)
        return utilizations[:count]

    def reset_statistics(self) -> None:
        super().reset_statistics()
        for link in self.links.values():
            link.reset()
        for router in self.routers.values():
            router.reset()
        self.hop_count_total = 0


def high_performance_mesh(num_clusters: int = 64, clock_hz: float = 5e9) -> ElectricalMesh:
    """The paper's HMesh: 1.28 TB/s bisection bandwidth, 5-clock hops."""
    return ElectricalMesh(
        name="HMesh",
        num_clusters=num_clusters,
        clock_hz=clock_hz,
        bisection_bandwidth_bytes_per_s=1.28e12,
    )


def low_performance_mesh(num_clusters: int = 64, clock_hz: float = 5e9) -> ElectricalMesh:
    """The paper's LMesh: 0.64 TB/s bisection bandwidth, 5-clock hops."""
    return ElectricalMesh(
        name="LMesh",
        num_clusters=num_clusters,
        clock_hz=clock_hz,
        bisection_bandwidth_bytes_per_s=0.64e12,
    )
