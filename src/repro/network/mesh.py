"""Electrical 2D mesh interconnects (the HMesh and LMesh baselines).

The paper's electrical baselines are 8x8 meshes of the 64 clusters using
dimension-order wormhole routing with a per-hop latency of 5 clocks
(forwarding plus wire propagation) and bisection bandwidths of 1.28 TB/s
(HMesh) and 0.64 TB/s (LMesh).  Dynamic energy is charged at 196 pJ per
message per hop, the paper's aggressive low-swing estimate that ignores
leakage.

The transfer model is wormhole-accurate to first order: the head flit advances
one hop every ``hop latency`` once each successive link is free, each link is
occupied for the full serialization time of the message, and the message
arrives once the tail flit has crossed the final link.  Link contention and
the resulting queueing (and back-pressure through the routers' finite buffers)
is therefore captured, which is what produces the mesh's collapse under the
paper's high-bandwidth workloads.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.network.link import Link
from repro.network.message import Message
from repro.network.router import MeshRouter
from repro.network.topology import Interconnect, MeshCoordinates, TransferResult


class ElectricalMesh(Interconnect):
    """A 2D mesh with dimension-order wormhole routing."""

    def __init__(
        self,
        name: str,
        num_clusters: int = 64,
        clock_hz: float = 5e9,
        bisection_bandwidth_bytes_per_s: float = 1.28e12,
        hop_latency_cycles: float = 5.0,
        energy_per_hop_j: float = 196e-12,
        router_buffer_flits: int = 16,
        flit_bytes: int = 16,
    ) -> None:
        super().__init__(name=name, num_clusters=num_clusters, clock_hz=clock_hz)
        self.coordinates = MeshCoordinates.square(num_clusters)
        self._bisection_bandwidth = bisection_bandwidth_bytes_per_s
        self.hop_latency_s = hop_latency_cycles / clock_hz
        self.energy_per_hop_j = energy_per_hop_j
        self.flit_bytes = flit_bytes

        # Per-link bandwidth is set so that the links crossing the bisection
        # add up to the configured bisection bandwidth.
        bisection_links = self.coordinates.bisection_link_count()
        self.link_bandwidth_bytes_per_s = (
            bisection_bandwidth_bytes_per_s / bisection_links
        )

        self.links: Dict[Tuple[int, int], Link] = {
            (src, dst): Link(
                src=src,
                dst=dst,
                bandwidth_bytes_per_s=self.link_bandwidth_bytes_per_s,
                latency_s=self.hop_latency_s,
            )
            for src, dst in self.coordinates.all_links()
        }
        self.routers: Dict[int, MeshRouter] = {
            node: MeshRouter(
                node_id=node,
                buffer_flits=router_buffer_flits,
                flit_bytes=flit_bytes,
                forwarding_latency_s=self.hop_latency_s,
                energy_per_hop_j=energy_per_hop_j,
            )
            for node in range(num_clusters)
        }
        self.hop_count_total = 0

    # -- Interconnect interface ---------------------------------------------
    def bisection_bandwidth_bytes_per_s(self) -> float:
        return self._bisection_bandwidth

    def transfer(self, message: Message, now: float) -> TransferResult:
        if message.src >= self.num_clusters or message.dst >= self.num_clusters:
            raise ValueError(
                f"message endpoints {message.src}->{message.dst} outside mesh"
            )
        if message.is_local:
            result = TransferResult(
                arrival_time=now,
                queueing_delay=0.0,
                serialization_delay=0.0,
                propagation_delay=0.0,
                hops=0,
                dynamic_energy_j=0.0,
            )
            self.record_transfer(message, result)
            return result

        route = self.coordinates.dimension_order_route(message.src, message.dst)
        serialization = message.size_bytes / self.link_bandwidth_bytes_per_s

        head_time = now
        queueing = 0.0
        for src, dst in route:
            link = self.links[(src, dst)]
            start, _finish = link.reserve(head_time, message.size_bytes)
            queueing += start - head_time
            # Head flit crosses this hop; body/tail pipeline behind it.
            head_time = start + self.hop_latency_s

        hops = len(route)
        arrival = head_time + serialization
        energy = hops * self.energy_per_hop_j
        self.hop_count_total += hops

        result = TransferResult(
            arrival_time=arrival,
            queueing_delay=queueing,
            serialization_delay=serialization,
            propagation_delay=hops * self.hop_latency_s,
            hops=hops,
            dynamic_energy_j=energy,
        )
        self.record_transfer(message, result)
        return result

    # -- reporting ------------------------------------------------------------
    def average_link_utilization(self, elapsed_seconds: float) -> float:
        if not self.links or elapsed_seconds <= 0:
            return 0.0
        return sum(
            link.utilization(elapsed_seconds) for link in self.links.values()
        ) / len(self.links)

    def most_utilized_links(
        self, elapsed_seconds: float, count: int = 5
    ) -> List[Tuple[Tuple[int, int], float]]:
        """The ``count`` hottest links -- useful for diagnosing Hot Spot runs."""
        utilizations = [
            (pair, link.utilization(elapsed_seconds))
            for pair, link in self.links.items()
        ]
        utilizations.sort(key=lambda item: item[1], reverse=True)
        return utilizations[:count]

    def reset_statistics(self) -> None:
        super().reset_statistics()
        for link in self.links.values():
            link.reset()
        for router in self.routers.values():
            router.reset()
        self.hop_count_total = 0


def high_performance_mesh(num_clusters: int = 64, clock_hz: float = 5e9) -> ElectricalMesh:
    """The paper's HMesh: 1.28 TB/s bisection bandwidth, 5-clock hops."""
    return ElectricalMesh(
        name="HMesh",
        num_clusters=num_clusters,
        clock_hz=clock_hz,
        bisection_bandwidth_bytes_per_s=1.28e12,
    )


def low_performance_mesh(num_clusters: int = 64, clock_hz: float = 5e9) -> ElectricalMesh:
    """The paper's LMesh: 0.64 TB/s bisection bandwidth, 5-clock hops."""
    return ElectricalMesh(
        name="LMesh",
        num_clusters=num_clusters,
        clock_hz=clock_hz,
        bisection_bandwidth_bytes_per_s=0.64e12,
    )
