"""Point-to-point link model used by the electrical meshes.

A link is a serial resource with a fixed width (bytes transferred per cycle)
and therefore a fixed bandwidth at a given clock.  Wormhole routing moves a
message across a link flit by flit; the occupancy of the link equals the
serialization time of the whole message, which is what the
:class:`~repro.sim.resources.SerialResource` reservation captures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.resources import SerialResource


@dataclass
class Link:
    """A directed link between two adjacent mesh routers.

    Parameters
    ----------
    src, dst:
        Endpoint cluster/router ids.
    bandwidth_bytes_per_s:
        Peak link bandwidth.
    latency_s:
        Per-hop latency (forwarding plus signal propagation); the paper uses
        5 clocks at 5 GHz = 1 ns for both meshes.
    """

    src: int
    dst: int
    bandwidth_bytes_per_s: float
    latency_s: float
    _resource: SerialResource = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_s <= 0:
            raise ValueError(
                f"link bandwidth must be positive, got {self.bandwidth_bytes_per_s}"
            )
        if self.latency_s < 0:
            raise ValueError(f"link latency must be non-negative, got {self.latency_s}")
        self._resource = SerialResource(name=f"link-{self.src}-{self.dst}")

    def serialization_time(self, size_bytes: float) -> float:
        """Time to clock ``size_bytes`` across the link."""
        if size_bytes < 0:
            raise ValueError(f"size must be non-negative, got {size_bytes}")
        return size_bytes / self.bandwidth_bytes_per_s

    def next_available(self, now: float) -> float:
        return self._resource.next_available(now)

    def reserve(self, now: float, size_bytes: float) -> tuple[float, float]:
        """Reserve the link for one message.

        Returns ``(start_time, finish_time)`` where ``start_time`` is when the
        head flit begins crossing and ``finish_time`` is when the tail flit
        has crossed (excluding the per-hop latency, which the router adds).
        """
        duration = self.serialization_time(size_bytes)
        finish = self._resource.reserve(now, duration)
        return finish - duration, finish

    @property
    def busy_time(self) -> float:
        return self._resource.busy_time

    @property
    def reservations(self) -> int:
        return self._resource.reservations

    def utilization(self, elapsed_seconds: float) -> float:
        return self._resource.utilization(elapsed_seconds)

    def reset(self) -> None:
        self._resource.reset()
