"""Network message types and sizes.

Each L2 miss becomes a request/response message pair on the on-stack
interconnect plus a transaction on the memory interconnect.  The sizes below
follow the paper's parameters: 64-byte cache lines (Table 1), small
address/coherence messages, and line-sized data messages with a small header.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

#: Cache line size (Table 1).
CACHE_LINE_BYTES = 64

#: Header bytes carried by every message (address, type, source, MSHR id).
HEADER_BYTES = 8

#: Size of a control-only message (request, acknowledgement, invalidate).
CONTROL_MESSAGE_BYTES = 16


class MessageType(enum.Enum):
    """The message classes exchanged over the on-stack interconnect."""

    READ_REQUEST = "read_request"
    READ_RESPONSE = "read_response"
    WRITE_REQUEST = "write_request"
    WRITE_ACK = "write_ack"
    WRITEBACK = "writeback"
    INVALIDATE = "invalidate"
    INVALIDATE_ACK = "invalidate_ack"
    COHERENCE = "coherence"


#: Message payload size per type.  Data-bearing messages carry a full cache
#: line plus header; control messages are header plus address.
_MESSAGE_SIZES = {
    MessageType.READ_REQUEST: CONTROL_MESSAGE_BYTES,
    MessageType.READ_RESPONSE: CACHE_LINE_BYTES + HEADER_BYTES,
    MessageType.WRITE_REQUEST: CACHE_LINE_BYTES + HEADER_BYTES,
    MessageType.WRITE_ACK: CONTROL_MESSAGE_BYTES,
    MessageType.WRITEBACK: CACHE_LINE_BYTES + HEADER_BYTES,
    MessageType.INVALIDATE: CONTROL_MESSAGE_BYTES,
    MessageType.INVALIDATE_ACK: CONTROL_MESSAGE_BYTES,
    MessageType.COHERENCE: CONTROL_MESSAGE_BYTES,
}


def message_size_bytes(message_type: MessageType) -> int:
    """Payload size (bytes) of a message of the given type."""
    return _MESSAGE_SIZES[message_type]


_message_ids = itertools.count()


@dataclass(slots=True)
class Message:
    """A single interconnect message.

    Attributes
    ----------
    src, dst:
        Source and destination cluster ids.
    message_type:
        One of :class:`MessageType`.
    size_bytes:
        Payload size; defaults to the canonical size for the type.
    transaction_id:
        Id of the L2-miss transaction this message belongs to, so latency can
        be attributed per miss.
    """

    src: int
    dst: int
    message_type: MessageType
    size_bytes: int = 0
    transaction_id: int = -1
    message_id: int = field(default_factory=lambda: next(_message_ids))

    def __post_init__(self) -> None:
        if self.src < 0 or self.dst < 0:
            raise ValueError(
                f"message endpoints must be non-negative, got {self.src}->{self.dst}"
            )
        if self.size_bytes == 0:
            self.size_bytes = message_size_bytes(self.message_type)
        if self.size_bytes <= 0:
            raise ValueError(f"message size must be positive, got {self.size_bytes}")

    @property
    def is_local(self) -> bool:
        """Whether the message never needs the interconnect."""
        return self.src == self.dst

    @property
    def carries_data(self) -> bool:
        return self.size_bytes > CONTROL_MESSAGE_BYTES

    def flit_count(self, flit_bytes: int) -> int:
        """Number of flits at the given flit width (mesh wormhole routing)."""
        if flit_bytes <= 0:
            raise ValueError(f"flit size must be positive, got {flit_bytes}")
        return -(-self.size_bytes // flit_bytes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Message(#{self.message_id} {self.message_type.value} "
            f"{self.src}->{self.dst} {self.size_bytes}B)"
        )
