"""On-stack interconnect models (Section 3.2 of the Corona paper).

Three interconnects are modelled, matching the paper's evaluation:

* :class:`~repro.network.crossbar.OpticalCrossbar` -- Corona's DWDM crossbar:
  64 many-writer single-reader channels, each 256 wavelengths wide, managed by
  distributed optical token arbitration, with an optical broadcast bus on the
  side for invalidations.
* :class:`~repro.network.mesh.ElectricalMesh` -- the HMesh and LMesh electrical
  baselines: 8x8 2D meshes with dimension-order wormhole routing and
  credit-based (finite-buffer) flow control.

All interconnects implement the :class:`~repro.network.topology.Interconnect`
interface so the system simulator can swap them freely.
"""

from repro.network.arbitration import TokenChannelArbiter, TokenRingArbiter
from repro.network.broadcast import OpticalBroadcastBus
from repro.network.crossbar import OpticalCrossbar
from repro.network.interface import MultiStackFabric, NetworkInterface
from repro.network.link import Link
from repro.network.mesh import ElectricalMesh, high_performance_mesh, low_performance_mesh
from repro.network.message import Message, MessageType, message_size_bytes
from repro.network.router import MeshRouter
from repro.network.topology import Interconnect, MeshCoordinates, TransferResult

__all__ = [
    "Message",
    "MessageType",
    "message_size_bytes",
    "Interconnect",
    "TransferResult",
    "MeshCoordinates",
    "Link",
    "MeshRouter",
    "ElectricalMesh",
    "high_performance_mesh",
    "low_performance_mesh",
    "OpticalCrossbar",
    "OpticalBroadcastBus",
    "TokenRingArbiter",
    "TokenChannelArbiter",
    "NetworkInterface",
    "MultiStackFabric",
]
