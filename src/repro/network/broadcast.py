"""Optical broadcast bus (Section 3.2.2 of the Corona paper).

The MOESI protocol occasionally needs to invalidate a block cached by many
sharers.  Doing that over a unicast crossbar would turn one logical multicast
into up to 63 unicast messages; Corona instead adds a single-waveguide
broadcast bus that spirals past every cluster twice.  On the first pass a
cluster (the one holding the bus token) modulates invalidate messages onto the
light; on the second pass every cluster taps a fraction of the light with a
broadband splitter and reads the message, snooping its caches.

The bus is a single shared channel arbitrated by one token (one extra
wavelength on the arbitration waveguide), 64 wavelengths wide.
"""

from __future__ import annotations

from typing import List

from repro.network.arbitration import TokenChannelArbiter
from repro.network.message import Message, MessageType
from repro.network.topology import Interconnect, MulticastResult, TransferResult
from repro.photonics.splitter import splitter_chain_losses


class OpticalBroadcastBus(Interconnect):
    """A single-channel, all-cluster optical broadcast bus."""

    def __init__(
        self,
        num_clusters: int = 64,
        clock_hz: float = 5e9,
        wavelengths: int = 64,
        bit_rate_per_wavelength_bps: float = 10e9,
        coil_round_trip_cycles: float = 16.0,
        ring_round_trip_cycles: float = 8.0,
        energy_per_bit_j: float = 100e-15,
        name: str = "BroadcastBus",
    ) -> None:
        super().__init__(name=name, num_clusters=num_clusters, clock_hz=clock_hz)
        if wavelengths < 1:
            raise ValueError(f"need at least one wavelength, got {wavelengths}")
        self.wavelengths = wavelengths
        self.bandwidth_bytes_per_s = wavelengths * bit_rate_per_wavelength_bps / 8.0
        #: Time for light to traverse the two-pass coil end to end.
        self.coil_round_trip_s = coil_round_trip_cycles / clock_hz
        self.energy_per_bit_j = energy_per_bit_j
        self.arbiter = TokenChannelArbiter(
            channel_id=0,
            num_clusters=num_clusters,
            ring_round_trip_s=ring_round_trip_cycles / clock_hz,
        )
        self.broadcasts_sent = 0
        self.unicast_messages_avoided = 0
        #: Seconds the single shared channel spent modulating messages; the
        #: basis of the bus-occupancy statistic in coherence-enabled replays.
        self.busy_seconds = 0.0

    def bisection_bandwidth_bytes_per_s(self) -> float:
        return self.bandwidth_bytes_per_s

    def serialization_delay_s(self, size_bytes: float) -> float:
        return size_bytes / self.bandwidth_bytes_per_s

    def transfer(self, message: Message, now: float) -> TransferResult:
        """Broadcast ``message`` from its source to *all* clusters.

        ``message.dst`` is ignored for delivery (every cluster receives the
        message on the coil's second pass); the arrival time reported is that
        of the last cluster to receive it.
        """
        grant_time = self.arbiter.acquire(message.src, now)
        serialization = self.serialization_delay_s(message.size_bytes)
        modulation_done = grant_time + serialization
        self.arbiter.release(message.src, modulation_done)
        # The message becomes visible to readers on the second pass of the
        # coil; the last reader sees it after the full coil traversal.
        arrival = modulation_done + self.coil_round_trip_s

        energy = message.size_bytes * 8.0 * self.energy_per_bit_j
        self.broadcasts_sent += 1
        self.busy_seconds += serialization

        result = TransferResult(
            arrival_time=arrival,
            queueing_delay=grant_time - now,
            serialization_delay=serialization,
            propagation_delay=self.coil_round_trip_s,
            hops=0,
            dynamic_energy_j=energy,
        )
        self.record_transfer(message, result)
        return result

    def broadcast_invalidate(
        self, src: int, sharers: int, now: float, transaction_id: int = -1
    ) -> TransferResult:
        """Send one invalidate that reaches ``sharers`` caches in one message.

        Tracks how many unicast messages a crossbar-only design would have
        needed, which is the benefit Section 3.2.2 argues for.
        """
        if sharers < 0:
            raise ValueError(f"sharer count must be non-negative, got {sharers}")
        message = Message(
            src=src,
            dst=src,
            message_type=MessageType.INVALIDATE,
            transaction_id=transaction_id,
        )
        self.unicast_messages_avoided += max(sharers - 1, 0)
        return self.transfer(message, now)

    def multicast(
        self, message: Message, destinations: List[int], now: float
    ) -> MulticastResult:
        """Deliver ``message`` to every destination with ONE bus message.

        Every cluster taps the light on the coil's second pass, so the
        fan-out degree costs nothing: one transfer, zero hops, and
        ``len(destinations)`` - 1 unicasts avoided relative to a
        point-to-point network.
        """
        remote = [dst for dst in destinations if dst != message.src]
        if not remote:
            return MulticastResult(
                last_arrival=now, queueing_delay=0.0, hops=0, messages=0
            )
        result = self.transfer(message, now)
        self.unicast_messages_avoided += len(remote) - 1
        return MulticastResult(
            last_arrival=result.arrival_time,
            queueing_delay=result.queueing_delay,
            hops=0,
            messages=1,
        )

    def occupancy(self, elapsed_s: float) -> float:
        """Fraction of ``elapsed_s`` the bus channel spent modulating."""
        if elapsed_s <= 0:
            return 0.0
        return self.busy_seconds / elapsed_s

    def listener_losses_db(self, tap_excess_loss_db: float = 0.1) -> List[float]:
        """Optical loss seen by each listening cluster's splitter tap.

        Exposes the broadcast bus's main physical-design challenge: the light
        is divided among 64 listeners, so the last taps see substantially less
        power than the first unless tap fractions are graded.
        """
        return splitter_chain_losses(
            num_taps=self.num_clusters, excess_loss_db=tap_excess_loss_db
        )
