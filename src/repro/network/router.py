"""Mesh router model.

The electrical baselines use dimension-order wormhole routers (Dally & Seitz
[9] in the paper).  The router model captures what matters for the
evaluation: a per-hop forwarding latency, finite input buffering that creates
back-pressure when a downstream link is saturated, and an energy cost per
traversal that feeds the Figure 11 power comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.sim.resources import BoundedQueue


@dataclass
class MeshRouter:
    """A single 5-port (N/S/E/W/local) wormhole router.

    Parameters
    ----------
    node_id:
        The cluster this router serves.
    buffer_flits:
        Input buffer depth per port, in flits.
    flit_bytes:
        Flit width; with a 128-bit link a flit is 16 bytes.
    forwarding_latency_s:
        Head-flit latency through the router (included in the paper's 5-clock
        per-hop latency together with wire propagation).
    energy_per_hop_j:
        Dynamic energy per message traversal (the paper's 196 pJ figure is a
        per-transaction-per-hop value that already includes router overhead;
        the mesh model charges it at the message level, so this per-router
        value is kept for finer-grained accounting and ablations).
    """

    node_id: int
    buffer_flits: int = 16
    flit_bytes: int = 16
    forwarding_latency_s: float = 1e-9
    energy_per_hop_j: float = 196e-12
    input_queues: Dict[str, BoundedQueue] = field(default_factory=dict, repr=False)
    flits_routed: int = field(default=0, repr=False)
    messages_routed: int = field(default=0, repr=False)

    _PORTS = ("north", "south", "east", "west", "local")

    def __post_init__(self) -> None:
        if self.buffer_flits < 1:
            raise ValueError(f"buffer depth must be >= 1, got {self.buffer_flits}")
        if self.flit_bytes < 1:
            raise ValueError(f"flit size must be >= 1, got {self.flit_bytes}")
        for port in self._PORTS:
            self.input_queues[port] = BoundedQueue(
                name=f"router{self.node_id}-{port}", capacity=self.buffer_flits
            )

    def flit_count(self, size_bytes: int) -> int:
        """Flits needed for a message of ``size_bytes``."""
        if size_bytes <= 0:
            raise ValueError(f"size must be positive, got {size_bytes}")
        return -(-size_bytes // self.flit_bytes)

    def admit(self, port: str, now: float, size_bytes: int, drain_time: float) -> float:
        """Admit a message's flits into an input buffer.

        Returns the time the message is fully admitted, which may be later
        than ``now`` if the buffer is full (back-pressure).  ``drain_time`` is
        when the message will have left the buffer (i.e. crossed the output
        link), which is when its slots free up.
        """
        if port not in self.input_queues:
            raise ValueError(f"unknown router port {port!r}")
        queue = self.input_queues[port]
        flits = self.flit_count(size_bytes)
        admit_time = now
        # Admit the message as a unit occupying `flits` slots until drain.
        # If the buffer cannot hold the whole message, the admission time is
        # pushed to when enough slots free up; modelled conservatively by
        # treating the message as `flits` sequential admissions.
        for _ in range(min(flits, queue.capacity)):
            admit_time = max(admit_time, queue.admission_time(admit_time))
            queue.admit(admit_time, max(drain_time, admit_time))
        self.flits_routed += flits
        self.messages_routed += 1
        return admit_time

    def traversal_energy(self, size_bytes: int) -> float:
        """Dynamic energy for one message traversing this router."""
        # The paper's figure is per transaction per hop; charge it once per
        # message regardless of length (header-dominated router energy), which
        # matches how the paper computes mesh power.
        if size_bytes <= 0:
            raise ValueError(f"size must be positive, got {size_bytes}")
        return self.energy_per_hop_j

    def reset(self) -> None:
        for queue in self.input_queues.values():
            queue.reset()
        self.flits_routed = 0
        self.messages_routed = 0
