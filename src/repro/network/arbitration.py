"""Optical token-ring arbitration (Section 3.2.3 of the Corona paper).

Every crossbar channel (and the broadcast bus) is guarded by a one-bit optical
token circulating on an arbitration waveguide.  A cluster that wants to send
on channel ``d`` diverts (absorbs) wavelength ``d`` from the arbitration
waveguide; possession of the token is an exclusive grant.  When the cluster
finishes transmitting it re-injects the token, which then travels around the
ring to the next requester.

The model tracks, per channel, where and when the token was last released.
A request from cluster ``c`` at time ``t`` is granted at::

    grant = max(t, release_time) + travel_time(release_position -> c)

where travel time is the serpentine propagation delay between the two
clusters (a full revolution takes ``ring_round_trip_cycles``, 8 processor
clocks in the paper).  This reproduces the paper's behaviour: under contention
the token moves only a short distance between back-to-back holders so
utilization is high, while an uncontested requester may wait up to a full
revolution (8 cycles) for the token to come around.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.sim.stats import RunningStats


@dataclass(slots=True)
class TokenChannelArbiter:
    """Arbiter for a single channel's token."""

    channel_id: int
    num_clusters: int
    ring_round_trip_s: float
    #: Cluster just downstream of which the token was last released.
    release_position: int = 0
    #: Time the token was last released (or created).
    release_time: float = 0.0
    grants: int = field(default=0, repr=False)
    total_wait_s: float = field(default=0.0, repr=False)

    def __post_init__(self) -> None:
        if self.num_clusters < 1:
            raise ValueError(
                f"cluster count must be >= 1, got {self.num_clusters}"
            )
        if self.ring_round_trip_s < 0:
            raise ValueError(
                f"round-trip time must be non-negative, got {self.ring_round_trip_s}"
            )

    def travel_time(self, from_cluster: int, to_cluster: int) -> float:
        """Token propagation time from one cluster to another along the ring.

        The ring is unidirectional (cyclically increasing cluster order); a
        token released at its owner immediately after a transmission must
        travel a full revolution before that same cluster could re-acquire it,
        which is how the detectors are positioned in the paper (Figure 5).
        """
        distance = (to_cluster - from_cluster) % self.num_clusters
        if distance == 0:
            distance = self.num_clusters
        return self.ring_round_trip_s * distance / self.num_clusters

    def contended_handoff_time(self) -> float:
        """Token hop time between adjacent clusters (the contended case).

        When many clusters are waiting for the same channel the token only
        travels as far as the next requester downstream, which on average is a
        neighbouring cluster; this is why the paper notes that "when
        contention is high, token transfer time is low and channel utilization
        is high".
        """
        return self.ring_round_trip_s / self.num_clusters

    def acquire(self, cluster: int, now: float) -> float:
        """Request the token from ``cluster`` at time ``now``; returns grant time."""
        if not 0 <= cluster < self.num_clusters:
            raise ValueError(
                f"cluster {cluster} outside ring of {self.num_clusters}"
            )
        if now >= self.release_time:
            # Uncontested: the token is circulating.  It arrives at the
            # requester one travel time after its last release; if it has
            # already swept past, it must complete further revolutions.
            arrival = self.release_time + self.travel_time(
                self.release_position, cluster
            )
            while arrival < now and self.ring_round_trip_s > 0:
                arrival += self.ring_round_trip_s
            grant = max(arrival, now)
        else:
            # Contested: the channel is still granted into the future; the
            # token hops from the current holder to the next requester, which
            # under heavy contention is nearby on the ring.
            grant = self.release_time + self.contended_handoff_time()
        self.grants += 1
        self.total_wait_s += grant - now
        return grant

    def release(self, cluster: int, release_time: float) -> None:
        """Re-inject the token at ``cluster`` at ``release_time``."""
        if release_time < self.release_time:
            raise ValueError(
                f"token for channel {self.channel_id} released at {release_time} "
                f"before previous release {self.release_time}"
            )
        self.release_position = cluster
        self.release_time = release_time

    @property
    def average_wait_s(self) -> float:
        if self.grants == 0:
            return 0.0
        return self.total_wait_s / self.grants


class TokenRingArbiter:
    """The full arbitration subsystem: one token per crossbar channel.

    The paper uses 64 wavelengths on the arbitration waveguide, one per
    crossbar channel, plus one wavelength for the broadcast bus; this class
    manages any number of channels with independent tokens sharing a single
    (logical) arbitration ring.
    """

    def __init__(
        self,
        num_clusters: int = 64,
        num_channels: int = 64,
        clock_hz: float = 5e9,
        ring_round_trip_cycles: float = 8.0,
    ) -> None:
        if num_channels < 1:
            raise ValueError(f"need at least one channel, got {num_channels}")
        if clock_hz <= 0:
            raise ValueError(f"clock must be positive, got {clock_hz}")
        self.num_clusters = num_clusters
        self.num_channels = num_channels
        self.clock_hz = clock_hz
        self.ring_round_trip_s = ring_round_trip_cycles / clock_hz
        self.channels: Dict[int, TokenChannelArbiter] = {
            channel: TokenChannelArbiter(
                channel_id=channel,
                num_clusters=num_clusters,
                ring_round_trip_s=self.ring_round_trip_s,
                # Tokens start spread around the ring, as they would be after
                # the channels have been idle for a revolution.
                release_position=channel % num_clusters,
            )
            for channel in range(num_channels)
        }
        self.wait_statistics = RunningStats("token-wait")

    def acquire(self, channel: int, cluster: int, now: float) -> float:
        """Acquire the token of ``channel`` for ``cluster``; returns grant time."""
        arbiter = self.channels.get(channel)
        if arbiter is None:
            arbiter = self._channel(channel)
        grant = arbiter.acquire(cluster, now)
        self.wait_statistics.add(grant - now)
        return grant

    def release(self, channel: int, cluster: int, release_time: float) -> None:
        """Release the token of ``channel`` from ``cluster`` at ``release_time``."""
        self._channel(channel).release(cluster, release_time)

    def worst_case_uncontested_wait_s(self) -> float:
        """An uncontested requester may wait a full token revolution."""
        return self.ring_round_trip_s

    def average_wait_s(self) -> float:
        """Mean token wait over every grant, derived from the per-channel
        counters (callers on the hot path grant through the channel arbiters
        directly, without updating :attr:`wait_statistics`)."""
        grants = sum(c.grants for c in self.channels.values())
        if grants == 0:
            return 0.0
        return sum(c.total_wait_s for c in self.channels.values()) / grants

    def per_channel_waits(self) -> List[float]:
        return [self.channels[c].average_wait_s for c in sorted(self.channels)]

    def _channel(self, channel: int) -> TokenChannelArbiter:
        if channel not in self.channels:
            raise ValueError(
                f"channel {channel} outside arbiter with {self.num_channels} channels"
            )
        return self.channels[channel]
