"""Nanophotonic device and budget models (Section 2 of the Corona paper).

This package models the photonic building blocks the paper describes --
waveguides, ring resonators used as modulators / injectors / detectors,
broadband splitters, mode-locked comb lasers and DWDM channels -- at the level
the paper uses them: component counts, optical power/loss budgets, propagation
delays and data rates.  It also computes the Table 2 optical resource
inventory from the architectural parameters.
"""

from repro.photonics.constants import (
    GE_ABSORPTION_WINDOW_M,
    LIGHT_SPEED_VACUUM_M_PER_S,
    SILICON_GROUP_INDEX,
    WAVEGUIDE_BEND_RADIUS_M,
    WAVEGUIDE_LOSS_DB_PER_CM,
    WAVEGUIDE_PITCH_M,
)
from repro.photonics.dwdm import DwdmChannel, WavelengthComb
from repro.photonics.inventory import (
    OpticalResourceInventory,
    SubsystemInventory,
    corona_inventory,
)
from repro.photonics.laser import ModeLockedLaser
from repro.photonics.power_budget import LossBudget, LossElement, PowerBudget
from repro.photonics.ring import (
    Detector,
    Injector,
    Modulator,
    RingResonator,
    RingRole,
)
from repro.photonics.splitter import BroadbandSplitter, StarCoupler
from repro.photonics.waveguide import Waveguide, WaveguideBundle

__all__ = [
    "LIGHT_SPEED_VACUUM_M_PER_S",
    "SILICON_GROUP_INDEX",
    "WAVEGUIDE_LOSS_DB_PER_CM",
    "WAVEGUIDE_BEND_RADIUS_M",
    "WAVEGUIDE_PITCH_M",
    "GE_ABSORPTION_WINDOW_M",
    "WavelengthComb",
    "DwdmChannel",
    "ModeLockedLaser",
    "RingResonator",
    "RingRole",
    "Modulator",
    "Injector",
    "Detector",
    "BroadbandSplitter",
    "StarCoupler",
    "Waveguide",
    "WaveguideBundle",
    "LossBudget",
    "LossElement",
    "PowerBudget",
    "OpticalResourceInventory",
    "SubsystemInventory",
    "corona_inventory",
]
