"""Physical and technology constants used by the photonic models.

Values come from Section 2 of the Corona paper and the device literature it
cites: silicon-on-insulator waveguides with ~2-3 dB/cm loss and ~10 um bend
radii, ring resonators of 3-5 um diameter modulating at 10 Gb/s, germanium
detectors absorbing between 1.1 and 1.5 um, and mode-locked comb lasers
providing 64 wavelengths per waveguide.
"""

from __future__ import annotations

#: Speed of light in vacuum (m/s).
LIGHT_SPEED_VACUUM_M_PER_S = 299_792_458.0

#: Group index of a silicon waveguide; the paper quotes light propagation of
#: roughly 2 cm per 5 GHz clock, i.e. an effective speed of ~1e8 m/s, which
#: corresponds to a group index of ~3.
SILICON_GROUP_INDEX = 3.0

#: Effective speed of light in a silicon waveguide (m/s).
LIGHT_SPEED_WAVEGUIDE_M_PER_S = LIGHT_SPEED_VACUUM_M_PER_S / SILICON_GROUP_INDEX

#: Refractive indices of the waveguide core and cladding materials.
SILICON_REFRACTIVE_INDEX = 3.5
SILICON_OXIDE_REFRACTIVE_INDEX = 1.45

#: Waveguide propagation loss (dB per centimetre); the paper quotes 2-3 dB/cm.
WAVEGUIDE_LOSS_DB_PER_CM = 2.5

#: Minimum waveguide bend radius (metres); the paper quotes ~10 um.
WAVEGUIDE_BEND_RADIUS_M = 10e-6

#: Waveguide cross-section dimension (metres); the paper quotes ~500 nm.
WAVEGUIDE_CORE_DIMENSION_M = 500e-9

#: Waveguide wall (cladding) thickness (metres); at least 1 um per the paper.
WAVEGUIDE_WALL_THICKNESS_M = 1e-6

#: Pitch between adjacent waveguides in a bundle (core + 2 walls, metres).
WAVEGUIDE_PITCH_M = WAVEGUIDE_CORE_DIMENSION_M + 2 * WAVEGUIDE_WALL_THICKNESS_M

#: Germanium photo-absorption window (metres): 1.1 um to 1.5 um.
GE_ABSORPTION_WINDOW_M = (1.1e-6, 1.5e-6)

#: Operating wavelength used by Corona (metres): ~1.3 um for unstrained Ge.
OPERATING_WAVELENGTH_M = 1.3e-6

#: Ring resonator diameter range (metres): 3-5 um.
RING_DIAMETER_RANGE_M = (3e-6, 5e-6)

#: Default ring resonator diameter used by the models (metres).
RING_DIAMETER_M = 3e-6

#: Detector capacitance (farads): the paper quotes ~1 fF, which is what makes
#: receivers work without trans-impedance amplifiers.
DETECTOR_CAPACITANCE_F = 1e-15

#: Per-wavelength modulation rate (bits per second): 10 Gb/s, achieved by
#: signalling on both edges of the 5 GHz clock.
MODULATION_RATE_BPS = 10e9

#: Number of wavelengths provided by one mode-locked comb laser.
WAVELENGTHS_PER_LASER = 64

#: Maximum detector absorption per pass (fraction); the paper notes that less
#: than 1% per pass suffices because the resonant wavelength recirculates.
DETECTOR_ABSORPTION_PER_PASS = 0.01


def db_to_fraction(loss_db: float) -> float:
    """Convert a loss in dB to the transmitted power fraction."""
    return 10.0 ** (-loss_db / 10.0)


def fraction_to_db(fraction: float) -> float:
    """Convert a transmitted power fraction to a loss in dB."""
    if fraction <= 0:
        raise ValueError(f"power fraction must be positive, got {fraction}")
    import math

    return -10.0 * math.log10(fraction)


def propagation_delay(distance_m: float) -> float:
    """Time for light to traverse ``distance_m`` of silicon waveguide (seconds)."""
    if distance_m < 0:
        raise ValueError(f"distance must be non-negative, got {distance_m}")
    return distance_m / LIGHT_SPEED_WAVEGUIDE_M_PER_S
