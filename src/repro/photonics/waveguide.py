"""Waveguide and waveguide-bundle models.

A waveguide carries a DWDM comb of wavelengths around the die.  The models
track the properties the architecture cares about: physical length (hence
propagation delay), insertion loss (propagation loss plus the through-loss of
every ring the light passes), and aggregate data rate when the waveguide
carries modulated wavelengths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.photonics.constants import (
    MODULATION_RATE_BPS,
    WAVEGUIDE_LOSS_DB_PER_CM,
    propagation_delay,
)


@dataclass
class Waveguide:
    """A single silicon waveguide segment.

    Parameters
    ----------
    name:
        Identifier used in loss-budget reports.
    length_m:
        Physical routed length in metres.
    wavelengths:
        Number of DWDM wavelengths carried.
    loss_db_per_cm:
        Propagation loss; defaults to the paper's 2-3 dB/cm midpoint.
    ring_passes:
        Number of off-resonance ring resonators the light passes; each adds a
        small through loss.
    ring_through_loss_db:
        Through loss per off-resonance ring pass.
    """

    name: str
    length_m: float
    wavelengths: int = 64
    loss_db_per_cm: float = WAVEGUIDE_LOSS_DB_PER_CM
    ring_passes: int = 0
    ring_through_loss_db: float = 0.01

    def __post_init__(self) -> None:
        if self.length_m < 0:
            raise ValueError(f"length must be non-negative, got {self.length_m}")
        if self.wavelengths < 1:
            raise ValueError(
                f"wavelength count must be >= 1, got {self.wavelengths}"
            )

    @property
    def propagation_loss_db(self) -> float:
        """Loss from propagation through the silicon."""
        return self.loss_db_per_cm * (self.length_m * 100.0)

    @property
    def ring_loss_db(self) -> float:
        """Accumulated through-loss of all off-resonance ring passes."""
        return self.ring_passes * self.ring_through_loss_db

    @property
    def insertion_loss_db(self) -> float:
        """Total loss from source to the end of the waveguide."""
        return self.propagation_loss_db + self.ring_loss_db

    @property
    def propagation_delay_s(self) -> float:
        """End-to-end light propagation delay (seconds)."""
        return propagation_delay(self.length_m)

    def data_rate_bps(self, rate_per_wavelength_bps: float = MODULATION_RATE_BPS) -> float:
        """Aggregate data rate if every wavelength carries modulated data."""
        return self.wavelengths * rate_per_wavelength_bps

    def delay_cycles(self, clock_hz: float) -> float:
        """Propagation delay expressed in clock cycles."""
        if clock_hz <= 0:
            raise ValueError(f"clock must be positive, got {clock_hz}")
        return self.propagation_delay_s * clock_hz


@dataclass
class WaveguideBundle:
    """A bundle of parallel waveguides forming one wide logical channel.

    Corona's crossbar channels are 4-waveguide bundles of 64 wavelengths each,
    i.e. 256-bit-wide phits signalling on both clock edges.
    """

    name: str
    waveguides: List[Waveguide] = field(default_factory=list)

    @classmethod
    def uniform(
        cls,
        name: str,
        count: int,
        length_m: float,
        wavelengths_per_guide: int = 64,
        **waveguide_kwargs: float,
    ) -> "WaveguideBundle":
        """Create a bundle of ``count`` identical waveguides."""
        if count < 1:
            raise ValueError(f"bundle needs at least one waveguide, got {count}")
        guides = [
            Waveguide(
                name=f"{name}[{i}]",
                length_m=length_m,
                wavelengths=wavelengths_per_guide,
                **waveguide_kwargs,
            )
            for i in range(count)
        ]
        return cls(name=name, waveguides=guides)

    @property
    def count(self) -> int:
        return len(self.waveguides)

    @property
    def total_wavelengths(self) -> int:
        return sum(g.wavelengths for g in self.waveguides)

    @property
    def phit_bits(self) -> int:
        """Bits transferred in parallel on one clock edge (one bit per wavelength)."""
        return self.total_wavelengths

    @property
    def propagation_delay_s(self) -> float:
        """Bundle delay is set by its longest member."""
        if not self.waveguides:
            return 0.0
        return max(g.propagation_delay_s for g in self.waveguides)

    @property
    def worst_insertion_loss_db(self) -> float:
        if not self.waveguides:
            return 0.0
        return max(g.insertion_loss_db for g in self.waveguides)

    def bandwidth_bytes_per_s(
        self,
        rate_per_wavelength_bps: float = MODULATION_RATE_BPS,
    ) -> float:
        """Aggregate bundle bandwidth in bytes per second."""
        return self.total_wavelengths * rate_per_wavelength_bps / 8.0
