"""Optical loss and power budgets.

The feasibility of a DWDM network rests on a link budget: the laser must emit
enough power per wavelength that, after every splitter, waveguide centimetre,
ring pass and coupler on the worst-case path, the detector still receives its
sensitivity threshold.  :class:`LossBudget` composes named loss elements;
:class:`PowerBudget` turns a loss budget plus detector sensitivity into the
required laser power and checks margin.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.photonics.constants import db_to_fraction


@dataclass(frozen=True)
class LossElement:
    """A single named contribution to a path's insertion loss."""

    name: str
    loss_db: float
    count: int = 1

    def __post_init__(self) -> None:
        if self.loss_db < 0:
            raise ValueError(f"loss must be non-negative, got {self.loss_db}")
        if self.count < 0:
            raise ValueError(f"count must be non-negative, got {self.count}")

    @property
    def total_db(self) -> float:
        return self.loss_db * self.count


@dataclass
class LossBudget:
    """An ordered list of loss elements along one optical path."""

    name: str
    elements: List[LossElement] = field(default_factory=list)

    def add(self, name: str, loss_db: float, count: int = 1) -> "LossBudget":
        """Append an element; returns self for chaining."""
        self.elements.append(LossElement(name=name, loss_db=loss_db, count=count))
        return self

    @property
    def total_db(self) -> float:
        return sum(element.total_db for element in self.elements)

    @property
    def transmitted_fraction(self) -> float:
        return db_to_fraction(self.total_db)

    def report(self) -> str:
        lines = [f"Loss budget: {self.name}"]
        for element in self.elements:
            lines.append(
                f"  {element.name:<32} {element.loss_db:6.2f} dB x {element.count:<5d}"
                f" = {element.total_db:7.2f} dB"
            )
        lines.append(f"  {'TOTAL':<32} {'':>18}{self.total_db:7.2f} dB")
        return "\n".join(lines)


@dataclass
class PowerBudget:
    """Laser power requirement derived from a loss budget.

    Parameters
    ----------
    loss_budget:
        Worst-case path loss.
    detector_sensitivity_dbm:
        Minimum received optical power per wavelength, in dBm.
    laser_power_per_wavelength_dbm:
        Emitted optical power per comb line, in dBm.
    margin_db:
        Extra margin demanded on top of the sensitivity threshold.
    """

    loss_budget: LossBudget
    detector_sensitivity_dbm: float = -20.0
    laser_power_per_wavelength_dbm: float = 0.0
    margin_db: float = 3.0

    @property
    def received_power_dbm(self) -> float:
        return self.laser_power_per_wavelength_dbm - self.loss_budget.total_db

    @property
    def margin_achieved_db(self) -> float:
        """Margin above detector sensitivity on the worst-case path."""
        return self.received_power_dbm - self.detector_sensitivity_dbm

    @property
    def closes(self) -> bool:
        """Whether the link budget closes with the demanded margin."""
        return self.margin_achieved_db >= self.margin_db

    @property
    def required_laser_power_dbm(self) -> float:
        """Per-wavelength laser power needed to just meet sensitivity + margin."""
        return (
            self.detector_sensitivity_dbm + self.margin_db + self.loss_budget.total_db
        )

    @staticmethod
    def dbm_to_watts(dbm: float) -> float:
        return 1e-3 * 10.0 ** (dbm / 10.0)

    @staticmethod
    def watts_to_dbm(watts: float) -> float:
        if watts <= 0:
            raise ValueError(f"power must be positive, got {watts}")
        import math

        return 10.0 * math.log10(watts / 1e-3)

    def required_laser_power_w(self) -> float:
        return self.dbm_to_watts(self.required_laser_power_dbm)

    def report(self) -> str:
        status = "CLOSES" if self.closes else "DOES NOT CLOSE"
        return "\n".join(
            [
                self.loss_budget.report(),
                f"  laser power / wavelength : {self.laser_power_per_wavelength_dbm:7.2f} dBm",
                f"  received power           : {self.received_power_dbm:7.2f} dBm",
                f"  detector sensitivity     : {self.detector_sensitivity_dbm:7.2f} dBm",
                f"  margin achieved          : {self.margin_achieved_db:7.2f} dB ({status})",
            ]
        )


def crossbar_worst_case_budget(
    serpentine_length_cm: float = 16.0,
    waveguide_loss_db_per_cm: float = 0.3,
    ring_passes: int = 64 * 64,
    ring_through_loss_db: float = 0.0001,
    splitter_loss_db: float = 3.5,
    coupler_loss_db: float = 1.0,
    modulator_insertion_db: float = 0.5,
    detector_drop_db: float = 0.5,
) -> LossBudget:
    """The worst-case crossbar path loss budget.

    Note: this budget uses optimistic 2017-era projections for waveguide loss
    (0.3 dB/cm rather than today's 2-3 dB/cm) and very low per-ring through
    loss, following the assumption in the paper that device quality improves
    by the 16 nm node.  The knobs are exposed so sensitivity studies can
    explore how much device improvement the architecture actually needs.
    """
    budget = LossBudget(name="crossbar worst-case path")
    budget.add("star coupler", coupler_loss_db)
    budget.add("home splitter", splitter_loss_db)
    budget.add(
        "waveguide propagation",
        waveguide_loss_db_per_cm,
        count=int(round(serpentine_length_cm)),
    )
    budget.add("off-resonance ring passes", ring_through_loss_db, count=ring_passes)
    budget.add("modulator insertion", modulator_insertion_db)
    budget.add("detector drop", detector_drop_db)
    return budget
