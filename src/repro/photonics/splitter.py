"""Broadband splitters and star couplers.

A broadband splitter diverts a fixed fraction of *all* wavelengths from one
waveguide onto another.  Corona uses splitters to (a) tap the power waveguide
at each crossbar channel's home cluster, (b) let every cluster listen to the
broadcast bus on its second pass, and (c) distribute laser light through a
star coupler to the power waveguides.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.photonics.constants import fraction_to_db


@dataclass
class BroadbandSplitter:
    """A two-output power splitter.

    ``tap_fraction`` of the incoming power exits on the tap port; the rest
    continues on the through port (minus a small excess loss).
    """

    name: str
    tap_fraction: float = 0.5
    excess_loss_db: float = 0.1

    def __post_init__(self) -> None:
        if not 0.0 < self.tap_fraction < 1.0:
            raise ValueError(
                f"tap fraction must be in (0, 1), got {self.tap_fraction}"
            )
        if self.excess_loss_db < 0:
            raise ValueError(
                f"excess loss must be non-negative, got {self.excess_loss_db}"
            )

    @property
    def tap_loss_db(self) -> float:
        """Loss seen by light taking the tap port."""
        return fraction_to_db(self.tap_fraction) + self.excess_loss_db

    @property
    def through_loss_db(self) -> float:
        """Loss seen by light continuing on the main waveguide."""
        return fraction_to_db(1.0 - self.tap_fraction) + self.excess_loss_db

    def split_power(self, input_power_w: float) -> tuple[float, float]:
        """Return ``(tap_power, through_power)`` for ``input_power_w`` in."""
        if input_power_w < 0:
            raise ValueError(
                f"input power must be non-negative, got {input_power_w}"
            )
        excess = 10.0 ** (-self.excess_loss_db / 10.0)
        usable = input_power_w * excess
        return usable * self.tap_fraction, usable * (1.0 - self.tap_fraction)


@dataclass
class StarCoupler:
    """A 1-to-N broadband power distributor.

    The star coupler divides the laser comb equally among N power waveguides;
    each output sees the 1/N splitting loss plus an excess loss.
    """

    name: str
    outputs: int
    excess_loss_db: float = 1.0

    def __post_init__(self) -> None:
        if self.outputs < 1:
            raise ValueError(f"outputs must be >= 1, got {self.outputs}")
        if self.excess_loss_db < 0:
            raise ValueError(
                f"excess loss must be non-negative, got {self.excess_loss_db}"
            )

    @property
    def splitting_loss_db(self) -> float:
        return fraction_to_db(1.0 / self.outputs)

    @property
    def per_output_loss_db(self) -> float:
        return self.splitting_loss_db + self.excess_loss_db

    def output_power_w(self, input_power_w: float) -> float:
        """Optical power delivered to each output."""
        if input_power_w < 0:
            raise ValueError(
                f"input power must be non-negative, got {input_power_w}"
            )
        excess = 10.0 ** (-self.excess_loss_db / 10.0)
        return input_power_w * excess / self.outputs


def splitter_chain_losses(
    num_taps: int, tap_fraction: float = None, excess_loss_db: float = 0.1
) -> List[float]:
    """Loss (dB) seen at each tap of a chain of broadband splitters.

    Used for the broadcast bus: the bus passes every cluster, and each cluster
    taps a fraction of the remaining light.  If ``tap_fraction`` is None, the
    fraction is chosen as ``1/(remaining taps)`` at each stage so every
    listener receives approximately equal power.
    """
    if num_taps < 1:
        raise ValueError(f"need at least one tap, got {num_taps}")
    losses: List[float] = []
    cumulative_through_db = 0.0
    for i in range(num_taps):
        remaining = num_taps - i
        fraction = tap_fraction if tap_fraction is not None else 1.0 / remaining
        if remaining == 1 and tap_fraction is None:
            # Last listener takes everything that is left.
            losses.append(cumulative_through_db + excess_loss_db)
            break
        splitter = BroadbandSplitter(
            name=f"tap{i}", tap_fraction=min(max(fraction, 1e-6), 1 - 1e-6),
            excess_loss_db=excess_loss_db,
        )
        losses.append(cumulative_through_db + splitter.tap_loss_db)
        cumulative_through_db += splitter.through_loss_db
    return losses
