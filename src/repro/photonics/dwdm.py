"""Dense wavelength division multiplexing (DWDM) channel abstractions.

A :class:`WavelengthComb` describes the set of wavelengths available on a
waveguide; a :class:`DwdmChannel` combines a waveguide bundle with per
wavelength modulators at the sender and detectors at the receiver into a
logical point-to-point data channel with a bandwidth, a phit width and a
serialization model.  The Corona crossbar channel (4 waveguides x 64
wavelengths = 256 bits per clock edge) and the OCM memory links (1 waveguide x
64 wavelengths) are both instances of this class.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.photonics.constants import MODULATION_RATE_BPS
from repro.photonics.ring import Detector, Modulator
from repro.photonics.waveguide import WaveguideBundle


@dataclass(frozen=True)
class WavelengthComb:
    """A set of equally spaced DWDM comb lines."""

    num_wavelengths: int = 64
    spacing_hz: float = 80e9

    def __post_init__(self) -> None:
        if self.num_wavelengths < 1:
            raise ValueError(
                f"comb needs at least one wavelength, got {self.num_wavelengths}"
            )
        if self.spacing_hz <= 0:
            raise ValueError(f"spacing must be positive, got {self.spacing_hz}")

    @property
    def total_bandwidth_hz(self) -> float:
        """Optical spectrum occupied by the comb."""
        return self.num_wavelengths * self.spacing_hz

    def indices(self) -> range:
        return range(self.num_wavelengths)


@dataclass
class DwdmChannel:
    """A logical data channel built from a waveguide bundle plus ring arrays.

    Parameters
    ----------
    name:
        Channel identifier (e.g. ``"xbar-ch17"`` or ``"ocm-link-3"``).
    bundle:
        The physical waveguides carrying the channel.
    comb:
        Wavelength comb carried by *each* waveguide of the bundle.
    bit_rate_per_wavelength_bps:
        Signalling rate per wavelength (10 Gb/s: both edges of a 5 GHz clock).
    dual_edge:
        Whether data is modulated on both clock edges (Corona: yes).
    """

    name: str
    bundle: WaveguideBundle
    comb: WavelengthComb = field(default_factory=WavelengthComb)
    bit_rate_per_wavelength_bps: float = MODULATION_RATE_BPS
    dual_edge: bool = True
    modulators: List[Modulator] = field(default_factory=list)
    detectors: List[Detector] = field(default_factory=list)

    def __post_init__(self) -> None:
        expected = self.bundle.count * self.comb.num_wavelengths
        if not self.modulators:
            self.modulators = [
                Modulator(wavelength_index=i % self.comb.num_wavelengths)
                for i in range(expected)
            ]
        if not self.detectors:
            self.detectors = [
                Detector(wavelength_index=i % self.comb.num_wavelengths)
                for i in range(expected)
            ]
        if len(self.modulators) != expected:
            raise ValueError(
                f"channel {self.name} needs {expected} modulators, "
                f"got {len(self.modulators)}"
            )
        if len(self.detectors) != expected:
            raise ValueError(
                f"channel {self.name} needs {expected} detectors, "
                f"got {len(self.detectors)}"
            )

    # -- geometry -----------------------------------------------------------
    @property
    def phit_bits(self) -> int:
        """Bits transferred in parallel per signalling edge."""
        return self.bundle.count * self.comb.num_wavelengths

    @property
    def total_rings(self) -> int:
        return len(self.modulators) + len(self.detectors)

    # -- performance --------------------------------------------------------
    @property
    def bandwidth_bytes_per_s(self) -> float:
        """Peak channel bandwidth in bytes per second."""
        return self.phit_bits * self.bit_rate_per_wavelength_bps / 8.0

    def degraded_bandwidth_bytes_per_s(self, disabled_wavelengths: int) -> float:
        """Bandwidth with ``disabled_wavelengths`` rings detuned off the phit.

        Surviving wavelengths keep their full per-wavelength rate; a detuned
        ring simply stops contributing its bit lane.  This is the capacity
        model behind the fault injector's ring-detuning fault
        (:mod:`repro.faults.inject`).
        """
        if not 0 <= disabled_wavelengths <= self.phit_bits:
            raise ValueError(
                f"disabled wavelength count must be within [0, "
                f"{self.phit_bits}], got {disabled_wavelengths}"
            )
        surviving = self.phit_bits - disabled_wavelengths
        return surviving * self.bit_rate_per_wavelength_bps / 8.0

    @property
    def propagation_delay_s(self) -> float:
        return self.bundle.propagation_delay_s

    def serialization_time_s(self, num_bytes: float) -> float:
        """Time to clock ``num_bytes`` onto the channel (excludes propagation)."""
        if num_bytes < 0:
            raise ValueError(f"byte count must be non-negative, got {num_bytes}")
        return num_bytes / self.bandwidth_bytes_per_s

    def transfer_latency_s(self, num_bytes: float) -> float:
        """Serialization plus propagation for a message of ``num_bytes``."""
        return self.serialization_time_s(num_bytes) + self.propagation_delay_s

    def transfer_energy_j(self, num_bytes: float, toggle_probability: float = 0.5) -> float:
        """Electrical (modulator + receiver) energy to move ``num_bytes``."""
        if num_bytes < 0:
            raise ValueError(f"byte count must be non-negative, got {num_bytes}")
        num_bits = num_bytes * 8.0
        modulator_energy = (
            num_bits * toggle_probability * self.modulators[0].switching_energy_j
        )
        receiver_energy = num_bits * self.detectors[0].receiver_energy_per_bit_j
        return modulator_energy + receiver_energy


def corona_crossbar_channel(
    name: str, length_m: float = 0.08, waveguides: int = 4
) -> DwdmChannel:
    """Build one Corona crossbar channel: 4 waveguides x 64 wavelengths.

    The default length corresponds to a serpentine path past all 64 clusters
    on a ~20 mm die edge (the paper quotes a worst-case propagation time of 8
    clocks at ~2 cm per clock, i.e. up to ~16 cm routed length; individual
    channels are shorter on average).
    """
    bundle = WaveguideBundle.uniform(
        name=f"{name}-bundle", count=waveguides, length_m=length_m
    )
    return DwdmChannel(name=name, bundle=bundle)


def corona_memory_link(name: str, length_m: float = 0.05) -> DwdmChannel:
    """Build one OCM memory link: a single 64-wavelength waveguide/fiber pair."""
    bundle = WaveguideBundle.uniform(name=f"{name}-bundle", count=1, length_m=length_m)
    return DwdmChannel(name=name, bundle=bundle)
