"""Ring resonator models: modulators, injectors and detectors.

A ring resonator coupled to a waveguide is the universal active element in the
Corona photonic network (Figure 1 of the paper).  Depending on construction it
acts as:

* a **modulator** -- switched in and out of resonance by charge injection to
  encode data onto a continuous-wave carrier;
* an **injector** -- a frequency-selective switch that transfers its resonant
  wavelength from one waveguide to another (used to divert and re-inject
  arbitration tokens);
* a **detector** -- a ring containing germanium that absorbs its resonant
  wavelength and produces a photocurrent.

The models are behavioural: they track resonance state, the wavelength index
they act on, switching energy/latency, and the loss they contribute to the
optical budget.  They do not solve Maxwell's equations -- the paper uses the
devices as digital building blocks, and so do we.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.photonics.constants import (
    DETECTOR_ABSORPTION_PER_PASS,
    DETECTOR_CAPACITANCE_F,
    MODULATION_RATE_BPS,
    RING_DIAMETER_M,
)


class RingRole(enum.Enum):
    """What a ring resonator is built to do."""

    MODULATOR = "modulator"
    INJECTOR = "injector"
    DETECTOR = "detector"


@dataclass
class RingResonator:
    """Common state and behaviour of a ring resonator.

    Parameters
    ----------
    wavelength_index:
        Index of the DWDM comb line this ring is tuned to (0-63 for a 64
        wavelength comb).
    role:
        Whether the ring is a modulator, injector or detector.
    diameter_m:
        Physical ring diameter; 3-5 um in the paper.
    through_loss_db:
        Loss imposed on *non-resonant* wavelengths passing the ring.
    drop_loss_db:
        Loss imposed on the resonant wavelength when it is diverted/coupled.
    switching_energy_j:
        Electrical energy to change resonance state once (charge injection).
    switching_time_s:
        Time to move between on- and off-resonance states.
    """

    wavelength_index: int
    role: RingRole = RingRole.MODULATOR
    diameter_m: float = RING_DIAMETER_M
    through_loss_db: float = 0.01
    drop_loss_db: float = 0.5
    switching_energy_j: float = 50e-15
    switching_time_s: float = 20e-12
    on_resonance: bool = False
    switch_count: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.wavelength_index < 0:
            raise ValueError(
                f"wavelength index must be non-negative, got {self.wavelength_index}"
            )
        if self.diameter_m <= 0:
            raise ValueError(f"diameter must be positive, got {self.diameter_m}")

    def set_resonance(self, on: bool) -> float:
        """Drive the ring on or off resonance.

        Returns the electrical energy consumed by the transition (zero if the
        ring was already in the requested state).
        """
        if on == self.on_resonance:
            return 0.0
        self.on_resonance = on
        self.switch_count += 1
        return self.switching_energy_j

    def passes_wavelength(self, wavelength_index: int) -> bool:
        """Whether light of ``wavelength_index`` continues along the waveguide."""
        if wavelength_index != self.wavelength_index:
            return True
        return not self.on_resonance

    def loss_for(self, wavelength_index: int) -> float:
        """Loss in dB this ring imposes on light of ``wavelength_index``."""
        if wavelength_index != self.wavelength_index or not self.on_resonance:
            return self.through_loss_db
        return self.drop_loss_db

    def total_switching_energy_j(self) -> float:
        """Energy consumed by all resonance transitions so far."""
        return self.switch_count * self.switching_energy_j


@dataclass
class Modulator(RingResonator):
    """A ring used to encode data onto a continuous-wave carrier.

    The modulator toggles between on- and off-resonance at the data rate; the
    energy cost of sending ``n`` bits is therefore approximately ``n/2`` state
    transitions (on average half the bits flip the state) times the switching
    energy, which is how the analog-layer power in the paper's 39 W photonic
    budget arises.
    """

    role: RingRole = RingRole.MODULATOR
    data_rate_bps: float = MODULATION_RATE_BPS
    bits_modulated: int = 0

    def modulate(self, num_bits: int, toggle_probability: float = 0.5) -> float:
        """Encode ``num_bits`` of data; returns the electrical energy used."""
        if num_bits < 0:
            raise ValueError(f"bit count must be non-negative, got {num_bits}")
        if not 0.0 <= toggle_probability <= 1.0:
            raise ValueError(
                f"toggle probability must be in [0, 1], got {toggle_probability}"
            )
        self.bits_modulated += num_bits
        transitions = num_bits * toggle_probability
        return transitions * self.switching_energy_j

    def modulation_time(self, num_bits: int) -> float:
        """Time to serialize ``num_bits`` through this single modulator."""
        if num_bits < 0:
            raise ValueError(f"bit count must be non-negative, got {num_bits}")
        return num_bits / self.data_rate_bps


@dataclass
class Injector(RingResonator):
    """A frequency-selective switch between two waveguides.

    When on resonance, the ring transfers its wavelength from the input
    waveguide to the output waveguide; when off resonance the wavelength
    passes by untouched.  Corona's token arbitration uses injectors to divert
    (acquire) and re-inject (release) channel tokens.
    """

    role: RingRole = RingRole.INJECTOR

    def divert(self) -> float:
        """Start diverting the resonant wavelength (acquire a token)."""
        return self.set_resonance(True)

    def release(self) -> float:
        """Stop diverting, letting the wavelength continue (release a token)."""
        return self.set_resonance(False)

    @property
    def diverting(self) -> bool:
        return self.on_resonance


@dataclass
class Detector(RingResonator):
    """A germanium-loaded ring that converts its resonant wavelength to charge."""

    role: RingRole = RingRole.DETECTOR
    capacitance_f: float = DETECTOR_CAPACITANCE_F
    absorption_per_pass: float = DETECTOR_ABSORPTION_PER_PASS
    receiver_energy_per_bit_j: float = 25e-15
    bits_detected: int = 0

    def detect(self, num_bits: int) -> float:
        """Receive ``num_bits``; returns the receiver electrical energy used."""
        if num_bits < 0:
            raise ValueError(f"bit count must be non-negative, got {num_bits}")
        self.bits_detected += num_bits
        return num_bits * self.receiver_energy_per_bit_j

    def effective_absorption(self, passes: int) -> float:
        """Fraction of resonant light absorbed after ``passes`` recirculations."""
        if passes < 0:
            raise ValueError(f"passes must be non-negative, got {passes}")
        remaining = (1.0 - self.absorption_per_pass) ** passes
        return 1.0 - remaining


def ring_array(
    count: int,
    role: RingRole,
    start_wavelength: int = 0,
    **kwargs: float,
) -> list[RingResonator]:
    """Create ``count`` rings with consecutive wavelength assignments.

    This is the building block for a cluster's bank of modulators or
    detectors: one ring per wavelength of the comb.
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    cls = {
        RingRole.MODULATOR: Modulator,
        RingRole.INJECTOR: Injector,
        RingRole.DETECTOR: Detector,
    }[role]
    return [
        cls(wavelength_index=start_wavelength + i, **kwargs) for i in range(count)
    ]
