"""Optical resource inventory (Table 2 of the Corona paper).

The table counts waveguides and ring resonators per photonic subsystem:

==========  ==========  ===============
Subsystem   Waveguides  Ring resonators
==========  ==========  ===============
Memory      128         16 K
Crossbar    256         1024 K
Broadcast   1           8 K
Arbitration 2           8 K
Clock       1           64
Total       388         ~1056 K
==========  ==========  ===============

This module derives those counts from the architectural parameters (64
clusters, 64-wavelength combs, 4-waveguide crossbar bundles, one memory
controller per cluster with a two-fiber link), so the inventory scales
correctly when the architecture is re-parameterized.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass(frozen=True)
class SubsystemInventory:
    """Waveguide and ring counts for one photonic subsystem."""

    name: str
    waveguides: int
    ring_resonators: int

    def __post_init__(self) -> None:
        if self.waveguides < 0 or self.ring_resonators < 0:
            raise ValueError("inventory counts must be non-negative")


@dataclass
class OpticalResourceInventory:
    """Full-chip optical resource inventory."""

    subsystems: List[SubsystemInventory] = field(default_factory=list)

    def add(self, name: str, waveguides: int, ring_resonators: int) -> None:
        self.subsystems.append(
            SubsystemInventory(
                name=name, waveguides=waveguides, ring_resonators=ring_resonators
            )
        )

    @property
    def total_waveguides(self) -> int:
        return sum(s.waveguides for s in self.subsystems)

    @property
    def total_ring_resonators(self) -> int:
        return sum(s.ring_resonators for s in self.subsystems)

    def by_name(self) -> Dict[str, SubsystemInventory]:
        return {s.name: s for s in self.subsystems}

    def as_rows(self) -> List[tuple]:
        """Rows in the same layout as Table 2 of the paper."""
        rows = [
            (s.name, s.waveguides, s.ring_resonators) for s in self.subsystems
        ]
        rows.append(("Total", self.total_waveguides, self.total_ring_resonators))
        return rows

    def report(self) -> str:
        lines = [
            "Photonic Subsystem    Waveguides   Ring Resonators",
            "-" * 52,
        ]
        for name, guides, rings in self.as_rows():
            lines.append(f"{name:<20}  {guides:>10}   {rings:>15,}")
        return "\n".join(lines)


def corona_inventory(
    clusters: int = 64,
    wavelengths_per_waveguide: int = 64,
    crossbar_waveguides_per_channel: int = 4,
    memory_waveguides_per_controller: int = 2,
    broadcast_waveguides: int = 1,
    arbitration_waveguides: int = 2,
    clock_waveguides: int = 1,
) -> OpticalResourceInventory:
    """Derive the Table 2 inventory from architectural parameters.

    Ring counting rules (per the paper's component descriptions):

    * **Crossbar**: each of the ``clusters`` channels is a bundle of
      ``crossbar_waveguides_per_channel`` waveguides carrying
      ``wavelengths_per_waveguide`` wavelengths each.  Every cluster sits on
      every channel with a full-width ring bank (modulators on the 63 channels
      it may write, detectors on its own channel), so the ring count is
      ``clusters * clusters * channel_width``.
    * **Memory**: each cluster's memory controller drives a pair of
      waveguides/fibers, with a modulator bank on the outbound fiber and a
      detector bank on the return fiber.
    * **Broadcast**: a single waveguide passing every cluster twice; each
      cluster has a modulator bank (first pass) and a detector bank (second
      pass).
    * **Arbitration**: one wavelength per crossbar channel plus one for the
      broadcast bus; each cluster carries an injector bank and a detector
      bank.
    * **Clock**: one detector ring per cluster on the clock waveguide.
    """
    if clusters < 1:
        raise ValueError(f"cluster count must be >= 1, got {clusters}")
    channel_width = wavelengths_per_waveguide * crossbar_waveguides_per_channel

    inventory = OpticalResourceInventory()

    # Each controller drives two half-duplex fiber links; on each link it
    # needs both a modulator bank (to transmit) and a detector bank (to
    # receive the OCM's modulated return light): 2 links x 64 wavelengths x 2
    # banks = 256 rings per cluster, 16 K chip-wide.
    memory_rings = (
        clusters * memory_waveguides_per_controller * wavelengths_per_waveguide * 2
    )
    inventory.add(
        "Memory",
        waveguides=clusters * memory_waveguides_per_controller,
        ring_resonators=memory_rings,
    )

    crossbar_rings = clusters * clusters * channel_width
    inventory.add(
        "Crossbar",
        waveguides=clusters * crossbar_waveguides_per_channel,
        ring_resonators=crossbar_rings,
    )

    broadcast_rings = clusters * 2 * wavelengths_per_waveguide
    inventory.add(
        "Broadcast",
        waveguides=broadcast_waveguides,
        ring_resonators=broadcast_rings,
    )

    arbitration_rings = clusters * 2 * wavelengths_per_waveguide
    inventory.add(
        "Arbitration",
        waveguides=arbitration_waveguides,
        ring_resonators=arbitration_rings,
    )

    inventory.add("Clock", waveguides=clock_waveguides, ring_resonators=clusters)

    return inventory
