"""Mode-locked comb laser model.

Corona uses off-stack (or mezzanine-attached) mode-locked lasers that each
emit a comb of 64 equally spaced, phase-coherent wavelengths.  The laser is a
continuous-wave source: data is encoded downstream by ring modulators.  The
model tracks the comb definition and the wall-plug electrical power needed to
deliver a required optical power at the detectors given the network's worst
case loss.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.photonics.constants import (
    LIGHT_SPEED_VACUUM_M_PER_S,
    OPERATING_WAVELENGTH_M,
    WAVELENGTHS_PER_LASER,
    db_to_fraction,
)


@dataclass
class ModeLockedLaser:
    """A continuous-wave comb laser.

    Parameters
    ----------
    name:
        Identifier for reporting.
    num_wavelengths:
        Comb lines emitted (64 in the paper).
    center_wavelength_m:
        Center of the comb; ~1.3 um for unstrained germanium detection.
    channel_spacing_hz:
        Frequency spacing between adjacent comb lines.
    power_per_wavelength_w:
        Optical power emitted per comb line.
    wall_plug_efficiency:
        Electrical-to-optical conversion efficiency.
    """

    name: str = "laser"
    num_wavelengths: int = WAVELENGTHS_PER_LASER
    center_wavelength_m: float = OPERATING_WAVELENGTH_M
    channel_spacing_hz: float = 80e9
    power_per_wavelength_w: float = 1e-3
    wall_plug_efficiency: float = 0.1

    def __post_init__(self) -> None:
        if self.num_wavelengths < 1:
            raise ValueError(
                f"laser must emit at least one wavelength, got {self.num_wavelengths}"
            )
        if not 0 < self.wall_plug_efficiency <= 1:
            raise ValueError(
                f"efficiency must be in (0, 1], got {self.wall_plug_efficiency}"
            )

    @property
    def center_frequency_hz(self) -> float:
        return LIGHT_SPEED_VACUUM_M_PER_S / self.center_wavelength_m

    def wavelength_m(self, index: int) -> float:
        """Wavelength of comb line ``index`` (0-based, centered on the comb)."""
        if not 0 <= index < self.num_wavelengths:
            raise ValueError(
                f"index must be in [0, {self.num_wavelengths}), got {index}"
            )
        offset = index - (self.num_wavelengths - 1) / 2.0
        frequency = self.center_frequency_hz + offset * self.channel_spacing_hz
        return LIGHT_SPEED_VACUUM_M_PER_S / frequency

    @property
    def total_optical_power_w(self) -> float:
        """Total optical power emitted across the comb."""
        return self.num_wavelengths * self.power_per_wavelength_w

    @property
    def electrical_power_w(self) -> float:
        """Wall-plug electrical power drawn by the laser."""
        return self.total_optical_power_w / self.wall_plug_efficiency

    def detector_power_w(self, path_loss_db: float) -> float:
        """Optical power arriving at a detector after ``path_loss_db`` of loss."""
        if path_loss_db < 0:
            raise ValueError(f"loss must be non-negative, got {path_loss_db}")
        return self.power_per_wavelength_w * db_to_fraction(path_loss_db)

    def required_power_per_wavelength_w(
        self, detector_sensitivity_w: float, path_loss_db: float
    ) -> float:
        """Laser power per comb line needed to reach ``detector_sensitivity_w``."""
        if detector_sensitivity_w <= 0:
            raise ValueError(
                f"sensitivity must be positive, got {detector_sensitivity_w}"
            )
        return detector_sensitivity_w / db_to_fraction(path_loss_db)


def lasers_required(total_wavelength_feeds: int, wavelengths_per_laser: int = WAVELENGTHS_PER_LASER) -> int:
    """Number of comb lasers needed to source ``total_wavelength_feeds`` comb copies.

    Each crossbar channel home cluster and each memory link needs a comb of
    wavelengths; one laser comb can be split (with a power penalty) across
    several consumers, but this helper gives the count when each consumer gets
    a dedicated comb.
    """
    if total_wavelength_feeds < 0:
        raise ValueError(
            f"feed count must be non-negative, got {total_wavelength_feeds}"
        )
    if wavelengths_per_laser < 1:
        raise ValueError(
            f"wavelengths per laser must be >= 1, got {wavelengths_per_laser}"
        )
    full, rem = divmod(total_wavelength_feeds, wavelengths_per_laser)
    return full + (1 if rem else 0)
