"""Memory-controller-to-memory channel models (Table 4 of the Corona paper).

================  =====================  =====================
Resource          OCM                    ECM
================  =====================  =====================
Controllers       64                     64
Connectivity      256 fibers             1536 pins
Channel width     128 b half duplex      12 b full duplex
Channel data rate 10 Gb/s                10 Gb/s
Bandwidth         10.24 TB/s             0.96 TB/s
Latency           20 ns                  20 ns
Power             ~0.078 mW/Gb/s         ~2 mW/Gb/s
================  =====================  =====================

A channel serializes request and response traffic between one memory
controller and its memory devices; contention for the channel is what caps a
cluster's achievable memory bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.resources import SerialResource


@dataclass
class MemoryChannel:
    """A memory controller's external channel.

    Parameters
    ----------
    name:
        Identifier for reporting.
    width_bits:
        Signalling width in bits (per direction for full duplex; total for
        half duplex).
    data_rate_bps:
        Per-signal data rate (10 Gb/s in both designs).
    full_duplex:
        Whether both directions can transfer simultaneously at full width.
    latency_s:
        Flight latency of the channel (included in the memory access latency).
    interconnect_power_w_per_gbps:
        Interconnect power per Gb/s of peak signalling bandwidth, the paper's
        figure of merit for memory-link power (0.078 mW/Gb/s optical vs
        2 mW/Gb/s electrical).
    """

    name: str
    width_bits: int
    data_rate_bps: float
    full_duplex: bool
    latency_s: float = 0.0
    interconnect_power_w_per_gbps: float = 0.0
    _outbound: SerialResource = field(init=False, repr=False)
    _inbound: SerialResource = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.width_bits < 1:
            raise ValueError(f"width must be >= 1 bit, got {self.width_bits}")
        if self.data_rate_bps <= 0:
            raise ValueError(f"data rate must be positive, got {self.data_rate_bps}")
        self._outbound = SerialResource(name=f"{self.name}-out")
        # Half-duplex links share one serializing resource for both directions.
        self._inbound = (
            SerialResource(name=f"{self.name}-in") if self.full_duplex else self._outbound
        )
        self._per_direction_bw = self.width_bits * self.data_rate_bps / 8.0

    @property
    def peak_bandwidth_bytes_per_s(self) -> float:
        """Peak aggregate bandwidth of the channel."""
        directions = 2 if self.full_duplex else 1
        return self.width_bits * self.data_rate_bps * directions / 8.0

    @property
    def per_direction_bandwidth_bytes_per_s(self) -> float:
        return self.width_bits * self.data_rate_bps / 8.0

    @property
    def peak_bandwidth_gbps(self) -> float:
        """Peak signalling bandwidth in gigabits per second."""
        directions = 2 if self.full_duplex else 1
        return self.width_bits * self.data_rate_bps * directions / 1e9

    @property
    def interconnect_power_w(self) -> float:
        """Interconnect power at the paper's per-Gb/s figure of merit."""
        return self.peak_bandwidth_gbps * self.interconnect_power_w_per_gbps

    def serialization_time(self, size_bytes: float) -> float:
        if size_bytes < 0:
            raise ValueError(f"size must be non-negative, got {size_bytes}")
        return size_bytes / self.per_direction_bandwidth_bytes_per_s

    def send(self, now: float, size_bytes: float) -> float:
        """Transfer controller -> memory; returns completion time."""
        return (
            self._outbound.reserve(now, size_bytes / self._per_direction_bw)
            + self.latency_s
        )

    def receive(self, now: float, size_bytes: float) -> float:
        """Transfer memory -> controller; returns completion time."""
        return (
            self._inbound.reserve(now, size_bytes / self._per_direction_bw)
            + self.latency_s
        )

    def busy_time(self) -> float:
        if self.full_duplex:
            return self._outbound.busy_time + self._inbound.busy_time
        return self._outbound.busy_time

    def utilization(self, elapsed_seconds: float) -> float:
        if elapsed_seconds <= 0:
            return 0.0
        directions = 2 if self.full_duplex else 1
        return self.busy_time() / (elapsed_seconds * directions)

    def reset(self) -> None:
        self._outbound.reset()
        if self.full_duplex:
            self._inbound.reset()


def OpticalMemoryChannel(name: str = "ocm-channel") -> MemoryChannel:
    """One OCM link pair: 128 bits half duplex at 10 Gb/s (160 GB/s)."""
    return MemoryChannel(
        name=name,
        width_bits=128,
        data_rate_bps=10e9,
        full_duplex=False,
        latency_s=1e-9,
        interconnect_power_w_per_gbps=0.078e-3,
    )


def ElectricalMemoryChannel(name: str = "ecm-channel") -> MemoryChannel:
    """One ECM channel: 12 signal bits per direction at 10 Gb/s.

    The serial link itself is full duplex (12 bits each way, 24 pins per
    controller), but the DRAM data bus behind it is shared between reads and
    writes, so the channel is modelled as a single 15 GB/s serialization
    resource -- which is exactly the 0.96 TB/s aggregate memory bandwidth of
    Table 4.
    """
    return MemoryChannel(
        name=name,
        width_bits=12,
        data_rate_bps=10e9,
        full_duplex=False,
        latency_s=1e-9,
        interconnect_power_w_per_gbps=2e-3,
    )
