"""The full off-stack memory system: one controller per cluster.

The system simulator talks to this object: given a home cluster, an access
size and a direction, it performs the access at that cluster's controller and
returns the completion time.  Aggregate statistics (achieved bandwidth, per
controller utilization) feed Figures 9 and 10.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List

from repro.memory.channel import MemoryChannel
from repro.memory.controller import MemoryAccessResult, MemoryController
from repro.memory.dram import DramTimings, OcmModule


@dataclass
class MemorySystem:
    """A collection of per-cluster memory controllers.

    Parameters
    ----------
    name:
        "OCM" or "ECM" in the paper's configuration names.
    channel_factory:
        Builds the external channel for one controller.
    num_controllers:
        One per cluster (64).
    modules_per_controller:
        Daisy-chain length on each controller's fiber loop / channel.
    access_latency_s:
        Memory latency (Table 4: 20 ns for both designs).
    model_banks:
        Whether to simulate DRAM bank occupancy.
    """

    name: str
    channel_factory: Callable[[str], MemoryChannel]
    num_controllers: int = 64
    modules_per_controller: int = 1
    queue_depth: int = 256
    access_latency_s: float = 20e-9
    model_banks: bool = True
    dram_timings: DramTimings = field(default_factory=DramTimings)
    controllers: Dict[int, MemoryController] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.num_controllers < 1:
            raise ValueError(
                f"need at least one controller, got {self.num_controllers}"
            )
        if self.modules_per_controller < 1:
            raise ValueError(
                f"need at least one module per controller, got "
                f"{self.modules_per_controller}"
            )
        if not self.controllers:
            for controller_id in range(self.num_controllers):
                channel = self.channel_factory(f"{self.name}-ch{controller_id}")
                modules = [
                    OcmModule(module_id=m, timings=self.dram_timings)
                    for m in range(self.modules_per_controller)
                ]
                self.controllers[controller_id] = MemoryController(
                    controller_id=controller_id,
                    channel=channel,
                    modules=modules,
                    queue_depth=self.queue_depth,
                    access_latency_s=self.access_latency_s,
                    model_banks=self.model_banks,
                )

    def controller(self, cluster: int) -> MemoryController:
        if cluster not in self.controllers:
            raise ValueError(
                f"cluster {cluster} has no memory controller "
                f"(system has {self.num_controllers})"
            )
        return self.controllers[cluster]

    def access(
        self,
        home_cluster: int,
        now: float,
        size_bytes: int,
        is_write: bool,
        address: int = 0,
    ) -> MemoryAccessResult:
        """Perform a memory access at the home cluster's controller."""
        return self.controller(home_cluster).access(
            now=now, size_bytes=size_bytes, is_write=is_write, address=address
        )

    # -- aggregate properties --------------------------------------------------
    @property
    def peak_bandwidth_bytes_per_s(self) -> float:
        """Aggregate peak memory bandwidth across all controllers."""
        return sum(
            c.channel.peak_bandwidth_bytes_per_s for c in self.controllers.values()
        )

    def interconnect_power_w(self) -> float:
        """Total memory interconnect power at peak signalling rate."""
        return sum(c.channel.interconnect_power_w for c in self.controllers.values())

    def achieved_bandwidth_bytes_per_s(self, elapsed_seconds: float) -> float:
        if elapsed_seconds <= 0:
            return 0.0
        total_bytes = sum(c.bytes_transferred for c in self.controllers.values())
        return total_bytes / elapsed_seconds

    def total_accesses(self) -> int:
        return sum(c.accesses for c in self.controllers.values())

    def busiest_controllers(self, count: int = 5) -> List[tuple[int, float]]:
        ordered = sorted(
            ((cid, c.bytes_transferred) for cid, c in self.controllers.items()),
            key=lambda item: item[1],
            reverse=True,
        )
        return ordered[:count]

    def average_latency_s(self) -> float:
        stats = [c.latency_stats for c in self.controllers.values() if c.accesses]
        if not stats:
            return 0.0
        total = sum(s.total for s in stats)
        count = sum(s.count for s in stats)
        return total / count if count else 0.0

    def dram_energy_j(self) -> float:
        return sum(c.dram_energy_j() for c in self.controllers.values())
