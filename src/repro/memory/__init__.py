"""Off-stack memory system models (Section 3.3 / Table 4 of the Corona paper).

Two memory interconnects are modelled:

* :class:`~repro.memory.ocm.OpticallyConnectedMemory` -- Corona's OCM: each of
  the 64 memory controllers drives a pair of 64-wavelength DWDM fiber links to
  a daisy chain of 3D-stacked OCM modules, providing 160 GB/s per controller
  (10.24 TB/s aggregate) at 20 ns access latency and ~0.078 mW/Gb/s of
  interconnect power.
* :class:`~repro.memory.ecm.ElectricallyConnectedMemory` -- the electrical
  baseline the ITRS roadmap allows: 12-bit full-duplex channels at 10 Gb/s per
  pin, 0.96 TB/s aggregate, the same 20 ns latency, at ~2 mW/Gb/s.

Both are built on the same substrate: a DRAM mat/bank timing model
(:mod:`repro.memory.dram`), per-controller channels
(:mod:`repro.memory.channel`) and memory controllers with finite queues
(:mod:`repro.memory.controller`).
"""

from repro.memory.channel import (
    ElectricalMemoryChannel,
    MemoryChannel,
    OpticalMemoryChannel,
)
from repro.memory.controller import MemoryAccessResult, MemoryController
from repro.memory.dram import DramBank, DramDie, DramTimings, OcmModule
from repro.memory.ecm import ElectricallyConnectedMemory, ecm_interconnect_summary
from repro.memory.ocm import OpticallyConnectedMemory, ocm_interconnect_summary
from repro.memory.system import MemorySystem

__all__ = [
    "MemoryChannel",
    "OpticalMemoryChannel",
    "ElectricalMemoryChannel",
    "MemoryController",
    "MemoryAccessResult",
    "DramTimings",
    "DramBank",
    "DramDie",
    "OcmModule",
    "MemorySystem",
    "OpticallyConnectedMemory",
    "ElectricallyConnectedMemory",
    "ocm_interconnect_summary",
    "ecm_interconnect_summary",
]
