"""Memory controller model.

One controller per cluster (Table 1): it owns the cluster's slice of physical
memory, schedules accesses over its external channel, and enforces a finite
request queue so that saturated controllers push back on the interconnect --
the effect that dominates the Hot Spot results in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from heapq import heappop, heappush, nsmallest
from typing import List, NamedTuple

from repro.memory.channel import MemoryChannel
from repro.memory.dram import OcmModule, daisy_chain_delay
from repro.sim.resources import BoundedQueue
from repro.sim.stats import RunningStats

#: Bytes of command/address overhead sent to memory per access (the command
#: itself is small; most command signalling travels on dedicated wavelengths
#: or pins and does not consume data-channel bandwidth).
COMMAND_BYTES = 8


class MemoryAccessResult(NamedTuple):
    """Outcome of one memory access at a controller.

    A NamedTuple (not a dataclass): one is built per replayed miss, so cheap
    construction matters.
    """

    completion_time: float
    queueing_delay: float
    channel_delay: float
    dram_delay: float

    @property
    def memory_latency(self) -> float:
        return self.queueing_delay + self.channel_delay + self.dram_delay


@dataclass(slots=True)
class MemoryController:
    """A per-cluster memory controller.

    Parameters
    ----------
    controller_id:
        The cluster this controller belongs to.
    channel:
        External channel (optical or electrical).
    modules:
        Daisy chain of OCM modules (or the equivalent DRAM behind an ECM
        channel).
    queue_depth:
        Finite request queue; overflowing requests wait, creating
        back-pressure into the hub.
    access_latency_s:
        End-to-end memory access latency excluding channel serialization and
        queueing (Table 4: 20 ns for both designs).
    model_banks:
        When True, bank (mat) occupancy is simulated in addition to the fixed
        access latency; when False only the fixed latency is charged, which is
        faster and matches the paper's flat 20 ns figure.
    """

    controller_id: int
    channel: MemoryChannel
    modules: List[OcmModule] = field(default_factory=list)
    queue_depth: int = 256
    access_latency_s: float = 20e-9
    model_banks: bool = True
    queue: BoundedQueue = field(init=False, repr=False)
    latency_stats: RunningStats = field(init=False, repr=False)
    reads: int = field(default=0, repr=False)
    writes: int = field(default=0, repr=False)
    bytes_transferred: float = field(default=0.0, repr=False)
    #: Fault injection hook (:mod:`repro.faults.inject`): called as
    #: ``fault_dram(controller_id, access_index)`` and returns extra DRAM
    #: latency for transient-timeout retries.  ``None`` on fault-free builds,
    #: so the access hot path pays one ``is None`` check.
    fault_dram: object = field(default=None, repr=False)
    _outbound: "SerialResource" = field(init=False, repr=False)
    _inbound: "SerialResource" = field(init=False, repr=False)
    _channel_latency_s: float = field(init=False, repr=False)
    _bytes_per_s: float = field(init=False, repr=False)
    _command_serialization_s: float = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not self.modules:
            self.modules = [OcmModule(module_id=0)]
        if self.queue_depth < 1:
            raise ValueError(f"queue depth must be >= 1, got {self.queue_depth}")
        self.queue = BoundedQueue(
            name=f"mc{self.controller_id}-queue", capacity=self.queue_depth
        )
        self.latency_stats = RunningStats(f"mc{self.controller_id}-latency")
        # Hot-path bindings: the channel's serial resources and serialization
        # constants, resolved once instead of per access.
        self._outbound = self.channel._outbound
        self._inbound = self.channel._inbound
        self._channel_latency_s = self.channel.latency_s
        self._bytes_per_s = self.channel._per_direction_bw
        self._command_serialization_s = COMMAND_BYTES / self._bytes_per_s

    # -- address mapping ------------------------------------------------------
    def module_for_address(self, address: int) -> tuple[int, OcmModule]:
        """Which module in the daisy chain owns ``address``."""
        line = address >> 6
        index = (line >> 8) % len(self.modules)
        return index, self.modules[index]

    # -- the access path ------------------------------------------------------
    def access(
        self,
        now: float,
        size_bytes: int,
        is_write: bool,
        address: int = 0,
    ) -> MemoryAccessResult:
        """Perform one memory access arriving at the controller at ``now``."""
        if size_bytes <= 0:
            raise ValueError(f"access size must be positive, got {size_bytes}")

        # Finite controller queue: requests that arrive while the queue is
        # full are admitted only when an earlier request departs.  The
        # BoundedQueue admission/registration pair is transcribed inline
        # (reference: BoundedQueue.admission_time / admit), saving two calls
        # per access.
        queue = self.queue
        departures = queue._departures
        while departures and departures[0] <= now:
            heappop(departures)
        resident = len(departures)
        if resident < queue.capacity:
            admit_estimate = now
        else:
            overflow = resident - queue.capacity
            if overflow == 0:
                admit_estimate = departures[0]
            else:
                admit_estimate = nsmallest(overflow + 1, departures)[-1]
        queue_wait = admit_estimate - now
        start = admit_estimate

        # Channel: command goes out, then either the write data goes out or
        # the read data comes back.  Half-duplex channels serialize the two.
        # (MemoryChannel.send/receive, inlined onto the bound resources.)
        channel_latency = self._channel_latency_s
        if is_write:
            channel_done = (
                self._outbound.reserve(
                    start, (COMMAND_BYTES + size_bytes) / self._bytes_per_s
                )
                + channel_latency
            )
        else:
            channel_done = (
                self._outbound.reserve(start, self._command_serialization_s)
                + channel_latency
            )

        # DRAM access behind the channel (single-module chains skip the
        # address mapping and the zero pass-through delay).
        if len(self.modules) == 1:
            chain_delay = 0.0
            module = self.modules[0]
        else:
            module_index, module = self.module_for_address(address)
            chain_delay = daisy_chain_delay(module_index)
        if self.model_banks:
            data_ready = module.access(address, channel_done + chain_delay)
        else:
            data_ready = channel_done + chain_delay + self.access_latency_s
        if self.fault_dram is not None:
            # Transient timeout: the access is retried after the configured
            # latency.  Keyed by the deterministic access counter (reads +
            # writes, pre-increment), so the schedule is order-independent.
            data_ready += self.fault_dram(
                self.controller_id, self.reads + self.writes
            )

        if is_write:
            completion = data_ready
        else:
            # Read data returns over the channel.
            completion = (
                self._inbound.reserve(
                    data_ready + chain_delay, size_bytes / self._bytes_per_s
                )
                + channel_latency
            )

        # Register the stay in the queue; the admission estimate above already
        # accounted for back-pressure, so the entry is committed directly.
        heappush(departures, completion)
        queue.total_admitted += 1
        if len(departures) > queue.max_occupancy_seen:
            queue.max_occupancy_seen = len(departures)

        channel_delay = (channel_done - start) + (
            (completion - data_ready - chain_delay) if not is_write else 0.0
        )
        dram_delay = data_ready - channel_done

        if is_write:
            self.writes += 1
        else:
            self.reads += 1
        self.bytes_transferred += size_bytes
        self.latency_stats.add(completion - now)

        return MemoryAccessResult(completion, queue_wait, channel_delay, dram_delay)

    # -- reporting ------------------------------------------------------------
    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    def achieved_bandwidth_bytes_per_s(self, elapsed_seconds: float) -> float:
        if elapsed_seconds <= 0:
            return 0.0
        return self.bytes_transferred / elapsed_seconds

    def average_latency_s(self) -> float:
        return self.latency_stats.mean

    def dram_energy_j(self) -> float:
        return sum(module.energy_j() for module in self.modules)
