"""Optically connected memory (OCM) -- Section 3.3 / Table 4.

Each of the 64 memory controllers drives a pair of single-waveguide,
64-wavelength DWDM fiber links, modulated on both clock edges, for 160 GB/s
per controller and 10.24 TB/s aggregate.  The links are half duplex and
master/slave: the controller schedules all traffic, so no arbitration is
needed.  Light is supplied from the chip stack; each outward fiber loops back
as the return fiber through a daisy chain of OCM modules, and because modules
pass light through without retiming, expansion adds negligible latency and
power.
"""

from __future__ import annotations

from typing import Dict

from repro.memory.channel import OpticalMemoryChannel
from repro.memory.system import MemorySystem


def OpticallyConnectedMemory(
    num_controllers: int = 64,
    modules_per_controller: int = 1,
    queue_depth: int = 64,
    model_banks: bool = True,
) -> MemorySystem:
    """Build the paper's OCM memory system."""
    return MemorySystem(
        name="OCM",
        channel_factory=OpticalMemoryChannel,
        num_controllers=num_controllers,
        modules_per_controller=modules_per_controller,
        queue_depth=queue_depth,
        access_latency_s=20e-9,
        model_banks=model_banks,
    )


def ocm_interconnect_summary(num_controllers: int = 64) -> Dict[str, object]:
    """The OCM column of Table 4, derived from the channel model."""
    channel = OpticalMemoryChannel("ocm-summary")
    total_bandwidth = num_controllers * channel.peak_bandwidth_bytes_per_s
    # Each controller uses a pair of fiber links, each of which is a loop
    # (outbound fiber returning as the inbound fiber): 4 fiber ends per
    # controller -> 256 fibers chip-wide.
    fibers = num_controllers * 4
    return {
        "Memory controllers": num_controllers,
        "External connectivity": f"{fibers} fibers",
        "Channel width": "128 b half duplex",
        "Channel data rate": "10 Gb/s",
        "Memory bandwidth (TB/s)": total_bandwidth / 1e12,
        "Memory latency (ns)": 20.0,
        "Interconnect power (W)": num_controllers * channel.interconnect_power_w,
        "Interconnect power (mW/Gb/s)": channel.interconnect_power_w_per_gbps * 1e3,
    }
