"""Electrically connected memory (ECM) -- the baseline of Table 4.

The ECM is the best the ITRS roadmap allows with electrical pins: 64
controllers, each with a 12-bit full-duplex channel at 10 Gb/s per pin
(1536 pins chip-wide), i.e. 15 GB/s of read bandwidth per controller and
0.96 TB/s aggregate, at the same 20 ns latency and roughly 2 mW/Gb/s of
interconnect power (the paper's figure from Palmer et al. [25]).
"""

from __future__ import annotations

from typing import Dict

from repro.memory.channel import ElectricalMemoryChannel
from repro.memory.system import MemorySystem


def ElectricallyConnectedMemory(
    num_controllers: int = 64,
    modules_per_controller: int = 1,
    queue_depth: int = 64,
    model_banks: bool = True,
) -> MemorySystem:
    """Build the paper's ECM memory system."""
    return MemorySystem(
        name="ECM",
        channel_factory=ElectricalMemoryChannel,
        num_controllers=num_controllers,
        modules_per_controller=modules_per_controller,
        queue_depth=queue_depth,
        access_latency_s=20e-9,
        model_banks=model_banks,
    )


def ecm_interconnect_summary(num_controllers: int = 64) -> Dict[str, object]:
    """The ECM column of Table 4, derived from the channel model."""
    channel = ElectricalMemoryChannel("ecm-summary")
    # Table 4 quotes the usable (per-direction) memory bandwidth.
    total_bandwidth = num_controllers * channel.per_direction_bandwidth_bytes_per_s
    # 12 bits in each direction -> 24 signal pins per channel, 1536 chip-wide.
    pins = num_controllers * channel.width_bits * 2
    return {
        "Memory controllers": num_controllers,
        "External connectivity": f"{pins} pins",
        "Channel width": "12 b full duplex",
        "Channel data rate": "10 Gb/s",
        "Memory bandwidth (TB/s)": total_bandwidth / 1e12,
        "Memory latency (ns)": 20.0,
        "Interconnect power (W)": num_controllers * channel.interconnect_power_w,
        "Interconnect power (mW/Gb/s)": channel.interconnect_power_w_per_gbps * 1e3,
    }
