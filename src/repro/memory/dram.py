"""DRAM die, mat and bank timing models.

Corona's OCM modules use custom DRAM dies organized so that an entire cache
line is read from (or written to) a single mat, avoiding the conventional
DIMM's habit of activating tens of thousands of bits across many devices for
a 64-byte transfer.  The model here captures the two properties the system
study depends on:

* a fixed access latency (the paper's 20 ns memory latency, Table 4);
* a per-bank/mat occupancy (cycle time) that limits how frequently the same
  bank can be accessed, so pathological traffic (Hot Spot) sees bank
  contention on top of channel contention.

It also tracks activation energy at the mat level, which is what makes the
OCM's "read only what you need" organization cheaper than a conventional
page-open DRAM -- the comparison surfaced in the paper's power discussion.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import List

from repro.sim.resources import _EPSILON, _PRUNE_HORIZON, SerialResource


@dataclass(frozen=True)
class DramTimings:
    """Timing and energy parameters of one DRAM mat/bank.

    Parameters
    ----------
    access_latency_s:
        Time from command arrival to data availability (the paper's 20 ns).
    cycle_time_s:
        Minimum spacing between successive accesses to the same bank.
    activate_energy_j:
        Energy to activate the bits needed for one cache-line access.
    bits_activated_per_access:
        How many bits the organization wakes up per 64-byte access; the OCM
        organization activates roughly the line itself (512 bits plus
        overhead), a conventional open-page DIMM activates an order of
        magnitude more.
    """

    access_latency_s: float = 20e-9
    cycle_time_s: float = 20e-9
    activate_energy_j: float = 2e-11
    bits_activated_per_access: int = 640

    def __post_init__(self) -> None:
        if self.access_latency_s <= 0:
            raise ValueError("access latency must be positive")
        if self.cycle_time_s <= 0:
            raise ValueError("cycle time must be positive")


@dataclass
class DramBank:
    """A single independently accessible bank/mat."""

    bank_id: int
    timings: DramTimings = field(default_factory=DramTimings)
    _resource: SerialResource = field(init=False, repr=False)
    accesses: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        self._resource = SerialResource(name=f"bank{self.bank_id}")
        self._cycle_time_s = self.timings.cycle_time_s
        self._access_latency_s = self.timings.access_latency_s

    def access(self, now: float) -> float:
        """Perform one access starting no earlier than ``now``.

        Returns the time at which data is available.  The bank stays busy for
        its cycle time, which may exceed the data-available point.

        The single-server SerialResource.reserve logic is transcribed inline
        (one bank reservation per replayed miss); SerialResource.reserve is
        the reference implementation.
        """
        cycle = self._cycle_time_s
        resource = self._resource
        if now > resource._high_water_request:
            resource._high_water_request = now
        prune_before = resource._high_water_request - _PRUNE_HORIZON
        starts = resource._starts[0]
        ends = resource._ends[0]
        if prune_before > 0 and ends and ends[0] <= prune_before:
            cut = bisect_right(ends, prune_before)
            del ends[:cut]
            del starts[:cut]
        start = now
        n = len(starts)
        index = bisect_right(ends, start)
        while index < n:
            if start + cycle <= starts[index] + _EPSILON:
                break
            interval_end = ends[index]
            if interval_end > start:
                start = interval_end
            index += 1
        end = start + cycle
        if index >= n:
            if n and ends[-1] >= start - _EPSILON:
                if end > ends[-1]:
                    ends[-1] = end
            else:
                starts.append(start)
                ends.append(end)
        else:
            resource._insert(0, start, end)
        resource.busy_time += cycle
        resource.reservations += 1
        self.accesses += 1
        return start + self._access_latency_s

    @property
    def busy_time(self) -> float:
        return self._resource.busy_time

    def energy_j(self) -> float:
        return self.accesses * self.timings.activate_energy_j


@dataclass
class DramDie:
    """One DRAM die: a set of independent banks/mats.

    The paper's OCM DRAM die has four independent quadrants, each of which
    could itself be four independent dies; what matters to the system model is
    the number of concurrently accessible banks.
    """

    die_id: int
    num_banks: int = 64
    timings: DramTimings = field(default_factory=DramTimings)
    banks: List[DramBank] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.num_banks < 1:
            raise ValueError(f"need at least one bank, got {self.num_banks}")
        if not self.banks:
            self.banks = [
                DramBank(bank_id=i, timings=self.timings)
                for i in range(self.num_banks)
            ]

    def bank_for_address(self, address: int) -> DramBank:
        """Address-interleaved bank selection (line-granularity)."""
        line = address >> 6
        return self.banks[line % self.num_banks]

    def access(self, address: int, now: float) -> float:
        return self.bank_for_address(address).access(now)

    def total_accesses(self) -> int:
        return sum(bank.accesses for bank in self.banks)

    def energy_j(self) -> float:
        return sum(bank.energy_j() for bank in self.banks)


@dataclass
class OcmModule:
    """A 3D-stacked optically connected memory module.

    One optical die plus several DRAM dies (Figure 6a).  Modules are daisy
    chained on the fiber loop; because light passes through without buffering
    or retiming, each additional module adds only a small propagation delay.
    """

    module_id: int
    num_dram_dies: int = 4
    banks_per_die: int = 8
    timings: DramTimings = field(default_factory=DramTimings)
    pass_through_delay_s: float = 0.1e-9
    dies: List[DramDie] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.num_dram_dies < 1:
            raise ValueError(
                f"module needs at least one DRAM die, got {self.num_dram_dies}"
            )
        if not self.dies:
            self.dies = [
                DramDie(die_id=i, num_banks=self.banks_per_die, timings=self.timings)
                for i in range(self.num_dram_dies)
            ]

    @property
    def total_banks(self) -> int:
        return sum(die.num_banks for die in self.dies)

    def die_for_address(self, address: int) -> DramDie:
        line = address >> 6
        return self.dies[(line // self.banks_per_die) % len(self.dies)]

    def access(self, address: int, now: float) -> float:
        """Access the module; returns the data-ready time.

        The die and bank selection is inlined (same mapping as
        :meth:`die_for_address` / :meth:`DramDie.bank_for_address`) so the hot
        path pays one call into the bank instead of three dispatch hops.
        """
        line = address >> 6
        die = self.dies[(line // self.banks_per_die) % len(self.dies)]
        return die.banks[line % die.num_banks].access(now)

    def total_accesses(self) -> int:
        return sum(die.total_accesses() for die in self.dies)

    def energy_j(self) -> float:
        return sum(die.energy_j() for die in self.dies)


def daisy_chain_delay(module_index: int, pass_through_delay_s: float = 0.1e-9) -> float:
    """Extra one-way delay to reach module ``module_index`` in the chain.

    The first module (index 0) is adjacent to the processor stack; each
    subsequent module adds one optical pass-through.  The paper's point is
    that this increment is small (no resampling/retiming as FBDIMM needs), so
    access latency stays nearly uniform across modules.
    """
    if module_index < 0:
        raise ValueError(f"module index must be non-negative, got {module_index}")
    return module_index * pass_through_delay_s
