"""Parallel evaluation of the (configuration x workload) matrix.

The (configuration, workload) pairs of the evaluation (85 in the full
matrix: 5 configurations x 17 workloads) are fully independent: each pair
builds its own network/memory/hub state from the
configuration name and replays an immutable trace.  The
:class:`ParallelEvaluationRunner` therefore fans the pairs across a
``multiprocessing`` pool and achieves near-linear matrix wall-clock speedup
on multicore hosts.

Determinism and equivalence
---------------------------
Results are bit-identical to the serial :class:`~repro.harness.runner.
EvaluationRunner`:

* Trace generation happens once per workload **in the parent** (same seed,
  same generator state) and the trace is shipped (pickled) to the workers, so
  every pair replays exactly the bytes the serial runner replays.
* Each worker constructs a fresh ``SystemSimulator`` from the configuration
  name -- exactly what ``EvaluationRunner.run_pair`` does -- so no state
  leaks between pairs in either runner.
* Results are collected in submission order (workloads outer, configurations
  inner), which is the serial runner's iteration order, so ``results`` lists
  compare equal element by element.

``jobs=1`` (or a single-CPU host) falls back to an in-process loop with no
pool overhead, still producing the same results.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.coherence import CoherenceConfig
from repro.core.configs import configuration_by_name
from repro.core.results import WorkloadResult
from repro.core.system import SystemSimulator
from repro.harness.experiments import EvaluationMatrix
from repro.trace.record import TraceStream


def available_cpus() -> int:
    """CPUs usable by this process (affinity-aware where supported)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def _replay_pair(
    configuration_name: str,
    trace: TraceStream,
    window: int,
    coherence: Optional[CoherenceConfig] = None,
) -> Tuple[WorkloadResult, float]:
    """Worker body: replay one (configuration, workload) pair.

    Module-level so it pickles under every multiprocessing start method.
    Returns the result plus the replay wall-clock seconds measured in the
    worker.  ``coherence`` (a picklable frozen dataclass) enables the timed
    MOESI directory in the worker's simulator, so coherence statistics flow
    through the parallel path exactly as through the serial one.
    """
    simulator = SystemSimulator(
        configuration=configuration_by_name(configuration_name),
        window_depth=window,
        coherence=coherence,
    )
    started = time.perf_counter()
    result = simulator.run(trace)
    return result, time.perf_counter() - started


def _fan_out_pairs(pairs: List[tuple], jobs: int):
    """Replay ``_replay_pair`` argument tuples, yielding ``(result, seconds)``
    in submission order.

    The single fan-out implementation behind both the matrix runner and
    :func:`run_pairs`: ``jobs`` <= 1 (after clamping to the pair count and
    available CPUs) runs in-process with no pool overhead; otherwise the
    pairs are distributed over a ``multiprocessing`` pool with results
    collected in submission order, bit-identical to the serial loop.
    """
    jobs = min(jobs if jobs and jobs > 0 else available_cpus(), len(pairs)) or 1
    if jobs <= 1:
        for pair in pairs:
            yield _replay_pair(*pair)
        return
    with multiprocessing.Pool(processes=jobs) as pool:
        handles = [pool.apply_async(_replay_pair, pair) for pair in pairs]
        for handle in handles:
            yield handle.get()


def run_pairs(
    pairs: List[tuple],
    jobs: int = 1,
    progress: Optional[Callable[[str], None]] = None,
) -> List[WorkloadResult]:
    """Replay ``(configuration_name, trace, window, coherence)`` tuples.

    The helper behind the coherence sweep (and usable for any ad-hoc pair
    list); see :func:`_fan_out_pairs` for the jobs semantics.
    """
    results: List[WorkloadResult] = []
    for result, _seconds in _fan_out_pairs(pairs, jobs):
        results.append(result)
        if progress is not None:
            progress(f"{result.workload} {result.configuration} done")
    return results


@dataclass
class ParallelEvaluationRunner:
    """Runs every (configuration, workload) pair of a matrix in parallel.

    Parameters
    ----------
    matrix:
        The evaluation matrix to run.
    jobs:
        Worker process count.  ``0`` (the default) uses every available CPU;
        ``1`` runs in-process without a pool.
    progress:
        Optional callback receiving one line per finished pair (reported in
        serial order).
    """

    matrix: EvaluationMatrix
    jobs: int = 0
    progress: Optional[Callable[[str], None]] = None
    results: List[WorkloadResult] = field(default_factory=list)
    run_seconds: Dict[tuple, float] = field(default_factory=dict)
    _traces: Dict[str, TraceStream] = field(default_factory=dict, repr=False)

    def resolved_jobs(self) -> int:
        """The actual worker count this runner will use."""
        if self.jobs and self.jobs > 0:
            return self.jobs
        return available_cpus()

    def _report(self, result: WorkloadResult) -> None:
        if self.progress is not None:
            self.progress(
                f"{result.workload:<10} {result.configuration:<10} "
                f"exec={result.execution_time_s * 1e6:9.2f} us "
                f"bw={result.achieved_bandwidth_tbps:6.3f} TB/s "
                f"lat={result.average_latency_ns:8.1f} ns"
            )

    def _generate_traces(self, only_workload: Optional[str] = None) -> List[tuple]:
        """Generate each workload's trace once; return the pair work-list in
        the serial runner's iteration order (workloads outer, configs inner)."""
        pairs = []
        for workload in self.matrix.workloads():
            if only_workload is not None and workload.name != only_workload:
                continue
            if workload.name not in self._traces:
                self._traces[workload.name] = workload.generate(
                    seed=self.matrix.scale.seed,
                    num_requests=self.matrix.requests_for(workload),
                )
            trace = self._traces[workload.name]
            window = getattr(workload, "window", 4)
            for configuration in self.matrix.configurations():
                pairs.append(
                    (
                        configuration.name,
                        workload.name,
                        trace,
                        window,
                        self.matrix.coherence,
                    )
                )
        return pairs

    def _execute(self, pairs: List[tuple]) -> List[WorkloadResult]:
        """Run the given pair work-list; append to (and return) new results."""
        produced: List[WorkloadResult] = []
        calls = [
            (configuration_name, trace, window, coherence)
            for configuration_name, _workload_name, trace, window, coherence
            in pairs
        ]
        for (configuration_name, workload_name, *_rest), (result, seconds) in zip(
            pairs, _fan_out_pairs(calls, self.resolved_jobs())
        ):
            self.run_seconds[(configuration_name, workload_name)] = seconds
            self.results.append(result)
            produced.append(result)
            self._report(result)
        return produced

    def run(self) -> List[WorkloadResult]:
        """Run the whole matrix; returns all results (also kept on self)."""
        self._execute(self._generate_traces())
        return self.results

    def run_workload(self, workload_name: str) -> List[WorkloadResult]:
        """Run one workload across every configuration of the matrix."""
        pairs = self._generate_traces(only_workload=workload_name)
        if not pairs:
            known = sorted(self.matrix.workload_names())
            raise KeyError(f"unknown workload {workload_name!r}; known: {known}")
        return self._execute(pairs)

    def total_simulated_requests(self) -> int:
        return sum(result.num_requests for result in self.results)

    def total_wall_clock_seconds(self) -> float:
        """Sum of per-pair replay seconds (CPU work, not elapsed time)."""
        return sum(self.run_seconds.values())
