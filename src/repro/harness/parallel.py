"""Parallel evaluation of the (configuration x workload) matrix.

The (configuration, workload) pairs of the evaluation (85 in the full
matrix: 5 configurations x 17 workloads) are fully independent: each pair
builds its own network/memory/hub state from the configuration name and
replays an immutable trace.  The :class:`ParallelEvaluationRunner` therefore
fans the pairs across a ``multiprocessing`` pool and achieves near-linear
matrix wall-clock speedup on multicore hosts.

Zero-copy trace shipping
------------------------
Each workload's trace is generated once in the parent, in packed columnar
form (:class:`~repro.trace.packed.PackedTrace`), and *shipped by reference*:
the columns are laid out in one ``multiprocessing.shared_memory`` block and
the workers receive only the block's name plus a small shape header.  A
worker maps the block and replays ``memoryview`` casts over the parent's
pages -- no per-pair pickling, no per-worker copy, constant dispatch cost per
pair regardless of trace size, which is what makes the ``full`` and ``paper``
scale tiers practical.  Where shared memory is unavailable the shipment falls
back to fork-inherited traces (a parent-side registry the forked workers can
read) and, failing that, to pickling the packed columns -- still far smaller
than the old per-pair record-object pickle.

Generation overlaps replay: the pair stream is consumed lazily during pool
submission, so while workers replay workload *k*'s pairs the parent is
already generating (and shipping) workload *k+1*.

Determinism and equivalence
---------------------------
Results are bit-identical to the serial
:class:`~repro.harness.runner.EvaluationRunner`:

* Trace generation happens once per workload **in the parent** (same seed,
  same generator state) and workers replay exactly those packed columns.
* Each worker constructs a fresh ``SystemSimulator`` from the configuration
  name -- exactly what ``EvaluationRunner.run_pair`` does -- so no state
  leaks between pairs in either runner.
* Results are collected in submission order (workloads outer, configurations
  inner), which is the serial runner's iteration order, so ``results`` lists
  compare equal element by element.

``jobs=1`` (or a single-CPU host) falls back to an in-process loop with no
pool and no shipping, still producing the same results.
"""

from __future__ import annotations

import atexit
import importlib
import multiprocessing
import os
import secrets
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.coherence import CoherenceConfig
from repro.core.config import CORONA_DEFAULT, CoronaConfig
from repro.core.results import WorkloadResult
from repro.core.system import SystemSimulator
from repro.harness.experiments import EvaluationMatrix
from repro.trace.packed import PackedTrace, as_packed, generate_packed_trace
from repro.trace.record import TraceStream

try:  # pragma: no cover - exercised implicitly on every import
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - platforms without shm support
    _shared_memory = None


def available_cpus() -> int:
    """CPUs usable by this process (affinity-aware where supported)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


class WorkerSetupError(RuntimeError):
    """A worker process could not set up a pair's configuration.

    Raised (and re-raised in the parent *without* the worker traceback) when
    a configuration name cannot be resolved in the worker or a scenario
    module fails to import there -- the actionable message replaces the old
    opaque ``KeyError`` wall from deep inside the pool.
    """


def _resolve_configuration(name: str, modules: Sequence[str] = ()):
    """Resolve a configuration name inside a worker process.

    ``modules`` are the scenario's user modules: under the ``fork`` start
    method the parent's registry is inherited and they are already loaded,
    but under ``spawn``/``forkserver`` each worker starts from a fresh
    interpreter, so they must be re-imported before the name can resolve.
    Failures raise :class:`WorkerSetupError` with a remediation hint.
    """
    for module in modules:
        try:
            importlib.import_module(module)
        except ImportError as exc:
            raise WorkerSetupError(
                f"worker could not import scenario module {module!r}: {exc}. "
                f"Registered factories must live in an importable module "
                f"(on PYTHONPATH in the workers too), not e.g. __main__."
            ) from None
    from repro.api import registry  # deferred: keeps import graph acyclic

    try:
        return registry.build_configuration(name)
    except registry.RegistryError as exc:
        hint = (
            " If the configuration is registered by a user module, list that "
            "module in the scenario's 'modules' so workers can import it."
            if not modules
            else ""
        )
        raise WorkerSetupError(
            f"worker could not resolve configuration {name!r}: {exc}.{hint}"
        ) from None


# ---------------------------------------------------------------------------
# Trace shipping
# ---------------------------------------------------------------------------

#: Parent-side registry backing the fork-inherited fallback: forked workers
#: see a snapshot of this dict and resolve shipped keys from it directly.
#: Entries must therefore be registered *before* the pool forks (the matrix
#: runner pre-ships every trace when this fallback is in play).
_FORK_REGISTRY: Dict[str, PackedTrace] = {}

_SHM_PROBE: Optional[bool] = None


def _shm_available() -> bool:
    """Whether this host can create POSIX shared-memory blocks at all
    (probed once; e.g. containers without a usable /dev/shm cannot)."""
    global _SHM_PROBE
    if _SHM_PROBE is None:
        if _shared_memory is None:
            _SHM_PROBE = False
        else:
            try:
                probe = _shared_memory.SharedMemory(create=True, size=1)
                probe.close()
                probe.unlink()
                _SHM_PROBE = True
            except OSError:
                _SHM_PROBE = False
    return _SHM_PROBE

#: Worker-side cache of resolved shipments, keyed by shipment token, so a
#: worker maps each workload's block once no matter how many configurations
#: it replays against it.  Values are ``(packed_trace, shm_or_None)``; the
#: shared-memory handle is kept alive for as long as the views exist.
_WORKER_CACHE: Dict[str, Tuple[PackedTrace, object]] = {}


@atexit.register
def _release_worker_cache() -> None:
    """Drop cached shipment mappings, views strictly before their blocks.

    Registered atexit (inherited by forked workers) so shared-memory handles
    are closed while interpreter teardown order is still deterministic --
    otherwise a block's ``__del__`` can run while a trace's memoryviews are
    alive and raise an ignored ``BufferError`` at shutdown.
    """
    while _WORKER_CACHE:
        _token, (trace, shm) = _WORKER_CACHE.popitem()
        del trace
        if shm is not None:
            try:
                shm.close()
            except BufferError:  # pragma: no cover - views still referenced
                pass


def _attach_shared_memory(name: str):
    """Attach to an existing shared-memory block without adopting ownership.

    Python < 3.13 registers every attachment with the resource tracker
    (bpo-39959); ``track=False`` (3.13+) avoids that.  On older interpreters
    the fix depends on the start method: forked workers share the parent's
    tracker, where the duplicate registration is idempotent and the parent's
    ``unlink`` balances it, so nothing further is needed; spawned workers run
    their *own* tracker, which must be told to forget the block or it will
    unlink the parent's storage when the worker exits.
    """
    try:
        return _shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        shm = _shared_memory.SharedMemory(name=name)
        if multiprocessing.get_start_method(allow_none=True) != "fork":
            try:  # pragma: no cover - spawn/forkserver platforms
                from multiprocessing import resource_tracker

                resource_tracker.unregister(shm._name, "shared_memory")
            except Exception:
                pass
        return shm


class TraceShipment:
    """Parent-side handle of one packed trace shipped to worker processes.

    The parent keeps the storage alive for the duration of the fan-out and
    releases it in :meth:`close`; workers only ever receive the picklable
    :attr:`handle` tuple.
    """

    __slots__ = ("packed", "handle", "_shm", "_registry_key")

    def __init__(self, packed: PackedTrace, fork_ok: bool = True) -> None:
        """``fork_ok`` must be False once the pool has forked: a registry
        entry added after the fork is invisible to the workers' snapshot, so
        a late shm failure must fall through to by-value shipping instead."""
        self.packed = packed
        self._shm = None
        self._registry_key: Optional[str] = None
        header = packed.header()
        if _shared_memory is not None:
            try:
                shm = _shared_memory.SharedMemory(
                    create=True, size=max(packed.nbytes(), 1)
                )
            except OSError:
                shm = None
            if shm is not None:
                packed.copy_into(shm.buf)
                self._shm = shm
                self.handle = ("shm", shm.name, header)
                return
        if fork_ok and multiprocessing.get_start_method(allow_none=True) in (
            None,
            "fork",
        ):
            key = f"trace-{secrets.token_hex(8)}"
            _FORK_REGISTRY[key] = packed
            self._registry_key = key
            self.handle = ("fork", key, header)
            return
        # Last resort (no shm, or shm ran out after the pool forked): ship
        # the packed columns by value -- one pickle per worker task, but
        # 24 B/record instead of record objects.
        self.handle = packed

    def close(self) -> None:
        """Release the parent-side storage (workers hold their own maps)."""
        if self._shm is not None:
            self._shm.close()
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already unlinked
                pass
            self._shm = None
        if self._registry_key is not None:
            _FORK_REGISTRY.pop(self._registry_key, None)
            self._registry_key = None


def _resolve_trace(trace) -> PackedTrace:
    """Worker-side: turn whatever was shipped into a replayable trace."""
    if isinstance(trace, (PackedTrace, TraceStream)):
        return trace
    kind, token, header = trace
    cached = _WORKER_CACHE.get(token)
    if cached is not None:
        return cached[0]
    if kind == "shm":
        shm = _attach_shared_memory(token)
        packed = PackedTrace.from_buffer(header, shm.buf)
        _WORKER_CACHE[token] = (packed, shm)
    else:
        packed = _FORK_REGISTRY[token]
        _WORKER_CACHE[token] = (packed, None)
    return packed


def _replay_pair(
    configuration_name: str,
    trace,
    window: int,
    coherence: Optional[CoherenceConfig] = None,
    corona_config: Optional[CoronaConfig] = None,
    modules: Sequence[str] = (),
) -> Tuple[WorkloadResult, float]:
    """Worker body: replay one (configuration, workload) pair.

    Module-level so it pickles under every multiprocessing start method.
    ``trace`` is either an in-memory trace (in-process path) or a shipment
    handle resolved against this worker's cache.  Returns the result plus
    the replay wall-clock seconds measured in the worker.  ``coherence`` (a
    picklable frozen dataclass) enables the timed MOESI directory in the
    worker's simulator, so coherence statistics flow through the parallel
    path exactly as through the serial one; ``corona_config`` likewise ships
    scenario system overrides.  ``configuration_name`` resolves through the
    Scenario API registry (seeded with the five paper systems), with
    ``modules`` imported first so user-registered configurations exist in
    the worker too.
    """
    configuration = _resolve_configuration(configuration_name, modules)
    trace = _resolve_trace(trace)
    simulator = SystemSimulator(
        configuration=configuration,
        corona_config=corona_config or CORONA_DEFAULT,
        window_depth=window,
        coherence=coherence,
    )
    started = time.perf_counter()
    result = simulator.run(trace)
    return result, time.perf_counter() - started


def _fan_out_pairs(pairs: Iterable[tuple], jobs: int, count: int):
    """Replay ``_replay_pair`` argument tuples, yielding ``(result, seconds)``
    in submission order.

    The single fan-out implementation behind both the matrix runner and
    :func:`run_pairs`.  ``jobs`` <= 1 (after the caller clamps to the pair
    count and available CPUs) runs in-process with no pool overhead.
    Otherwise the pairs are submitted to a ``multiprocessing`` pool *as the
    iterable produces them* -- lazy trace generation therefore overlaps the
    earliest replays -- and results are collected in submission order,
    bit-identical to the serial loop.
    """
    jobs = min(jobs if jobs and jobs > 0 else available_cpus(), count) or 1
    if jobs <= 1:
        for pair in pairs:
            yield _replay_pair(*pair)
        return
    with multiprocessing.Pool(processes=jobs) as pool:
        handles = [pool.apply_async(_replay_pair, pair) for pair in pairs]
        for handle in handles:
            try:
                yield handle.get()
            except WorkerSetupError as exc:
                # Re-raise clean: the remote traceback (pool internals plus
                # the worker's frames) adds nothing to this actionable,
                # already-complete message.
                raise WorkerSetupError(str(exc)) from None


def run_pairs(
    pairs: List[tuple],
    jobs: int = 1,
    progress: Optional[Callable[[str], None]] = None,
    on_result: Optional[Callable[[WorkloadResult], None]] = None,
) -> List[WorkloadResult]:
    """Replay ``(configuration_name, trace, window, coherence[,
    corona_config, modules])`` tuples.

    The helper behind the coherence and parameter sweeps (and usable for any
    ad-hoc pair list); see :func:`_fan_out_pairs` for the jobs semantics.
    When a pool is used, each distinct trace is packed once and shipped
    through a :class:`TraceShipment` (shared memory first), exactly like the
    matrix runner.  The optional trailing elements ship scenario system
    overrides and worker setup modules, exactly like the matrix runner's
    pair stream.  ``on_result`` receives each pair's result the moment it is
    collected (submission = serial order) -- the streaming hook the sweep
    engine uses to checkpoint completed points as soon as their last pair
    lands.
    """
    effective = min(jobs if jobs and jobs > 0 else available_cpus(), len(pairs)) or 1
    shipments: Dict[int, TraceShipment] = {}
    results: List[WorkloadResult] = []
    try:
        calls = []
        if effective > 1:
            # Shipments are created here, before _fan_out_pairs forks the
            # pool, so the fork-registry fallback is safe (fork_ok default).
            for configuration_name, trace, *rest in pairs:
                shipment = shipments.get(id(trace))
                if shipment is None:
                    shipment = TraceShipment(as_packed(trace))
                    shipments[id(trace)] = shipment
                calls.append((configuration_name, shipment.handle, *rest))
        else:
            # In-process: still pack each distinct trace exactly once, so a
            # stream replayed against K configurations is not re-packed K
            # times by SystemSimulator.run.
            packed_by_trace: Dict[int, PackedTrace] = {}
            for configuration_name, trace, *rest in pairs:
                packed = packed_by_trace.get(id(trace))
                if packed is None:
                    packed = as_packed(trace)
                    packed_by_trace[id(trace)] = packed
                calls.append((configuration_name, packed, *rest))
        for result, _seconds in _fan_out_pairs(calls, effective, len(calls)):
            results.append(result)
            if on_result is not None:
                on_result(result)
            if progress is not None:
                progress(f"{result.workload} {result.configuration} done")
    finally:
        for shipment in shipments.values():
            shipment.close()
    return results


@dataclass
class ParallelEvaluationRunner:
    """Runs every (configuration, workload) pair of a matrix in parallel.

    Parameters
    ----------
    matrix:
        The evaluation matrix to run.
    jobs:
        Worker process count.  ``0`` (the default) uses every available CPU;
        ``1`` runs in-process without a pool.
    progress:
        Optional callback receiving one line per finished pair (reported in
        serial order).
    on_result:
        Optional callback receiving each pair's :class:`WorkloadResult` as
        it completes (serial order) -- the Scenario API's streaming hook.
    setup_modules:
        Modules every worker imports before resolving configuration names
        (a scenario's ``modules`` list); required for user-registered
        configurations under non-``fork`` start methods.
    """

    matrix: EvaluationMatrix
    jobs: int = 0
    progress: Optional[Callable[[str], None]] = None
    on_result: Optional[Callable[[WorkloadResult], None]] = None
    setup_modules: Tuple[str, ...] = ()
    results: List[WorkloadResult] = field(default_factory=list)
    run_seconds: Dict[tuple, float] = field(default_factory=dict)
    _traces: Dict[str, PackedTrace] = field(default_factory=dict, repr=False)
    _shipments: Dict[str, TraceShipment] = field(default_factory=dict, repr=False)

    def resolved_jobs(self) -> int:
        """The actual worker count this runner will use."""
        if self.jobs and self.jobs > 0:
            return self.jobs
        return available_cpus()

    def _report(self, result: WorkloadResult) -> None:
        if self.progress is not None:
            self.progress(
                f"{result.workload:<10} {result.configuration:<10} "
                f"exec={result.execution_time_s * 1e6:9.2f} us "
                f"bw={result.achieved_bandwidth_tbps:6.3f} TB/s "
                f"lat={result.average_latency_ns:8.1f} ns"
            )

    def _trace_for(self, workload) -> PackedTrace:
        """The workload's packed trace, generated once and cached."""
        packed = self._traces.get(workload.name)
        if packed is None:
            packed = generate_packed_trace(
                workload,
                seed=self.matrix.scale.seed,
                num_requests=self.matrix.requests_for(workload),
            )
            self._traces[workload.name] = packed
        return packed

    def _shipped(self, workload, fork_ok: bool) -> object:
        """The workload's shipment handle (creating the shipment on first
        use), for pool runs.  ``fork_ok`` is False once the pool has forked
        (the lazy streaming path)."""
        shipment = self._shipments.get(workload.name)
        if shipment is None:
            shipment = TraceShipment(self._trace_for(workload), fork_ok=fork_ok)
            self._shipments[workload.name] = shipment
        return shipment.handle

    def _close_shipments(self) -> None:
        for shipment in self._shipments.values():
            shipment.close()
        self._shipments.clear()

    def _pair_stream(self, ship: bool, only_workload: Optional[str] = None):
        """Lazily yield ``(configuration_name, workload_name, trace, window,
        coherence)`` in the serial runner's iteration order (workloads outer,
        configurations inner).

        Traces are generated (and shipped) as the stream is consumed, which
        is what lets generation overlap the replay of earlier workloads'
        pairs during pool submission.
        """
        configurations = self.matrix.configurations()
        for workload in self.matrix.workloads():
            if only_workload is not None and workload.name != only_workload:
                continue
            trace = (
                # Consumed during pool submission, i.e. after the fork: a
                # shipment created here must not rely on the fork registry.
                self._shipped(workload, fork_ok=False)
                if ship
                else self._trace_for(workload)
            )
            window = getattr(workload, "window", 4)
            for configuration in configurations:
                yield (
                    configuration.name,
                    workload.name,
                    trace,
                    window,
                    self.matrix.coherence,
                )

    def _corona_config(self) -> Optional[CoronaConfig]:
        """Scenario system overrides to ship to workers (None = default)."""
        return getattr(self.matrix, "corona_config", None)

    def _execute(
        self, count: int, only_workload: Optional[str] = None
    ) -> List[WorkloadResult]:
        """Run ``count`` pairs; append to (and return) new results."""
        effective = min(self.resolved_jobs(), count) or 1
        stream = self._pair_stream(ship=effective > 1, only_workload=only_workload)
        submitted: List[Tuple[str, str]] = []

        corona_config = self._corona_config()

        def calls():
            for configuration_name, workload_name, trace, window, coherence in stream:
                submitted.append((configuration_name, workload_name))
                yield (
                    configuration_name,
                    trace,
                    window,
                    coherence,
                    corona_config,
                    self.setup_modules,
                )

        produced: List[WorkloadResult] = []
        try:
            if effective > 1 and not _shm_available():
                # The fork-inherited fallback only sees traces registered
                # before the pool forks, so give up generation/replay overlap
                # and ship everything up front (pre-fork: fork_ok).
                for workload in self.matrix.workloads():
                    if only_workload is None or workload.name == only_workload:
                        self._shipped(workload, fork_ok=True)
            for position, (result, seconds) in enumerate(
                _fan_out_pairs(calls(), effective, count)
            ):
                self.run_seconds[submitted[position]] = seconds
                self.results.append(result)
                produced.append(result)
                if self.on_result is not None:
                    self.on_result(result)
                self._report(result)
        finally:
            self._close_shipments()
        return produced

    def run(self) -> List[WorkloadResult]:
        """Run the whole matrix; returns all results (also kept on self)."""
        self._execute(self.matrix.run_count())
        return self.results

    def run_workload(self, workload_name: str) -> List[WorkloadResult]:
        """Run one workload across every configuration of the matrix."""
        if workload_name not in self.matrix.workload_names():
            known = sorted(self.matrix.workload_names())
            raise KeyError(f"unknown workload {workload_name!r}; known: {known}")
        count = len(self.matrix.configurations())
        return self._execute(count, only_workload=workload_name)

    def total_simulated_requests(self) -> int:
        return sum(result.num_requests for result in self.results)

    def total_wall_clock_seconds(self) -> float:
        """Sum of per-pair replay seconds (CPU work, not elapsed time)."""
        return sum(self.run_seconds.values())
