"""Parallel evaluation of the (configuration x workload) matrix.

The (configuration, workload) pairs of the evaluation (85 in the full
matrix: 5 configurations x 17 workloads) are fully independent: each pair
builds its own network/memory/hub state from the configuration name and
replays an immutable trace.  The :class:`ParallelEvaluationRunner` therefore
fans the pairs across a supervised pool of worker processes and achieves
near-linear matrix wall-clock speedup on multicore hosts.

Zero-copy trace shipping
------------------------
Each workload's trace is generated once in the parent, in packed columnar
form (:class:`~repro.trace.packed.PackedTrace`), and *shipped by reference*:
the columns are laid out in one ``multiprocessing.shared_memory`` block and
the workers receive only the block's name plus a small shape header.  A
worker maps the block and replays ``memoryview`` casts over the parent's
pages -- no per-pair pickling, no per-worker copy, constant dispatch cost per
pair regardless of trace size, which is what makes the ``full`` and ``paper``
scale tiers practical.  Where shared memory is unavailable the shipment falls
back to fork-inherited traces (a parent-side registry the forked workers can
read) and, failing that, to pickling the packed columns -- still far smaller
than the old per-pair record-object pickle.

Generation overlaps replay: the pair stream is consumed lazily during pool
submission, so while workers replay workload *k*'s pairs the parent is
already generating (and shipping) workload *k+1*.

Supervision and resilience
--------------------------
The pool is supervised, not fire-and-forget: each worker is a
``multiprocessing.Process`` with its own duplex pipe, and the parent multiplexes
result pipes *and* process sentinels through ``multiprocessing.connection.
wait``.  A worker that dies mid-pair (OOM kill, segfault, injected chaos) is
therefore detected immediately, respawned, and its pending pair re-dispatched
-- the retried replay is bit-identical because pairs are pure functions of
their shipped arguments.  A :class:`~repro.harness.resilience.RetryPolicy`
adds per-pair wall-clock timeouts (hung workers are killed and their pair
retried), bounded retries with exponential backoff, and a partial-results
mode in which pairs that stay broken become structured
:class:`~repro.harness.resilience.PairFailure` records instead of aborting
the run.

Determinism and equivalence
---------------------------
Results are bit-identical to the serial
:class:`~repro.harness.runner.EvaluationRunner`:

* Trace generation happens once per workload **in the parent** (same seed,
  same generator state) and workers replay exactly those packed columns.
* Each worker constructs a fresh ``SystemSimulator`` from the configuration
  name -- exactly what ``EvaluationRunner.run_pair`` does -- so no state
  leaks between pairs in either runner, and a retried pair reproduces its
  first attempt exactly.
* Results are collected in submission order (workloads outer, configurations
  inner), which is the serial runner's iteration order, so ``results`` lists
  compare equal element by element even when completions arrive out of order.

``jobs=1`` (or a single-CPU host) falls back to an in-process loop with no
pool and no shipping, still producing the same results.
"""

from __future__ import annotations

import atexit
import importlib
import multiprocessing
import os
import secrets
import time
from dataclasses import dataclass, field
from heapq import heappop, heappush
from multiprocessing import connection as _mp_connection
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
)

from repro.coherence import CoherenceConfig
from repro.core.config import CORONA_DEFAULT, CoronaConfig
from repro.core.results import WorkloadResult
from repro.core.system import SystemSimulator
from repro.faults import chaos as _chaos
from repro.faults.spec import FaultSpec
from repro.harness.experiments import EvaluationMatrix
from repro.harness.resilience import (
    DEFAULT_POLICY,
    PairFailure,
    PairFailureError,
    RetryPolicy,
)
from repro.obs.artifacts import resolve_pair_spec, write_pair_artifacts
from repro.obs.log import configure_worker_logging, get_logger
from repro.obs.progress import ProgressReporter
from repro.obs.spec import ObservabilitySpec
from repro.trace.packed import PackedTrace, as_packed, generate_packed_trace
from repro.trace.record import TraceStream

_log = get_logger(__name__)

try:  # pragma: no cover - exercised implicitly on every import
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - platforms without shm support
    _shared_memory = None


def available_cpus() -> int:
    """CPUs usable by this process (affinity-aware where supported)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


class WorkerSetupError(RuntimeError):
    """A worker process could not set up a pair's configuration.

    Raised (and re-raised in the parent *without* the worker traceback) when
    a configuration name cannot be resolved in the worker or a scenario
    module fails to import there -- the actionable message replaces the old
    opaque ``KeyError`` wall from deep inside the pool.  Never retried: a
    missing module does not heal between attempts.
    """


def _resolve_configuration(name: str, modules: Sequence[str] = ()):
    """Resolve a configuration name inside a worker process.

    ``modules`` are the scenario's user modules: under the ``fork`` start
    method the parent's registry is inherited and they are already loaded,
    but under ``spawn``/``forkserver`` each worker starts from a fresh
    interpreter, so they must be re-imported before the name can resolve.
    Failures raise :class:`WorkerSetupError` with a remediation hint.
    """
    for module in modules:
        try:
            importlib.import_module(module)
        except ImportError as exc:
            raise WorkerSetupError(
                f"worker could not import scenario module {module!r}: {exc}. "
                f"Registered factories must live in an importable module "
                f"(on PYTHONPATH in the workers too), not e.g. __main__."
            ) from None
    from repro.api import registry  # deferred: keeps import graph acyclic

    try:
        return registry.build_configuration(name)
    except registry.RegistryError as exc:
        hint = (
            " If the configuration is registered by a user module, list that "
            "module in the scenario's 'modules' so workers can import it."
            if not modules
            else ""
        )
        raise WorkerSetupError(
            f"worker could not resolve configuration {name!r}: {exc}.{hint}"
        ) from None


# ---------------------------------------------------------------------------
# Trace shipping
# ---------------------------------------------------------------------------

#: Parent-side registry backing the fork-inherited fallback: forked workers
#: see a snapshot of this dict and resolve shipped keys from it directly.
#: Entries must therefore be registered *before* the pool forks (the matrix
#: runner pre-ships every trace when this fallback is in play).  Respawned
#: workers re-fork from the parent, so entries registered before the original
#: pool start stay visible to replacements too.
_FORK_REGISTRY: Dict[str, PackedTrace] = {}

_SHM_PROBE: Optional[bool] = None


def _shm_available() -> bool:
    """Whether this host can create POSIX shared-memory blocks at all
    (probed once; e.g. containers without a usable /dev/shm cannot)."""
    global _SHM_PROBE
    if _SHM_PROBE is None:
        if _shared_memory is None:
            _SHM_PROBE = False
        else:
            try:
                probe = _shared_memory.SharedMemory(create=True, size=1)
                probe.close()
                probe.unlink()
                _SHM_PROBE = True
            except OSError:
                _SHM_PROBE = False
    return _SHM_PROBE

#: Worker-side cache of resolved shipments, keyed by shipment token, so a
#: worker maps each workload's block once no matter how many configurations
#: it replays against it.  Values are ``(packed_trace, shm_or_None)``; the
#: shared-memory handle is kept alive for as long as the views exist.
_WORKER_CACHE: Dict[str, Tuple[PackedTrace, object]] = {}


@atexit.register
def _release_worker_cache() -> None:
    """Drop cached shipment mappings, views strictly before their blocks.

    Registered atexit (inherited by forked workers) so shared-memory handles
    are closed while interpreter teardown order is still deterministic --
    otherwise a block's ``__del__`` can run while a trace's memoryviews are
    alive and raise an ignored ``BufferError`` at shutdown.
    """
    while _WORKER_CACHE:
        _token, (trace, shm) = _WORKER_CACHE.popitem()
        del trace
        if shm is not None:
            try:
                shm.close()
            except BufferError:  # pragma: no cover - views still referenced
                pass


def _attach_shared_memory(name: str):
    """Attach to an existing shared-memory block without adopting ownership.

    Python < 3.13 registers every attachment with the resource tracker
    (bpo-39959); ``track=False`` (3.13+) avoids that.  On older interpreters
    the fix depends on the start method: forked workers share the parent's
    tracker, where the duplicate registration is idempotent and the parent's
    ``unlink`` balances it, so nothing further is needed; spawned workers run
    their *own* tracker, which must be told to forget the block or it will
    unlink the parent's storage when the worker exits.
    """
    try:
        return _shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        shm = _shared_memory.SharedMemory(name=name)
        if multiprocessing.get_start_method(allow_none=True) != "fork":
            try:  # pragma: no cover - spawn/forkserver platforms
                from multiprocessing import resource_tracker

                resource_tracker.unregister(shm._name, "shared_memory")
            except Exception:
                pass
        return shm


class TraceShipment:
    """Parent-side handle of one packed trace shipped to worker processes.

    The parent keeps the storage alive for the duration of the fan-out and
    releases it in :meth:`close`; workers only ever receive the picklable
    :attr:`handle` tuple.
    """

    __slots__ = ("packed", "handle", "_shm", "_registry_key")

    def __init__(self, packed: PackedTrace, fork_ok: bool = True) -> None:
        """``fork_ok`` must be False once the pool has forked: a registry
        entry added after the fork is invisible to the workers' snapshot, so
        a late shm failure must fall through to by-value shipping instead."""
        self.packed = packed
        self._shm = None
        self._registry_key: Optional[str] = None
        header = packed.header()
        if _shared_memory is not None:
            try:
                shm = _shared_memory.SharedMemory(
                    create=True, size=max(packed.nbytes(), 1)
                )
            except OSError:
                shm = None
            if shm is not None:
                packed.copy_into(shm.buf)
                self._shm = shm
                self.handle = ("shm", shm.name, header)
                return
        if fork_ok and multiprocessing.get_start_method(allow_none=True) in (
            None,
            "fork",
        ):
            _log.info(
                "shared memory unavailable; shipping trace via the "
                "fork-inherited registry"
            )
            key = f"trace-{secrets.token_hex(8)}"
            _FORK_REGISTRY[key] = packed
            self._registry_key = key
            self.handle = ("fork", key, header)
            return
        # Last resort (no shm, or shm ran out after the pool forked): ship
        # the packed columns by value -- one pickle per worker task, but
        # 24 B/record instead of record objects.
        _log.info(
            "shared memory unavailable; shipping packed trace by value"
        )
        self.handle = packed

    def close(self) -> None:
        """Release the parent-side storage (workers hold their own maps)."""
        if self._shm is not None:
            self._shm.close()
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already unlinked
                pass
            self._shm = None
        if self._registry_key is not None:
            _FORK_REGISTRY.pop(self._registry_key, None)
            self._registry_key = None


def _resolve_trace(trace) -> PackedTrace:
    """Worker-side: turn whatever was shipped into a replayable trace."""
    if isinstance(trace, (PackedTrace, TraceStream)):
        return trace
    kind, token, header = trace
    cached = _WORKER_CACHE.get(token)
    if cached is not None:
        return cached[0]
    if kind == "shm":
        shm = _attach_shared_memory(token)
        packed = PackedTrace.from_buffer(header, shm.buf)
        _WORKER_CACHE[token] = (packed, shm)
    else:
        packed = _FORK_REGISTRY[token]
        _WORKER_CACHE[token] = (packed, None)
    return packed


def _replay_pair(
    configuration_name: str,
    trace,
    window: int,
    coherence: Optional[CoherenceConfig] = None,
    corona_config: Optional[CoronaConfig] = None,
    modules: Sequence[str] = (),
    faults: Optional[FaultSpec] = None,
    observability: Optional[ObservabilitySpec] = None,
) -> Tuple[WorkloadResult, float]:
    """Worker body: replay one (configuration, workload) pair.

    Module-level so it pickles under every multiprocessing start method.
    ``trace`` is either an in-memory trace (in-process path) or a shipment
    handle resolved against this worker's cache.  Returns the result plus
    the replay wall-clock seconds measured in the worker.  ``coherence`` (a
    picklable frozen dataclass) enables the timed MOESI directory in the
    worker's simulator, so coherence statistics flow through the parallel
    path exactly as through the serial one; ``corona_config`` likewise ships
    scenario system overrides and ``faults`` the scenario's deterministic
    fault spec.  ``configuration_name`` resolves through the Scenario API
    registry (seeded with the five paper systems), with ``modules`` imported
    first so user-registered configurations exist in the worker too.

    ``observability`` (when active) is a *pair-resolved*
    :class:`~repro.obs.spec.ObservabilitySpec` -- its sink paths were
    already specialized for this pair in the parent -- so the worker writes
    the metrics/timeline artifacts directly and the outcome shape stays
    ``(result, seconds)``.  The artifact write happens after the replay
    timer stops, so telemetry never pollutes the recorded replay seconds.
    """
    configuration = _resolve_configuration(configuration_name, modules)
    trace = _resolve_trace(trace)
    simulator = SystemSimulator(
        configuration=configuration,
        corona_config=corona_config or CORONA_DEFAULT,
        window_depth=window,
        coherence=coherence,
        faults=faults,
        observability=observability,
    )
    started = time.perf_counter()
    result = simulator.run(trace)
    seconds = time.perf_counter() - started
    if observability is not None and observability.simulation_active:
        write_pair_artifacts(simulator, configuration_name, result.workload)
    return result, seconds


# ---------------------------------------------------------------------------
# The supervised worker pool
# ---------------------------------------------------------------------------


class _RawFailure(NamedTuple):
    """One pair's terminal failure before names are attached.

    ``payload`` is the worker's exception object when it pickled (so strict
    mode re-raises the original), otherwise a message string.
    """

    kind: str
    payload: object


def _raw_message(raw: _RawFailure) -> str:
    if isinstance(raw.payload, BaseException):
        return f"{type(raw.payload).__name__}: {raw.payload}"
    return str(raw.payload)


def _raise_strict(raw: _RawFailure, failure: PairFailure) -> None:
    """Abort a strict (``allow_failures=False``) run for one failed pair."""
    if raw.kind == "setup":
        # Re-raise clean: the remote traceback (pool internals plus the
        # worker's frames) adds nothing to this actionable message.
        raise WorkerSetupError(str(raw.payload)) from None
    if isinstance(raw.payload, BaseException):
        raise raw.payload
    raise PairFailureError([failure])


def _pool_worker(conn) -> None:
    """Worker loop: receive ``(index, attempt, args)`` tasks, send outcomes.

    Runs until the parent sends ``None`` or the pipe closes.  Outcomes are
    ``(index, "ok", (result, seconds))`` or ``(index, kind, payload)`` where
    ``kind`` is ``"setup"``/``"error"`` and ``payload`` the exception (or its
    rendering, when the exception does not pickle).  Crashes and hangs send
    nothing -- the parent detects them through the process sentinel and the
    per-pair deadline.
    """
    configure_worker_logging()
    while True:
        try:
            task = conn.recv()
        except (EOFError, OSError):  # pragma: no cover - parent went away
            return
        if task is None:
            return
        index, attempt, args = task
        try:
            _chaos.maybe_sabotage(index, attempt, in_process=False)
            outcome = (index, "ok", _replay_pair(*args))
        except WorkerSetupError as exc:
            outcome = (index, "setup", str(exc))
        except KeyboardInterrupt:  # pragma: no cover - interactive abort
            return
        except BaseException as exc:  # noqa: BLE001 - forwarded to parent
            outcome = (index, "error", exc)
        try:
            conn.send(outcome)
        except (EOFError, OSError, BrokenPipeError):  # pragma: no cover
            return
        except Exception:
            # The payload (an exotic exception) did not pickle; degrade to
            # its rendering so the parent still gets a structured outcome.
            conn.send((index, outcome[1], _raw_message(_RawFailure(
                outcome[1], outcome[2]
            ))))


class _Worker:
    """Parent-side handle of one pool worker process."""

    __slots__ = ("process", "conn", "task", "deadline")

    def __init__(self, process, conn) -> None:
        self.process = process
        self.conn = conn
        #: The in-flight ``(index, attempt, args)`` task, or None when idle.
        self.task = None
        #: Wall-clock deadline of the in-flight task (None = no timeout).
        self.deadline: Optional[float] = None


def _spawn_worker(ctx) -> _Worker:
    parent_conn, child_conn = ctx.Pipe()
    process = ctx.Process(target=_pool_worker, args=(child_conn,), daemon=True)
    process.start()
    child_conn.close()
    return _Worker(process, parent_conn)


def _retire_worker(worker: _Worker, kill: bool = False) -> None:
    """Tear one worker down (politely, or with SIGKILL for hung ones)."""
    if kill and worker.process.is_alive():
        worker.process.kill()
    else:
        try:
            worker.conn.send(None)
        except Exception:
            pass
    worker.process.join(timeout=2.0)
    if worker.process.is_alive():  # pragma: no cover - stuck teardown
        worker.process.kill()
        worker.process.join(timeout=2.0)
    try:
        worker.conn.close()
    except Exception:  # pragma: no cover - already closed
        pass


def _pool_fan_out(pairs: Iterable[tuple], jobs: int, count: int,
                  policy: RetryPolicy):
    """Supervised fan-out: yield ``(result, seconds, raw_failure, attempts,
    worker_name)`` per pair, in submission order.

    The parent multiplexes worker pipes and process sentinels through
    ``multiprocessing.connection.wait``: a sentinel firing while its pipe is
    silent means the worker died mid-pair (it is respawned and the pair
    retried); a passed deadline means the pair hung (the worker is killed,
    respawned, and the pair retried).  Retries obey the policy's bounds and
    exponential backoff; pairs that stay broken yield a :class:`_RawFailure`
    instead of a result.  Completions arriving out of submission order are
    buffered so the yield order matches the serial runner exactly.
    """
    ctx = multiprocessing.get_context()
    workers: List[_Worker] = [_spawn_worker(ctx) for _ in range(jobs)]
    iterator = iter(pairs)
    exhausted = False
    next_index = 0
    #: Min-heap of ``(eligible_at, index, attempt, args)`` backoff retries.
    retry_heap: list = []
    #: Buffered out-of-order outcomes, keyed by submission index.
    outcomes: Dict[int, tuple] = {}
    next_emit = 0

    def record_failure(index: int, attempt: int, args, kind: str,
                       payload, worker_name: str = "") -> None:
        if attempt < policy.retries_for(kind):
            _log.info(
                "pair %d failed (%s); scheduling retry %d",
                index, kind, attempt + 1,
            )
            eligible = time.monotonic() + policy.retry_delay_s(attempt + 1)
            heappush(retry_heap, (eligible, index, attempt + 1, args))
        else:
            outcomes[index] = (
                None, 0.0, _RawFailure(kind, payload), attempt + 1,
                worker_name,
            )

    def respawn(worker: _Worker, kill: bool) -> None:
        _retire_worker(worker, kill=kill)
        replacement = _spawn_worker(ctx)
        worker.process = replacement.process
        worker.conn = replacement.conn
        worker.task = None
        worker.deadline = None

    try:
        while next_emit < count:
            now = time.monotonic()
            # Dispatch: eligible retries first, then fresh pairs (consumed
            # lazily, so trace generation overlaps the earliest replays).
            for worker in workers:
                if worker.task is not None:
                    continue
                if retry_heap and retry_heap[0][0] <= now:
                    _eligible, index, attempt, args = heappop(retry_heap)
                    task = (index, attempt, args)
                elif not exhausted:
                    try:
                        args = next(iterator)
                    except StopIteration:
                        exhausted = True
                        continue
                    task = (next_index, 0, args)
                    next_index += 1
                else:
                    continue
                worker.task = task
                worker.deadline = (
                    now + policy.timeout_s
                    if policy.timeout_s is not None
                    else None
                )
                try:
                    worker.conn.send(task)
                except (OSError, BrokenPipeError):
                    # Died idle between tasks: replace it and re-dispatch.
                    respawn(worker, kill=True)
                    worker.task = task
                    worker.deadline = (
                        now + policy.timeout_s
                        if policy.timeout_s is not None
                        else None
                    )
                    worker.conn.send(task)

            while next_emit in outcomes:
                yield outcomes.pop(next_emit)
                next_emit += 1
            if next_emit >= count:
                break

            busy = [w for w in workers if w.task is not None]
            if not busy:
                if retry_heap:
                    # Everything pending is backing off; sleep until the
                    # first retry becomes eligible.
                    time.sleep(
                        min(max(retry_heap[0][0] - time.monotonic(), 0.0), 0.2)
                    )
                    continue
                raise RuntimeError(  # pragma: no cover - invariant guard
                    "supervised pool stalled with work outstanding"
                )

            timeout = None
            deadlines = [w.deadline for w in busy if w.deadline is not None]
            if deadlines:
                timeout = max(min(deadlines) - time.monotonic(), 0.0)
            if retry_heap:
                until = max(retry_heap[0][0] - time.monotonic(), 0.0)
                timeout = until if timeout is None else min(timeout, until)
            ready = set(
                _mp_connection.wait(
                    [w.conn for w in busy]
                    + [w.process.sentinel for w in busy],
                    timeout,
                )
            )
            now = time.monotonic()
            for worker in busy:
                if worker.task is None:
                    continue
                index, attempt, args = worker.task
                if worker.conn in ready:
                    try:
                        message = worker.conn.recv()
                    except (EOFError, OSError):
                        # Pipe broke mid-send: treat as a crash.
                        exitcode = worker.process.exitcode
                        name = worker.process.name
                        _log.warning(
                            "worker %s died (exit code %s) mid-send; "
                            "respawning", name, exitcode,
                        )
                        respawn(worker, kill=True)
                        record_failure(
                            index, attempt, args, "crash",
                            f"worker died (exit code {exitcode}) while "
                            f"replaying the pair",
                            name,
                        )
                        continue
                    worker.task = None
                    worker.deadline = None
                    _index, kind, payload = message
                    if kind == "ok":
                        result, seconds = payload
                        outcomes[index] = (
                            result, seconds, None, attempt + 1,
                            worker.process.name,
                        )
                    else:
                        record_failure(
                            index, attempt, args, kind, payload,
                            worker.process.name,
                        )
                elif worker.process.sentinel in ready:
                    # Died without sending: the satellite-1 case the old
                    # Pool hung on forever.
                    worker.process.join()
                    exitcode = worker.process.exitcode
                    name = worker.process.name
                    _log.warning(
                        "worker %s died (exit code %s) while replaying pair "
                        "%d; respawning", name, exitcode, index,
                    )
                    respawn(worker, kill=False)
                    record_failure(
                        index, attempt, args, "crash",
                        f"worker died (exit code {exitcode}) while replaying "
                        f"the pair",
                        name,
                    )
                elif worker.deadline is not None and now >= worker.deadline:
                    name = worker.process.name
                    _log.warning(
                        "pair %d exceeded its %gs timeout on worker %s; "
                        "killing and respawning", index, policy.timeout_s,
                        name,
                    )
                    respawn(worker, kill=True)
                    record_failure(
                        index, attempt, args, "timeout",
                        f"pair exceeded the per-pair timeout of "
                        f"{policy.timeout_s:g}s",
                        name,
                    )
    finally:
        for worker in workers:
            _retire_worker(worker, kill=worker.task is not None)


def _serial_fan_out(pairs: Iterable[tuple], policy: RetryPolicy):
    """In-process fan-out with the same outcome shape as the pool.

    Crashes and hangs cannot occur in-process; deterministic errors follow
    the policy's ``retry_errors``/``allow_failures`` treatment (``timeout_s``
    is ignored -- a replay cannot be preempted from its own thread).
    """
    for index, args in enumerate(pairs):
        attempt = 0
        while True:
            try:
                _chaos.maybe_sabotage(index, attempt, in_process=True)
                result, seconds = _replay_pair(*args)
            except WorkerSetupError:
                raise
            except Exception as exc:  # noqa: BLE001 - policy decides
                if attempt < policy.retries_for("error"):
                    delay = policy.retry_delay_s(attempt + 1)
                    if delay > 0:
                        time.sleep(delay)
                    attempt += 1
                    continue
                if policy.allow_failures:
                    yield (
                        None, 0.0, _RawFailure("error", exc), attempt + 1,
                        "in-process",
                    )
                    break
                raise
            else:
                yield (result, seconds, None, attempt + 1, "in-process")
                break


def _fan_out_pairs(
    pairs: Iterable[tuple],
    jobs: int,
    count: int,
    policy: Optional[RetryPolicy] = None,
):
    """Replay ``_replay_pair`` argument tuples, yielding
    ``(result, seconds, raw_failure, attempts, worker_name)`` in submission
    order.

    The single fan-out implementation behind both the matrix runner and
    :func:`run_pairs`.  ``jobs`` <= 1 (after the caller clamps to the pair
    count and available CPUs) runs in-process with no pool overhead.
    Otherwise the pairs are dispatched to the supervised pool *as the
    iterable produces them* -- lazy trace generation therefore overlaps the
    earliest replays -- and results are collected in submission order,
    bit-identical to the serial loop.  ``raw_failure`` is None for pairs
    that succeeded (possibly after retries) and a :class:`_RawFailure` for
    pairs that exhausted the policy's retries.
    """
    if policy is None:
        policy = DEFAULT_POLICY
    jobs = min(jobs if jobs and jobs > 0 else available_cpus(), count) or 1
    if jobs <= 1:
        yield from _serial_fan_out(pairs, policy)
        return
    yield from _pool_fan_out(pairs, jobs, count, policy)


def run_pairs(
    pairs: List[tuple],
    jobs: int = 1,
    progress: Optional[Callable[[str], None]] = None,
    on_result: Optional[Callable[[WorkloadResult], None]] = None,
    policy: Optional[RetryPolicy] = None,
    on_outcome: Optional[
        Callable[
            [int, Optional[WorkloadResult], Optional[PairFailure], int, float],
            None,
        ]
    ] = None,
) -> List[Optional[WorkloadResult]]:
    """Replay ``(configuration_name, trace, window, coherence[,
    corona_config, modules, faults, observability])`` tuples.

    The helper behind the coherence and parameter sweeps (and usable for any
    ad-hoc pair list); see :func:`_fan_out_pairs` for the jobs semantics.
    When a pool is used, each distinct trace is packed once and shipped
    through a :class:`TraceShipment` (shared memory first), exactly like the
    matrix runner.  The optional trailing elements ship scenario system
    overrides, worker setup modules and the fault spec, exactly like the
    matrix runner's pair stream.  ``on_result`` receives each pair's result
    the moment it is collected (submission = serial order) -- the streaming
    hook the sweep engine uses to checkpoint completed points as soon as
    their last pair lands.

    ``policy`` governs retries/timeouts/partial results (default:
    :data:`~repro.harness.resilience.DEFAULT_POLICY` -- crashes recovered,
    failures abort).  Under ``allow_failures`` the returned list holds
    ``None`` at failed pairs' positions, and ``on_outcome(position, result,
    failure, attempts, seconds)`` reports every pair's fate, successes
    included -- ``seconds`` is the pair's replay wall-clock measured where
    it ran (the per-point timing the sweep engine checkpoints).
    """
    if policy is None:
        policy = DEFAULT_POLICY
    effective = min(jobs if jobs and jobs > 0 else available_cpus(), len(pairs)) or 1
    shipments: Dict[int, TraceShipment] = {}
    results: List[Optional[WorkloadResult]] = []
    labels: List[Tuple[str, str]] = [
        (pair[0], getattr(pair[1], "name", "?")) for pair in pairs
    ]
    outcomes = None
    try:
        calls = []
        if effective > 1:
            # Shipments are created here, before _fan_out_pairs forks the
            # pool, so the fork-registry fallback is safe (fork_ok default).
            for configuration_name, trace, *rest in pairs:
                shipment = shipments.get(id(trace))
                if shipment is None:
                    shipment = TraceShipment(as_packed(trace))
                    shipments[id(trace)] = shipment
                calls.append((configuration_name, shipment.handle, *rest))
        else:
            # In-process: still pack each distinct trace exactly once, so a
            # stream replayed against K configurations is not re-packed K
            # times by SystemSimulator.run.
            packed_by_trace: Dict[int, PackedTrace] = {}
            for configuration_name, trace, *rest in pairs:
                packed = packed_by_trace.get(id(trace))
                if packed is None:
                    packed = as_packed(trace)
                    packed_by_trace[id(trace)] = packed
                calls.append((configuration_name, packed, *rest))
        outcomes = _fan_out_pairs(calls, effective, len(calls), policy)
        for position, (result, seconds, raw, attempts, _worker) in enumerate(
            outcomes
        ):
            if raw is None:
                results.append(result)
                if on_outcome is not None:
                    on_outcome(position, result, None, attempts, seconds)
                if on_result is not None:
                    on_result(result)
                if progress is not None:
                    progress(f"{result.workload} {result.configuration} done")
                continue
            configuration_name, workload_name = labels[position]
            failure = PairFailure(
                configuration=configuration_name,
                workload=workload_name,
                kind=raw.kind,
                message=_raw_message(raw),
                attempts=attempts,
            )
            if not policy.allow_failures:
                _raise_strict(raw, failure)
            results.append(None)
            if on_outcome is not None:
                on_outcome(position, None, failure, attempts, seconds)
            if progress is not None:
                progress(
                    f"{workload_name} {configuration_name} FAILED "
                    f"({raw.kind} after {attempts} attempt(s))"
                )
    finally:
        if outcomes is not None:
            outcomes.close()
        for shipment in shipments.values():
            shipment.close()
    return results


@dataclass
class ParallelEvaluationRunner:
    """Runs every (configuration, workload) pair of a matrix in parallel.

    Parameters
    ----------
    matrix:
        The evaluation matrix to run.
    jobs:
        Worker process count.  ``0`` (the default) uses every available CPU;
        ``1`` runs in-process without a pool.
    progress:
        Optional callback receiving one line per finished pair (reported in
        serial order).
    on_result:
        Optional callback receiving each pair's :class:`WorkloadResult` as
        it completes (serial order) -- the Scenario API's streaming hook.
    setup_modules:
        Modules every worker imports before resolving configuration names
        (a scenario's ``modules`` list); required for user-registered
        configurations under non-``fork`` start methods.
    policy:
        Retry/timeout/partial-results policy (None = the default: crashes
        recovered, persistent failures abort).  Under ``allow_failures``
        failed pairs are recorded in :attr:`failures` and skipped in
        :attr:`results`.
    """

    matrix: EvaluationMatrix
    jobs: int = 0
    progress: Optional[Callable[[str], None]] = None
    on_result: Optional[Callable[[WorkloadResult], None]] = None
    setup_modules: Tuple[str, ...] = ()
    policy: Optional[RetryPolicy] = None
    #: Optional :class:`~repro.obs.progress.ProgressReporter` ticked once
    #: per finished pair (the ``--progress`` stderr heartbeat).
    heartbeat: Optional[ProgressReporter] = None
    results: List[WorkloadResult] = field(default_factory=list)
    failures: List[PairFailure] = field(default_factory=list)
    run_seconds: Dict[tuple, float] = field(default_factory=dict)
    #: Wall-clock seconds per harness phase (trace_generation, shipping,
    #: replay = summed worker replay seconds, dispatch = fan-out wall clock
    #: beyond replay/jobs -- submission, pipes, result collection).
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    #: Replay seconds attributed to each worker process by name.
    worker_seconds: Dict[str, float] = field(default_factory=dict)
    _traces: Dict[str, PackedTrace] = field(default_factory=dict, repr=False)
    _shipments: Dict[str, TraceShipment] = field(default_factory=dict, repr=False)

    def resolved_jobs(self) -> int:
        """The actual worker count this runner will use."""
        if self.jobs and self.jobs > 0:
            return self.jobs
        return available_cpus()

    def _report(self, result: WorkloadResult) -> None:
        if self.progress is not None:
            self.progress(
                f"{result.workload:<10} {result.configuration:<10} "
                f"exec={result.execution_time_s * 1e6:9.2f} us "
                f"bw={result.achieved_bandwidth_tbps:6.3f} TB/s "
                f"lat={result.average_latency_ns:8.1f} ns"
            )

    def _phase(self, name: str, seconds: float) -> None:
        self.phase_seconds[name] = self.phase_seconds.get(name, 0.0) + seconds

    def _trace_for(self, workload) -> PackedTrace:
        """The workload's packed trace, generated once and cached."""
        packed = self._traces.get(workload.name)
        if packed is None:
            started = time.perf_counter()
            packed = generate_packed_trace(
                workload,
                seed=self.matrix.scale.seed,
                num_requests=self.matrix.requests_for(workload),
            )
            self._phase("trace_generation", time.perf_counter() - started)
            self._traces[workload.name] = packed
            _log.debug("generated trace for workload %s", workload.name)
        return packed

    def _shipped(self, workload, fork_ok: bool) -> object:
        """The workload's shipment handle (creating the shipment on first
        use), for pool runs.  ``fork_ok`` is False once the pool has forked
        (the lazy streaming path)."""
        shipment = self._shipments.get(workload.name)
        if shipment is None:
            trace = self._trace_for(workload)
            started = time.perf_counter()
            shipment = TraceShipment(trace, fork_ok=fork_ok)
            self._phase("shipping", time.perf_counter() - started)
            self._shipments[workload.name] = shipment
        return shipment.handle

    def _close_shipments(self) -> None:
        for shipment in self._shipments.values():
            shipment.close()
        self._shipments.clear()

    def _pair_stream(self, ship: bool, only_workload: Optional[str] = None):
        """Lazily yield ``(configuration_name, workload_name, trace, window,
        coherence)`` in the serial runner's iteration order (workloads outer,
        configurations inner).

        Traces are generated (and shipped) as the stream is consumed, which
        is what lets generation overlap the replay of earlier workloads'
        pairs during pool submission.
        """
        configurations = self.matrix.configurations()
        for workload in self.matrix.workloads():
            if only_workload is not None and workload.name != only_workload:
                continue
            trace = (
                # Consumed during pool submission, i.e. after the fork: a
                # shipment created here must not rely on the fork registry.
                self._shipped(workload, fork_ok=False)
                if ship
                else self._trace_for(workload)
            )
            window = getattr(workload, "window", 4)
            for configuration in configurations:
                yield (
                    configuration.name,
                    workload.name,
                    trace,
                    window,
                    self.matrix.coherence,
                )

    def _corona_config(self) -> Optional[CoronaConfig]:
        """Scenario system overrides to ship to workers (None = default)."""
        return getattr(self.matrix, "corona_config", None)

    def _execute(
        self, count: int, only_workload: Optional[str] = None
    ) -> List[WorkloadResult]:
        """Run ``count`` pairs; append to (and return) new results."""
        policy = self.policy if self.policy is not None else DEFAULT_POLICY
        effective = min(self.resolved_jobs(), count) or 1
        stream = self._pair_stream(ship=effective > 1, only_workload=only_workload)
        submitted: List[Tuple[str, str]] = []

        corona_config = self._corona_config()
        fault_spec = getattr(self.matrix, "faults", None)
        obs_spec = getattr(self.matrix, "observability", None)
        multi = self.matrix.run_count() > 1

        def calls():
            for configuration_name, workload_name, trace, window, coherence in stream:
                submitted.append((configuration_name, workload_name))
                yield (
                    configuration_name,
                    trace,
                    window,
                    coherence,
                    corona_config,
                    self.setup_modules,
                    fault_spec,
                    # Per-pair sink paths are resolved here in the parent;
                    # the worker just writes to them.
                    resolve_pair_spec(
                        obs_spec, configuration_name, workload_name, multi
                    ),
                )

        produced: List[WorkloadResult] = []
        replay_sum = 0.0
        fan_started = time.perf_counter()
        outcomes = _fan_out_pairs(calls(), effective, count, policy)
        try:
            if effective > 1 and not _shm_available():
                # The fork-inherited fallback only sees traces registered
                # before the pool forks, so give up generation/replay overlap
                # and ship everything up front (pre-fork: fork_ok).
                for workload in self.matrix.workloads():
                    if only_workload is None or workload.name == only_workload:
                        self._shipped(workload, fork_ok=True)
            for position, (result, seconds, raw, attempts, worker) in enumerate(
                outcomes
            ):
                configuration_name, workload_name = submitted[position]
                if raw is not None:
                    failure = PairFailure(
                        configuration=configuration_name,
                        workload=workload_name,
                        kind=raw.kind,
                        message=_raw_message(raw),
                        attempts=attempts,
                    )
                    if not policy.allow_failures:
                        _raise_strict(raw, failure)
                    self.failures.append(failure)
                    if self.heartbeat is not None:
                        self.heartbeat.pair_done(
                            failed=True, retries=attempts - 1
                        )
                    if self.progress is not None:
                        self.progress(
                            f"{workload_name:<10} {configuration_name:<10} "
                            f"FAILED ({raw.kind} after {attempts} attempt(s))"
                        )
                    continue
                self.run_seconds[(configuration_name, workload_name)] = seconds
                replay_sum += seconds
                if worker:
                    self.worker_seconds[worker] = (
                        self.worker_seconds.get(worker, 0.0) + seconds
                    )
                self.results.append(result)
                produced.append(result)
                if self.heartbeat is not None:
                    self.heartbeat.pair_done(failed=False, retries=attempts - 1)
                if self.on_result is not None:
                    self.on_result(result)
                self._report(result)
        finally:
            outcomes.close()
            self._close_shipments()
            self._phase("replay", replay_sum)
            # What the fan-out wall clock spent beyond the replays' fair
            # share: submission, pipe traffic, result collection, stalls.
            self._phase(
                "dispatch",
                max(
                    0.0,
                    time.perf_counter() - fan_started - replay_sum / effective,
                ),
            )
        return produced

    def run(self) -> List[WorkloadResult]:
        """Run the whole matrix; returns all results (also kept on self)."""
        self._execute(self.matrix.run_count())
        return self.results

    def run_workload(self, workload_name: str) -> List[WorkloadResult]:
        """Run one workload across every configuration of the matrix."""
        if workload_name not in self.matrix.workload_names():
            known = sorted(self.matrix.workload_names())
            raise KeyError(f"unknown workload {workload_name!r}; known: {known}")
        count = len(self.matrix.configurations())
        return self._execute(count, only_workload=workload_name)

    def total_simulated_requests(self) -> int:
        return sum(result.num_requests for result in self.results)

    def total_wall_clock_seconds(self) -> float:
        """Sum of per-pair replay seconds (CPU work, not elapsed time).

        ``run_seconds`` is keyed in worker *completion* order, which varies
        run to run; summing floats in that order would make the total
        order-dependent at the ulp level.  Summing in sorted-value order
        makes it a pure function of the per-pair timings (and identical to
        the serial runner's total for equal timing multisets).
        """
        return sum(sorted(self.run_seconds.values()))
