"""Sensitivity studies on the design's key physical and architectural knobs.

The paper's conclusions rest on a handful of technology projections (waveguide
loss, per-ring through loss, detector sensitivity) and architectural choices
(crossbar channel width, token-ring latency, per-thread memory-level
parallelism, memory latency).  Each function here sweeps one knob and returns
a small table, so the "how much device improvement does Corona actually need"
question from DESIGN.md can be answered quantitatively.  The ablation
benchmarks (``benchmarks/bench_ablations.py``) exercise the architectural
sweeps; ``examples/sensitivity_study.py`` prints the physical ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.configs import configuration_by_name
from repro.core.system import SystemSimulator
from repro.network.crossbar import OpticalCrossbar
from repro.photonics.power_budget import PowerBudget, crossbar_worst_case_budget
from repro.trace.record import TraceStream
from repro.trace.synthetic import uniform_workload


@dataclass(frozen=True)
class SweepPoint:
    """One point of a one-dimensional sensitivity sweep."""

    parameter: float
    metric: float
    feasible: bool = True


def waveguide_loss_sensitivity(
    losses_db_per_cm: Sequence[float] = (0.1, 0.3, 0.5, 1.0, 2.0, 3.0),
    detector_sensitivity_dbm: float = -20.0,
    laser_power_per_wavelength_dbm: float = 0.0,
    margin_db: float = 3.0,
) -> List[SweepPoint]:
    """Link-budget margin of the worst-case crossbar path vs waveguide loss.

    Today's demonstrated waveguides (2-3 dB/cm) do not close a 16 cm
    serpentine budget; the paper's architecture implicitly assumes roughly an
    order of magnitude improvement.  The sweep makes that requirement visible.
    """
    points: List[SweepPoint] = []
    for loss in losses_db_per_cm:
        budget = PowerBudget(
            loss_budget=crossbar_worst_case_budget(waveguide_loss_db_per_cm=loss),
            detector_sensitivity_dbm=detector_sensitivity_dbm,
            laser_power_per_wavelength_dbm=laser_power_per_wavelength_dbm,
            margin_db=margin_db,
        )
        points.append(
            SweepPoint(
                parameter=loss,
                metric=budget.margin_achieved_db,
                feasible=budget.closes,
            )
        )
    return points


def ring_through_loss_sensitivity(
    through_losses_db: Sequence[float] = (0.00005, 0.0001, 0.0005, 0.001, 0.005),
    ring_passes: int = 64 * 64,
) -> List[SweepPoint]:
    """Link-budget margin vs per-ring through loss.

    A message on a crossbar channel passes every other cluster's ring bank, so
    even tiny per-ring losses multiply by thousands of rings; this is the
    device parameter the design is most sensitive to.
    """
    points: List[SweepPoint] = []
    for loss in through_losses_db:
        budget = PowerBudget(
            loss_budget=crossbar_worst_case_budget(
                ring_through_loss_db=loss, ring_passes=ring_passes
            ),
        )
        points.append(
            SweepPoint(
                parameter=loss,
                metric=budget.margin_achieved_db,
                feasible=budget.closes,
            )
        )
    return points


def required_laser_power_sensitivity(
    losses_db_per_cm: Sequence[float] = (0.1, 0.3, 0.5, 1.0),
    wavelengths: int = 64 * 4 * 64,
    wall_plug_efficiency: float = 0.1,
) -> List[SweepPoint]:
    """Total wall-plug laser power for the crossbar vs waveguide loss.

    The metric is watts for all crossbar wavelength feeds; infeasible points
    are those whose laser power alone would exceed the paper's 39 W photonic
    budget.
    """
    points: List[SweepPoint] = []
    for loss in losses_db_per_cm:
        budget = PowerBudget(
            loss_budget=crossbar_worst_case_budget(waveguide_loss_db_per_cm=loss),
        )
        per_wavelength_w = budget.required_laser_power_w()
        total_w = per_wavelength_w * wavelengths / wall_plug_efficiency
        points.append(
            SweepPoint(parameter=loss, metric=total_w, feasible=total_w < 39.0)
        )
    return points


def channel_bandwidth_sensitivity(
    trace: Optional[TraceStream] = None,
    channel_bandwidths_bytes_per_s: Sequence[float] = (80e9, 160e9, 320e9, 640e9),
    num_requests: int = 8000,
    window_depth: int = 8,
) -> List[SweepPoint]:
    """Achieved bandwidth of XBar/OCM vs per-channel crossbar bandwidth."""
    if trace is None:
        trace = uniform_workload().generate(seed=1, num_requests=num_requests)
    points: List[SweepPoint] = []
    for bandwidth in channel_bandwidths_bytes_per_s:
        network = OpticalCrossbar(channel_bandwidth_bytes_per_s=bandwidth)
        simulator = SystemSimulator(
            configuration_by_name("XBar/OCM"),
            network=network,
            window_depth=window_depth,
        )
        result = simulator.run(trace)
        points.append(
            SweepPoint(
                parameter=bandwidth, metric=result.achieved_bandwidth_bytes_per_s
            )
        )
    return points


def window_depth_sensitivity(
    trace: Optional[TraceStream] = None,
    depths: Sequence[int] = (1, 2, 4, 8, 16),
    num_requests: int = 8000,
    configuration_name: str = "XBar/OCM",
) -> List[SweepPoint]:
    """Achieved bandwidth vs per-thread outstanding-miss window."""
    if trace is None:
        trace = uniform_workload().generate(seed=1, num_requests=num_requests)
    points: List[SweepPoint] = []
    for depth in depths:
        simulator = SystemSimulator(
            configuration_by_name(configuration_name), window_depth=depth
        )
        result = simulator.run(trace)
        points.append(
            SweepPoint(parameter=depth, metric=result.achieved_bandwidth_bytes_per_s)
        )
    return points


def format_sweep(
    title: str,
    points: Sequence[SweepPoint],
    parameter_label: str,
    metric_label: str,
) -> str:
    """Render a sweep as a small text table."""
    lines = [title, "-" * len(title)]
    lines.append(f"{parameter_label:>16}  {metric_label:>16}  feasible")
    for point in points:
        lines.append(
            f"{point.parameter:>16.6g}  {point.metric:>16.4g}  "
            f"{'yes' if point.feasible else 'NO'}"
        )
    return "\n".join(lines)


def _physical_sweeps() -> List[tuple]:
    """``(title, points, parameter_label, metric_label)`` per physical sweep
    -- the single source behind the text tables and the structured records."""
    return [
        (
            "Crossbar link-budget margin vs waveguide loss",
            waveguide_loss_sensitivity(),
            "dB/cm",
            "margin (dB)",
        ),
        (
            "Crossbar link-budget margin vs per-ring through loss",
            ring_through_loss_sensitivity(),
            "dB/ring",
            "margin (dB)",
        ),
        (
            "Crossbar laser wall-plug power vs waveguide loss",
            required_laser_power_sensitivity(),
            "dB/cm",
            "laser power (W)",
        ),
    ]


def physical_design_sweeps_text() -> str:
    """The three photonic-design sweeps, formatted and blank-line separated.

    Single source for ``corona-repro sensitivity`` and the registered
    ``sensitivity`` scenario experiment, so the two surfaces cannot drift.
    """
    return "\n\n".join(
        format_sweep(title, points, parameter_label=parameter, metric_label=metric)
        for title, points, parameter, metric in _physical_sweeps()
    )


def physical_design_sweep_records() -> List[dict]:
    """The physical sweeps as flat records (one per swept value) for the
    experiment's JSON/CSV sinks -- the structured channel next to the text
    tables of :func:`physical_design_sweeps_text`."""
    records: List[dict] = []
    for title, points, parameter_label, metric_label in _physical_sweeps():
        for point in points:
            records.append(
                {
                    "sweep": title,
                    "parameter_label": parameter_label,
                    "metric_label": metric_label,
                    "parameter": point.parameter,
                    "metric": point.metric,
                    "feasible": point.feasible,
                }
            )
    return records
