"""Tables 1-4 of the paper, regenerated from the models.

Each ``table*`` function returns structured data (a list of rows); the
``format_table`` helper renders any of them as aligned text for reports and
benchmark output.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.core.config import CoronaConfig, CORONA_DEFAULT
from repro.memory.ecm import ecm_interconnect_summary
from repro.memory.ocm import ocm_interconnect_summary
from repro.photonics.inventory import corona_inventory
from repro.trace.splash2 import SPLASH2_ORDER, SPLASH2_PROFILES
from repro.trace.synthetic import synthetic_workloads


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Render rows as a fixed-width text table."""
    columns = len(headers)
    for row in rows:
        if len(row) != columns:
            raise ValueError(
                f"row {row!r} has {len(row)} cells, expected {columns}"
            )
    cells = [[str(value) for value in row] for row in rows]
    widths = [
        max(len(headers[i]), max((len(row[i]) for row in cells), default=0))
        for i in range(columns)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(columns)))
    for row in cells:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(columns)))
    return "\n".join(lines)


def table1_resource_configuration(
    config: CoronaConfig = CORONA_DEFAULT,
) -> List[Tuple[str, str]]:
    """Table 1: resource configuration of the Corona design."""
    return config.resource_configuration_rows()


def table2_optical_inventory(
    config: CoronaConfig = CORONA_DEFAULT,
) -> List[Tuple[str, int, int]]:
    """Table 2: optical resource inventory (waveguides, ring resonators)."""
    inventory = corona_inventory(
        clusters=config.num_clusters,
        wavelengths_per_waveguide=config.crossbar_wavelengths_per_waveguide,
        crossbar_waveguides_per_channel=config.crossbar_waveguides_per_channel,
        memory_waveguides_per_controller=config.memory_links_per_controller,
    )
    return inventory.as_rows()


def table3_benchmarks() -> List[Tuple[str, str, str]]:
    """Table 3: benchmarks, datasets and network request counts."""
    rows: List[Tuple[str, str, str]] = []
    for workload in synthetic_workloads():
        rows.append(
            (workload.name, workload.description, f"{workload.num_requests / 1e6:g} M")
        )
    for name in SPLASH2_ORDER:
        profile = SPLASH2_PROFILES[name]
        dataset = f"{profile.dataset} ({profile.default_dataset})"
        rows.append((name, dataset, f"{profile.paper_requests / 1e6:g} M"))
    return rows


def table4_memory_interconnects(
    num_controllers: int = 64,
) -> List[Tuple[str, object, object]]:
    """Table 4: optical vs electrical memory interconnects."""
    ocm = ocm_interconnect_summary(num_controllers)
    ecm = ecm_interconnect_summary(num_controllers)
    rows: List[Tuple[str, object, object]] = []
    for key in ocm:
        if key == "Interconnect power (mW/Gb/s)":
            continue
        ocm_value = ocm[key]
        ecm_value = ecm[key]
        if isinstance(ocm_value, float):
            ocm_value = f"{ocm_value:.2f}"
        if isinstance(ecm_value, float):
            ecm_value = f"{ecm_value:.2f}"
        rows.append((key, ocm_value, ecm_value))
    return rows


def render_all_tables(config: CoronaConfig = CORONA_DEFAULT) -> str:
    """All four tables as one text report."""
    sections = [
        format_table(
            ["Resource", "Value"],
            table1_resource_configuration(config),
            title="Table 1: Resource Configuration",
        ),
        format_table(
            ["Photonic Subsystem", "Waveguides", "Ring Resonators"],
            table2_optical_inventory(config),
            title="Table 2: Optical Resource Inventory",
        ),
        format_table(
            ["Benchmark", "Data Set / Description", "# Network Requests"],
            table3_benchmarks(),
            title="Table 3: Benchmarks and Configurations",
        ),
        format_table(
            ["Resource", "OCM", "ECM"],
            table4_memory_interconnects(config.num_clusters),
            title="Table 4: Optical vs Electrical Memory Interconnects",
        ),
    ]
    return "\n\n".join(sections)
