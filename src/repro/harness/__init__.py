"""Experiment harness: regenerate every table and figure of the paper.

* :mod:`repro.harness.experiments` -- the evaluation matrix (5 configurations
  x 15 workloads) and the scaling knobs that keep a pure-Python replay
  tractable.
* :mod:`repro.harness.runner` -- runs the matrix and collects
  :class:`~repro.core.results.WorkloadResult` objects.
* :mod:`repro.harness.parallel` -- the multiprocessing matrix runner
  (bit-identical results, matrix wall-clock divided by the worker count).
* :mod:`repro.harness.tables` -- Tables 1-4 as data plus text renderers.
* :mod:`repro.harness.figures` -- Figures 8-11 as data series plus ASCII bar
  charts, and the geometric-mean summary quoted in Section 5.
"""

from repro.harness.experiments import (
    EvaluationMatrix,
    ExperimentScale,
    default_matrix,
    quick_matrix,
)
from repro.harness.figures import (
    figure10_latency,
    figure11_power,
    figure8_speedup,
    figure9_bandwidth,
    render_figure,
    speedup_summary,
)
from repro.harness.parallel import ParallelEvaluationRunner, available_cpus
from repro.harness.runner import EvaluationRunner
from repro.harness.tables import (
    format_table,
    table1_resource_configuration,
    table2_optical_inventory,
    table3_benchmarks,
    table4_memory_interconnects,
)

__all__ = [
    "ExperimentScale",
    "EvaluationMatrix",
    "default_matrix",
    "quick_matrix",
    "EvaluationRunner",
    "ParallelEvaluationRunner",
    "available_cpus",
    "table1_resource_configuration",
    "table2_optical_inventory",
    "table3_benchmarks",
    "table4_memory_interconnects",
    "format_table",
    "figure8_speedup",
    "figure9_bandwidth",
    "figure10_latency",
    "figure11_power",
    "render_figure",
    "speedup_summary",
]
