"""Figures 8-11 of the paper as data series and ASCII charts.

Each ``figure*`` function consumes the list of
:class:`~repro.core.results.WorkloadResult` produced by the
:class:`~repro.harness.runner.EvaluationRunner` and returns
``{workload: {configuration: value}}`` in the paper's plot order.
``render_figure`` draws a grouped horizontal bar chart in plain text, and
``speedup_summary`` reproduces the geometric-mean claims of Section 5.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.configs import CONFIGURATION_ORDER
from repro.core.results import (
    WorkloadResult,
    geometric_mean_speedup,
    metric_table,
    speedup_table,
)


def plot_configuration_order(present: Sequence[str]) -> List[str]:
    """Column/plot order for a set of configuration names.

    The paper's five come first (in :data:`CONFIGURATION_ORDER`), then any
    user-registered scenario configurations in their given order -- shared
    by the figure tables and the report sections so both stay in agreement.
    """
    return [c for c in CONFIGURATION_ORDER if c in present] + [
        c for c in present if c not in CONFIGURATION_ORDER
    ]


def _ordered(
    table: Dict[str, Dict[str, float]],
    workload_order: Optional[Sequence[str]] = None,
) -> Dict[str, Dict[str, float]]:
    """Re-key a results table in plot order (workloads, then configurations).

    Configurations outside the paper's five (user-registered scenario
    systems) follow the builtins in their original result order rather than
    being dropped.
    """
    workloads = list(workload_order) if workload_order else sorted(table)
    ordered: Dict[str, Dict[str, float]] = {}
    for workload in workloads:
        if workload not in table:
            continue
        by_config = table[workload]
        ordered[workload] = {
            config: by_config[config]
            for config in plot_configuration_order(list(by_config))
        }
    return ordered


def figure8_speedup(
    results: Iterable[WorkloadResult],
    baseline: str = "LMesh/ECM",
    workload_order: Optional[Sequence[str]] = None,
) -> Dict[str, Dict[str, float]]:
    """Figure 8: normalized speedup over the LMesh/ECM baseline."""
    return _ordered(speedup_table(results, baseline=baseline), workload_order)


def figure9_bandwidth(
    results: Iterable[WorkloadResult],
    workload_order: Optional[Sequence[str]] = None,
) -> Dict[str, Dict[str, float]]:
    """Figure 9: achieved main-memory bandwidth in TB/s."""
    return _ordered(metric_table(results, "achieved_bandwidth_tbps"), workload_order)


def figure10_latency(
    results: Iterable[WorkloadResult],
    workload_order: Optional[Sequence[str]] = None,
) -> Dict[str, Dict[str, float]]:
    """Figure 10: average L2-miss latency in nanoseconds."""
    return _ordered(metric_table(results, "average_latency_ns"), workload_order)


def figure11_power(
    results: Iterable[WorkloadResult],
    workload_order: Optional[Sequence[str]] = None,
) -> Dict[str, Dict[str, float]]:
    """Figure 11: on-chip network power in watts."""
    return _ordered(metric_table(results, "network_power_w"), workload_order)


def render_figure(
    table: Dict[str, Dict[str, float]],
    title: str,
    unit: str = "",
    width: int = 46,
) -> str:
    """Render a grouped bar chart (one group per workload) as text."""
    if width < 10:
        raise ValueError(f"chart width must be at least 10, got {width}")
    lines: List[str] = [title, "=" * len(title)]
    maximum = max(
        (value for by_config in table.values() for value in by_config.values()),
        default=0.0,
    )
    if maximum <= 0:
        maximum = 1.0
    for workload, by_config in table.items():
        lines.append(workload)
        for config, value in by_config.items():
            bar = "#" * max(1, int(round(value / maximum * width)))
            lines.append(f"  {config:<10} {bar} {value:.2f}{unit}")
        lines.append("")
    return "\n".join(lines)


def speedup_summary(
    results: Iterable[WorkloadResult],
    synthetic_names: Sequence[str],
    splash_names: Sequence[str],
) -> Dict[str, float]:
    """The Section 5 geometric-mean speedups.

    Keys mirror the paper's claims:

    * ``synthetic_ocm_over_ecm`` -- HMesh/OCM over HMesh/ECM, synthetic
      benchmarks (paper: 3.28).
    * ``synthetic_xbar_over_hmesh_ocm`` -- XBar/OCM over HMesh/OCM, synthetic
      benchmarks (paper: 2.36).
    * ``splash_ocm_over_ecm`` -- HMesh/OCM over HMesh/ECM, SPLASH-2
      (paper: 1.80).
    * ``splash_xbar_over_hmesh_ocm`` -- XBar/OCM over HMesh/OCM, SPLASH-2
      (paper: 1.44).
    * ``corona_over_baseline_*`` -- XBar/OCM over LMesh/ECM (the abstract's
      "2 to 6 times better on memory-intensive workloads").
    """
    results = list(results)
    available = {result.configuration for result in results}
    summary: Dict[str, float] = {}

    def add(key: str, numerator: str, denominator: str, workloads: Sequence[str]) -> None:
        if not workloads:
            return
        if numerator not in available or denominator not in available:
            # Partial matrices (e.g. a two-configuration quick run) simply omit
            # the ratios they cannot compute.
            return
        summary[key] = geometric_mean_speedup(
            results, numerator, denominator, workloads
        )

    add("synthetic_ocm_over_ecm", "HMesh/OCM", "HMesh/ECM", synthetic_names)
    add("synthetic_xbar_over_hmesh_ocm", "XBar/OCM", "HMesh/OCM", synthetic_names)
    add("corona_over_baseline_synthetic", "XBar/OCM", "LMesh/ECM", synthetic_names)
    add("splash_ocm_over_ecm", "HMesh/OCM", "HMesh/ECM", splash_names)
    add("splash_xbar_over_hmesh_ocm", "XBar/OCM", "HMesh/OCM", splash_names)
    add("corona_over_baseline_splash", "XBar/OCM", "LMesh/ECM", splash_names)
    return summary


#: The paper's reference values for the summary keys, used by benchmarks and
#: EXPERIMENTS.md to report measured-vs-paper side by side.
PAPER_SPEEDUP_SUMMARY = {
    "synthetic_ocm_over_ecm": 3.28,
    "synthetic_xbar_over_hmesh_ocm": 2.36,
    "splash_ocm_over_ecm": 1.80,
    "splash_xbar_over_hmesh_ocm": 1.44,
}
