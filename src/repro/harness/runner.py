"""Run the evaluation matrix and collect results.

The runner caches the trace of each workload (trace generation is the same
across configurations) and the per-run results, so the per-figure extraction
functions in :mod:`repro.harness.figures` can all be fed from a single pass
over the matrix.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.config import CORONA_DEFAULT
from repro.core.results import WorkloadResult
from repro.core.system import SystemSimulator
from repro.harness.experiments import EvaluationMatrix
from repro.harness.resilience import PairFailure, PairFailureError, RetryPolicy
from repro.obs.artifacts import resolve_pair_spec, write_pair_artifacts
from repro.obs.log import get_logger
from repro.obs.progress import ProgressReporter
from repro.trace.packed import PackedTrace, generate_packed_trace

_log = get_logger(__name__)


@dataclass
class EvaluationRunner:
    """Runs every (configuration, workload) pair of a matrix.

    ``on_result`` is the streaming hook of the Scenario API: it receives
    each pair's :class:`WorkloadResult` the moment the replay finishes.
    A matrix carrying a ``corona_config`` (scenario system overrides) has
    every simulator built from it; ``None`` keeps the default design point.
    """

    matrix: EvaluationMatrix
    progress: Optional[Callable[[str], None]] = None
    on_result: Optional[Callable[[WorkloadResult], None]] = None
    #: Resilience policy for :meth:`run`.  ``None`` keeps the historical
    #: behavior: the first failing pair raises.  With a policy, in-process
    #: errors are retried per ``retry_errors``/``max_retries`` and --
    #: under ``allow_failures`` -- recorded in :attr:`failures` instead of
    #: aborting the matrix.  (Per-pair timeouts need worker processes and
    #: only apply on the parallel runner.)
    policy: Optional[RetryPolicy] = None
    #: Optional :class:`~repro.obs.progress.ProgressReporter` ticked once
    #: per finished pair (the ``--progress`` stderr heartbeat).
    heartbeat: Optional[ProgressReporter] = None
    failures: List[PairFailure] = field(default_factory=list)
    results: List[WorkloadResult] = field(default_factory=list)
    run_seconds: Dict[tuple, float] = field(default_factory=dict)
    #: Wall-clock seconds per harness phase (trace_generation, replay,
    #: sink_write) -- a few ``perf_counter`` reads per pair.
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    #: Replay seconds per "worker"; the serial runner has exactly one.
    worker_seconds: Dict[str, float] = field(default_factory=dict)
    _traces: Dict[str, PackedTrace] = field(default_factory=dict, repr=False)
    _windows: Dict[str, int] = field(default_factory=dict, repr=False)

    def _report(self, message: str) -> None:
        if self.progress is not None:
            self.progress(message)

    def _phase(self, name: str, seconds: float) -> None:
        self.phase_seconds[name] = self.phase_seconds.get(name, 0.0) + seconds

    def _tick(self, failed: bool, retries: int) -> None:
        if self.heartbeat is not None:
            self.heartbeat.pair_done(failed=failed, retries=retries)

    def _trace_for(self, workload) -> PackedTrace:
        """The workload's trace in packed form, generated once per workload
        (generation is identical across configurations)."""
        if workload.name not in self._traces:
            started = time.perf_counter()
            self._traces[workload.name] = generate_packed_trace(
                workload,
                seed=self.matrix.scale.seed,
                num_requests=self.matrix.requests_for(workload),
            )
            self._phase("trace_generation", time.perf_counter() - started)
            self._windows[workload.name] = getattr(workload, "window", 4)
            _log.debug("generated trace for workload %s", workload.name)
        return self._traces[workload.name]

    def run_pair(self, configuration, workload) -> WorkloadResult:
        """Run one (configuration, workload) pair and record the result."""
        trace = self._trace_for(workload)
        observability = resolve_pair_spec(
            getattr(self.matrix, "observability", None),
            configuration.name,
            workload.name,
            multi=self.matrix.run_count() > 1,
        )
        simulator = SystemSimulator(
            configuration=configuration,
            corona_config=getattr(self.matrix, "corona_config", None)
            or CORONA_DEFAULT,
            window_depth=self._windows[workload.name],
            coherence=self.matrix.coherence,
            faults=getattr(self.matrix, "faults", None),
            observability=observability,
        )
        started = time.perf_counter()
        result = simulator.run(trace)
        seconds = time.perf_counter() - started
        self.run_seconds[(configuration.name, workload.name)] = seconds
        self._phase("replay", seconds)
        self.worker_seconds["in-process"] = (
            self.worker_seconds.get("in-process", 0.0) + seconds
        )
        if observability is not None:
            _written, sink_seconds = write_pair_artifacts(
                simulator, configuration.name, workload.name
            )
            self._phase("sink_write", sink_seconds)
        self.results.append(result)
        if self.on_result is not None:
            self.on_result(result)
        self._report(
            f"{workload.name:<10} {configuration.name:<10} "
            f"exec={result.execution_time_s * 1e6:9.2f} us "
            f"bw={result.achieved_bandwidth_tbps:6.3f} TB/s "
            f"lat={result.average_latency_ns:8.1f} ns"
        )
        return result

    def run(self) -> List[WorkloadResult]:
        """Run the whole matrix; returns all results (also kept on self).

        With a :attr:`policy`, failing pairs are retried (``retry_errors``)
        and -- under ``allow_failures`` -- recorded in :attr:`failures`
        while the rest of the matrix completes; without one, the first
        failure raises as before.
        """
        if self.policy is None:
            for workload in self.matrix.workloads():
                for configuration in self.matrix.configurations():
                    self.run_pair(configuration, workload)
                    self._tick(failed=False, retries=0)
            return self.results
        for index, (workload, configuration) in enumerate(
            (w, c)
            for w in self.matrix.workloads()
            for c in self.matrix.configurations()
        ):
            self._run_pair_resilient(index, configuration, workload)
        return self.results

    def _run_pair_resilient(self, index, configuration, workload) -> None:
        """One pair under the retry policy (chaos-aware, like the pool)."""
        from repro.faults.chaos import maybe_sabotage

        policy = self.policy
        attempt = 0
        while True:
            try:
                maybe_sabotage(index, attempt, in_process=True)
                self.run_pair(configuration, workload)
                self._tick(failed=False, retries=attempt)
                return
            except Exception as exc:  # noqa: BLE001 - converted to records
                if attempt < policy.retries_for("error"):
                    attempt += 1
                    _log.info(
                        "pair (%s, %s) failed in process; retry %d",
                        configuration.name, workload.name, attempt,
                    )
                    delay = policy.retry_delay_s(attempt)
                    if delay > 0:
                        time.sleep(delay)
                    continue
                failure = PairFailure(
                    configuration=configuration.name,
                    workload=workload.name,
                    kind="error",
                    message=f"{type(exc).__name__}: {exc}",
                    attempts=attempt + 1,
                )
                if not policy.allow_failures:
                    if attempt > 0:
                        raise PairFailureError([failure]) from exc
                    raise
                self.failures.append(failure)
                self._tick(failed=True, retries=attempt)
                self._report(
                    f"{workload.name:<10} {configuration.name:<10} "
                    f"FAILED ({failure.kind}) after {failure.attempts} "
                    f"attempt(s): {failure.message}"
                )
                return

    def run_workload(self, workload_name: str) -> List[WorkloadResult]:
        """Run one workload across every configuration of the matrix."""
        workloads = {w.name: w for w in self.matrix.workloads()}
        if workload_name not in workloads:
            raise KeyError(
                f"unknown workload {workload_name!r}; known: {sorted(workloads)}"
            )
        workload = workloads[workload_name]
        return [
            self.run_pair(configuration, workload)
            for configuration in self.matrix.configurations()
        ]

    def total_simulated_requests(self) -> int:
        return sum(result.num_requests for result in self.results)

    def total_wall_clock_seconds(self) -> float:
        # Sorted-value order, matching ParallelRunner.total_wall_clock_seconds:
        # the float total is then a pure function of the timing multiset,
        # independent of the order pairs were replayed in.
        return sum(sorted(self.run_seconds.values()))
