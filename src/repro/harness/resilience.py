"""Resilience policy and failure records for the execution harness.

A :class:`RetryPolicy` tells the supervised worker pool (and the serial
runner) how to treat misbehaving pairs: how long one pair may run, how many
times to retry after a crash/timeout, how the backoff between attempts
grows, and whether the run as a whole tolerates pairs that stay broken.
A :class:`PairFailure` is the structured record of one pair that exhausted
its retries -- it flows into long-form sinks, the sweep ``points.jsonl``
checkpoint and ``sweep status`` instead of vanishing into a traceback.

Crash and timeout recovery is *unconditional*: a dead or hung worker is
always detected, respawned and its pair re-dispatched (the old pool hung
forever).  The policy only decides how many re-dispatches to attempt and
what happens when they run out.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, List, Mapping, Optional, Tuple

#: The failure kinds a pair can be quarantined with.
FAILURE_KINDS = ("crash", "timeout", "error", "setup")


@dataclass(frozen=True)
class RetryPolicy:
    """How the harness treats pairs that crash, hang or raise.

    Parameters
    ----------
    timeout_s:
        Wall-clock budget of one pair attempt in a pool worker (None = no
        limit).  A pair that exceeds it is killed and counts as a
        ``timeout`` failure.  Ignored on the in-process (``jobs=1``) path,
        which cannot preempt a replay.
    max_retries:
        Re-dispatches after the first failed attempt (so a pair runs at
        most ``1 + max_retries`` times).
    backoff_s / backoff_factor:
        Delay before retry ``n`` is ``backoff_s * backoff_factor**(n-1)``.
    retry_errors:
        Whether deterministic in-worker exceptions are retried too.  Off by
        default: a pair that raises will raise again, so retrying only
        delays the verdict (chaos-injected errors are the exception, which
        is what the flag is for).
    allow_failures:
        When True, pairs that exhaust retries become :class:`PairFailure`
        records and the run continues (partial-results mode).  When False,
        the first exhausted pair aborts the run with
        :class:`PairFailureError` (or the original exception, for
        deterministic errors).
    """

    timeout_s: Optional[float] = None
    max_retries: int = 2
    backoff_s: float = 0.25
    backoff_factor: float = 2.0
    retry_errors: bool = False
    allow_failures: bool = False

    def __post_init__(self) -> None:
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError(f"timeout_s must be positive, got {self.timeout_s}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_s < 0:
            raise ValueError(f"backoff_s must be >= 0, got {self.backoff_s}")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )

    def retry_delay_s(self, retry_number: int) -> float:
        """Backoff before retry ``retry_number`` (1-based)."""
        return self.backoff_s * self.backoff_factor ** max(retry_number - 1, 0)

    def retries_for(self, kind: str) -> int:
        """How many retries a failure of ``kind`` earns under this policy."""
        if kind == "setup":
            return 0  # a missing module/configuration never heals on retry
        if kind == "error" and not self.retry_errors:
            return 0
        return self.max_retries


#: The default policy: recover crashes and hung-pool bugs, no per-pair
#: timeout, abort the run if a pair stays broken.
DEFAULT_POLICY = RetryPolicy()


@dataclass(frozen=True)
class PairFailure:
    """One (configuration, workload) pair that exhausted its retries."""

    configuration: str
    workload: str
    #: One of :data:`FAILURE_KINDS`.
    kind: str
    message: str
    #: Total attempts made (first run plus retries).
    attempts: int
    #: Whether the pair was set aside after persistent failures (always True
    #: for recorded failures; kept explicit for the status report).
    quarantined: bool = True

    def to_dict(self) -> Dict[str, object]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Mapping) -> "PairFailure":
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown PairFailure field {unknown[0]!r}; known: "
                f"{sorted(known)}"
            )
        return cls(**data)


class PairFailureError(RuntimeError):
    """One or more pairs failed after exhausting their retries.

    Carries the structured :class:`PairFailure` records so callers (the CLI,
    the sweep engine) can report them before exiting non-zero.
    """

    def __init__(self, failures: List[PairFailure]) -> None:
        self.failures = list(failures)
        lines = [
            f"  {failure.configuration} x {failure.workload}: "
            f"{failure.kind} after {failure.attempts} attempt(s) -- "
            f"{failure.message}"
            for failure in self.failures
        ]
        super().__init__(
            f"{len(self.failures)} pair(s) failed after retries "
            f"(use allow_failures / --allow-failures for partial results):\n"
            + "\n".join(lines)
        )


def summarize_failures(
    failures: List[PairFailure],
) -> Dict[str, int]:
    """Counts by failure kind, for progress lines and status output."""
    counts: Dict[str, int] = {}
    for failure in failures:
        counts[failure.kind] = counts.get(failure.kind, 0) + 1
    return counts


#: CSV header of a failure sink (sweeps prepend ``point_id``).
FAILURE_CSV_COLUMNS: Tuple[str, ...] = tuple(
    f.name for f in fields(PairFailure)
)
