"""The evaluation matrix and its scaling knobs.

The paper replays 1 M-request synthetic traces and up to 240 M-request
SPLASH-2 traces on five system configurations.  A pure-Python replay cannot
afford hundreds of millions of events per run, so the harness scales every
workload down while preserving its per-thread statistics: the request count
changes, the miss process does not.  Speedups, bandwidths, latencies and
powers are rates or ratios, so they converge quickly with trace length; the
scale is a command-line/benchmark knob, not a hidden constant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.coherence import CoherenceConfig, SharingProfile
from repro.core.config import CoronaConfig
from repro.core.configs import CONFIGURATION_ORDER, all_configurations
from repro.core.results import WorkloadResult
from repro.trace.splash2 import SPLASH2_ORDER, splash2_workloads
from repro.trace.synthetic import synthetic_workloads, uniform_workload


@dataclass(frozen=True)
class ExperimentScale:
    """How far to scale the paper's request counts down.

    Parameters
    ----------
    synthetic_requests:
        Requests per synthetic workload (paper: 1 M).
    splash_fraction:
        Fraction of each SPLASH-2 benchmark's Table 3 request count to replay.
    splash_min_requests, splash_max_requests:
        Clamp on the scaled SPLASH-2 request counts, so tiny benchmarks still
        exercise every thread and huge ones stay tractable.
    seed:
        Trace-generation seed (runs are deterministic for a given seed).
    """

    synthetic_requests: int = 60_000
    splash_fraction: float = 1.0 / 4000.0
    splash_min_requests: int = 20_000
    splash_max_requests: int = 80_000
    seed: int = 1

    def __post_init__(self) -> None:
        if self.synthetic_requests < 1:
            raise ValueError("synthetic request count must be >= 1")
        if not 0 < self.splash_fraction <= 1:
            raise ValueError("splash fraction must be in (0, 1]")
        if self.splash_min_requests > self.splash_max_requests:
            raise ValueError("splash_min_requests exceeds splash_max_requests")

    def splash_requests(self, paper_requests: int) -> int:
        """Scaled request count for a SPLASH-2 benchmark."""
        scaled = int(round(paper_requests * self.splash_fraction))
        return max(self.splash_min_requests, min(self.splash_max_requests, scaled))


#: Scale used by the pytest benchmarks by default: small enough that the whole
#: 75-run matrix finishes in minutes, large enough that every hardware thread
#: issues dozens of misses.
QUICK_SCALE = ExperimentScale(
    synthetic_requests=12_000,
    splash_fraction=1.0 / 10_000.0,
    splash_min_requests=8_000,
    splash_max_requests=18_000,
)

#: Scale aimed at overnight-quality numbers.
FULL_SCALE = ExperimentScale(
    synthetic_requests=200_000,
    splash_fraction=1.0 / 1000.0,
    splash_min_requests=50_000,
    splash_max_requests=250_000,
)

#: The paper's own synthetic request count (Table 3: 1 M per pattern) with
#: SPLASH-2 scaled to comparable per-workload trace lengths (Ocean's 240 M
#: becomes 1 M; FFT/Radix land just below).  ~17 M replayed requests across
#: the 85-pair matrix: practical on a multicore host thanks to the packed
#: trace pipeline (zero-copy worker shipping, no per-record objects), but
#: still a many-hour serial run -- use ``--jobs 0``.
PAPER_SCALE = ExperimentScale(
    synthetic_requests=1_000_000,
    splash_fraction=1.0 / 240.0,
    splash_min_requests=100_000,
    splash_max_requests=1_000_000,
)


@dataclass
class EvaluationMatrix:
    """The (configuration x workload) matrix of the paper's evaluation.

    ``workload_filter`` keeps only workloads whose name contains one of the
    given substrings (case-insensitive) -- the mechanism behind the CLI's
    ``--workloads`` flag, letting a single (configuration, workload) pair run
    without the full matrix.  ``coherence`` enables the timed MOESI directory
    for every replay of the matrix (shared-tagged records only; the stock
    workloads carry none unless given a sharing profile).  ``corona_config``
    re-parameterizes the architecture for every simulator of the matrix
    (``None`` keeps the paper's design point -- the Scenario API sets this
    from ``system.overrides``).
    """

    scale: ExperimentScale = field(default_factory=ExperimentScale)
    configuration_names: Sequence[str] = field(
        default_factory=lambda: list(CONFIGURATION_ORDER)
    )
    include_synthetic: bool = True
    include_splash: bool = True
    workload_filter: Optional[Sequence[str]] = None
    coherence: Optional[CoherenceConfig] = None
    corona_config: Optional[CoronaConfig] = None

    def _matches_filter(self, name: str) -> bool:
        if self.workload_filter is None:
            return True
        lowered = name.lower()
        return any(term.lower() in lowered for term in self.workload_filter)

    def workloads(self) -> List:
        """Workload generators in the paper's plot order."""
        workloads: List = []
        if self.include_synthetic:
            workloads.extend(synthetic_workloads())
        if self.include_splash:
            workloads.extend(splash2_workloads())
        return [w for w in workloads if self._matches_filter(w.name)]

    def workload_names(self) -> List[str]:
        return [w.name for w in self.workloads()]

    def synthetic_names(self) -> List[str]:
        if not self.include_synthetic:
            return []
        return [
            w.name for w in synthetic_workloads() if self._matches_filter(w.name)
        ]

    def splash_names(self) -> List[str]:
        if not self.include_splash:
            return []
        return [name for name in SPLASH2_ORDER if self._matches_filter(name)]

    def requests_for(self, workload) -> int:
        """Scaled request count for one workload."""
        fixed = getattr(workload, "fixed_requests", None)
        if fixed is not None:
            # Trace-file workloads carry their own record count; the scale
            # tier cannot grow or shrink fixed on-disk data.
            return fixed
        if getattr(workload, "is_synthetic", False):
            return self.scale.synthetic_requests
        return self.scale.splash_requests(workload.profile.paper_requests)

    def configurations(self) -> List:
        by_name = {c.name: c for c in all_configurations()}
        return [by_name[name] for name in self.configuration_names]

    def run_count(self) -> int:
        return len(self.configuration_names) * len(self.workloads())


def default_matrix(scale: Optional[ExperimentScale] = None) -> EvaluationMatrix:
    """The full 5 x 17 matrix (6 synthetic + 11 SPLASH-2) at default scale."""
    return EvaluationMatrix(scale=scale or ExperimentScale())


def quick_matrix() -> EvaluationMatrix:
    """A fast matrix for benchmarks and CI: all workloads, quick scale."""
    return EvaluationMatrix(scale=QUICK_SCALE)


# --------------------------------------------------------------------------
# Sharing-fraction sweep: the photonic-vs-electrical coherence cost axis.
# --------------------------------------------------------------------------

#: Configurations the sweep compares by default: the all-electrical baseline,
#: the high-performance mesh, and the Corona design (the only one with the
#: broadcast bus).
COHERENCE_SWEEP_CONFIGURATIONS = ("LMesh/ECM", "HMesh/ECM", "XBar/OCM")

#: Sharing fractions swept by default (0 doubles as the no-coherence control).
COHERENCE_SWEEP_FRACTIONS = (0.0, 0.1, 0.3, 0.5)


@dataclass(frozen=True)
class CoherenceSweepPoint:
    """Results of one sharing fraction across the sweep's configurations."""

    sharing_fraction: float
    results: Sequence[WorkloadResult]


def coherence_sweep(
    fractions: Sequence[float] = COHERENCE_SWEEP_FRACTIONS,
    configuration_names: Sequence[str] = COHERENCE_SWEEP_CONFIGURATIONS,
    num_requests: int = 8_000,
    seed: int = 1,
    coherence: Optional[CoherenceConfig] = None,
    sharing_kwargs: Optional[Dict] = None,
    jobs: int = 1,
    progress=None,
    corona_config: Optional[CoronaConfig] = None,
    modules: Sequence[str] = (),
) -> List[CoherenceSweepPoint]:
    """Sweep the sharing fraction of a Uniform workload across configurations.

    For each fraction a sharing-tagged Uniform trace is generated once and
    replayed (coherence-enabled) on every configuration, so the only variable
    between configurations is how the interconnect delivers the coherence
    traffic -- most visibly whether invalidations ride the optical broadcast
    bus or fan out as per-sharer unicasts.  ``jobs`` > 1 fans the
    (fraction, configuration) pairs over worker processes exactly like the
    evaluation matrix; results are bit-identical to the serial sweep.

    ``corona_config`` re-parameterizes the architecture (the sweep traces are
    generated at its cluster count) and ``modules`` are imported in workers
    before configuration names resolve -- both supplied by the Scenario API
    when a scenario carries system overrides or user registrations.
    """
    from repro.harness.parallel import run_pairs  # local: avoids module cycle

    coherence = coherence or CoherenceConfig()
    sharing_kwargs = dict(sharing_kwargs or {})
    workload_kwargs = (
        {"num_clusters": corona_config.num_clusters} if corona_config else {}
    )
    pairs = []
    labels = []
    for fraction in fractions:
        workload = uniform_workload(
            name=f"Uniform s={fraction:g}",
            sharing=SharingProfile(fraction=fraction, **sharing_kwargs),
            description=f"Uniform with sharing fraction {fraction:g}",
            **workload_kwargs,
        )
        trace = workload.generate(seed=seed, num_requests=num_requests)
        for name in configuration_names:
            pairs.append(
                (name, trace, workload.window, coherence, corona_config,
                 tuple(modules))
            )
            labels.append(fraction)

    results = run_pairs(pairs, jobs=jobs, progress=progress)
    points: List[CoherenceSweepPoint] = []
    for fraction in fractions:
        points.append(
            CoherenceSweepPoint(
                sharing_fraction=fraction,
                results=tuple(
                    result
                    for label, result in zip(labels, results)
                    if label == fraction
                ),
            )
        )
    return points


def coherence_sweep_report(points: Sequence[CoherenceSweepPoint]) -> str:
    """Render the sweep as a markdown section.

    One table per sharing fraction, one row per configuration, with the
    coherence-cost metrics side by side: the broadcast-equipped photonic
    configuration should show the lowest invalidation latency once sharing
    is enabled.
    """
    lines: List[str] = ["## Coherence cost sweep (sharing fraction)", ""]
    lines.append(
        "Invalidations ride the optical broadcast bus on configurations that "
        "carry one (XBar/OCM) and fan out as per-sharer unicasts elsewhere; "
        "`inval ns` is the mean time from directory action to the slowest "
        "sharer's invalidation, `c2c ns` the mean cache-to-cache transfer "
        "latency."
    )
    lines.append("")
    header = (
        "| configuration | exec us | miss ns | inval ns | c2c ns "
        "| bcasts | unicasts | writebacks | bus occ |"
    )
    divider = "|---" * 9 + "|"
    for point in points:
        lines.append(f"### Sharing fraction {point.sharing_fraction:g}")
        lines.append("")
        lines.append(header)
        lines.append(divider)
        for result in point.results:
            lines.append(
                f"| {result.configuration} "
                f"| {result.execution_time_s * 1e6:.2f} "
                f"| {result.average_latency_ns:.1f} "
                f"| {result.average_invalidation_latency_ns:.2f} "
                f"| {result.average_cache_to_cache_latency_ns:.2f} "
                f"| {result.invalidation_broadcasts} "
                f"| {result.invalidation_unicasts} "
                f"| {result.dirty_writebacks} "
                f"| {result.broadcast_occupancy:.4f} |"
            )
        lines.append("")
    return "\n".join(lines)
