"""The evaluation matrix and its scaling knobs.

The paper replays 1 M-request synthetic traces and up to 240 M-request
SPLASH-2 traces on five system configurations.  A pure-Python replay cannot
afford hundreds of millions of events per run, so the harness scales every
workload down while preserving its per-thread statistics: the request count
changes, the miss process does not.  Speedups, bandwidths, latencies and
powers are rates or ratios, so they converge quickly with trace length; the
scale is a command-line/benchmark knob, not a hidden constant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.configs import CONFIGURATION_ORDER, all_configurations
from repro.trace.splash2 import SPLASH2_ORDER, splash2_workloads
from repro.trace.synthetic import synthetic_workloads


@dataclass(frozen=True)
class ExperimentScale:
    """How far to scale the paper's request counts down.

    Parameters
    ----------
    synthetic_requests:
        Requests per synthetic workload (paper: 1 M).
    splash_fraction:
        Fraction of each SPLASH-2 benchmark's Table 3 request count to replay.
    splash_min_requests, splash_max_requests:
        Clamp on the scaled SPLASH-2 request counts, so tiny benchmarks still
        exercise every thread and huge ones stay tractable.
    seed:
        Trace-generation seed (runs are deterministic for a given seed).
    """

    synthetic_requests: int = 60_000
    splash_fraction: float = 1.0 / 4000.0
    splash_min_requests: int = 20_000
    splash_max_requests: int = 80_000
    seed: int = 1

    def __post_init__(self) -> None:
        if self.synthetic_requests < 1:
            raise ValueError("synthetic request count must be >= 1")
        if not 0 < self.splash_fraction <= 1:
            raise ValueError("splash fraction must be in (0, 1]")
        if self.splash_min_requests > self.splash_max_requests:
            raise ValueError("splash_min_requests exceeds splash_max_requests")

    def splash_requests(self, paper_requests: int) -> int:
        """Scaled request count for a SPLASH-2 benchmark."""
        scaled = int(round(paper_requests * self.splash_fraction))
        return max(self.splash_min_requests, min(self.splash_max_requests, scaled))


#: Scale used by the pytest benchmarks by default: small enough that the whole
#: 75-run matrix finishes in minutes, large enough that every hardware thread
#: issues dozens of misses.
QUICK_SCALE = ExperimentScale(
    synthetic_requests=12_000,
    splash_fraction=1.0 / 10_000.0,
    splash_min_requests=8_000,
    splash_max_requests=18_000,
)

#: Scale aimed at overnight-quality numbers.
FULL_SCALE = ExperimentScale(
    synthetic_requests=200_000,
    splash_fraction=1.0 / 1000.0,
    splash_min_requests=50_000,
    splash_max_requests=250_000,
)


@dataclass
class EvaluationMatrix:
    """The (configuration x workload) matrix of the paper's evaluation."""

    scale: ExperimentScale = field(default_factory=ExperimentScale)
    configuration_names: Sequence[str] = field(
        default_factory=lambda: list(CONFIGURATION_ORDER)
    )
    include_synthetic: bool = True
    include_splash: bool = True

    def workloads(self) -> List:
        """Workload generators in the paper's plot order."""
        workloads: List = []
        if self.include_synthetic:
            workloads.extend(synthetic_workloads())
        if self.include_splash:
            workloads.extend(splash2_workloads())
        return workloads

    def workload_names(self) -> List[str]:
        return [w.name for w in self.workloads()]

    def synthetic_names(self) -> List[str]:
        return [w.name for w in synthetic_workloads()] if self.include_synthetic else []

    def splash_names(self) -> List[str]:
        return list(SPLASH2_ORDER) if self.include_splash else []

    def requests_for(self, workload) -> int:
        """Scaled request count for one workload."""
        if getattr(workload, "is_synthetic", False):
            return self.scale.synthetic_requests
        return self.scale.splash_requests(workload.profile.paper_requests)

    def configurations(self) -> List:
        by_name = {c.name: c for c in all_configurations()}
        return [by_name[name] for name in self.configuration_names]

    def run_count(self) -> int:
        return len(self.configuration_names) * len(self.workloads())


def default_matrix(scale: Optional[ExperimentScale] = None) -> EvaluationMatrix:
    """The full 5 x 15 matrix at the default scale."""
    return EvaluationMatrix(scale=scale or ExperimentScale())


def quick_matrix() -> EvaluationMatrix:
    """A fast matrix for benchmarks and CI: all workloads, quick scale."""
    return EvaluationMatrix(scale=QUICK_SCALE)
