"""Core, cluster and hub models (Section 3.1 of the Corona paper).

The paper's cores are dual-issue, in-order, four-way multithreaded, running at
5 GHz with 4-wide 64-bit FP SIMD and fused multiply-add -- 256 of them in 64
four-core clusters, for 10 teraflops peak.  This package models what the
system study needs from them:

* the :class:`~repro.cores.core.Core` and :class:`~repro.cores.cluster.Cluster`
  structural/configuration view (threads, caches, peak flops, area and power
  estimates scaled from Penryn/Silverthorne as the paper describes);
* the :class:`~repro.cores.thread.ThreadWindow` timing model -- how an
  in-order multithreaded core turns L2-miss latency into stall time, which is
  what converts interconnect performance into execution time;
* the :class:`~repro.cores.hub.Hub` that routes traffic between the L2,
  directory, memory controller, network interface and the optical interconnect.
"""

from repro.cores.core import Core, CoreParameters
from repro.cores.cluster import Cluster, ClusterParameters
from repro.cores.hub import Hub
from repro.cores.thread import ThreadWindow

__all__ = [
    "Core",
    "CoreParameters",
    "Cluster",
    "ClusterParameters",
    "Hub",
    "ThreadWindow",
]
