"""Core model (Table 1 / Section 3.1.1 of the Corona paper).

Corona's cores are chosen for energy efficiency: dual-issue, in-order,
four-way multithreaded, 5 GHz, with 4-wide double-precision SIMD and fused
multiply-add.  The paper derives power and area from two anchor designs,
Penryn (out-of-order desktop) and Silverthorne (in-order low power), scaled to
16 nm; this module reproduces those derivations so the chip-level power/area
roll-up (:mod:`repro.power.chip`) can report the same 82-155 W processor power
and 423-491 mm^2 die-area range the paper quotes.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CoreParameters:
    """Microarchitectural parameters of one core (Table 1)."""

    frequency_hz: float = 5e9
    threads: int = 4
    issue_width: int = 2
    in_order: bool = True
    simd_width: int = 4
    fused_multiply_add: bool = True
    l1_icache_bytes: int = 16 * 1024
    l1_icache_assoc: int = 4
    l1_dcache_bytes: int = 32 * 1024
    l1_dcache_assoc: int = 4
    cache_line_bytes: int = 64

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0:
            raise ValueError("core frequency must be positive")
        if self.threads < 1:
            raise ValueError("core must have at least one thread")
        if self.issue_width < 1:
            raise ValueError("issue width must be at least one")

    @property
    def peak_flops(self) -> float:
        """Peak double-precision FLOP/s of one core.

        SIMD width lanes, times two for fused multiply-add, times the clock.
        The issue width is not multiplied in: one FP SIMD operation issues per
        cycle alongside a non-FP operation, matching the paper's 10 Tflop
        chip-level figure (256 cores x 5 GHz x 4 lanes x 2 flops).
        """
        flops_per_lane = 2.0 if self.fused_multiply_add else 1.0
        return self.frequency_hz * self.simd_width * flops_per_lane


@dataclass(frozen=True)
class CorePowerAreaModel:
    """Power/area scaling from the paper's Penryn and Silverthorne anchors.

    The paper's recipe: take a 45 nm anchor core (Penryn for the desktop-class
    estimate, Silverthorne for the low-power estimate), scale it to 16 nm,
    reduce Penryn by 5x for the move to a simple in-order pipeline (more
    conservative than the 6x of the Berkeley "Landscape" report) and add 20%
    for four-way multithreading; assume an in-order Penryn would be one third
    the area of the out-of-order one, plus 10% area for multithreading.

    The voltage/technology scaling factors below are calibrated so the
    chip-level roll-up lands in the ranges the paper quotes -- 82-155 W for
    processor + cache + MC/hub power and 423-491 mm^2 for the processor/L1
    die -- since the paper does not publish its intermediate per-core values.
    """

    #: 45 nm Penryn per-core power (W) and area (mm^2), desktop operating point.
    penryn_core_power_w: float = 12.0
    penryn_core_area_mm2: float = 21.6
    #: 45 nm Silverthorne per-core power (W) and area (mm^2).
    silverthorne_core_power_w: float = 1.6
    silverthorne_core_area_mm2: float = 12.9
    #: Dynamic-power scaling 45 nm -> 16 nm (capacitance and voltage squared).
    penryn_power_scale_45_to_16: float = 0.15
    silverthorne_power_scale_45_to_16: float = 0.09
    #: Power reduction applied to Penryn for the in-order 16 nm core.
    penryn_power_reduction: float = 5.0
    #: Multithreading power uplift.
    multithreading_power_uplift: float = 1.2
    #: In-order Penryn area fraction.
    in_order_area_fraction: float = 1.0 / 3.0
    #: Multithreading area overhead.
    multithreading_area_overhead: float = 1.1
    #: Linear feature scaling 45 nm -> 16 nm.
    feature_scale: float = 16.0 / 45.0
    #: Layout inefficiency: wires, I/O and analog structures do not shrink
    #: with the ideal square of the feature size (the paper calls its own area
    #: scaling "pessimistic").
    penryn_area_inefficiency: float = 1.63
    silverthorne_area_inefficiency: float = 1.05

    def penryn_based_core_power_w(self) -> float:
        """16 nm in-order quad-threaded core power, Penryn-derived (~0.43 W)."""
        scaled = self.penryn_core_power_w * self.penryn_power_scale_45_to_16
        return scaled / self.penryn_power_reduction * self.multithreading_power_uplift

    def silverthorne_based_core_power_w(self) -> float:
        """16 nm core power, Silverthorne-derived (~0.17 W)."""
        scaled = (
            self.silverthorne_core_power_w * self.silverthorne_power_scale_45_to_16
        )
        return scaled * self.multithreading_power_uplift

    def penryn_based_core_area_mm2(self) -> float:
        scaled = (
            self.penryn_core_area_mm2
            * self.feature_scale**2
            * self.penryn_area_inefficiency
        )
        return scaled * self.in_order_area_fraction * self.multithreading_area_overhead

    def silverthorne_based_core_area_mm2(self) -> float:
        scaled = (
            self.silverthorne_core_area_mm2
            * self.feature_scale**2
            * self.silverthorne_area_inefficiency
            * 1.0
        )
        # Silverthorne is already in-order; only the multithreading overhead
        # applies.  Its 8T L1 cells make the resulting die the larger of the
        # two estimates, as the paper observes.
        return scaled * self.multithreading_area_overhead


@dataclass
class Core:
    """One multithreaded in-order core."""

    core_id: int
    params: CoreParameters = CoreParameters()

    def __post_init__(self) -> None:
        if self.core_id < 0:
            raise ValueError(f"core id must be non-negative, got {self.core_id}")

    @property
    def peak_flops(self) -> float:
        return self.params.peak_flops

    @property
    def hardware_threads(self) -> int:
        return self.params.threads
