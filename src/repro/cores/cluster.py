"""Cluster model (Figure 2b / Table 1 of the Corona paper).

A cluster is four cores sharing a 4 MB, 16-way unified L2 cache, a directory,
a memory controller, a network interface and a hub that routes traffic among
them and onto the optical interconnect.  The cluster is the unit of the
crossbar (64 clusters = 64 channels) and the unit of memory interleaving (one
memory controller per cluster).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.cores.core import Core, CoreParameters
from repro.cores.hub import Hub


@dataclass(frozen=True)
class ClusterParameters:
    """Per-cluster resources (Table 1)."""

    cores: int = 4
    l2_cache_bytes: int = 4 * 1024 * 1024
    l2_associativity: int = 16
    l2_line_bytes: int = 64
    l2_coherence: str = "MOESI"
    memory_controllers: int = 1
    l2_mshrs: int = 64
    hub_queue_depth: int = 64

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError("cluster must contain at least one core")
        if self.l2_cache_bytes <= 0 or self.l2_associativity < 1:
            raise ValueError("invalid L2 configuration")
        if self.memory_controllers < 1:
            raise ValueError("cluster needs at least one memory controller")


@dataclass
class Cluster:
    """One four-core cluster."""

    cluster_id: int
    params: ClusterParameters = ClusterParameters()
    core_params: CoreParameters = CoreParameters()
    cores: List[Core] = field(default_factory=list)
    hub: Hub = field(init=False)

    def __post_init__(self) -> None:
        if self.cluster_id < 0:
            raise ValueError(f"cluster id must be non-negative, got {self.cluster_id}")
        if not self.cores:
            self.cores = [
                Core(core_id=self.cluster_id * self.params.cores + i, params=self.core_params)
                for i in range(self.params.cores)
            ]
        self.hub = Hub(
            cluster_id=self.cluster_id, queue_depth=self.params.hub_queue_depth
        )

    @property
    def hardware_threads(self) -> int:
        return sum(core.hardware_threads for core in self.cores)

    @property
    def peak_flops(self) -> float:
        return sum(core.peak_flops for core in self.cores)

    def thread_ids(self) -> range:
        """Global hardware-thread ids hosted by this cluster."""
        first = self.cluster_id * self.hardware_threads
        return range(first, first + self.hardware_threads)
