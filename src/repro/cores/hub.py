"""Cluster hub model.

The hub routes message traffic between the L2 cache, directory, memory
controller, network interface, optical broadcast bus and optical crossbar
(Figure 2b).  For the system study its relevant behaviours are a small
store-and-forward latency and a finite injection queue toward the
interconnect, which is where flow-control back-pressure appears when a
destination is saturated.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.resources import BoundedQueue, TokenPool
from repro.sim.stats import RunningStats


@dataclass(slots=True)
class Hub:
    """The per-cluster message hub.

    Parameters
    ----------
    cluster_id:
        The cluster this hub serves.
    queue_depth:
        Injection-queue capacity toward the interconnect (messages).
    forwarding_latency_s:
        Store-and-forward latency through the hub for each message.
    mshrs:
        Outstanding-miss registers shared by the cluster's L2; misses beyond
        this limit wait before they can even enter the hub.
    """

    cluster_id: int
    queue_depth: int = 64
    forwarding_latency_s: float = 0.4e-9
    mshrs: int = 64
    injection_queue: BoundedQueue = field(init=False, repr=False)
    mshr_pool: TokenPool = field(init=False, repr=False)
    wait_stats: RunningStats = field(init=False, repr=False)
    messages_routed: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.forwarding_latency_s < 0:
            raise ValueError("hub latency must be non-negative")
        self.injection_queue = BoundedQueue(
            name=f"hub{self.cluster_id}-inject", capacity=self.queue_depth
        )
        self.mshr_pool = TokenPool(name=f"hub{self.cluster_id}-mshrs", tokens=self.mshrs)
        self.wait_stats = RunningStats(f"hub{self.cluster_id}-wait")

    def allocate_mshr(self, now: float, release_time: float) -> float:
        """Allocate an MSHR for a miss; returns when the allocation succeeds."""
        grant = self.mshr_pool.acquire(now, release_time_hint=release_time)
        self.wait_stats.add(grant - now)
        return grant

    def inject(self, now: float, departure_time: float) -> float:
        """Enqueue an outbound message; returns the admission time.

        ``departure_time`` is when the message will have left for the
        interconnect (it frees its queue slot then).

        Note: the replay hot path (``SystemSimulator._on_issue``) carries its
        own inline transcription of this admission logic; this method is the
        readable reference for other callers.
        """
        admit = self.injection_queue.admit(now, max(departure_time, now))
        self.messages_routed += 1
        return admit + self.forwarding_latency_s

    def average_mshr_wait_s(self) -> float:
        return self.mshr_pool.average_wait()
