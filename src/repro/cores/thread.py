"""Thread timing model: how an in-order multithreaded core tolerates misses.

The paper's cores are in-order but multithreaded and dual-issue: a thread can
continue past a load miss until it needs the value (stall-on-use), stores
retire into a write buffer, and the other hardware threads keep the core busy.
The net effect, from the memory system's point of view, is that each thread
sustains a small number of outstanding L2 misses -- its *memory-level
parallelism window* -- and issues its next miss either when its compute gap
has elapsed or when a window slot frees up, whichever is later.

:class:`ThreadWindow` implements exactly that policy.  It is the piece that
converts interconnect/memory latency into execution time in the replay engine
(:mod:`repro.core.system`): with a deep window and small gaps a thread is
bandwidth-bound; with a shallow window or bursty gaps it is latency-bound,
which is the difference between FFT/Radix and LU/Raytrace in the paper's
results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List


@dataclass
class ThreadWindow:
    """Sliding window of outstanding misses for one hardware thread.

    Parameters
    ----------
    thread_id:
        The hardware thread this window belongs to.
    depth:
        Maximum outstanding misses.
    clock_hz:
        Core clock used to convert gap cycles into seconds.
    """

    thread_id: int
    depth: int = 4
    clock_hz: float = 5e9
    _completions: List[float] = field(default_factory=list, repr=False)
    last_issue_time: float = 0.0
    issued: int = 0
    total_stall_s: float = field(default=0.0, repr=False)

    def __post_init__(self) -> None:
        if self.depth < 1:
            raise ValueError(f"window depth must be >= 1, got {self.depth}")
        if self.clock_hz <= 0:
            raise ValueError(f"clock must be positive, got {self.clock_hz}")

    def earliest_issue_time(self, gap_cycles: float) -> float:
        """When the thread's next miss can issue.

        The miss issues after the compute gap following the previous issue,
        but no earlier than the completion of the miss that frees a window
        slot (the miss ``depth`` positions back).
        """
        if gap_cycles < 0:
            raise ValueError(f"gap must be non-negative, got {gap_cycles}")
        ready = self.last_issue_time + gap_cycles / self.clock_hz
        if len(self._completions) >= self.depth:
            window_free = self._completions[-self.depth]
            issue = max(ready, window_free)
        else:
            issue = ready
        return issue

    def record_issue(self, issue_time: float, completion_time: float) -> None:
        """Commit a miss that issued at ``issue_time`` and completes at ``completion_time``."""
        if completion_time < issue_time:
            raise ValueError(
                f"completion {completion_time} precedes issue {issue_time}"
            )
        stall = issue_time - self.last_issue_time
        # Stall time beyond the compute gap is attributed to the memory system;
        # the caller tracks the gap, so here we only accumulate raw issue
        # spacing for utilization-style statistics.
        self.total_stall_s += max(stall, 0.0)
        self.last_issue_time = issue_time
        self.issued += 1
        self._completions.append(completion_time)
        # Only the last `depth` completions can ever gate future issues.
        if len(self._completions) > self.depth:
            del self._completions[: len(self._completions) - self.depth]

    @property
    def outstanding_completions(self) -> List[float]:
        """Completion times currently tracked (at most ``depth``)."""
        return list(self._completions)

    @property
    def finish_time(self) -> float:
        """When the thread's last recorded miss completes."""
        if not self._completions:
            return self.last_issue_time
        return max(self._completions)
