"""Render a :class:`~repro.diffing.compare.DiffResult` for humans and CI.

Two output channels with identical content: a markdown report (ranked
divergence table, structural section, axis drift, informational notes) and
the ``corona-diff/1`` JSON document -- the machine artifact CI archives and
the shape the exit-code-5 gate is defined over.
"""

from __future__ import annotations

from math import isfinite
from typing import Dict, List

from repro.diffing.compare import DiffResult

#: Format tag of the JSON diff document.
DIFF_FORMAT = "corona-diff/1"


def diff_json_dict(result: DiffResult) -> Dict[str, object]:
    """The ``corona-diff/1`` payload of one diff."""
    thresholds = result.thresholds
    return {
        "format": DIFF_FORMAT,
        "baseline": result.baseline_label,
        "current": result.current_label,
        "thresholds": {
            "relative": thresholds.relative,
            "ks": thresholds.ks,
            "percentiles": list(thresholds.percentiles),
            "phase": thresholds.phase,
        },
        "aligned_pairs": result.aligned,
        "added_pairs": [key.label() for key in result.added],
        "removed_pairs": [key.label() for key in result.removed],
        "max_severity": result.max_severity,
        "gating_count": len(result.gating()),
        "divergences": [d.to_dict() for d in result.divergences],
        "notes": [d.to_dict() for d in result.notes],
        "pair_ranking": [
            {
                "point_id": key.point_id,
                "configuration": key.configuration,
                "workload": key.workload,
                "score": score if isfinite(score) else None,
            }
            for key, score in result.pair_scores
        ],
        "axis_divergences": [dict(row) for row in result.axis_divergences],
    }


def _format_value(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def _format_relative(relative: float) -> str:
    if not isfinite(relative):
        return "inf"
    return f"{relative * 100:.2f}%"


def diff_markdown(result: DiffResult, top: int = 0) -> str:
    """The human-facing report (``top`` truncates the divergence table;
    0 keeps everything)."""
    lines: List[str] = [
        f"# Diff: `{result.baseline_label}` vs `{result.current_label}`",
        "",
        f"{result.aligned} aligned pair(s); {len(result.added)} added, "
        f"{len(result.removed)} removed; "
        f"{len(result.divergences)} divergence(s) "
        f"({len(result.gating())} gating, max severity "
        f"{result.max_severity}).",
        "",
    ]
    if not result.divergences:
        lines.append("No divergences above threshold.")
        lines.append("")
    else:
        shown = result.divergences[:top] if top else result.divergences
        lines.append("## Divergences (ranked)")
        lines.append("")
        header = [
            "severity", "pair", "metric", "kind", "baseline", "current",
            "delta",
        ]
        lines.append("| " + " | ".join(header) + " |")
        lines.append("|---" * len(header) + "|")
        for divergence in shown:
            lines.append(
                "| "
                + " | ".join(
                    [
                        divergence.severity,
                        divergence.key.label() or "(run)",
                        divergence.metric,
                        divergence.kind,
                        _format_value(divergence.baseline),
                        _format_value(divergence.current),
                        _format_relative(divergence.relative),
                    ]
                )
                + " |"
            )
        if top and len(result.divergences) > top:
            lines.append("")
            lines.append(
                f"... {len(result.divergences) - top} more below rank {top} "
                f"(raise --top or read the JSON document)."
            )
        lines.append("")
    if result.pair_scores:
        lines.append("## Pair ranking")
        lines.append("")
        for key, score in result.pair_scores:
            rendered = f"{score:.2f}" if score < 1e307 else "inf"
            lines.append(f"- `{key.label()}` (worst score {rendered})")
        lines.append("")
    if result.axis_divergences:
        lines.append("## Axis drift")
        lines.append("")
        header = ["axis", "value", "metric", "geomean ratio", "pairs"]
        lines.append("| " + " | ".join(header) + " |")
        lines.append("|---" * len(header) + "|")
        for row in result.axis_divergences:
            lines.append(
                "| "
                + " | ".join(
                    [
                        str(row["axis"]),
                        _format_value(row["value"]),
                        str(row["metric"]),
                        f"{row['geomean_ratio']:.4f}x",
                        str(row["pairs"]),
                    ]
                )
                + " |"
            )
        lines.append("")
    if result.notes:
        lines.append("## Notes (informational, never gating)")
        lines.append("")
        for note in result.notes:
            label = note.key.label() or "(run)"
            lines.append(
                f"- `{label}` {note.metric}: "
                f"{_format_value(note.baseline)} -> "
                f"{_format_value(note.current)}"
                + (f" ({note.note})" if note.note else "")
            )
        lines.append("")
    return "\n".join(lines)


__all__ = ["DIFF_FORMAT", "diff_json_dict", "diff_markdown"]
