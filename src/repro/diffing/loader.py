"""Normalize heterogeneous run artifacts into one diffable view.

``corona-repro diff`` accepts whatever a run left behind -- a
``corona-results/1`` JSON sink, a result CSV (plain or long-form), a sweep
directory (``manifest.json`` + ``points.jsonl``), a ``corona-sweep-results/1``
JSON, or a ``BENCH_replay.json`` throughput snapshot -- and every shape is
loaded here into the same :class:`RunView`: pair entries keyed by
``(point_id, configuration, workload)``, each carrying its
:class:`~repro.core.results.WorkloadResult` (or its failure records), the
point's axis coordinates when the artifact knows them, and the path of the
pair's raw-sample artifact when a ``corona-artifacts/1`` manifest sits next
to the results JSON.  The compare layer never sees the source format.
"""

from __future__ import annotations

import csv
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Tuple, Union

from repro.core.results import (
    RESULT_CSV_COLUMNS,
    WorkloadResult,
    load_samples,
)


class DiffLoadError(ValueError):
    """A diff input could not be recognized or parsed; the message names
    the path and what was expected there."""

    def __init__(self, path: Union[str, Path], message: str) -> None:
        self.path = str(path)
        super().__init__(f"{self.path}: {message}")


@dataclass(frozen=True, order=True)
class PairKey:
    """The alignment key: one replayed pair of one (sweep) point.

    ``point_id`` is empty for plain (non-sweep) runs, so a plain run and a
    sweep never silently align against each other's pairs.
    """

    point_id: str
    configuration: str
    workload: str

    def label(self) -> str:
        if not (self.configuration or self.workload):
            return self.point_id
        pair = f"{self.configuration} x {self.workload}"
        return f"{self.point_id}: {pair}" if self.point_id else pair


@dataclass
class PairEntry:
    """One aligned unit: a completed result or a recorded failure."""

    key: PairKey
    result: Optional[WorkloadResult] = None
    #: ``"ok"`` or ``"failed"`` (the pair exhausted its retry policy).
    status: str = "ok"
    #: Axis coordinates of the sweep point (empty for plain runs).
    axis_values: Mapping[str, object] = field(default_factory=dict)
    #: Raw failure dicts (``PairFailure.to_dict`` shape) for failed pairs.
    failures: List[Mapping[str, object]] = field(default_factory=list)
    #: Path of the pair's ``corona-samples/1`` artifact, when discoverable.
    samples_path: str = ""

    def latency_samples(self) -> List[float]:
        """The pair's raw latency samples, sorted ascending (empty when no
        sample artifact exists or it went missing after the manifest was
        written -- distribution comparison then falls back to the
        summarized percentile fields)."""
        if not self.samples_path or not Path(self.samples_path).exists():
            return []
        try:
            payload = load_samples(self.samples_path)
        except (OSError, ValueError, json.JSONDecodeError):
            return []
        return sorted(float(v) for v in payload.get("latency_s", []))


@dataclass
class RunView:
    """One run, whatever artifact it came from, ready to align."""

    label: str
    #: Source shape: ``results-json`` / ``sweep-dir`` / ``sweep-json`` /
    #: ``csv`` / ``bench``.
    kind: str
    path: Path
    entries: Dict[PairKey, PairEntry] = field(default_factory=dict)
    #: Sweep axis names, in declaration order (empty for plain runs).
    axis_names: List[str] = field(default_factory=list)
    #: Bench snapshots only: the flat ``{metric: value}`` mapping.
    bench_metrics: Dict[str, float] = field(default_factory=dict)
    #: Per-phase wall-clock seconds, when the artifact recorded them
    #: (results JSON ``timings.phases``, bench ``phase_timings`` flattened).
    phase_seconds: Dict[str, float] = field(default_factory=dict)

    def keys(self) -> List[PairKey]:
        return sorted(self.entries)

    @property
    def is_bench(self) -> bool:
        return self.kind == "bench"

    def records(self):
        """Completed entries as sweep-record-shaped objects (``point_id``,
        ``axis_values``, ``result``) for the axis-aggregation reuse."""
        return [
            _RecordShim(entry.key.point_id, entry.axis_values, entry.result)
            for entry in self.entries.values()
            if entry.result is not None
        ]


@dataclass(frozen=True)
class _RecordShim:
    point_id: str
    axis_values: Mapping[str, object]
    result: WorkloadResult


# ---------------------------------------------------------------------------
# Shape-specific loaders
# ---------------------------------------------------------------------------

def _result_from_dict(path: Union[str, Path], data: Mapping) -> WorkloadResult:
    try:
        return WorkloadResult.from_dict(dict(data))
    except (TypeError, ValueError) as exc:
        raise DiffLoadError(path, f"bad result record: {exc}") from None


def _attach_samples(view: RunView, json_path: Path) -> None:
    """Wire each pair's raw-sample artifact path in from the run's
    ``corona-artifacts/1`` manifest, when one sits next to the JSON sink."""
    from repro.obs.artifacts import artifact_manifest_path, load_artifact_manifest

    manifest_path = artifact_manifest_path(json_path)
    if not manifest_path.exists():
        return
    try:
        artifacts = load_artifact_manifest(str(manifest_path))
    except (OSError, ValueError, json.JSONDecodeError):
        return  # a broken manifest only costs the distribution comparison
    for artifact in artifacts:
        if artifact.kind != "samples":
            continue
        key = PairKey("", artifact.configuration, artifact.workload)
        entry = view.entries.get(key)
        if entry is not None:
            entry.samples_path = artifact.path


def _load_results_json(path: Path, payload: Mapping, label: str) -> RunView:
    view = RunView(label=label, kind="results-json", path=path)
    for record in payload.get("results", []):
        result = _result_from_dict(path, record)
        key = PairKey("", result.configuration, result.workload)
        view.entries[key] = PairEntry(key=key, result=result)
    for failure in payload.get("failures", []):
        key = PairKey(
            "", failure.get("configuration", ""), failure.get("workload", "")
        )
        view.entries[key] = PairEntry(
            key=key, status="failed", failures=[dict(failure)]
        )
    timings = payload.get("timings", {})
    if isinstance(timings, Mapping):
        phases = timings.get("phases", {})
        if isinstance(phases, Mapping):
            view.phase_seconds = {
                str(name): float(value)
                for name, value in phases.items()
                if isinstance(value, (int, float))
            }
    _attach_samples(view, path)
    return view


def _load_sweep_json(path: Path, payload: Mapping, label: str) -> RunView:
    view = RunView(label=label, kind="sweep-json", path=path)
    axis_names: List[str] = []
    sweep = payload.get("sweep", {})
    if isinstance(sweep, Mapping):
        axis_names = [
            axis.get("name", "")
            for axis in sweep.get("axes", [])
            if isinstance(axis, Mapping)
        ]
    view.axis_names = [name for name in axis_names if name]
    for record in payload.get("records", []):
        result = _result_from_dict(path, record.get("result", {}))
        key = PairKey(
            str(record.get("point_id", "")),
            result.configuration,
            result.workload,
        )
        view.entries[key] = PairEntry(
            key=key,
            result=result,
            axis_values=dict(record.get("axis_values", {})),
        )
    for point_id, failures in (payload.get("failures") or {}).items():
        for failure in failures:
            key = PairKey(
                str(point_id),
                failure.get("configuration", ""),
                failure.get("workload", ""),
            )
            view.entries[key] = PairEntry(
                key=key, status="failed", failures=[dict(failure)]
            )
    return view


def _load_sweep_directory(path: Path, label: str) -> RunView:
    from repro.sweeps.engine import _load_completed, _read_manifest

    manifest = _read_manifest(path)
    if manifest is None:
        raise DiffLoadError(
            path, "directory has no sweep manifest.json; not a sweep output"
        )
    view = RunView(label=label, kind="sweep-dir", path=path)
    sweep = manifest.get("sweep", {})
    if isinstance(sweep, Mapping):
        view.axis_names = [
            axis.get("name", "")
            for axis in sweep.get("axes", [])
            if isinstance(axis, Mapping) and axis.get("name")
        ]
    axis_by_point: Dict[str, Mapping[str, object]] = {
        point.get("point_id", ""): dict(point.get("axis_values", {}))
        for point in manifest.get("points", [])
        if isinstance(point, Mapping)
    }
    completed, failed, _retried, _seconds, _offset = _load_completed(path)
    for point_id, results in completed.items():
        for result in results:
            key = PairKey(point_id, result.configuration, result.workload)
            view.entries[key] = PairEntry(
                key=key,
                result=result,
                axis_values=axis_by_point.get(point_id, {}),
            )
    for point_id, failures in failed.items():
        for failure in failures:
            key = PairKey(
                point_id,
                failure.get("configuration", ""),
                failure.get("workload", ""),
            )
            view.entries[key] = PairEntry(
                key=key,
                status="failed",
                axis_values=axis_by_point.get(point_id, {}),
                failures=[dict(failure)],
            )
    return view


def _load_bench(path: Path, payload: Mapping, label: str) -> RunView:
    metrics = payload.get("metrics")
    if not isinstance(metrics, Mapping):
        raise DiffLoadError(path, "bench snapshot has no 'metrics' mapping")
    view = RunView(label=label, kind="bench", path=path)
    view.bench_metrics = {
        str(key): float(value)
        for key, value in metrics.items()
        if isinstance(value, (int, float)) and not isinstance(value, bool)
    }
    for section, phases in (payload.get("phase_timings") or {}).items():
        if isinstance(phases, Mapping):
            for name, value in phases.items():
                if isinstance(value, (int, float)):
                    view.phase_seconds[f"{section}.{name}"] = float(value)
    return view


def _coerce_csv_value(field_type: type, raw: str):
    if field_type is bool:
        return raw.strip().lower() in ("true", "1", "yes")
    if field_type is int:
        # int("3.0") raises; long-form axis cells may render ints as floats.
        return int(float(raw))
    if field_type is float:
        return float(raw)
    return raw


def _result_field_types() -> Dict[str, type]:
    import typing

    return {
        name: hint
        for name, hint in typing.get_type_hints(WorkloadResult).items()
        if name in RESULT_CSV_COLUMNS
    }


def _load_csv(path: Path, label: str) -> RunView:
    with path.open("r", encoding="utf-8", newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise DiffLoadError(path, "empty CSV") from None
        rows = list(reader)
    long_form = header and header[0] == "point_id"
    axis_names = [
        column[len("axis."):] for column in header if column.startswith("axis.")
    ]
    result_columns = [
        column
        for column in header
        if column in RESULT_CSV_COLUMNS
    ]
    missing = [
        column
        for column in ("configuration", "workload", "execution_time_s")
        if column not in result_columns
    ]
    if missing:
        raise DiffLoadError(
            path,
            f"not a result CSV (missing column {missing[0]!r}); expected a "
            f"plain or long-form result export",
        )
    types = _result_field_types()
    index = {column: header.index(column) for column in header}
    view = RunView(
        label=label,
        kind="csv",
        path=path,
        axis_names=axis_names,
    )
    for line, row in enumerate(rows, start=2):
        if not row:
            continue
        try:
            data = {
                column: _coerce_csv_value(types[column], row[index[column]])
                for column in result_columns
            }
            result = WorkloadResult(**data)
        except (ValueError, IndexError, TypeError) as exc:
            raise DiffLoadError(path, f"line {line}: bad row: {exc}") from None
        point_id = row[index["point_id"]] if long_form else ""
        key = PairKey(point_id, result.configuration, result.workload)
        axis_values = {
            name: row[index[f"axis.{name}"]] for name in axis_names
        }
        view.entries[key] = PairEntry(
            key=key, result=result, axis_values=axis_values
        )
    return view


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------

def load_run(path: Union[str, Path], label: str = "") -> RunView:
    """Load any supported run artifact into a :class:`RunView`.

    Dispatch is by shape, not extension: directories must hold a sweep
    manifest; JSON documents are recognized by their ``format`` tag
    (``corona-results/1`` and ``corona-sweep-results/1``), with untagged
    mappings carrying a ``metrics`` key accepted as bench snapshots; other
    files are parsed as result CSVs.
    """
    path = Path(path)
    label = label or path.name
    if not path.exists():
        raise DiffLoadError(path, "no such file or directory")
    if path.is_dir():
        return _load_sweep_directory(path, label)
    if path.suffix.lower() == ".csv":
        return _load_csv(path, label)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise DiffLoadError(path, f"unreadable: {exc}") from None
    try:
        payload = json.loads(text)
    except json.JSONDecodeError:
        return _load_csv(path, label)
    if not isinstance(payload, Mapping):
        raise DiffLoadError(path, "JSON document is not an object")
    tag = payload.get("format")
    if tag == "corona-results/1":
        return _load_results_json(path, payload, label)
    if tag == "corona-sweep-results/1":
        return _load_sweep_json(path, payload, label)
    if tag is None and "metrics" in payload:
        return _load_bench(path, payload, label)
    raise DiffLoadError(
        path,
        f"unrecognized JSON format {tag!r}; expected corona-results/1, "
        f"corona-sweep-results/1, or a bench snapshot with a 'metrics' key",
    )


def align(
    baseline: RunView, current: RunView
) -> Tuple[List[PairKey], List[PairKey], List[PairKey]]:
    """``(common, added, removed)`` pair keys, each sorted.

    ``added`` are keys only the current run has; ``removed`` only the
    baseline.  Failed entries participate -- a pair that failed in one run
    and completed in the other is *common* and surfaces as a status flip in
    the compare layer, not as coverage drift.
    """
    base_keys = set(baseline.entries)
    current_keys = set(current.entries)
    return (
        sorted(base_keys & current_keys),
        sorted(current_keys - base_keys),
        sorted(base_keys - current_keys),
    )


__all__ = [
    "DiffLoadError",
    "PairEntry",
    "PairKey",
    "RunView",
    "align",
    "load_run",
]
