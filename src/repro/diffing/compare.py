"""Align two run views and rank how far every pair drifted.

The comparison semantics in one place:

* **Scalars** (float result fields) and **counters** (int fields) compare
  by relative delta against :attr:`DiffThresholds.relative`; deltas inside
  the threshold are not divergences at all, so a self-diff of two
  identical-seed runs reports exactly zero.  A zero baseline with a
  nonzero current has no finite relative delta and is always severe.
* **Flags** (bool fields, e.g. ``saturated`` or ``coherence_enabled``)
  diverge on any flip, severity severe.
* **Distributions** -- when both pairs carry raw-sample artifacts
  (``--samples-out``), per-percentile deltas are computed from the samples
  with the replay's own nearest-rank estimator plus a two-sample KS
  distance; otherwise the summarized percentile fields stand in.
* **Structure** -- pairs present on only one side (added/removed) and
  ok-vs-failed status flips are severe and gating; pairs failed on *both*
  sides are reported informationally but never gate.
* **Phase timings** are wall-clock and legitimately move between hosts and
  runs, so their drift is kept in a separate informational list that never
  counts as a divergence and never gates.

Severity is the ratio of the observed relative delta to its threshold:
within 2x the threshold is ``minor``, within 5x ``moderate``, beyond that
``severe``.  :func:`metric_deltas` is the same relative-threshold core
exposed flat, and is what ``scripts/bench_regression.py`` gates through.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import inf, isfinite
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.results import WorkloadResult, nearest_rank
from repro.diffing.loader import PairEntry, PairKey, RunView, align

#: Severity tiers, mildest first (``info`` entries never gate).
SEVERITIES = ("info", "minor", "moderate", "severe")


@dataclass(frozen=True)
class DiffThresholds:
    """The knobs of the comparison (all ratios are fractions, not percent)."""

    #: Relative delta a scalar/counter may move before it diverges.
    relative: float = 0.05
    #: Two-sample KS distance a latency distribution may show.
    ks: float = 0.1
    #: Quantiles compared when raw samples are available.
    percentiles: Tuple[float, ...] = (0.5, 0.9, 0.95, 0.99)
    #: Values whose magnitudes both sit below this floor compare equal
    #: (guards the relative delta against denormal noise around zero).
    absolute_floor: float = 1e-12
    #: Informational phase-timing drift threshold (never gates).
    phase: float = 0.25


@dataclass(frozen=True)
class Divergence:
    """One ranked finding: a metric of one pair moved past its threshold."""

    key: PairKey
    #: ``scalar`` / ``counter`` / ``flag`` / ``distribution`` /
    #: ``structural`` / ``status`` / ``throughput`` (bench snapshots).
    kind: str
    metric: str
    baseline: object
    current: object
    #: ``|current - baseline| / |baseline|`` (``inf`` off a zero baseline;
    #: 0.0 for structural findings where no ratio exists).
    relative: float
    #: ``relative / threshold`` -- the ranking magnitude (``inf`` allowed).
    score: float
    severity: str
    #: Whether this finding pushes the CLI to exit code 5.
    gating: bool = True
    note: str = ""

    def to_dict(self) -> Dict[str, object]:
        return {
            "point_id": self.key.point_id,
            "configuration": self.key.configuration,
            "workload": self.key.workload,
            "kind": self.kind,
            "metric": self.metric,
            "baseline": self.baseline,
            "current": self.current,
            "relative": self.relative if isfinite(self.relative) else None,
            "score": self.score if isfinite(self.score) else None,
            "severity": self.severity,
            "gating": self.gating,
            "note": self.note,
        }


@dataclass(frozen=True)
class MetricDelta:
    """One flat metric compared between two runs (the bench-gate shape)."""

    metric: str
    baseline: Optional[float]
    current: float
    #: ``current / baseline`` (None without a baseline value).
    ratio: Optional[float]
    #: The delta crossed the threshold in the *bad* direction.
    regressed: bool

    @property
    def has_baseline(self) -> bool:
        return self.baseline is not None and self.baseline != 0


def metric_deltas(
    baseline: Mapping[str, float],
    current: Mapping[str, float],
    threshold: float,
    suffix: str = "_per_s",
    higher_is_better: bool = True,
) -> List[MetricDelta]:
    """Compare two flat metric mappings; one delta per current key.

    Keys are filtered to ``suffix`` (empty matches everything) and walked in
    sorted order.  With ``higher_is_better`` a drop below ``1 - threshold``
    of the baseline regresses; without it, a rise above ``1 + threshold``.
    Missing/zero baselines yield a delta with ``ratio=None`` that never
    regresses -- exactly the bench tracker's ``(no baseline)`` lines.
    """
    deltas: List[MetricDelta] = []
    for key in sorted(current):
        if suffix and not key.endswith(suffix):
            continue
        new = float(current[key])
        old = baseline.get(key)
        if not old:
            deltas.append(
                MetricDelta(
                    metric=key, baseline=old, current=new,
                    ratio=None, regressed=False,
                )
            )
            continue
        ratio = new / float(old)
        if higher_is_better:
            regressed = ratio < 1.0 - threshold
        else:
            regressed = ratio > 1.0 + threshold
        deltas.append(
            MetricDelta(
                metric=key, baseline=float(old), current=new,
                ratio=ratio, regressed=regressed,
            )
        )
    return deltas


def ks_distance(
    baseline: Sequence[float], current: Sequence[float]
) -> float:
    """Two-sample Kolmogorov-Smirnov distance of two *sorted* samples.

    The maximum absolute difference between the empirical CDFs -- 0.0 for
    identical samples, 1.0 for disjoint supports.  0.0 when either side is
    empty (no evidence of divergence without data).
    """
    if not baseline or not current:
        return 0.0
    distance = 0.0
    i = j = 0
    n, m = len(baseline), len(current)
    while i < n and j < m:
        # Consume every copy of the smaller value from *both* sides before
        # evaluating the CDF gap, so ties never register as divergence.
        value = min(baseline[i], current[j])
        while i < n and baseline[i] == value:
            i += 1
        while j < m and current[j] == value:
            j += 1
        distance = max(distance, abs(i / n - j / m))
    return distance


@dataclass
class DiffResult:
    """Everything one diff produced, ranked and ready to report."""

    baseline_label: str
    current_label: str
    aligned: int
    #: Pairs only the current run has / only the baseline has.
    added: List[PairKey] = field(default_factory=list)
    removed: List[PairKey] = field(default_factory=list)
    #: Ranked findings, most severe first (structural entries included).
    divergences: List[Divergence] = field(default_factory=list)
    #: Informational findings that never gate (both-failed pairs,
    #: phase-timing drift beyond the info threshold).
    notes: List[Divergence] = field(default_factory=list)
    #: ``(key, max_score)`` per diverging pair, worst first.
    pair_scores: List[Tuple[PairKey, float]] = field(default_factory=list)
    #: Sweep diffs only: axis values ranked by geomean metric drift
    #: (:func:`repro.sweeps.aggregate.axis_divergence_rows` rows).
    axis_divergences: List[Dict[str, object]] = field(default_factory=list)
    thresholds: DiffThresholds = field(default_factory=DiffThresholds)

    def gating(self) -> List[Divergence]:
        """The findings that demand exit code 5."""
        return [d for d in self.divergences if d.gating]

    @property
    def max_severity(self) -> str:
        worst = "info"
        for divergence in self.divergences:
            if SEVERITIES.index(divergence.severity) > SEVERITIES.index(worst):
                worst = divergence.severity
        return worst


# ---------------------------------------------------------------------------
# Field classification
# ---------------------------------------------------------------------------

def _field_kinds() -> Dict[str, str]:
    """``{field: scalar|counter|flag}`` over the stored result fields
    (identity keys -- workload/configuration -- excluded; they are the
    alignment key, not measurements)."""
    import typing

    kinds: Dict[str, str] = {}
    for name, hint in typing.get_type_hints(WorkloadResult).items():
        if name in ("workload", "configuration"):
            continue
        if hint is bool:
            kinds[name] = "flag"
        elif hint is int:
            kinds[name] = "counter"
        elif hint is float:
            kinds[name] = "scalar"
    return kinds


_FIELD_KINDS = _field_kinds()

#: Percentile fields covered by the raw-sample distribution comparison;
#: skipped in the per-field pass when samples exist (avoids double-reporting
#: one latency shift as both a scalar and a distribution finding).
_DISTRIBUTION_FIELDS = frozenset({"p99_latency_s"})


def _severity(score: float) -> str:
    if score <= 2.0:
        return "minor"
    if score <= 5.0:
        return "moderate"
    return "severe"


def _relative_delta(
    baseline: float, current: float, floor: float
) -> Optional[float]:
    """Relative delta, or ``None`` when the values compare equal.

    Both magnitudes under the absolute floor are equal by definition; a
    zero (or sub-floor) baseline against a real current value is ``inf``.
    """
    if baseline == current:
        return None
    if abs(baseline) < floor and abs(current) < floor:
        return None
    if abs(baseline) < floor:
        return inf
    return abs(current - baseline) / abs(baseline)


def _compare_fields(
    key: PairKey,
    baseline: WorkloadResult,
    current: WorkloadResult,
    thresholds: DiffThresholds,
    skip: frozenset,
) -> List[Divergence]:
    found: List[Divergence] = []
    for name in sorted(_FIELD_KINDS):
        if name in skip:
            continue
        kind = _FIELD_KINDS[name]
        old = getattr(baseline, name)
        new = getattr(current, name)
        if kind == "flag":
            if bool(old) != bool(new):
                found.append(
                    Divergence(
                        key=key, kind="flag", metric=name,
                        baseline=bool(old), current=bool(new),
                        relative=inf, score=inf, severity="severe",
                        note="flag flipped",
                    )
                )
            continue
        relative = _relative_delta(
            float(old), float(new), thresholds.absolute_floor
        )
        if relative is None or relative <= thresholds.relative:
            continue
        score = (
            relative / thresholds.relative if thresholds.relative > 0 else inf
        )
        found.append(
            Divergence(
                key=key, kind=kind, metric=name,
                baseline=old, current=new,
                relative=relative, score=score, severity=_severity(score),
            )
        )
    return found


def _compare_distribution(
    key: PairKey,
    baseline: PairEntry,
    current: PairEntry,
    thresholds: DiffThresholds,
) -> Tuple[List[Divergence], bool]:
    """Raw-sample latency comparison; ``(findings, had_samples)``."""
    base_samples = baseline.latency_samples()
    current_samples = current.latency_samples()
    if not base_samples or not current_samples:
        return [], False
    found: List[Divergence] = []
    for quantile in thresholds.percentiles:
        old = nearest_rank(base_samples, quantile)
        new = nearest_rank(current_samples, quantile)
        relative = _relative_delta(old, new, thresholds.absolute_floor)
        if relative is None or relative <= thresholds.relative:
            continue
        score = (
            relative / thresholds.relative if thresholds.relative > 0 else inf
        )
        found.append(
            Divergence(
                key=key, kind="distribution",
                metric=f"latency_p{quantile * 100:g}",
                baseline=old, current=new,
                relative=relative, score=score, severity=_severity(score),
                note=(
                    f"nearest-rank over {len(base_samples)} vs "
                    f"{len(current_samples)} samples"
                ),
            )
        )
    distance = ks_distance(base_samples, current_samples)
    if distance > thresholds.ks:
        score = distance / thresholds.ks if thresholds.ks > 0 else inf
        found.append(
            Divergence(
                key=key, kind="distribution", metric="latency_ks",
                baseline=0.0, current=distance,
                relative=distance, score=score, severity=_severity(score),
                note="two-sample KS distance of the latency CDFs",
            )
        )
    return found, True


def _structural(key: PairKey, metric: str, note: str) -> Divergence:
    return Divergence(
        key=key, kind="structural", metric=metric,
        baseline=None, current=None,
        relative=0.0, score=inf, severity="severe", note=note,
    )


def _rank(divergences: List[Divergence]) -> List[Divergence]:
    """Most severe first; deterministic tie-breaks by pair key and metric."""
    return sorted(
        divergences,
        key=lambda d: (
            -SEVERITIES.index(d.severity),
            -(d.score if isfinite(d.score) else 1e308),
            d.key,
            d.metric,
        ),
    )


def _diff_bench(
    baseline: RunView, current: RunView, thresholds: DiffThresholds
) -> DiffResult:
    """Bench snapshots compare as flat throughput metrics (higher is
    better), through the same :func:`metric_deltas` core the bench
    regression gate uses."""
    result = DiffResult(
        baseline_label=baseline.label,
        current_label=current.label,
        aligned=len(
            set(baseline.bench_metrics) & set(current.bench_metrics)
        ),
        thresholds=thresholds,
    )
    deltas = metric_deltas(
        baseline.bench_metrics,
        current.bench_metrics,
        thresholds.relative,
    )
    for delta in deltas:
        if not delta.regressed:
            continue
        relative = abs(delta.ratio - 1.0)
        score = (
            relative / thresholds.relative if thresholds.relative > 0 else inf
        )
        result.divergences.append(
            Divergence(
                key=PairKey("", "", ""),
                kind="throughput", metric=delta.metric,
                baseline=delta.baseline, current=delta.current,
                relative=relative, score=score, severity=_severity(score),
                note=f"{delta.ratio:.2f}x of baseline throughput",
            )
        )
    result.divergences = _rank(result.divergences)
    result.notes.extend(_phase_notes(baseline, current, thresholds))
    return result


def _phase_notes(
    baseline: RunView, current: RunView, thresholds: DiffThresholds
) -> List[Divergence]:
    """Informational phase-timing drift (wall-clock; never gates)."""
    notes: List[Divergence] = []
    for name in sorted(set(baseline.phase_seconds) & set(current.phase_seconds)):
        old = baseline.phase_seconds[name]
        new = current.phase_seconds[name]
        relative = _relative_delta(old, new, thresholds.absolute_floor)
        if relative is None or relative <= thresholds.phase:
            continue
        notes.append(
            Divergence(
                key=PairKey("", "", ""),
                kind="phase", metric=name,
                baseline=old, current=new,
                relative=relative,
                score=relative / thresholds.phase if thresholds.phase else inf,
                severity="info", gating=False,
                note="wall-clock phase drift (informational)",
            )
        )
    return notes


def diff_runs(
    baseline: RunView,
    current: RunView,
    thresholds: Optional[DiffThresholds] = None,
) -> DiffResult:
    """Align two runs and return their ranked divergences.

    Two bench snapshots diff as flat throughput metrics; everything else
    aligns pair-by-pair on ``(point_id, configuration, workload)``.
    Mixing a bench snapshot with a results artifact is a
    :class:`ValueError` -- the shapes share no comparison surface.
    """
    thresholds = thresholds if thresholds is not None else DiffThresholds()
    if baseline.is_bench != current.is_bench:
        raise ValueError(
            f"cannot diff {baseline.kind} ({baseline.label}) against "
            f"{current.kind} ({current.label}); bench snapshots only diff "
            f"against bench snapshots"
        )
    if baseline.is_bench:
        return _diff_bench(baseline, current, thresholds)

    common, added, removed = align(baseline, current)
    result = DiffResult(
        baseline_label=baseline.label,
        current_label=current.label,
        aligned=len(common),
        added=added,
        removed=removed,
        thresholds=thresholds,
    )
    divergences: List[Divergence] = []
    for key in added:
        divergences.append(
            _structural(key, "pair_added", "pair only in the current run")
        )
    for key in removed:
        divergences.append(
            _structural(key, "pair_removed", "pair only in the baseline run")
        )
    pair_worst: Dict[PairKey, float] = {}

    def note_score(key: PairKey, findings: List[Divergence]) -> None:
        for finding in findings:
            score = finding.score if isfinite(finding.score) else 1e308
            if score > pair_worst.get(key, 0.0):
                pair_worst[key] = score

    for key in common:
        base_entry = baseline.entries[key]
        current_entry = current.entries[key]
        if base_entry.status == "failed" and current_entry.status == "failed":
            result.notes.append(
                Divergence(
                    key=key, kind="status", metric="status",
                    baseline="failed", current="failed",
                    relative=0.0, score=0.0, severity="info", gating=False,
                    note="pair failed in both runs",
                )
            )
            continue
        if base_entry.status != current_entry.status:
            finding = Divergence(
                key=key, kind="status", metric="status",
                baseline=base_entry.status, current=current_entry.status,
                relative=inf, score=inf, severity="severe",
                note="pair flipped between ok and failed",
            )
            divergences.append(finding)
            note_score(key, [finding])
            continue
        distribution, had_samples = _compare_distribution(
            key, base_entry, current_entry, thresholds
        )
        skip = _DISTRIBUTION_FIELDS if had_samples else frozenset()
        findings = _compare_fields(
            key, base_entry.result, current_entry.result, thresholds, skip
        )
        findings.extend(distribution)
        divergences.extend(findings)
        note_score(key, findings)

    result.divergences = _rank(divergences)
    result.pair_scores = sorted(
        pair_worst.items(), key=lambda item: (-item[1], item[0])
    )
    if baseline.axis_names and baseline.axis_names == current.axis_names:
        from repro.sweeps.aggregate import axis_divergence_rows

        result.axis_divergences = [
            row
            for row in axis_divergence_rows(
                baseline.records(), current.records(), baseline.axis_names
            )
            # Bit-identical axis values (ratio exactly 1.0) are not drift.
            if row["magnitude"] > 0.0
        ]
    result.notes.extend(_phase_notes(baseline, current, thresholds))
    return result


__all__ = [
    "SEVERITIES",
    "DiffResult",
    "DiffThresholds",
    "Divergence",
    "MetricDelta",
    "diff_runs",
    "ks_distance",
    "metric_deltas",
]
