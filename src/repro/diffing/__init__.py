"""Differential run analytics: align two runs, rank their divergences.

The diff engine behind ``corona-repro diff``.  Three layers:

* :mod:`repro.diffing.loader` -- normalize heterogeneous run artifacts
  (``corona-results/1`` JSON, result CSVs, sweep directories with
  ``manifest.json`` + ``points.jsonl``, ``corona-sweep-results/1`` JSON,
  ``BENCH_replay.json`` snapshots) into one :class:`~repro.diffing.loader.RunView`
  keyed by ``(point_id, configuration, workload)``.
* :mod:`repro.diffing.compare` -- align two views with explicit
  added/removed/failed handling and compare every
  :class:`~repro.core.results.WorkloadResult` field: relative-threshold
  scalar and counter deltas, flag flips, per-percentile and KS distribution
  comparison from raw-sample artifacts, and (informational) phase-timing
  drift.  Also hosts :func:`~repro.diffing.compare.metric_deltas`, the one
  comparison codepath ``scripts/bench_regression.py`` gates through.
* :mod:`repro.diffing.report` -- the ranked markdown report and the
  ``corona-diff/1`` JSON document CI archives and gates on (exit code 5).
"""

from repro.diffing.compare import (
    DiffResult,
    DiffThresholds,
    Divergence,
    MetricDelta,
    diff_runs,
    ks_distance,
    metric_deltas,
)
from repro.diffing.loader import (
    DiffLoadError,
    PairEntry,
    PairKey,
    RunView,
    load_run,
)
from repro.diffing.report import DIFF_FORMAT, diff_json_dict, diff_markdown

__all__ = [
    "DIFF_FORMAT",
    "DiffLoadError",
    "DiffResult",
    "DiffThresholds",
    "Divergence",
    "MetricDelta",
    "PairEntry",
    "PairKey",
    "RunView",
    "diff_json_dict",
    "diff_markdown",
    "diff_runs",
    "ks_distance",
    "load_run",
    "metric_deltas",
]
