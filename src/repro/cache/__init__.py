"""Cache and coherence substrate (Sections 3.1.2 and 3.2.2 of the paper).

The Corona evaluation replays L2-*miss* traces, so the caches themselves sit
one level below the network study; they are nonetheless part of the system the
paper describes (per-core L1s, a shared 4 MB 16-way L2 per cluster, a MOESI
directory protocol backed by the optical broadcast bus for invalidations), and
this package implements them functionally:

* :mod:`repro.cache.cache` -- set-associative caches with LRU replacement and
  write-back/write-allocate policies;
* :mod:`repro.cache.mshr` -- miss-status holding registers with request
  coalescing;
* :mod:`repro.cache.coherence` -- a functional MOESI directory protocol,
  including the sharer tracking that generates the broadcast-bus invalidation
  traffic;
* :mod:`repro.cache.hierarchy` -- a cluster's L1/L2 hierarchy that can turn a
  raw address trace into the L2-miss stream the network simulator consumes.
"""

from repro.cache.cache import CacheLineState, SetAssociativeCache, CacheStats
from repro.cache.coherence import (
    CoherenceController,
    DirectoryEntry,
    DirectoryState,
    MoesiState,
)
from repro.cache.hierarchy import CacheHierarchy, HierarchyAccessResult
from repro.cache.mshr import MshrEntry, MshrFile

__all__ = [
    "SetAssociativeCache",
    "CacheLineState",
    "CacheStats",
    "MshrFile",
    "MshrEntry",
    "MoesiState",
    "DirectoryState",
    "DirectoryEntry",
    "CoherenceController",
    "CacheHierarchy",
    "HierarchyAccessResult",
]
